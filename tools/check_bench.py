#!/usr/bin/env python3
"""Bench-trajectory gate: fresh BENCH_*.json snapshots vs committed baselines.

Every experiment binary writes an observability snapshot (BENCH_N.json) whose
"bench" source carries the headline performance numbers plus a provenance
stamp (git_sha, build_type, hardware_threads — analysis::stamp_bench). The
committed copies in the repo root are the trajectory baselines; CI copies
them aside, re-runs the benches (which overwrite the files in the working
directory), and then runs this gate.

Rules:
  * Only throughput-shaped fields are gated — numeric keys containing
    "speedup", "per_second", or "throughput". Higher is better; a fresh
    value more than --threshold (default 25%) below baseline fails.
  * Same-host guard: a file is compared only when baseline and fresh agree
    on hardware_threads and build_type. A mismatch means the numbers were
    measured on different host shapes and the comparison would be noise —
    the file is reported as SKIPPED, never failed. (Committed baselines
    from a 1-core container vs a multi-core runner land here by design.)
  * Fields whose baseline is <= 0, or files whose bench section sets
    speedup_skipped, are skipped — the baseline recorded "not measured".
  * git_sha differences are expected (that is the point) and reported
    informationally.

The human-readable diff lands in --report (markdown, uploaded as a CI
artifact) and on stdout. Exit status: 0 = no regression, 1 = regression,
2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GATED_SUBSTRINGS = ("speedup", "per_second", "throughput")
STAMP_KEYS = ("hardware_threads", "build_type")


def bench_section(path: Path) -> dict:
    """The "bench" source of a registry snapshot, {} when absent."""
    with path.open() as f:
        doc = json.load(f)
    section = doc.get("bench", {})
    return section if isinstance(section, dict) else {}


def gated_fields(section: dict) -> dict[str, float]:
    fields = {}
    for key, value in section.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if any(s in key for s in GATED_SUBSTRINGS) and "skipped" not in key:
            fields[key] = float(value)
    return fields


def compare_file(name: str, baseline: dict, fresh: dict, threshold: float):
    """Yield (field, baseline, fresh, delta_pct, status) rows for one file."""
    for key in STAMP_KEYS:
        if baseline.get(key) != fresh.get(key):
            yield (f"({key})", baseline.get(key), fresh.get(key), None,
                   "SKIPPED: host/build mismatch")
            return
    if baseline.get("speedup_skipped") or fresh.get("speedup_skipped"):
        yield ("(speedup_skipped)", baseline.get("speedup_skipped"),
               fresh.get("speedup_skipped"), None,
               "SKIPPED: baseline host could not measure speedup")
        return
    fields = gated_fields(baseline)
    if not fields:
        yield ("(no gated fields)", None, None, None, "SKIPPED: nothing to gate")
        return
    for key, base_value in sorted(fields.items()):
        if base_value <= 0.0:
            yield (key, base_value, fresh.get(key), None,
                   "SKIPPED: baseline unmeasured")
            continue
        fresh_value = fresh.get(key)
        if not isinstance(fresh_value, (int, float)):
            yield (key, base_value, fresh_value, None, "FAIL: missing in fresh run")
            continue
        delta = (float(fresh_value) - base_value) / base_value * 100.0
        status = "OK" if float(fresh_value) >= base_value * (1.0 - threshold) \
            else f"FAIL: > {threshold * 100.0:.0f}% regression"
        yield (key, base_value, float(fresh_value), delta, status)


def fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True, type=Path,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--fresh-dir", required=True, type=Path,
                        help="directory the benches just wrote BENCH_*.json into")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional drop (default 0.25 = 25%%)")
    parser.add_argument("--report", type=Path, default=None,
                        help="write the markdown diff report here")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    lines = ["# Bench trajectory report", ""]
    failed = False
    for baseline_path in baselines:
        name = baseline_path.name
        fresh_path = args.fresh_dir / name
        lines.append(f"## {name}")
        if not fresh_path.exists():
            lines.append("")
            lines.append("SKIPPED: no fresh run produced this snapshot")
            lines.append("")
            continue
        try:
            baseline = bench_section(baseline_path)
            fresh = bench_section(fresh_path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: {name}: {err}", file=sys.stderr)
            return 2
        base_sha = baseline.get("git_sha", "unknown")
        fresh_sha = fresh.get("git_sha", "unknown")
        lines.append(f"baseline {base_sha} -> fresh {fresh_sha}")
        lines.append("")
        lines.append("| field | baseline | fresh | delta | status |")
        lines.append("|-------|----------|-------|-------|--------|")
        for field, base_v, fresh_v, delta, status in compare_file(
                name, baseline, fresh, args.threshold):
            delta_s = "-" if delta is None else f"{delta:+.1f}%"
            lines.append(f"| {field} | {fmt(base_v)} | {fmt(fresh_v)} "
                         f"| {delta_s} | {status} |")
            if status.startswith("FAIL"):
                failed = True
        lines.append("")

    verdict = ("REGRESSION: at least one gated field dropped past the threshold"
               if failed else "no regressions past the threshold")
    lines.append(verdict)
    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.report is not None:
        args.report.write_text(report)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
