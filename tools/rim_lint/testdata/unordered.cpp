// Fixture: triggers `unordered-container` when linted under a
// serialization path (the test presents it as src/rim/io/fixture.cpp).
#include <string>
#include <unordered_map>
#include <unordered_set>

int fixture_unordered() {
  std::unordered_map<std::string, int> by_name;
  std::unordered_set<int> seen;
  by_name["x"] = 1;
  seen.insert(1);
  int sum = 0;
  for (const auto& [name, value] : by_name) sum += value + name.empty();
  return sum + static_cast<int>(seen.size());
}
