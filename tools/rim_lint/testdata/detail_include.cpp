// Fixture: triggers `detail-include` when presented as a rim/core source —
// it reaches into another module's private detail headers.
#include "rim/geom/detail/cell_key.hpp"
#include "rim/obs/detail/bucket_math.hpp"

int fixture_detail_include() { return 0; }
