#pragma once

#include <atomic>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"

namespace rim::sim {

class Shared {
 public:
  void bump();

 private:
  common::Mutex mutex_;
  // RIM_LINT_ALLOW(project-annotation-coverage): written only before the
  // worker threads start (construction-time configuration).
  int hits_ = 0;
};

// RIM_LINT_ALLOW(project-annotation-coverage): test-only tally, read after
// every thread is joined.
static int global_hits = 0;

}  // namespace rim::sim
