#pragma once

#include <atomic>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"

// Fixture: a mutex-bearing class with one unguarded plain-data member
// (violation), one guarded member and one atomic (clean), plus an
// unannotated mutable static (violation).

namespace rim::sim {

class Shared {
 public:
  void bump();

 private:
  common::Mutex mutex_;
  int hits_ = 0;
  int guarded_hits_ RIM_GUARDED_BY(mutex_) = 0;
  std::atomic<int> fast_hits_{0};
};

static int global_hits = 0;

}  // namespace rim::sim
