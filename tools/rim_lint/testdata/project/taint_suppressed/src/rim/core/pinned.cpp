#include "rim/geom/gridish.hpp"

namespace rim::core {

int apply_batch(geom::Gridish& grid) { return grid.fold(); }

}  // namespace rim::core
