#include "rim/geom/gridish.hpp"

// Fixture: the cross-TU suppression case — the violation is *discovered*
// through a seed in pinned.cpp, but the suppression lives here at the
// definition site and must cover it.

namespace rim::geom {

int Gridish::fold() const {
  int sum = 0;
  // RIM_LINT_ALLOW(project-taint): summation is commutative over exact ints,
  // so visit order cannot change the result.
  for (const auto& kv : cells_) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace rim::geom
