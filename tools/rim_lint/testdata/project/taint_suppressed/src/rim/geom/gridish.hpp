#pragma once

#include <unordered_map>

namespace rim::geom {

class Gridish {
 public:
  int fold() const;

 private:
  std::unordered_map<long, int> cells_;
};

}  // namespace rim::geom
