#include <random>

#include "rim/geom/gridish.hpp"

// Fixture: apply_batch is a taint seed by name; both the cross-TU
// unordered iteration (gridish.cpp) and the local random_device helper
// must be flagged as reachable nondeterminism.

namespace rim::core {

static unsigned seed_helper() {
  std::random_device rd;
  return rd();
}

int apply_batch(geom::Gridish& grid) {
  const unsigned salt = seed_helper();
  return grid.fold() + static_cast<int>(salt % 2);
}

}  // namespace rim::core
