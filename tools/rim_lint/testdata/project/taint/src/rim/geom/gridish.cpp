#include "rim/geom/gridish.hpp"

namespace rim::geom {

int Gridish::fold() const {
  int sum = 0;
  for (const auto& kv : cells_) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace rim::geom
