#pragma once

#include <unordered_map>

// Fixture: a class with an unordered member whose iteration feeds a
// checksum-pinned entry point in ANOTHER translation unit (pinned.cpp).

namespace rim::geom {

class Gridish {
 public:
  int fold() const;

 private:
  std::unordered_map<long, int> cells_;
};

}  // namespace rim::geom
