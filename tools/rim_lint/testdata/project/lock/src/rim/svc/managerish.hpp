#pragma once

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"

// Fixture: a declared manager->session lock order and two ways to break
// it — an inverted acquisition sequence and a lock taken inside a
// ThreadPool task lambda.

namespace rim::svc {

class Managerish {
 public:
  void spill();
  void enqueue();

 private:
  common::Mutex reg_mutex_;
};

class Sessionish {
 public:
  common::Mutex mutex RIM_ACQUIRED_AFTER(Managerish::reg_mutex_);
};

}  // namespace rim::svc
