#include "rim/svc/managerish.hpp"

namespace rim::svc {

Sessionish session;

void Managerish::spill() {
  common::MutexLock hold_session(session.mutex);
  common::MutexLock hold_registry(reg_mutex_);  // inverts the declared order
}

void Managerish::enqueue() {
  pool().submit([this] {
    common::MutexLock hold(reg_mutex_);  // lock inside a pool task lambda
  });
}

}  // namespace rim::svc
