#include "rim/svc/managerish.hpp"

namespace rim::svc {

Sessionish session;

void Managerish::spill() {
  common::MutexLock hold_session(session.mutex);
  // RIM_LINT_ALLOW(project-lock-order): single-threaded teardown path; the
  // registry lock is uncontended here by construction.
  common::MutexLock hold_registry(reg_mutex_);
}

}  // namespace rim::svc
