#pragma once

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"

namespace rim::svc {

class Managerish {
 public:
  void spill();

 private:
  common::Mutex reg_mutex_;
};

class Sessionish {
 public:
  common::Mutex mutex RIM_ACQUIRED_AFTER(Managerish::reg_mutex_);
};

}  // namespace rim::svc
