// Fixture: a project-rule suppression with nothing to suppress. The
// per-file mode must leave it alone (it cannot see project violations);
// the project mode must flag it as dangling.

namespace rim::core {

// RIM_LINT_ALLOW(project-taint): stale rationale for code since rewritten.
int answer() { return 42; }

}  // namespace rim::core
