// Fixture: every line here must trigger the `raw-random` rule.
#include <cstdlib>
#include <ctime>
#include <random>

int fixture_raw_random() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // srand + time
  std::random_device entropy;                             // random_device
  return std::rand() + static_cast<int>(entropy());       // rand
}
