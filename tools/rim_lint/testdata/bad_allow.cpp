// Fixture: every RIM_LINT_ALLOW below is malformed or dangling and must
// trigger `allow-format`.

// RIM_LINT_ALLOW(no-such-rule): unknown rule name
// RIM_LINT_ALLOW(raw-random)
// RIM_LINT_ALLOW(raw-random):
// RIM_LINT_ALLOW(float-equality): dangling — nothing to suppress here
int fixture_bad_allow() { return 0; }
