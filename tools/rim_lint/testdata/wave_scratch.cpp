// Fixture: the `wave-vector-scratch` rule fires on std::vector scratch
// declared inside task lambdas handed to submit(), and only there.
#include <cstddef>
#include <vector>

struct FakePool {
  template <typename F>
  void submit(F&& task) {
    task();
  }
};

void fixture_wave_scratch(FakePool& pool, std::size_t n) {
  // Outside any submit lambda: fine — this is the caller's scratch.
  std::vector<double> staged(n, 0.0);

  pool.submit([n] {
    std::vector<double> scratch(n);  // trigger: per-task heap allocation
    scratch[0] = 1.0;
  });

  pool.submit([&staged] { staged[0] += 1.0; });  // no scratch: clean

  pool.submit([n]() mutable {
    std::vector<int> a(n);  // trigger
    std::vector<int> b(n);  // trigger
    a[0] = b[0];
  });
}
