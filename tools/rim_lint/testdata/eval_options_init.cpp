// Fixture for the eval-options-designated-init rule: constructing
// core::EvalOptions with designated initializers bypasses the chainable
// with_* builder surface. Three violations; the with_* chains and the plain
// default construction below must stay clean.

#include <cstddef>

namespace rim::core {
enum class Strategy { kAuto, kBrute };
enum class Execution { kWave };
struct EvalOptions {
  Strategy strategy = Strategy::kAuto;
  Execution execution = Execution::kWave;
  std::size_t touched_floor = 64;
  EvalOptions& with_strategy(Strategy s) {
    strategy = s;
    return *this;
  }
  EvalOptions& with_execution(Execution e) {
    execution = e;
    return *this;
  }
};
}  // namespace rim::core

namespace fixture {

using rim::core::EvalOptions;
using rim::core::Execution;
using rim::core::Strategy;

// Violation: single designated field.
const EvalOptions bad_one = EvalOptions{.strategy = Strategy::kBrute};

// Violation: multiple designated fields.
const EvalOptions bad_two =
    EvalOptions{.strategy = Strategy::kBrute, .touched_floor = 128};

// Violation: qualified name.
const rim::core::EvalOptions bad_three =
    rim::core::EvalOptions{.execution = Execution::kWave};

// Clean: default construction and builder chains.
const EvalOptions good_default = EvalOptions{};
const EvalOptions good_chain =
    EvalOptions{}.with_strategy(Strategy::kBrute).with_execution(
        Execution::kWave);

}  // namespace fixture
