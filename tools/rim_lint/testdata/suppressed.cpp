// Fixture: the same violations as the trigger fixtures, each carrying a
// well-formed RIM_LINT_ALLOW — linting this file must report nothing.
#include <cstdlib>

bool fixture_suppressed(double x) {
  // RIM_LINT_ALLOW(raw-random): fixture demonstrating the above-line form
  const int noise = std::rand();
  const bool exact = x == 0.0;  // RIM_LINT_ALLOW(float-equality): exact sentinel, same-line form
  return exact && noise == 0;
}
