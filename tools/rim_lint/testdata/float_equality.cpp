// Fixture: triggers `float-equality` (naked ==/!= against float literals).
bool fixture_float_equality(double x, float y) {
  const bool a = x == 1.0;
  const bool b = 0.5f != y;
  const bool c = x == 1e-9;
  return a || b || c;
}
