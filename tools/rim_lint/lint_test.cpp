#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

// Unit tests for rim_lint (DESIGN.md §8). Each rule has a fixture file in
// testdata/ that must trigger it; path-scoped rules are fed the fixture's
// bytes under a pretend in-scope path. Trigger patterns below live inside
// string literals, which the scanner strips — so this test file itself
// lints clean as part of the repo-wide `lint` target.

namespace {

using rim::lint::lint_source;
using rim::lint::Violation;

std::string fixture(const std::string& name) {
  const std::string path = std::string(RIM_LINT_TESTDATA) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t count_rule(const std::vector<Violation>& violations,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

TEST(RimLint, RawRandomFixtureTriggers) {
  const auto v = lint_source("tools/rim_lint/testdata/raw_random.cpp",
                             fixture("raw_random.cpp"));
  EXPECT_GE(count_rule(v, "raw-random"), 4u) << "srand, time, random_device, rand";
}

TEST(RimLint, RawRandomAllowedInRngModule) {
  const auto v = lint_source("src/rim/sim/rng.cpp", fixture("raw_random.cpp"));
  EXPECT_EQ(count_rule(v, "raw-random"), 0u);
}

// The seeded-deployment module is the second sanctioned entropy home: its
// entropy_seed() is the audited std::random_device door for callers that
// want a logged-but-random seed. The sanction is the rule's own path list,
// not an ad-hoc allow pragma — and it must not leak to neighboring paths.
TEST(RimLint, RawRandomAllowedInRandomDeploymentModule) {
  const std::string body = fixture("raw_random.cpp");
  const auto sanctioned =
      lint_source("src/rim/sim/random_deployment.cpp", body);
  EXPECT_EQ(count_rule(sanctioned, "raw-random"), 0u);
  const auto sibling = lint_source("src/rim/sim/generators.cpp", body);
  EXPECT_GE(count_rule(sibling, "raw-random"), 4u)
      << "sanction must cover only the entropy homes";
}

TEST(RimLint, UnorderedContainerFixtureTriggers) {
  const std::string body = fixture("unordered.cpp");
  const auto in_io = lint_source("src/rim/io/fixture.cpp", body);
  EXPECT_GE(count_rule(in_io, "unordered-container"), 2u);
  const auto in_obs = lint_source("src/rim/obs/fixture.cpp", body);
  EXPECT_GE(count_rule(in_obs, "unordered-container"), 2u);
  const auto in_snapshot = lint_source("src/rim/core/snapshot.cpp", body);
  EXPECT_GE(count_rule(in_snapshot, "unordered-container"), 2u);
}

TEST(RimLint, UnorderedContainerAllowedElsewhere) {
  const auto v =
      lint_source("src/rim/geom/dynamic_grid.hpp", fixture("unordered.cpp"));
  EXPECT_EQ(count_rule(v, "unordered-container"), 0u);
}

TEST(RimLint, FloatEqualityFixtureTriggers) {
  const auto v = lint_source("tools/rim_lint/testdata/float_equality.cpp",
                             fixture("float_equality.cpp"));
  EXPECT_EQ(count_rule(v, "float-equality"), 3u);
}

TEST(RimLint, FloatEqualityAllowedInGeom) {
  const auto v =
      lint_source("src/rim/geom/vec2.hpp", fixture("float_equality.cpp"));
  EXPECT_EQ(count_rule(v, "float-equality"), 0u);
}

TEST(RimLint, DetailIncludeFixtureTriggers) {
  const auto v = lint_source("src/rim/core/scenario.cpp",
                             fixture("detail_include.cpp"));
  EXPECT_EQ(count_rule(v, "detail-include"), 2u);
}

TEST(RimLint, DetailIncludeAllowedWithinOwnModule) {
  const auto own = lint_source("src/rim/geom/dynamic_grid.cpp",
                               "#include \"rim/geom/detail/cell_key.hpp\"\n");
  EXPECT_EQ(count_rule(own, "detail-include"), 0u);
  const auto cross =
      lint_source("src/rim/geom/dynamic_grid.cpp",
                  "#include \"rim/obs/detail/bucket_math.hpp\"\n");
  EXPECT_EQ(count_rule(cross, "detail-include"), 1u);
}

TEST(RimLint, WaveScratchFixtureTriggers) {
  const auto v = lint_source("src/rim/core/scenario_batch.cpp",
                             fixture("wave_scratch.cpp"));
  EXPECT_EQ(count_rule(v, "wave-vector-scratch"), 3u)
      << "one per vector declared inside a submit() task lambda";
}

TEST(RimLint, WaveScratchAllowedOutsideBatchFiles) {
  const auto v =
      lint_source("src/rim/sim/workload.cpp", fixture("wave_scratch.cpp"));
  EXPECT_EQ(count_rule(v, "wave-vector-scratch"), 0u);
}

TEST(RimLint, EvalOptionsDesignatedInitFixtureTriggers) {
  const auto v = lint_source("tools/rim_lint/testdata/eval_options_init.cpp",
                             fixture("eval_options_init.cpp"));
  EXPECT_EQ(count_rule(v, "eval-options-designated-init"), 3u)
      << "single field, multiple fields, qualified name";
}

TEST(RimLint, EvalOptionsBuilderChainsDoNotFire) {
  const std::string source =
      "const auto o = EvalOptions{}.with_strategy(Strategy::kBrute);\n"
      "EvalOptions defaults;\n"
      "EvalOptions copy{defaults};\n";
  const auto v = lint_source("src/rim/core/fixture.cpp", source);
  EXPECT_EQ(count_rule(v, "eval-options-designated-init"), 0u);
}

TEST(RimLint, SuppressedFixtureIsClean) {
  const auto v = lint_source("tools/rim_lint/testdata/suppressed.cpp",
                             fixture("suppressed.cpp"));
  EXPECT_TRUE(v.empty()) << v.size() << " unexpected violation(s), first: "
                         << (v.empty() ? "" : v.front().message);
}

TEST(RimLint, MalformedSuppressionsTrigger) {
  const auto v = lint_source("tools/rim_lint/testdata/bad_allow.cpp",
                             fixture("bad_allow.cpp"));
  EXPECT_EQ(count_rule(v, "allow-format"), 4u)
      << "unknown rule, missing colon, empty reason, dangling";
}

TEST(RimLint, PatternsInsideStringsAndCommentsDoNotFire) {
  const std::string source =
      "#include <string>\n"
      "std::string s = \"std::" "rand() time(nullptr) == 1.0\";\n";
  const auto v = lint_source("src/rim/io/json.cpp", source);
  EXPECT_TRUE(v.empty());
}

TEST(RimLint, BinaryFileRule) {
  using std::string_literals::operator""s;
  EXPECT_TRUE(rim::lint::looks_binary("ELF\0binary"s));
  EXPECT_FALSE(rim::lint::looks_binary("plain text\nwith lines\n"));

  const std::string path = ::testing::TempDir() + "/rim_lint_binary_fixture";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("\x7f" "ELF\0\0\0", 7);
  }
  const auto v = rim::lint::check_binary(path);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.front().rule, "binary-file");
  std::remove(path.c_str());
}

TEST(RimLint, RuleCatalogIsComplete) {
  const auto& rules = rim::lint::rules();
  EXPECT_GE(rules.size(), 5u) << "acceptance: >= 5 named rules";
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.summary.empty());
  }
}

}  // namespace
