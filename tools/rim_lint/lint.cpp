#include "lint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scan.hpp"

namespace rim::lint {
namespace {

using detail::ScanResult;
using detail::Token;

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

constexpr std::string_view kRawRandom = "raw-random";
constexpr std::string_view kUnordered = "unordered-container";
constexpr std::string_view kFloatEquality = "float-equality";
constexpr std::string_view kDetailInclude = "detail-include";
constexpr std::string_view kBinaryFile = "binary-file";
constexpr std::string_view kWaveScratch = "wave-vector-scratch";
constexpr std::string_view kEvalOptionsInit = "eval-options-designated-init";
constexpr std::string_view kAllowFormat = "allow-format";
// Project-wide passes (project.cpp); listed here so suppressions validate
// and `--list-rules` shows the whole contract.
constexpr std::string_view kProjectTaint = "project-taint";
constexpr std::string_view kProjectLockOrder = "project-lock-order";
constexpr std::string_view kProjectCoverage = "project-annotation-coverage";

const std::vector<RuleInfo> kRules = {
    {kRawRandom,
     "non-deterministic randomness (std::rand/srand/std::random_device/"
     "time(nullptr)) outside the entropy homes (sim/rng, "
     "sim/random_deployment — the audited entropy_seed() door); seeded "
     "runs must be replayable"},
    {kUnordered,
     "std::unordered_{map,set} in a serialization/checksum path (rim/io/, "
     "rim/obs/, rim/core/snapshot*); iteration order is not deterministic"},
    {kFloatEquality,
     "naked ==/!= against a floating-point literal outside rim/geom/; use a "
     "tolerance helper or suppress with the exactness rationale"},
    {kDetailInclude,
     "#include of another module's detail/ header; detail headers are "
     "module-private"},
    {kBinaryFile, "tracked file looks binary (NUL byte in leading window)"},
    {kWaveScratch,
     "std::vector scratch inside a task lambda handed to submit() in a "
     "batch file; wave tasks must capture arena pointers, not allocate "
     "(see common::Arena and DESIGN.md §10)"},
    {kEvalOptionsInit,
     "designated-initializer construction of core::EvalOptions; use the "
     "chainable with_* builder setters (EvalOptions{}.with_strategy(...)) so "
     "new knobs keep one construction surface"},
    {kProjectTaint,
     "[--project] a function reachable from a checksum-pinned entry point "
     "(apply_batch, SpeculativeExecutor, SinrAssessor, snapshot "
     "serialization, the _scalar SIMD twins) touches a nondeterminism "
     "source: unordered/pointer-keyed iteration, raw randomness outside "
     "the entropy homes, or wall-clock reads outside rim/obs/"},
    {kProjectLockOrder,
     "[--project] mutex acquisitions that invert the declared "
     "RIM_ACQUIRED_AFTER/RIM_ACQUIRED_BEFORE partial order (DESIGN.md §9 "
     "manager->session), or an annotated mutex acquired lexically inside a "
     "ThreadPool submit() task lambda"},
    {kProjectCoverage,
     "[--project] shared-state audit over src/rim: a mutable static whose "
     "type is not an internally-synchronized (mutex-bearing) class, or a "
     "plain-data member of a mutex-bearing class carrying neither "
     "RIM_GUARDED_BY nor std::atomic nor const"},
    {kAllowFormat,
     "malformed or dangling RIM_LINT_ALLOW suppression; the form is "
     "// RIM_LINT_ALLOW(rule-name): reason"},
};

// ---------------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------------

[[nodiscard]] bool path_contains(std::string_view path, std::string_view part) {
  return path.find(part) != std::string_view::npos;
}

[[nodiscard]] bool is_float_literal(const std::string& tok) {
  if (tok.empty()) return false;
  if (!detail::digit(tok[0]) && tok[0] != '.') return false;
  if (tok.size() > 1 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    return tok.find_first_of("pP") != std::string::npos;
  }
  return tok.find('.') != std::string::npos ||
         tok.find_first_of("eE") != std::string::npos;
}

/// Module of a source path: "src/rim/<module>/..." -> "<module>", "" outside.
[[nodiscard]] std::string module_of(std::string_view path) {
  const auto pos = path.find("rim/");
  if (pos == std::string_view::npos) return "";
  const std::size_t from = pos + 4;
  const auto slash = path.find('/', from);
  if (slash == std::string_view::npos) return "";
  return std::string(path.substr(from, slash - from));
}

void check_tokens(std::string_view path, const ScanResult& scan_result,
                  std::vector<Violation>& out) {
  const std::vector<Token>& toks = scan_result.tokens;
  // The rule-aware sanction for seeded-entropy entry points: sim/rng (the
  // PRNG itself) and sim/random_deployment (whose entropy_seed() is the
  // library's one documented std::random_device door). Extending this list
  // is the supported way to bless a new entry point — ad-hoc RIM_LINT_ALLOW
  // suppressions for raw-random would scatter unaudited entropy sites.
  const bool rng_home = path_contains(path, "sim/rng") ||
                        path_contains(path, "sim/random_deployment");
  const bool serialization_path = path_contains(path, "rim/io/") ||
                                  path_contains(path, "rim/obs/") ||
                                  path_contains(path, "rim/core/snapshot");
  const bool geom_home = path_contains(path, "rim/geom/");

  const auto next_is = [&](std::size_t i, std::string_view text) {
    return i + 1 < toks.size() && toks[i + 1].text == text;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    const std::size_t ln = toks[i].line;

    if (!rng_home) {
      if ((t == "rand" || t == "srand") && next_is(i, "(")) {
        out.push_back({std::string(path), ln, std::string(kRawRandom),
                       t + "() is non-deterministic; draw from sim::Rng"});
      } else if (t == "random_device") {
        out.push_back({std::string(path), ln, std::string(kRawRandom),
                       "std::random_device is non-deterministic; seed "
                       "sim::Rng explicitly"});
      } else if (t == "time" && next_is(i, "(") && i + 2 < toks.size() &&
                 (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL")) {
        out.push_back({std::string(path), ln, std::string(kRawRandom),
                       "time(nullptr) makes runs unreplayable; thread a seed "
                       "or obs::now_ns through the caller"});
      }
    }

    if (serialization_path &&
        (t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset")) {
      out.push_back({std::string(path), ln, std::string(kUnordered),
                     "std::" + t +
                         " in a serialization/checksum path; iteration order "
                         "is non-deterministic — use std::map or a sorted "
                         "vector"});
    }

    // eval-options-designated-init: `EvalOptions` `{` `.` is the shape of a
    // designated initializer (EvalOptions{.strategy = ...}). The sanctioned
    // EvalOptions{}.with_*(...) chain tokenizes as `{` `}` `.`, so it never
    // matches. The definition itself (interference.hpp) declares members,
    // never brace-initializes with designators, so no path carve-out needed.
    if (t == "EvalOptions" && next_is(i, "{") && i + 2 < toks.size() &&
        toks[i + 2].text == ".") {
      out.push_back({std::string(path), ln, std::string(kEvalOptionsInit),
                     "designated-initializer EvalOptions construction; chain "
                     "the with_* builder setters instead "
                     "(EvalOptions{}.with_strategy(...))"});
    }

    if (!geom_home && (t == "==" || t == "!=")) {
      const bool lhs = i > 0 && is_float_literal(toks[i - 1].text);
      const bool rhs = i + 1 < toks.size() && is_float_literal(toks[i + 1].text);
      if (lhs || rhs) {
        out.push_back({std::string(path), ln, std::string(kFloatEquality),
                       "exact floating-point comparison against a literal; "
                       "use a geom tolerance helper or justify exactness"});
      }
    }
  }

  // wave-vector-scratch: in batch files, a task lambda handed straight to
  // ThreadPool::submit runs per wave on the hottest path in the engine;
  // std::vector scratch there is a heap allocation (and a free) per task.
  // Batch scratch belongs in the scenario's arena, captured as raw
  // pointers (scenario_batch.cpp documents the lifetime rules).
  if (path_contains(path, "batch")) {
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "submit" || !next_is(i, "(")) continue;
      std::size_t j = i + 2;
      if (j >= toks.size() || toks[j].text != "[") continue;
      // Capture list, then optional (params) / qualifiers, then the body.
      std::size_t depth = 1;
      for (++j; j < toks.size() && depth > 0; ++j) {
        if (toks[j].text == "[") ++depth;
        if (toks[j].text == "]") --depth;
      }
      if (j < toks.size() && toks[j].text == "(") {
        depth = 1;
        for (++j; j < toks.size() && depth > 0; ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
        }
      }
      while (j < toks.size() && toks[j].text != "{") ++j;
      if (j >= toks.size()) continue;
      depth = 1;
      for (++j; j < toks.size() && depth > 0; ++j) {
        if (toks[j].text == "{") {
          ++depth;
        } else if (toks[j].text == "}") {
          --depth;
        } else if (toks[j].text == "vector") {
          out.push_back(
              {std::string(path), toks[j].line, std::string(kWaveScratch),
               "std::vector scratch inside a submit() task lambda; "
               "bump-allocate from the batch arena and capture the pointer "
               "instead"});
        }
      }
    }
  }

  const std::string own_module = module_of(path);
  for (const auto& [ln, include] : scan_result.quoted_includes) {
    const auto detail_pos = include.find("/detail/");
    if (detail_pos == std::string::npos) continue;
    const std::string target_module = module_of(include);
    if (target_module.empty() || target_module == own_module) continue;
    out.push_back({std::string(path), ln, std::string(kDetailInclude),
                   "#include \"" + include + "\" reaches into rim/" +
                       target_module +
                       "'s private detail/ headers across a module boundary"});
  }
}

[[nodiscard]] bool is_cpp_source(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx" || ext == ".hxx";
}

[[nodiscard]] std::string normalize(const std::filesystem::path& p) {
  return p.generic_string();
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_violation_json(std::ostringstream& out, const Violation& v,
                           bool suppressed) {
  out << "    {\"file\": \"" << json_escape(v.file) << "\", \"line\": "
      << v.line << ", \"rule\": \"" << json_escape(v.rule)
      << "\", \"message\": \"" << json_escape(v.message)
      << "\", \"suppressed\": " << (suppressed ? "true" : "false") << "}";
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

bool is_known_rule(std::string_view name) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.name == name; });
}

bool is_project_rule(std::string_view name) {
  return name.rfind("project-", 0) == 0;
}

bool looks_binary(std::string_view contents) {
  const std::size_t window = std::min<std::size_t>(contents.size(), 8192);
  return contents.substr(0, window).find('\0') != std::string_view::npos;
}

LintReport lint_source_report(std::string_view path, std::string_view source) {
  ScanResult scanned = detail::scan(path, source);
  std::vector<Violation> violations;
  check_tokens(path, scanned, violations);
  detail::SuppressionOutcome outcome = detail::apply_suppressions(
      scanned, std::move(violations), path, detail::SuppressionMode::kFile);
  LintReport report;
  report.active = std::move(outcome.active);
  report.active.insert(report.active.end(), outcome.dangling.begin(),
                       outcome.dangling.end());
  report.active.insert(report.active.end(), scanned.comment_violations.begin(),
                       scanned.comment_violations.end());
  report.suppressed = std::move(outcome.suppressed);
  detail::sort_violations(report.active);
  detail::sort_violations(report.suppressed);
  return report;
}

std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view source) {
  return lint_source_report(path, source).active;
}

std::vector<Violation> check_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string head(8192, '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<std::size_t>(std::max<std::streamsize>(in.gcount(), 0)));
  std::vector<Violation> out;
  if (looks_binary(head)) {
    out.push_back({path, 1, std::string(kBinaryFile),
                   "file contains NUL bytes; binaries must not be tracked "
                   "(build trees are git-ignored via build*/)"});
  }
  return out;
}

namespace {

[[nodiscard]] LintReport lint_file_report(const std::string& path) {
  LintReport report;
  report.active = check_binary(path);
  if (!report.active.empty()) return report;  // binary: token rules meaningless
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();
  return lint_source_report(normalize(std::filesystem::path(path)), source);
}

}  // namespace

std::vector<Violation> lint_file(const std::string& path) {
  return lint_file_report(path).active;
}

LintReport lint_tree_report(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(normalize(p));
      continue;
    }
    if (!fs::is_directory(p)) continue;
    for (auto it = fs::recursive_directory_iterator(p);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name.rfind("build", 0) == 0 || name == ".git" ||
           name == "testdata")) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && is_cpp_source(it->path())) {
        files.push_back(normalize(it->path()));
      }
    }
  }
  std::sort(files.begin(), files.end());
  LintReport all;
  for (const std::string& file : files) {
    LintReport one = lint_file_report(file);
    all.active.insert(all.active.end(), one.active.begin(), one.active.end());
    all.suppressed.insert(all.suppressed.end(), one.suppressed.begin(),
                          one.suppressed.end());
  }
  detail::sort_violations(all.active);
  detail::sort_violations(all.suppressed);
  return all;
}

std::vector<Violation> lint_tree(const std::vector<std::string>& roots) {
  return lint_tree_report(roots).active;
}

std::string report_json(const LintReport& report, std::string_view mode) {
  std::ostringstream out;
  out << "{\n  \"generator\": \"rim_lint\",\n  \"mode\": \"" << mode
      << "\",\n  \"violations\": [\n";
  bool first = true;
  for (const Violation& v : report.active) {
    if (!first) out << ",\n";
    first = false;
    append_violation_json(out, v, false);
  }
  for (const Violation& v : report.suppressed) {
    if (!first) out << ",\n";
    first = false;
    append_violation_json(out, v, true);
  }
  out << "\n  ],\n  \"counts\": {\"active\": " << report.active.size()
      << ", \"suppressed\": " << report.suppressed.size() << "}\n}\n";
  return out.str();
}

}  // namespace rim::lint
