#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace rim::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

constexpr std::string_view kRawRandom = "raw-random";
constexpr std::string_view kUnordered = "unordered-container";
constexpr std::string_view kFloatEquality = "float-equality";
constexpr std::string_view kDetailInclude = "detail-include";
constexpr std::string_view kBinaryFile = "binary-file";
constexpr std::string_view kWaveScratch = "wave-vector-scratch";
constexpr std::string_view kEvalOptionsInit = "eval-options-designated-init";
constexpr std::string_view kAllowFormat = "allow-format";

const std::vector<RuleInfo> kRules = {
    {kRawRandom,
     "non-deterministic randomness (std::rand/srand/std::random_device/"
     "time(nullptr)) outside the entropy homes (sim/rng, "
     "sim/random_deployment — the audited entropy_seed() door); seeded "
     "runs must be replayable"},
    {kUnordered,
     "std::unordered_{map,set} in a serialization/checksum path (rim/io/, "
     "rim/obs/, rim/core/snapshot*); iteration order is not deterministic"},
    {kFloatEquality,
     "naked ==/!= against a floating-point literal outside rim/geom/; use a "
     "tolerance helper or suppress with the exactness rationale"},
    {kDetailInclude,
     "#include of another module's detail/ header; detail headers are "
     "module-private"},
    {kBinaryFile, "tracked file looks binary (NUL byte in leading window)"},
    {kWaveScratch,
     "std::vector scratch inside a task lambda handed to submit() in a "
     "batch file; wave tasks must capture arena pointers, not allocate "
     "(see common::Arena and DESIGN.md §10)"},
    {kEvalOptionsInit,
     "designated-initializer construction of core::EvalOptions; use the "
     "chainable with_* builder setters (EvalOptions{}.with_strategy(...)) so "
     "new knobs keep one construction surface"},
    {kAllowFormat,
     "malformed or dangling RIM_LINT_ALLOW suppression; the form is "
     "// RIM_LINT_ALLOW(rule-name): reason"},
};

[[nodiscard]] bool is_known_rule(std::string_view name) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.name == name; });
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t line = 0;
};

struct Suppression {
  std::size_t line = 0;  ///< the comment's line; covers `line` and `line + 1`
  std::string rule;
  bool used = false;
};

/// Everything the scanner extracts from one translation unit.
struct ScanResult {
  std::vector<Token> tokens;
  /// (line, quoted include path) for every `#include "..."` directive.
  std::vector<std::pair<std::size_t, std::string>> quoted_includes;
  std::vector<Suppression> suppressions;
  std::vector<Violation> comment_violations;  ///< malformed RIM_LINT_ALLOW
};

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

void trim(std::string& s) {
  const auto from = s.find_first_not_of(" \t");
  const auto to = s.find_last_not_of(" \t");
  s = from == std::string::npos ? "" : s.substr(from, to - from + 1);
}

/// Parse RIM_LINT_ALLOW markers out of one comment's text.
void scan_comment(std::string_view path, std::string_view comment,
                  std::size_t first_line, ScanResult& out) {
  static constexpr std::string_view kMarker = "RIM_LINT_ALLOW";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    const std::size_t line =
        first_line + static_cast<std::size_t>(std::count(
                         comment.begin(),
                         comment.begin() + static_cast<std::ptrdiff_t>(pos),
                         '\n'));
    const auto bad = [&](const std::string& why) {
      out.comment_violations.push_back(
          {std::string(path), line, std::string(kAllowFormat), why});
    };
    std::size_t i = pos + kMarker.size();
    if (i >= comment.size() || comment[i] != '(') {
      // A prose mention ("see RIM_LINT_ALLOW in DESIGN §8"), not a
      // suppression — only the exact RIM_LINT_ALLOW(rule) form binds.
      pos = i;
      continue;
    }
    const std::size_t close = comment.find(')', i);
    if (close == std::string_view::npos) {
      bad("unterminated rule name in RIM_LINT_ALLOW(...)");
      break;
    }
    std::string rule(comment.substr(i + 1, close - i - 1));
    trim(rule);
    if (!is_known_rule(rule)) {
      bad("unknown rule '" + rule + "' in RIM_LINT_ALLOW");
      pos = close;
      continue;
    }
    if (rule == kAllowFormat) {
      bad("allow-format cannot be suppressed");
      pos = close;
      continue;
    }
    std::size_t r = close + 1;
    if (r >= comment.size() || comment[r] != ':') {
      bad("RIM_LINT_ALLOW(" + rule + ") needs ': reason'");
      pos = close;
      continue;
    }
    std::string reason(comment.substr(r + 1));
    if (const auto eol = reason.find('\n'); eol != std::string::npos) {
      reason.resize(eol);
    }
    trim(reason);
    if (reason.empty()) {
      bad("RIM_LINT_ALLOW(" + rule + ") needs a non-empty reason");
      pos = close;
      continue;
    }
    out.suppressions.push_back({line, std::move(rule), false});
    pos = close;
  }
}

/// Scan \p src: tokens (comments/strings stripped), include directives,
/// suppression markers.
[[nodiscard]] ScanResult scan(std::string_view path, std::string_view src) {
  ScanResult out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  // Include directives first (raw line scan, independent of tokenization).
  {
    std::istringstream stream{std::string(src)};
    std::string raw;
    for (std::size_t ln = 1; std::getline(stream, raw); ++ln) {
      trim(raw);
      if (raw.empty() || raw[0] != '#') continue;
      raw.erase(0, 1);
      trim(raw);
      if (raw.rfind("include", 0) != 0) continue;
      raw.erase(0, 7);
      trim(raw);
      if (raw.size() < 2 || raw[0] != '"') continue;
      const auto close = raw.find('"', 1);
      if (close == std::string::npos) continue;
      out.quoted_includes.emplace_back(ln, raw.substr(1, close - 1));
    }
  }

  const auto newline_count = [&](std::size_t from, std::size_t to) {
    return static_cast<std::size_t>(
        std::count(src.begin() + static_cast<std::ptrdiff_t>(from),
                   src.begin() + static_cast<std::ptrdiff_t>(to), '\n'));
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      scan_comment(path, src.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      scan_comment(path, src.substr(i, end - i), line, out);
      line += newline_count(i, std::min(end + 2, n));
      i = std::min(end + 2, n);
      continue;
    }
    // String literals (never tokenized, so patterns in strings can't fire).
    if (c == '"') {
      // Raw string? The preceding token would have been lexed as an
      // identifier ending in R with no space before the quote.
      bool raw = false;
      if (!out.tokens.empty() && out.tokens.back().line == line) {
        const std::string& prev = out.tokens.back().text;
        if (!prev.empty() && prev.back() == 'R' &&
            (prev == "R" || prev == "u8R" || prev == "uR" || prev == "UR" ||
             prev == "LR")) {
          raw = true;
          out.tokens.pop_back();
        }
      }
      if (raw) {
        const std::size_t open = src.find('(', i);
        std::string delim = open == std::string_view::npos
                                ? std::string()
                                : std::string(src.substr(i + 1, open - i - 1));
        const std::string closer = ")" + delim + "\"";
        std::size_t end = open == std::string_view::npos
                              ? std::string_view::npos
                              : src.find(closer, open);
        if (end == std::string_view::npos) end = n;
        const std::size_t stop = std::min(end + closer.size(), n);
        line += newline_count(i, stop);
        i = stop;
        continue;
      }
      ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') {
        i += (src[i] == '\\' && i + 1 < n) ? 2u : 1u;
      }
      if (i < n && src[i] == '"') ++i;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        i += (src[i] == '\\' && i + 1 < n) ? 2u : 1u;
      }
      if (i < n && src[i] == '\'') ++i;
      continue;
    }
    // pp-number (integers and floats, including 1.0e+5 and 0x1.8p3).
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          const char e = src[i - 1];
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back({std::string(src.substr(start, i - start)), line});
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back({std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Punctuation: two-char operators we care about, else one char.
    static constexpr std::string_view kTwoChar[] = {
        "==", "!=", "<=", ">=", "&&", "||", "::", "->", "<<",
        ">>", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "++",
        "--"};
    std::string tok(1, c);
    if (i + 1 < n) {
      const std::string_view two = src.substr(i, 2);
      for (const std::string_view op : kTwoChar) {
        if (two == op) {
          tok = std::string(op);
          break;
        }
      }
    }
    out.tokens.push_back({tok, line});
    i += tok.size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------------

[[nodiscard]] bool path_contains(std::string_view path, std::string_view part) {
  return path.find(part) != std::string_view::npos;
}

[[nodiscard]] bool is_float_literal(const std::string& tok) {
  if (tok.empty()) return false;
  if (!digit(tok[0]) && tok[0] != '.') return false;
  if (tok.size() > 1 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    return tok.find_first_of("pP") != std::string::npos;
  }
  return tok.find('.') != std::string::npos ||
         tok.find_first_of("eE") != std::string::npos;
}

/// Module of a source path: "src/rim/<module>/..." -> "<module>", "" outside.
[[nodiscard]] std::string module_of(std::string_view path) {
  const auto pos = path.find("rim/");
  if (pos == std::string_view::npos) return "";
  const std::size_t from = pos + 4;
  const auto slash = path.find('/', from);
  if (slash == std::string_view::npos) return "";
  return std::string(path.substr(from, slash - from));
}

void check_tokens(std::string_view path, const ScanResult& scan_result,
                  std::vector<Violation>& out) {
  const std::vector<Token>& toks = scan_result.tokens;
  // The rule-aware sanction for seeded-entropy entry points: sim/rng (the
  // PRNG itself) and sim/random_deployment (whose entropy_seed() is the
  // library's one documented std::random_device door). Extending this list
  // is the supported way to bless a new entry point — ad-hoc RIM_LINT_ALLOW
  // suppressions for raw-random would scatter unaudited entropy sites.
  const bool rng_home = path_contains(path, "sim/rng") ||
                        path_contains(path, "sim/random_deployment");
  const bool serialization_path = path_contains(path, "rim/io/") ||
                                  path_contains(path, "rim/obs/") ||
                                  path_contains(path, "rim/core/snapshot");
  const bool geom_home = path_contains(path, "rim/geom/");

  const auto next_is = [&](std::size_t i, std::string_view text) {
    return i + 1 < toks.size() && toks[i + 1].text == text;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    const std::size_t ln = toks[i].line;

    if (!rng_home) {
      if ((t == "rand" || t == "srand") && next_is(i, "(")) {
        out.push_back({std::string(path), ln, std::string(kRawRandom),
                       t + "() is non-deterministic; draw from sim::Rng"});
      } else if (t == "random_device") {
        out.push_back({std::string(path), ln, std::string(kRawRandom),
                       "std::random_device is non-deterministic; seed "
                       "sim::Rng explicitly"});
      } else if (t == "time" && next_is(i, "(") && i + 2 < toks.size() &&
                 (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL")) {
        out.push_back({std::string(path), ln, std::string(kRawRandom),
                       "time(nullptr) makes runs unreplayable; thread a seed "
                       "or obs::now_ns through the caller"});
      }
    }

    if (serialization_path &&
        (t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset")) {
      out.push_back({std::string(path), ln, std::string(kUnordered),
                     "std::" + t +
                         " in a serialization/checksum path; iteration order "
                         "is non-deterministic — use std::map or a sorted "
                         "vector"});
    }

    // eval-options-designated-init: `EvalOptions` `{` `.` is the shape of a
    // designated initializer (EvalOptions{.strategy = ...}). The sanctioned
    // EvalOptions{}.with_*(...) chain tokenizes as `{` `}` `.`, so it never
    // matches. The definition itself (interference.hpp) declares members,
    // never brace-initializes with designators, so no path carve-out needed.
    if (t == "EvalOptions" && next_is(i, "{") && i + 2 < toks.size() &&
        toks[i + 2].text == ".") {
      out.push_back({std::string(path), ln, std::string(kEvalOptionsInit),
                     "designated-initializer EvalOptions construction; chain "
                     "the with_* builder setters instead "
                     "(EvalOptions{}.with_strategy(...))"});
    }

    if (!geom_home && (t == "==" || t == "!=")) {
      const bool lhs = i > 0 && is_float_literal(toks[i - 1].text);
      const bool rhs = i + 1 < toks.size() && is_float_literal(toks[i + 1].text);
      if (lhs || rhs) {
        out.push_back({std::string(path), ln, std::string(kFloatEquality),
                       "exact floating-point comparison against a literal; "
                       "use a geom tolerance helper or justify exactness"});
      }
    }
  }

  // wave-vector-scratch: in batch files, a task lambda handed straight to
  // ThreadPool::submit runs per wave on the hottest path in the engine;
  // std::vector scratch there is a heap allocation (and a free) per task.
  // Batch scratch belongs in the scenario's arena, captured as raw
  // pointers (scenario_batch.cpp documents the lifetime rules).
  if (path_contains(path, "batch")) {
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "submit" || !next_is(i, "(")) continue;
      std::size_t j = i + 2;
      if (j >= toks.size() || toks[j].text != "[") continue;
      // Capture list, then optional (params) / qualifiers, then the body.
      std::size_t depth = 1;
      for (++j; j < toks.size() && depth > 0; ++j) {
        if (toks[j].text == "[") ++depth;
        if (toks[j].text == "]") --depth;
      }
      if (j < toks.size() && toks[j].text == "(") {
        depth = 1;
        for (++j; j < toks.size() && depth > 0; ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
        }
      }
      while (j < toks.size() && toks[j].text != "{") ++j;
      if (j >= toks.size()) continue;
      depth = 1;
      for (++j; j < toks.size() && depth > 0; ++j) {
        if (toks[j].text == "{") {
          ++depth;
        } else if (toks[j].text == "}") {
          --depth;
        } else if (toks[j].text == "vector") {
          out.push_back(
              {std::string(path), toks[j].line, std::string(kWaveScratch),
               "std::vector scratch inside a submit() task lambda; "
               "bump-allocate from the batch arena and capture the pointer "
               "instead"});
        }
      }
    }
  }

  const std::string own_module = module_of(path);
  for (const auto& [ln, include] : scan_result.quoted_includes) {
    const auto detail = include.find("/detail/");
    if (detail == std::string::npos) continue;
    const std::string target_module = module_of(include);
    if (target_module.empty() || target_module == own_module) continue;
    out.push_back({std::string(path), ln, std::string(kDetailInclude),
                   "#include \"" + include + "\" reaches into rim/" +
                       target_module +
                       "'s private detail/ headers across a module boundary"});
  }
}

void apply_suppressions(const ScanResult& scanned,
                        std::vector<Suppression>& suppressions,
                        std::vector<Violation>& violations,
                        std::string_view path) {
  // A suppression covers its own line and the next line of actual code —
  // the first token-bearing line after the comment — so multi-line
  // rationale comments bind to the statement they precede.
  std::vector<std::size_t> code_lines;
  code_lines.reserve(scanned.tokens.size());
  for (const Token& t : scanned.tokens) code_lines.push_back(t.line);
  for (const auto& [line, include] : scanned.quoted_includes) {
    code_lines.push_back(line);
  }
  std::sort(code_lines.begin(), code_lines.end());
  const auto next_code_line = [&](std::size_t after) -> std::size_t {
    const auto it =
        std::upper_bound(code_lines.begin(), code_lines.end(), after);
    return it == code_lines.end() ? 0 : *it;
  };

  std::vector<Violation> kept;
  kept.reserve(violations.size());
  for (Violation& v : violations) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.rule == v.rule &&
          (s.line == v.line || next_code_line(s.line) == v.line)) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(v));
  }
  violations = std::move(kept);
  for (const Suppression& s : suppressions) {
    if (s.used) continue;
    violations.push_back({std::string(path), s.line, std::string(kAllowFormat),
                          "dangling RIM_LINT_ALLOW(" + s.rule +
                              "): nothing to suppress on this line or the "
                              "next line of code — remove it"});
  }
}

[[nodiscard]] bool is_cpp_source(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx" || ext == ".hxx";
}

[[nodiscard]] std::string normalize(const std::filesystem::path& p) {
  return p.generic_string();
}

void sort_violations(std::vector<Violation>& v) {
  std::sort(v.begin(), v.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

bool looks_binary(std::string_view contents) {
  const std::size_t window = std::min<std::size_t>(contents.size(), 8192);
  return contents.substr(0, window).find('\0') != std::string_view::npos;
}

std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view source) {
  ScanResult scanned = scan(path, source);
  std::vector<Violation> violations;
  check_tokens(path, scanned, violations);
  apply_suppressions(scanned, scanned.suppressions, violations, path);
  violations.insert(violations.end(), scanned.comment_violations.begin(),
                    scanned.comment_violations.end());
  sort_violations(violations);
  return violations;
}

std::vector<Violation> check_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string head(8192, '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<std::size_t>(std::max<std::streamsize>(in.gcount(), 0)));
  std::vector<Violation> out;
  if (looks_binary(head)) {
    out.push_back({path, 1, std::string(kBinaryFile),
                   "file contains NUL bytes; binaries must not be tracked "
                   "(build trees are git-ignored via build*/)"});
  }
  return out;
}

std::vector<Violation> lint_file(const std::string& path) {
  std::vector<Violation> out = check_binary(path);
  if (!out.empty()) return out;  // binary: token rules are meaningless
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();
  const std::vector<Violation> text =
      lint_source(normalize(std::filesystem::path(path)), source);
  out.insert(out.end(), text.begin(), text.end());
  return out;
}

std::vector<Violation> lint_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      files.push_back(normalize(p));
      continue;
    }
    if (!fs::is_directory(p)) continue;
    for (auto it = fs::recursive_directory_iterator(p);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name.rfind("build", 0) == 0 || name == ".git" ||
           name == "testdata")) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && is_cpp_source(it->path())) {
        files.push_back(normalize(it->path()));
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Violation> all;
  for (const std::string& file : files) {
    const std::vector<Violation> v = lint_file(file);
    all.insert(all.end(), v.begin(), v.end());
  }
  sort_violations(all);
  return all;
}

}  // namespace rim::lint
