#include "project.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

// Fixture-backed tests for the three --project passes (DESIGN.md §13).
// Each fixture under testdata/project/<case>/ is a miniature src/rim tree
// handed straight to analyze_project_files; every analysis is exercised
// with both a violation and a sanctioned suppression.

namespace rim::lint {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> fixture_files(const std::string& name) {
  const fs::path root = fs::path(RIM_LINT_TESTDATA) / "project" / name;
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") {
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty()) << "fixture not found: " << name;
  return files;
}

std::vector<Violation> with_rule(const std::vector<Violation>& all,
                                 std::string_view rule) {
  std::vector<Violation> out;
  for (const Violation& v : all) {
    if (v.rule == rule) out.push_back(v);
  }
  return out;
}

TEST(RimLintProject, TaintReachesAcrossTranslationUnits) {
  const LintReport report = analyze_project_files(fixture_files("taint"));
  const auto taint = with_rule(report.active, "project-taint");
  ASSERT_EQ(taint.size(), 2u);
  // Cross-TU: the seed (apply_batch in pinned.cpp) reaches the unordered
  // iteration defined in gridish.cpp, and the message carries the witness
  // chain.
  const auto grid = std::find_if(
      taint.begin(), taint.end(), [](const Violation& v) {
        return v.file == "src/rim/geom/gridish.cpp";
      });
  ASSERT_NE(grid, taint.end());
  EXPECT_NE(grid->message.find("apply_batch -> Gridish::fold"),
            std::string::npos)
      << grid->message;
  EXPECT_NE(grid->message.find("'cells_'"), std::string::npos);
  // Same-chain randomness: the random_device helper in the seed's own TU.
  const auto rng = std::find_if(
      taint.begin(), taint.end(), [](const Violation& v) {
        return v.file == "src/rim/core/pinned.cpp";
      });
  ASSERT_NE(rng, taint.end());
  EXPECT_NE(rng->message.find("random_device"), std::string::npos);
}

TEST(RimLintProject, TaintSuppressionAtDefinitionSiteCoversCrossTu) {
  const LintReport report =
      analyze_project_files(fixture_files("taint_suppressed"));
  EXPECT_TRUE(with_rule(report.active, "project-taint").empty());
  // No dangling allow-format either: the suppression matched.
  EXPECT_TRUE(with_rule(report.active, "allow-format").empty());
  ASSERT_EQ(with_rule(report.suppressed, "project-taint").size(), 1u);
}

TEST(RimLintProject, LockOrderInversionAndPoolLambdaAreFlagged) {
  const LintReport report = analyze_project_files(fixture_files("lock"));
  const auto locks = with_rule(report.active, "project-lock-order");
  ASSERT_EQ(locks.size(), 2u);
  const bool has_inversion = std::any_of(
      locks.begin(), locks.end(), [](const Violation& v) {
        return v.message.find("inverting the declared order") !=
               std::string::npos;
      });
  const bool has_lambda = std::any_of(
      locks.begin(), locks.end(), [](const Violation& v) {
        return v.message.find("task lambda") != std::string::npos;
      });
  EXPECT_TRUE(has_inversion);
  EXPECT_TRUE(has_lambda);
  // The inversion names both mutexes with their owning classes.
  for (const Violation& v : locks) {
    if (v.message.find("inverting") == std::string::npos) continue;
    EXPECT_NE(v.message.find("Managerish::reg_mutex_"), std::string::npos);
    EXPECT_NE(v.message.find("Sessionish::mutex"), std::string::npos);
  }
}

TEST(RimLintProject, LockOrderSuppressionIsHonored) {
  const LintReport report =
      analyze_project_files(fixture_files("lock_suppressed"));
  EXPECT_TRUE(with_rule(report.active, "project-lock-order").empty());
  EXPECT_TRUE(with_rule(report.active, "allow-format").empty());
  ASSERT_EQ(with_rule(report.suppressed, "project-lock-order").size(), 1u);
}

TEST(RimLintProject, CoverageAuditFlagsPlainMemberAndMutableStatic) {
  const LintReport report = analyze_project_files(fixture_files("coverage"));
  const auto cov = with_rule(report.active, "project-annotation-coverage");
  ASSERT_EQ(cov.size(), 2u);
  const bool member = std::any_of(cov.begin(), cov.end(), [](const Violation& v) {
    return v.message.find("'Shared::hits_'") != std::string::npos;
  });
  const bool global = std::any_of(cov.begin(), cov.end(), [](const Violation& v) {
    return v.message.find("'global_hits'") != std::string::npos;
  });
  EXPECT_TRUE(member);
  EXPECT_TRUE(global);
  // The guarded and atomic members stay clean.
  for (const Violation& v : cov) {
    EXPECT_EQ(v.message.find("guarded_hits_"), std::string::npos);
    EXPECT_EQ(v.message.find("fast_hits_"), std::string::npos);
  }
}

TEST(RimLintProject, CoverageSuppressionsAreHonored) {
  const LintReport report =
      analyze_project_files(fixture_files("coverage_suppressed"));
  EXPECT_TRUE(with_rule(report.active, "project-annotation-coverage").empty());
  EXPECT_TRUE(with_rule(report.active, "allow-format").empty());
  EXPECT_EQ(with_rule(report.suppressed, "project-annotation-coverage").size(),
            2u);
}

TEST(RimLintProject, DanglingProjectSuppressionFlaggedOnlyInProjectMode) {
  const std::vector<std::string> files = fixture_files("dangling");
  const LintReport project = analyze_project_files(files);
  const auto dangling = with_rule(project.active, "allow-format");
  ASSERT_EQ(dangling.size(), 1u);
  EXPECT_NE(dangling.front().message.find("project-taint"), std::string::npos);
  // The per-file mode cannot produce project violations, so the same
  // suppression is out of scope there — not dangling.
  for (const std::string& f : files) {
    EXPECT_TRUE(lint_file(f).empty()) << f;
  }
}

TEST(RimLintProject, AnalyzeProjectReadsCompileCommands) {
  // Build a miniature build-dir + source-dir pair on disk and check the
  // compile_commands.json driver end to end (TU filter + header closure).
  const fs::path root =
      fs::temp_directory_path() / "rim_lint_cc_test" / "repo";
  fs::remove_all(root.parent_path());
  fs::create_directories(root / "src/rim/core");
  fs::create_directories(root / "build");
  {
    std::ofstream src(root / "src/rim/core/seeded.cpp");
    src << "#include \"rim/core/helper.hpp\"\n"
           "namespace rim::core {\n"
           "int apply_batch() { return helper(); }\n"
           "}\n";
    std::ofstream hdr(root / "src/rim/core/helper.hpp");
    hdr << "#pragma once\n"
           "#include <random>\n"
           "namespace rim::core {\n"
           "inline int helper() { std::random_device rd; return int(rd()); }\n"
           "}\n";
    std::ofstream cc(root / "build/compile_commands.json");
    cc << "[\n{\n  \"directory\": \"" << (root / "build").generic_string()
       << "\",\n  \"command\": \"c++ -I" << (root / "src").generic_string()
       << " -c " << (root / "src/rim/core/seeded.cpp").generic_string()
       << "\",\n  \"file\": \""
       << (root / "src/rim/core/seeded.cpp").generic_string()
       << "\"\n}\n]\n";
  }
  const LintReport report =
      analyze_project((root / "build").generic_string());
  // The header was pulled in via the quoted-include closure and its
  // random_device flagged through the apply_batch seed.
  const auto taint = with_rule(report.active, "project-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_EQ(taint.front().file, "src/rim/core/helper.hpp");
  fs::remove_all(root.parent_path());
}

TEST(RimLintProject, ReportJsonCarriesSuppressionState) {
  LintReport report;
  report.active.push_back({"a.cpp", 3, "project-taint", "msg \"quoted\""});
  report.suppressed.push_back({"b.hpp", 7, "project-lock-order", "ok"});
  const std::string json = report_json(report, "project");
  EXPECT_NE(json.find("\"mode\": \"project\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": true"), std::string::npos);
  EXPECT_NE(json.find("msg \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\": {\"active\": 1, \"suppressed\": 1}"),
            std::string::npos);
}

TEST(RimLintProject, ProjectRulesAreInCatalog) {
  EXPECT_TRUE(is_known_rule("project-taint"));
  EXPECT_TRUE(is_known_rule("project-lock-order"));
  EXPECT_TRUE(is_known_rule("project-annotation-coverage"));
  EXPECT_TRUE(is_project_rule("project-taint"));
  EXPECT_FALSE(is_project_rule("raw-random"));
}

}  // namespace
}  // namespace rim::lint
