#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file lint.hpp
/// rim_lint: a structural linter for the project's determinism and layering
/// invariants (DESIGN.md §8, §13).
///
/// Deliberately NOT a libclang tool: the rules below are token-shaped, and a
/// dependency-free tokenizer keeps the linter buildable everywhere the
/// library builds (it compiles with the same toolchain, links nothing, and
/// runs as the `lint` CTest target). The tokenizer strips comments, string
/// and char literals (so rule patterns inside strings never fire) and keeps
/// line numbers; each rule is a small matcher over the token stream or the
/// raw include lines.
///
/// Two modes share the rule catalog:
///  - per-file rules (this header): lexical matchers over one TU at a time;
///  - project passes (project.hpp): cross-TU analyses (determinism taint,
///    lock order, annotation coverage) over the compile_commands.json TU
///    set, reported under `project-*` rule names.
///
/// Suppression: a violation on line N is suppressed by
///     // RIM_LINT_ALLOW(rule-name): reason why this is safe
/// on line N or N-1. The reason is mandatory and the rule name must exist —
/// a malformed or dangling suppression is itself a violation
/// (`allow-format`), so suppressions cannot rot silently. Suppressions for
/// `project-*` rules are checked for dangling only by `--project` (the
/// per-file pass cannot see project violations).

namespace rim::lint {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The rule catalog, in reporting order (per-file rules and project rules).
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// True when \p name is in the catalog.
[[nodiscard]] bool is_known_rule(std::string_view name);

/// True for rules produced by the project-wide passes (`project-*`).
[[nodiscard]] bool is_project_rule(std::string_view name);

/// A lint result that keeps the suppression state: `active` violations
/// fail the run; `suppressed` ones were covered by a RIM_LINT_ALLOW and are
/// reported (with their reason'd state) in the JSON output only.
struct LintReport {
  std::vector<Violation> active;
  std::vector<Violation> suppressed;
};

/// Lint one translation unit given as an in-memory string. \p path is the
/// repo-relative path used for path-scoped rules (forward slashes).
[[nodiscard]] std::vector<Violation> lint_source(std::string_view path,
                                                 std::string_view source);

/// Like lint_source, but keeps the suppressed violations for reporting.
[[nodiscard]] LintReport lint_source_report(std::string_view path,
                                            std::string_view source);

/// Lint one file from disk (text rules for C++ sources, plus the
/// binary-file rule for every file).
[[nodiscard]] std::vector<Violation> lint_file(const std::string& path);

/// Apply only the binary-file rule to \p path (CI runs this over every
/// git-tracked file, not just C++ sources).
[[nodiscard]] std::vector<Violation> check_binary(const std::string& path);

/// Recursively lint \p roots (files or directories; directories are walked
/// for .hpp/.cpp/.h/.cc/.cxx/.hxx sources). Violations are sorted by
/// (file, line).
[[nodiscard]] std::vector<Violation> lint_tree(
    const std::vector<std::string>& roots);

/// Like lint_tree, but keeps the suppressed violations for reporting.
[[nodiscard]] LintReport lint_tree_report(const std::vector<std::string>& roots);

/// True when \p contents looks binary (a NUL byte in the leading window).
[[nodiscard]] bool looks_binary(std::string_view contents);

/// Serialize a report as deterministic JSON (sorted violations, escaped
/// strings): {"generator","mode","violations":[{file,line,rule,message,
/// suppressed}],"counts":{active,suppressed}}. \p mode is "files" or
/// "project". The schema is consumed by tools/check_lint.py.
[[nodiscard]] std::string report_json(const LintReport& report,
                                      std::string_view mode);

}  // namespace rim::lint
