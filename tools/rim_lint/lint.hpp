#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file lint.hpp
/// rim_lint: a structural linter for the project's determinism and layering
/// invariants (DESIGN.md §8).
///
/// Deliberately NOT a libclang tool: the rules below are token-shaped, and a
/// dependency-free tokenizer keeps the linter buildable everywhere the
/// library builds (it compiles with the same toolchain, links nothing, and
/// runs as the `lint` CTest target). The tokenizer strips comments, string
/// and char literals (so rule patterns inside strings never fire) and keeps
/// line numbers; each rule is a small matcher over the token stream or the
/// raw include lines.
///
/// Suppression: a violation on line N is suppressed by
///     // RIM_LINT_ALLOW(rule-name): reason why this is safe
/// on line N or N-1. The reason is mandatory and the rule name must exist —
/// a malformed or dangling suppression is itself a violation
/// (`allow-format`), so suppressions cannot rot silently.

namespace rim::lint {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The rule catalog, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Lint one translation unit given as an in-memory string. \p path is the
/// repo-relative path used for path-scoped rules (forward slashes).
[[nodiscard]] std::vector<Violation> lint_source(std::string_view path,
                                                 std::string_view source);

/// Lint one file from disk (text rules for C++ sources, plus the
/// binary-file rule for every file).
[[nodiscard]] std::vector<Violation> lint_file(const std::string& path);

/// Apply only the binary-file rule to \p path (CI runs this over every
/// git-tracked file, not just C++ sources).
[[nodiscard]] std::vector<Violation> check_binary(const std::string& path);

/// Recursively lint \p roots (files or directories; directories are walked
/// for .hpp/.cpp/.h/.cc/.cxx/.hxx sources). Violations are sorted by
/// (file, line).
[[nodiscard]] std::vector<Violation> lint_tree(
    const std::vector<std::string>& roots);

/// True when \p contents looks binary (a NUL byte in the leading window).
[[nodiscard]] bool looks_binary(std::string_view contents);

}  // namespace rim::lint
