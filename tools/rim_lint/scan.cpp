#include "scan.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace rim::lint::detail {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

void trim(std::string& s) {
  const auto from = s.find_first_not_of(" \t");
  const auto to = s.find_last_not_of(" \t");
  s = from == std::string::npos ? "" : s.substr(from, to - from + 1);
}

namespace {

constexpr std::string_view kAllowFormat = "allow-format";

/// Parse RIM_LINT_ALLOW markers out of one comment's text.
void scan_comment(std::string_view path, std::string_view comment,
                  std::size_t first_line, ScanResult& out) {
  static constexpr std::string_view kMarker = "RIM_LINT_ALLOW";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    const std::size_t line =
        first_line + static_cast<std::size_t>(std::count(
                         comment.begin(),
                         comment.begin() + static_cast<std::ptrdiff_t>(pos),
                         '\n'));
    const auto bad = [&](const std::string& why) {
      out.comment_violations.push_back(
          {std::string(path), line, std::string(kAllowFormat), why});
    };
    std::size_t i = pos + kMarker.size();
    if (i >= comment.size() || comment[i] != '(') {
      // A prose mention ("see RIM_LINT_ALLOW in DESIGN §8"), not a
      // suppression — only the exact RIM_LINT_ALLOW(rule) form binds.
      pos = i;
      continue;
    }
    const std::size_t close = comment.find(')', i);
    if (close == std::string_view::npos) {
      bad("unterminated rule name in RIM_LINT_ALLOW(...)");
      break;
    }
    std::string rule(comment.substr(i + 1, close - i - 1));
    trim(rule);
    if (!is_known_rule(rule)) {
      bad("unknown rule '" + rule + "' in RIM_LINT_ALLOW");
      pos = close;
      continue;
    }
    if (rule == kAllowFormat) {
      bad("allow-format cannot be suppressed");
      pos = close;
      continue;
    }
    std::size_t r = close + 1;
    if (r >= comment.size() || comment[r] != ':') {
      bad("RIM_LINT_ALLOW(" + rule + ") needs ': reason'");
      pos = close;
      continue;
    }
    std::string reason(comment.substr(r + 1));
    if (const auto eol = reason.find('\n'); eol != std::string::npos) {
      reason.resize(eol);
    }
    trim(reason);
    if (reason.empty()) {
      bad("RIM_LINT_ALLOW(" + rule + ") needs a non-empty reason");
      pos = close;
      continue;
    }
    out.suppressions.push_back({line, std::move(rule), false});
    pos = close;
  }
}

}  // namespace

ScanResult scan(std::string_view path, std::string_view src) {
  ScanResult out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  // Include directives first (raw line scan, independent of tokenization).
  {
    std::istringstream stream{std::string(src)};
    std::string raw;
    for (std::size_t ln = 1; std::getline(stream, raw); ++ln) {
      trim(raw);
      if (raw.empty() || raw[0] != '#') continue;
      raw.erase(0, 1);
      trim(raw);
      if (raw.rfind("include", 0) != 0) continue;
      raw.erase(0, 7);
      trim(raw);
      if (raw.size() < 2 || raw[0] != '"') continue;
      const auto close = raw.find('"', 1);
      if (close == std::string::npos) continue;
      out.quoted_includes.emplace_back(ln, raw.substr(1, close - 1));
    }
  }

  const auto newline_count = [&](std::size_t from, std::size_t to) {
    return static_cast<std::size_t>(
        std::count(src.begin() + static_cast<std::ptrdiff_t>(from),
                   src.begin() + static_cast<std::ptrdiff_t>(to), '\n'));
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      scan_comment(path, src.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      scan_comment(path, src.substr(i, end - i), line, out);
      line += newline_count(i, std::min(end + 2, n));
      i = std::min(end + 2, n);
      continue;
    }
    // String literals (never tokenized, so patterns in strings can't fire).
    if (c == '"') {
      // Raw string? The preceding token would have been lexed as an
      // identifier ending in R with no space before the quote.
      bool raw = false;
      if (!out.tokens.empty() && out.tokens.back().line == line) {
        const std::string& prev = out.tokens.back().text;
        if (!prev.empty() && prev.back() == 'R' &&
            (prev == "R" || prev == "u8R" || prev == "uR" || prev == "UR" ||
             prev == "LR")) {
          raw = true;
          out.tokens.pop_back();
        }
      }
      if (raw) {
        const std::size_t open = src.find('(', i);
        std::string delim = open == std::string_view::npos
                                ? std::string()
                                : std::string(src.substr(i + 1, open - i - 1));
        const std::string closer = ")" + delim + "\"";
        std::size_t end = open == std::string_view::npos
                              ? std::string_view::npos
                              : src.find(closer, open);
        if (end == std::string_view::npos) end = n;
        const std::size_t stop = std::min(end + closer.size(), n);
        line += newline_count(i, stop);
        i = stop;
        continue;
      }
      ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') {
        i += (src[i] == '\\' && i + 1 < n) ? 2u : 1u;
      }
      if (i < n && src[i] == '"') ++i;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        i += (src[i] == '\\' && i + 1 < n) ? 2u : 1u;
      }
      if (i < n && src[i] == '\'') ++i;
      continue;
    }
    // pp-number (integers and floats, including 1.0e+5 and 0x1.8p3).
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          const char e = src[i - 1];
          if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back({std::string(src.substr(start, i - start)), line});
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back({std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Punctuation: two-char operators we care about, else one char.
    static constexpr std::string_view kTwoChar[] = {
        "==", "!=", "<=", ">=", "&&", "||", "::", "->", "<<",
        ">>", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "++",
        "--"};
    std::string tok(1, c);
    if (i + 1 < n) {
      const std::string_view two = src.substr(i, 2);
      for (const std::string_view op : kTwoChar) {
        if (two == op) {
          tok = std::string(op);
          break;
        }
      }
    }
    out.tokens.push_back({tok, line});
    i += tok.size();
  }
  return out;
}

SuppressionOutcome apply_suppressions(const ScanResult& scanned,
                                      std::vector<Violation> violations,
                                      std::string_view path,
                                      SuppressionMode mode) {
  // A suppression covers its own line and the next line of actual code —
  // the first token-bearing line after the comment — so multi-line
  // rationale comments bind to the statement they precede.
  std::vector<std::size_t> code_lines;
  code_lines.reserve(scanned.tokens.size());
  for (const Token& t : scanned.tokens) code_lines.push_back(t.line);
  for (const auto& [line, include] : scanned.quoted_includes) {
    code_lines.push_back(line);
  }
  std::sort(code_lines.begin(), code_lines.end());
  const auto next_code_line = [&](std::size_t after) -> std::size_t {
    const auto it =
        std::upper_bound(code_lines.begin(), code_lines.end(), after);
    return it == code_lines.end() ? 0 : *it;
  };

  std::vector<Suppression> suppressions = scanned.suppressions;
  SuppressionOutcome out;
  out.active.reserve(violations.size());
  for (Violation& v : violations) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.rule == v.rule &&
          (s.line == v.line || next_code_line(s.line) == v.line)) {
        s.used = true;
        suppressed = true;
      }
    }
    if (suppressed) {
      out.suppressed.push_back(std::move(v));
    } else {
      out.active.push_back(std::move(v));
    }
  }
  for (const Suppression& s : suppressions) {
    if (s.used) continue;
    // Only the mode that can produce this rule's violations may call its
    // suppressions dangling (see SuppressionMode).
    const bool in_scope = (mode == SuppressionMode::kProject) ==
                          is_project_rule(s.rule);
    if (!in_scope) continue;
    out.dangling.push_back({std::string(path), s.line, "allow-format",
                            "dangling RIM_LINT_ALLOW(" + s.rule +
                                "): nothing to suppress on this line or the "
                                "next line of code — remove it"});
  }
  return out;
}

void sort_violations(std::vector<Violation>& v) {
  std::sort(v.begin(), v.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

}  // namespace rim::lint::detail
