#include "project.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "scan.hpp"

namespace rim::lint {
namespace {

namespace fs = std::filesystem;
using detail::ScanResult;
using detail::Token;

constexpr std::string_view kTaint = "project-taint";
constexpr std::string_view kLockOrder = "project-lock-order";
constexpr std::string_view kCoverage = "project-annotation-coverage";

// ---------------------------------------------------------------------------
// compile_commands.json
// ---------------------------------------------------------------------------

/// Decode one JSON string literal starting at src[i] == '"'. Returns the
/// decoded value and leaves \p i one past the closing quote. Paths are
/// ASCII in practice; \uXXXX escapes are passed through verbatim.
std::string json_string_at(std::string_view src, std::size_t& i) {
  std::string out;
  ++i;  // opening quote
  while (i < src.size() && src[i] != '"') {
    if (src[i] == '\\' && i + 1 < src.size()) {
      const char e = src[i + 1];
      switch (e) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        default: out += '\\'; out += e; break;
      }
      i += 2;
    } else {
      out += src[i++];
    }
  }
  if (i < src.size()) ++i;  // closing quote
  return out;
}

/// Pull the "directory" and "file" values out of every object in a
/// compile_commands.json array. Hand-rolled on purpose: the format CMake
/// emits is flat and predictable, and rim_lint links nothing.
std::vector<std::pair<std::string, std::string>> parse_compile_commands(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  int depth = 0;
  std::string directory;
  std::string file;
  std::string pending_key;
  while (i < n) {
    const char c = text[i];
    if (c == '"') {
      std::string value = json_string_at(text, i);
      // Within an object, strings alternate key / value; a key is a string
      // followed (after whitespace) by ':'.
      std::size_t j = i;
      while (j < n && (text[j] == ' ' || text[j] == '\n' || text[j] == '\t' ||
                       text[j] == '\r')) {
        ++j;
      }
      if (j < n && text[j] == ':') {
        pending_key = std::move(value);
      } else {
        if (pending_key == "directory") directory = std::move(value);
        if (pending_key == "file") file = std::move(value);
        pending_key.clear();
      }
      continue;
    }
    if (c == '{') {
      ++depth;
      directory.clear();
      file.clear();
    } else if (c == '}') {
      --depth;
      if (!file.empty()) out.emplace_back(directory, file);
    }
    ++i;
  }
  return out;
}

[[nodiscard]] std::string normalize_path(const fs::path& p) {
  return p.lexically_normal().generic_string();
}

/// Repo-relative display path: everything from the last "src/" path
/// component on, so reports and the committed baseline are stable across
/// checkouts (CI's workspace prefix differs from a local clone's).
[[nodiscard]] std::string display_path(const std::string& p) {
  const auto pos = p.rfind("/src/");
  if (pos != std::string::npos) return p.substr(pos + 1);
  if (p.rfind("src/", 0) == 0) return p;
  return p;
}

[[nodiscard]] bool is_header(const std::string& p) {
  return p.ends_with(".hpp") || p.ends_with(".h") || p.ends_with(".hxx");
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Token-level helpers
// ---------------------------------------------------------------------------

/// Drop tokens on preprocessor directive lines (a '#' opening a line, plus
/// backslash continuations). Without this, `#include <rim/x.hpp>` leaks
/// stray '<'/'>' tokens and multi-line #defines corrupt brace tracking.
std::vector<Token> strip_directives(const std::vector<Token>& in) {
  std::vector<Token> out;
  out.reserve(in.size());
  bool skipping = false;
  bool continues = false;
  std::size_t directive_line = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const Token& t = in[i];
    const bool first_on_line = i == 0 || in[i - 1].line != t.line;
    if (skipping) {
      if (t.line == directive_line) {
        continues = t.text == "\\";
        continue;
      }
      if (continues && t.line == directive_line + 1) {
        directive_line = t.line;
        continues = t.text == "\\";
        continue;
      }
      skipping = false;
    }
    if (t.text == "#" && first_on_line) {
      skipping = true;
      continues = false;
      directive_line = t.line;
      continue;
    }
    out.push_back(t);
  }
  return out;
}

const std::set<std::string>& call_keyword_blocklist() {
  static const std::set<std::string> kSet = {
      "if",       "for",          "while",    "switch",   "return",
      "sizeof",   "alignof",      "decltype", "noexcept", "catch",
      "new",      "delete",       "throw",    "assert",   "static_assert",
      "defined",  "alignas",      "typeid",   "co_await", "co_return",
      "requires", "static_cast",  "const_cast",
      "dynamic_cast", "reinterpret_cast"};
  return kSet;
}

[[nodiscard]] bool is_ident(const std::string& t) {
  return !t.empty() && detail::ident_start(t[0]);
}

/// Advance \p i past a balanced template-argument list; toks[i] must be "<".
/// ">>" closes two levels (the tokenizer lexes it as one token).
void skip_angles(const std::vector<Token>& toks, std::size_t& i) {
  int depth = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "<" || t == "<<") depth += t == "<<" ? 2 : 1;
    if (t == ">" || t == ">>") depth -= t == ">>" ? 2 : 1;
    ++i;
    if (depth <= 0) return;
  }
}

/// Advance \p i past a balanced group; toks[i] must be \p open.
void skip_balanced(const std::vector<Token>& toks, std::size_t& i,
                   std::string_view open, std::string_view close) {
  int depth = 0;
  while (i < toks.size()) {
    if (toks[i].text == open) ++depth;
    if (toks[i].text == close) --depth;
    ++i;
    if (depth == 0) return;
  }
}

// ---------------------------------------------------------------------------
// Project index
// ---------------------------------------------------------------------------

struct SourceHit {
  std::string file;   ///< display path
  std::size_t line = 0;
  std::string what;   ///< human description of the nondeterminism source
};

struct Acquisition {
  std::string mutex_id;  ///< "Class::member"
  std::string file;
  std::size_t line = 0;
  bool in_task_lambda = false;
};

struct FunctionDef {
  std::string name;
  std::string klass;  ///< empty for free functions
  std::string file;   ///< display path of the defining file
  std::size_t line = 0;
  std::size_t body_begin = 0;  ///< token index into the owning file's stream
  std::size_t body_end = 0;
  std::vector<std::string> requires_mutexes;  ///< RIM_REQUIRES args (raw names)
  std::size_t file_index = 0;  ///< which FileScan owns the body span
};

struct MutexMember {
  std::string klass;
  std::string name;
  std::size_t line = 0;
  std::string file;
  /// Raw (possibly "Class::member") references from the annotations.
  std::vector<std::string> after;   ///< RIM_ACQUIRED_AFTER targets
  std::vector<std::string> before;  ///< RIM_ACQUIRED_BEFORE targets
};

struct FileScan {
  std::string real_path;
  std::string display;
  ScanResult scan;           ///< full scan (suppressions, code lines)
  std::vector<Token> toks;   ///< directive-stripped token stream
};

struct Index {
  std::vector<FileScan> files;
  std::vector<FunctionDef> functions;
  std::vector<MutexMember> mutexes;
  /// Member names whose declared type iterates in nondeterministic order
  /// (unordered containers, pointer-keyed map/set).
  std::set<std::string> nondet_members;
  /// Classes holding a Mutex member (coverage audit targets).
  std::set<std::string> mutex_bearing;
  /// Classes with any internal synchronization (mutex OR atomic members):
  /// sanctioned types for mutable statics (the magic-static registry/pool
  /// pattern).
  std::set<std::string> synchronized_classes;
  std::vector<Violation> coverage;  ///< emitted during parsing
};

[[nodiscard]] bool tokens_contain(const std::vector<Token>& d,
                                  std::string_view text) {
  return std::any_of(d.begin(), d.end(),
                     [&](const Token& t) { return t.text == text; });
}

[[nodiscard]] bool is_unordered(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

/// True when decl tokens name a map/set keyed by a pointer: the first
/// template argument contains a '*' (pointer values order by address, which
/// ASLR makes nondeterministic).
[[nodiscard]] bool pointer_keyed(const std::vector<Token>& d) {
  for (std::size_t i = 0; i + 1 < d.size(); ++i) {
    const std::string& t = d[i].text;
    if (t != "map" && t != "set" && t != "multimap" && t != "multiset" &&
        !is_unordered(t)) {
      continue;
    }
    if (d[i + 1].text != "<") continue;
    int depth = 0;
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      const std::string& u = d[j].text;
      if (u == "<") ++depth;
      if (u == ">" || u == ">>") depth -= u == ">>" ? 2 : 1;
      if (depth <= 0) break;
      if (depth == 1 && u == ",") break;  // end of the key argument
      if (u == "*") return true;
    }
  }
  return false;
}

/// Last identifier of a declaration before an initializer/terminator —
/// the declared name for `std::unordered_map<K, V> cells_;` shapes.
[[nodiscard]] std::string declared_name(const std::vector<Token>& d) {
  std::string name;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const std::string& t = d[i].text;
    if (t == "=" || t == "[") break;
    if (t == "<") {
      skip_angles(d, i);
      --i;
      continue;
    }
    if (t == "(") {  // annotation macro arguments; the name came before
      skip_balanced(d, i, "(", ")");
      --i;
      continue;
    }
    if (is_ident(t)) name = t;
  }
  return name;
}

/// Split the arguments of an annotation macro occurrence (`MACRO(a, B::b)`)
/// into raw per-argument strings like "b" / "B::b".
std::vector<std::string> macro_args(const std::vector<Token>& d,
                                    std::string_view macro) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < d.size(); ++i) {
    if (d[i].text != macro || d[i + 1].text != "(") continue;
    int depth = 0;
    std::string current;
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      const std::string& t = d[j].text;
      if (t == "(") {
        ++depth;
        continue;
      }
      if (t == ")") {
        --depth;
        if (depth == 0) break;
        continue;
      }
      if (depth == 1 && t == ",") {
        if (!current.empty()) out.push_back(current);
        current.clear();
        continue;
      }
      current += t;
    }
    if (!current.empty()) out.push_back(current);
  }
  return out;
}

constexpr std::string_view kPlainDataTypes[] = {
    "bool",    "char",     "short",    "int",      "long",    "unsigned",
    "signed",  "float",    "double",   "size_t",   "ssize_t", "ptrdiff_t",
    "int8_t",  "int16_t",  "int32_t",  "int64_t",  "uint8_t", "uint16_t",
    "uint32_t", "uint64_t", "uintptr_t", "intptr_t", "string", "NodeId",
    "EdgeId"};

[[nodiscard]] bool mentions_plain_data_type(const std::vector<Token>& d) {
  for (const Token& t : d) {
    if (t.text == "=") break;  // only the declarator part types the member
    for (const std::string_view p : kPlainDataTypes) {
      if (t.text == p) return true;
    }
    if (t.text == "*") return true;
  }
  return false;
}

/// True when the declaration is function-shaped: an identifier directly
/// followed by '(' before any '='. Filters method declarations out of the
/// member audit and function declarations out of the statics audit.
[[nodiscard]] bool function_shaped(const std::vector<Token>& d) {
  for (std::size_t i = 0; i + 1 < d.size(); ++i) {
    if (d[i].text == "=") return false;
    if (is_ident(d[i].text) && d[i + 1].text == "(" &&
        call_keyword_blocklist().count(d[i].text) == 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Structure parser: scopes, classes, members, function spans
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = kBlock;
  std::string name;
  std::size_t fn = SIZE_MAX;  ///< index into Index::functions for kFunction
};

/// Innermost enclosing class name, if any.
[[nodiscard]] std::string enclosing_class(const std::vector<Scope>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == Scope::kClass) return it->name;
    if (it->kind == Scope::kFunction) break;
  }
  return "";
}

void audit_static(const std::vector<Token>& d, const FileScan& file,
                  Index& index) {
  if (!function_shaped(d) && tokens_contain(d, "static") &&
      !tokens_contain(d, "const") && !tokens_contain(d, "constexpr") &&
      !tokens_contain(d, "atomic") && !tokens_contain(d, "thread_local") &&
      !tokens_contain(d, "using") && !tokens_contain(d, "typedef") &&
      file.display.find("src/rim/") != std::string::npos) {
    // Type = the identifier before the declared name; a static of an
    // internally synchronized class (the magic-static Registry / ThreadPool
    // pattern) is the sanctioned way to share it.
    const std::string name = declared_name(d);
    std::string type;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const std::string& t = d[i].text;
      if (t == "=") break;
      if (t == "<") {
        skip_angles(d, i);
        --i;
        continue;
      }
      if (is_ident(t) && t != name && t != "static" && t != "inline" &&
          t != "std") {
        type = t;
      }
    }
    if (index.synchronized_classes.count(type) != 0) return;
    index.coverage.push_back(
        {file.display, d.empty() ? 0 : d.front().line, std::string(kCoverage),
         "mutable static '" + name + "' (type '" + type +
             "') is shared state with no RIM_GUARDED_BY, std::atomic, or "
             "internally synchronized type"});
  }
}

void record_class_member(const std::vector<Token>& d, const std::string& klass,
                         const FileScan& file, Index& index) {
  if (d.empty() || klass.empty()) return;
  if (tokens_contain(d, "friend") || tokens_contain(d, "using") ||
      tokens_contain(d, "typedef")) {
    return;
  }
  // Mutex members (common::Mutex wrapper; also raw std::mutex so classes
  // predating the wrapper still index).
  const bool has_mutex =
      (tokens_contain(d, "Mutex") && !tokens_contain(d, "MutexLock")) ||
      tokens_contain(d, "mutex") || tokens_contain(d, "shared_mutex");
  if (has_mutex) {
    MutexMember m;
    m.klass = klass;
    m.file = file.display;
    m.line = d.front().line;
    // Name: the identifier right after the mutex type token.
    for (std::size_t i = 0; i + 1 < d.size(); ++i) {
      if ((d[i].text == "Mutex" || d[i].text == "mutex" ||
           d[i].text == "shared_mutex") &&
          is_ident(d[i + 1].text)) {
        m.name = d[i + 1].text;
        break;
      }
    }
    if (m.name.empty()) m.name = declared_name(d);
    m.after = macro_args(d, "RIM_ACQUIRED_AFTER");
    m.before = macro_args(d, "RIM_ACQUIRED_BEFORE");
    index.mutexes.push_back(std::move(m));
    index.mutex_bearing.insert(klass);
    index.synchronized_classes.insert(klass);
    return;
  }
  if (tokens_contain(d, "atomic") || tokens_contain(d, "condition_variable")) {
    index.synchronized_classes.insert(klass);
    return;
  }
  if (is_unordered(declared_name(d)) ? false : false) {}  // keep -Wunused quiet
  if (std::any_of(d.begin(), d.end(),
                  [](const Token& t) { return is_unordered(t.text); }) ||
      pointer_keyed(d)) {
    const std::string name = declared_name(d);
    if (!name.empty()) index.nondet_members.insert(name);
  }
  if (function_shaped(d)) return;
  // Plain-data member audit (deferred to after parsing: mutex_bearing is
  // only complete once the whole class body has been seen, so stash the
  // candidate and filter later).
  if (tokens_contain(d, "const") || tokens_contain(d, "constexpr") ||
      tokens_contain(d, "static") || tokens_contain(d, "RIM_GUARDED_BY") ||
      tokens_contain(d, "&") || tokens_contain(d, "&&")) {
    return;
  }
  if (!mentions_plain_data_type(d)) return;
  if (file.display.find("src/rim/") == std::string::npos) return;
  const std::string name = declared_name(d);
  if (name.empty()) return;
  index.coverage.push_back(
      {file.display, d.front().line, "member-candidate:" + klass,
       "plain-data member '" + klass + "::" + name +
           "' has neither RIM_GUARDED_BY nor std::atomic nor const"});
}

void parse_file(FileScan& file, std::size_t file_index, Index& index) {
  const std::vector<Token>& toks = file.toks;
  std::vector<Scope> stack;
  std::vector<Token> decl;
  bool in_init_list = false;  // between a ctor's ')' ':' and its body '{'

  const auto in_function = [&] {
    return std::any_of(stack.begin(), stack.end(), [](const Scope& s) {
      return s.kind == Scope::kFunction;
    });
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (in_function()) {
      // Inside a function body only brace tracking matters; the body span
      // is analyzed wholesale afterwards.
      if (t.text == "{") {
        stack.push_back({Scope::kBlock, "", SIZE_MAX});
      } else if (t.text == "}") {
        const Scope done = stack.back();
        stack.pop_back();
        if (done.kind == Scope::kFunction && done.fn != SIZE_MAX) {
          index.functions[done.fn].body_end = i;
        }
      }
      continue;
    }

    if (t.text == ";") {
      if (!decl.empty() && !stack.empty() &&
          stack.back().kind == Scope::kClass) {
        record_class_member(decl, stack.back().name, file, index);
      } else if (tokens_contain(decl, "static")) {
        audit_static(decl, file, index);
      }
      decl.clear();
      in_init_list = false;
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      decl.clear();
      in_init_list = false;
      continue;
    }
    if (t.text != "{") {
      decl.push_back(t);
      // Track entry into a ctor-init-list: a top-level ':' after a ')'.
      if (t.text == ":" && !decl.empty() && decl.size() >= 2 &&
          decl[decl.size() - 2].text == ")") {
        in_init_list = true;
      }
      continue;
    }

    // --- '{' : classify the pending declaration ---------------------------
    const std::string prev = decl.empty() ? "" : decl.back().text;
    if (in_init_list && (is_ident(prev) || prev == ">")) {
      // Member brace-init inside a ctor init list (`: a_{1}`): swallow the
      // group and keep collecting the same declaration.
      std::size_t j = i;
      skip_balanced(toks, j, "{", "}");
      i = j - 1;
      continue;
    }
    if (tokens_contain(decl, "namespace")) {
      std::string name;
      for (const Token& d : decl) {
        if (is_ident(d.text) && d.text != "namespace" && d.text != "inline") {
          name = d.text;
        }
      }
      stack.push_back({Scope::kNamespace, name, SIZE_MAX});
      decl.clear();
      continue;
    }
    if (tokens_contain(decl, "enum")) {
      // enum bodies carry nothing the passes care about; skip them whole so
      // `enum class` is not mistaken for a class scope.
      std::size_t j = i;
      skip_balanced(toks, j, "{", "}");
      i = j - 1;
      decl.clear();
      continue;
    }
    const bool classy = tokens_contain(decl, "class") ||
                        tokens_contain(decl, "struct") ||
                        tokens_contain(decl, "union");
    if (classy) {
      // Name: last identifier between the keyword and a base-clause ':',
      // skipping attribute-macro argument lists.
      std::string name;
      bool seen_kw = false;
      for (std::size_t k = 0; k < decl.size(); ++k) {
        const std::string& d = decl[k].text;
        if (d == "class" || d == "struct" || d == "union") {
          seen_kw = true;
          continue;
        }
        if (!seen_kw) continue;
        if (d == ":") break;
        if (d == "(") {
          skip_balanced(decl, k, "(", ")");
          --k;
          continue;
        }
        if (d == "<") {
          skip_angles(decl, k);
          --k;
          continue;
        }
        if (is_ident(d) && d != "final" && d != "alignas") name = d;
      }
      stack.push_back({Scope::kClass, name, SIZE_MAX});
      decl.clear();
      continue;
    }
    // Function definition? First identifier directly followed by '(' that
    // is not a keyword.
    std::size_t name_pos = SIZE_MAX;
    for (std::size_t k = 0; k + 1 < decl.size(); ++k) {
      if (decl[k].text == "<") {  // template args of a return type
        skip_angles(decl, k);
        --k;
        continue;
      }
      if (is_ident(decl[k].text) && decl[k + 1].text == "(" &&
          call_keyword_blocklist().count(decl[k].text) == 0 &&
          decl[k].text != "RIM_GUARDED_BY") {
        name_pos = k;
        break;
      }
    }
    if (name_pos != SIZE_MAX && (prev == ")" || prev == "}" ||
                                 is_ident(prev) || in_init_list)) {
      FunctionDef fn;
      fn.name = decl[name_pos].text;
      if (name_pos >= 2 && decl[name_pos - 1].text == "::") {
        std::size_t q = name_pos - 2;
        if (decl[q].text == ">") {  // Foo<T>::bar
          int depth = 0;
          while (q > 0) {
            if (decl[q].text == ">" || decl[q].text == ">>") {
              depth += decl[q].text == ">>" ? 2 : 1;
            }
            if (decl[q].text == "<") --depth;
            if (depth == 0) break;
            --q;
          }
          if (q > 0) --q;
        }
        if (is_ident(decl[q].text)) fn.klass = decl[q].text;
      } else {
        fn.klass = enclosing_class(stack);
      }
      fn.file = file.display;
      fn.line = decl[name_pos].line;
      fn.body_begin = i + 1;
      fn.body_end = toks.size();
      fn.requires_mutexes = macro_args(decl, "RIM_REQUIRES");
      fn.file_index = file_index;
      stack.push_back({Scope::kFunction, fn.name, index.functions.size()});
      index.functions.push_back(std::move(fn));
      decl.clear();
      in_init_list = false;
      continue;
    }
    if (tokens_contain(decl, "=") || is_ident(prev) || prev == ">") {
      // Variable/member with a brace initializer (`= {...}`, `done{false}`,
      // `atomic<bool> stopping_{false}`): swallow the group and keep the
      // declaration open so the ';' path records/audits it. Function
      // definitions never reach here — the function branch above claimed
      // ident-before-'{' shapes like `) noexcept {` already.
      std::size_t j = i;
      skip_balanced(toks, j, "{", "}");
      i = j - 1;
      continue;
    }
    stack.push_back({Scope::kBlock, "", SIZE_MAX});
    decl.clear();
  }
}

// ---------------------------------------------------------------------------
// Function-body analysis: calls, sources, acquisitions, local statics
// ---------------------------------------------------------------------------

struct BodyFacts {
  std::set<std::string> callees;
  std::vector<SourceHit> sources;
  std::vector<Acquisition> acquisitions;
};

[[nodiscard]] bool entropy_home(const std::string& display) {
  return display.find("sim/rng") != std::string::npos ||
         display.find("sim/random_deployment") != std::string::npos;
}

[[nodiscard]] bool clock_home(const std::string& display) {
  return display.find("rim/obs/") != std::string::npos;
}

/// Resolve a raw mutex reference ("mutex_" or "Class::mutex_") against the
/// index. Empty string when ambiguous or unknown — the pass skips those
/// rather than guessing.
[[nodiscard]] std::string resolve_mutex(const Index& index,
                                        const std::string& raw,
                                        const std::string& enclosing) {
  const auto sep = raw.find("::");
  const std::string klass = sep == std::string::npos ? "" : raw.substr(0, sep);
  const std::string name =
      sep == std::string::npos ? raw : raw.substr(sep + 2);
  std::string found;
  for (const MutexMember& m : index.mutexes) {
    if (m.name != name) continue;
    if (!klass.empty()) {
      if (m.klass == klass) return m.klass + "::" + m.name;
      continue;
    }
    if (m.klass == enclosing) return m.klass + "::" + m.name;
    if (found.empty()) {
      found = m.klass + "::" + m.name;
    } else if (found != m.klass + "::" + m.name) {
      return "";  // ambiguous bare name across classes
    }
  }
  return found;
}

BodyFacts analyze_body(const Index& index, const FunctionDef& fn) {
  BodyFacts facts;
  const FileScan& file = index.files[fn.file_index];
  const std::vector<Token>& toks = file.toks;
  const std::size_t begin = fn.body_begin;
  const std::size_t end = std::min(fn.body_end, toks.size());

  // Locals with nondeterministic iteration order, discovered as we go.
  std::set<std::string> nondet_locals;
  // Spans (token ranges) of lambdas passed to ThreadPool submit().
  std::vector<std::pair<std::size_t, std::size_t>> task_lambdas;

  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    const std::size_t line = toks[i].line;
    const auto next = [&](std::size_t k) -> const std::string& {
      static const std::string kEmpty;
      return i + k < end ? toks[i + k].text : kEmpty;
    };

    // Calls (for the graph) — identifier directly followed by '('.
    if (is_ident(t) && next(1) == "(" &&
        call_keyword_blocklist().count(t) == 0) {
      facts.callees.insert(t);
    }

    // Randomness sources.
    if (!entropy_home(file.display)) {
      if ((t == "rand" || t == "srand") && next(1) == "(") {
        facts.sources.push_back(
            {file.display, line, t + "() (non-deterministic randomness)"});
      } else if (t == "random_device") {
        facts.sources.push_back(
            {file.display, line,
             "std::random_device outside the entropy_seed() door"});
      }
    }
    // Wall-clock reads.
    if (!clock_home(file.display)) {
      if ((t == "steady_clock" || t == "system_clock" ||
           t == "high_resolution_clock") &&
          next(1) == "::" && next(2) == "now") {
        facts.sources.push_back(
            {file.display, line, "std::chrono::" + t + "::now() wall-clock read"});
      } else if (t == "time" && next(1) == "(" &&
                 (next(2) == "nullptr" || next(2) == "NULL")) {
        facts.sources.push_back({file.display, line, "time(nullptr) read"});
      }
    }

    // Local container declarations with nondeterministic iteration order.
    if (is_unordered(t) || (t == "map" || t == "set") ) {
      std::vector<Token> decl_tail;
      for (std::size_t j = i; j < end && toks[j].text != ";" &&
                              toks[j].text != ")" && j < i + 48;
           ++j) {
        decl_tail.push_back(toks[j]);
      }
      if (is_unordered(t) || pointer_keyed(decl_tail)) {
        // The declared local name: identifier after the template args.
        std::size_t j = i + 1;
        if (j < end && toks[j].text == "<") skip_angles(toks, j);
        if (j < end && is_ident(toks[j].text) &&
            call_keyword_blocklist().count(toks[j].text) == 0) {
          nondet_locals.insert(toks[j].text);
        }
      }
    }

    const auto is_nondet_name = [&](const std::string& name) {
      return index.nondet_members.count(name) != 0 ||
             nondet_locals.count(name) != 0;
    };

    // Iteration sources: range-for over a nondeterministic container...
    if (t == "for" && next(1) == "(") {
      int depth = 0;
      std::string last_ident;
      bool after_colon = false;
      for (std::size_t j = i + 1; j < end; ++j) {
        const std::string& u = toks[j].text;
        if (u == "(") ++depth;
        if (u == ")") {
          --depth;
          if (depth == 0) break;
        }
        if (depth == 1 && u == ":") after_colon = true;
        if (after_colon && is_ident(u)) last_ident = u;
      }
      if (after_colon && is_nondet_name(last_ident)) {
        facts.sources.push_back(
            {file.display, line,
             "range-for over unordered/pointer-keyed '" + last_ident + "'"});
      }
    }
    // ... or explicit begin()/cbegin() iteration on one.
    if ((t == "begin" || t == "cbegin") && next(1) == "(" && i >= 2 &&
        toks[i - 1].text == "." && is_ident(toks[i - 2].text) &&
        is_nondet_name(toks[i - 2].text)) {
      facts.sources.push_back(
          {file.display, line,
           "iteration over unordered/pointer-keyed '" + toks[i - 2].text +
               "' via ." + t + "()"});
    }

    // Mutex acquisitions: MutexLock / lock_guard / unique_lock /
    // scoped_lock. The guarded mutex is the last identifier of the first
    // constructor argument.
    if (t == "MutexLock" || t == "lock_guard" || t == "unique_lock" ||
        t == "scoped_lock") {
      std::size_t j = i + 1;
      if (j < end && toks[j].text == "<") skip_angles(toks, j);
      if (j < end && is_ident(toks[j].text)) ++j;  // the lock variable name
      if (j < end && toks[j].text == "(") {
        int depth = 0;
        std::string last_ident;
        for (; j < end; ++j) {
          const std::string& u = toks[j].text;
          if (u == "(") ++depth;
          if (u == ")") {
            --depth;
            if (depth == 0) break;
          }
          if (depth == 1 && u == ",") break;  // first argument only
          if (is_ident(u)) last_ident = u;
        }
        const std::string id = resolve_mutex(index, last_ident, fn.klass);
        if (!id.empty()) {
          facts.acquisitions.push_back({id, file.display, line, false});
        }
      }
    }

    // ThreadPool task lambdas: submit([...](...) { ... }).
    if (t == "submit" && next(1) == "(" && next(2) == "[") {
      std::size_t j = i + 2;
      skip_balanced(toks, j, "[", "]");
      if (j < end && toks[j].text == "(") skip_balanced(toks, j, "(", ")");
      while (j < end && toks[j].text != "{") ++j;
      if (j < end) {
        const std::size_t body_start = j;
        skip_balanced(toks, j, "{", "}");
        task_lambdas.emplace_back(body_start, j);
      }
    }

    // Function-local mutable statics (the statics audit continues inside
    // bodies: a local `static int hits;` is shared state too).
    if (t == "static" && file.display.find("src/rim/") != std::string::npos) {
      std::vector<Token> d;
      for (std::size_t j = i; j < end && toks[j].text != ";" && j < i + 32;
           ++j) {
        if (toks[j].text == "(") break;  // function-shaped or call
        d.push_back(toks[j]);
      }
      if (d.size() >= 3 && (i + d.size() < end) &&
          toks[i + d.size()].text == ";") {
        // Reuse the namespace-scope audit (it re-checks const/atomic/...).
        Index scratch;
        scratch.synchronized_classes = index.synchronized_classes;
        audit_static(d, file, scratch);
        for (Violation& v : scratch.coverage) {
          facts.sources.empty();  // no-op; keep structure obvious
          const_cast<Index&>(index).coverage.push_back(std::move(v));
        }
      }
    }
  }

  // Mark acquisitions that sit lexically inside a submitted task lambda.
  for (Acquisition& a : facts.acquisitions) {
    for (const auto& [from, to] : task_lambdas) {
      const std::size_t from_line = index.files[fn.file_index].toks[from].line;
      const std::size_t to_line =
          to > 0 && to <= index.files[fn.file_index].toks.size()
              ? index.files[fn.file_index].toks[to - 1].line
              : from_line;
      if (a.line >= from_line && a.line <= to_line) a.in_task_lambda = true;
    }
  }
  return facts;
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

[[nodiscard]] std::string fn_key(const FunctionDef& f) {
  return f.klass.empty() ? f.name : f.klass + "::" + f.name;
}

[[nodiscard]] bool is_seed(const FunctionDef& f) {
  if (f.name == "apply_batch") return true;
  if (f.klass == "SpeculativeExecutor" || f.klass == "SinrAssessor") {
    return true;
  }
  if (f.file.find("core/snapshot") != std::string::npos) return true;
  if (f.name.size() > 7 &&
      f.name.compare(f.name.size() - 7, 7, "_scalar") == 0) {
    return true;
  }
  return false;
}

void taint_pass(const Index& index,
                const std::map<std::string, BodyFacts>& facts_by_key,
                std::vector<Violation>& out) {
  // Bare name -> keys (the approximate linking step).
  std::map<std::string, std::vector<std::string>> by_name;
  std::map<std::string, const FunctionDef*> def_by_key;
  for (const FunctionDef& f : index.functions) {
    const std::string key = fn_key(f);
    by_name[f.name].push_back(key);
    if (def_by_key.find(key) == def_by_key.end()) def_by_key[key] = &f;
  }
  for (auto& [name, keys] : by_name) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }

  // Deterministic BFS from the sorted seed set, recording parents for the
  // witness chain in each violation message.
  std::map<std::string, std::string> parent;
  std::vector<std::string> frontier;
  for (const FunctionDef& f : index.functions) {
    if (is_seed(f)) {
      const std::string key = fn_key(f);
      if (parent.find(key) == parent.end()) {
        parent[key] = "";
        frontier.push_back(key);
      }
    }
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  std::size_t head = 0;
  while (head < frontier.size()) {
    const std::string key = frontier[head++];
    const auto facts = facts_by_key.find(key);
    if (facts == facts_by_key.end()) continue;
    for (const std::string& callee : facts->second.callees) {
      const auto targets = by_name.find(callee);
      if (targets == by_name.end()) continue;
      for (const std::string& next_key : targets->second) {
        if (parent.find(next_key) != parent.end()) continue;
        parent[next_key] = key;
        frontier.push_back(next_key);
      }
    }
  }

  for (const std::string& key : frontier) {
    const auto facts = facts_by_key.find(key);
    if (facts == facts_by_key.end()) continue;
    // Witness chain seed -> ... -> key.
    std::vector<std::string> chain;
    for (std::string k = key; !k.empty();) {
      chain.push_back(k);
      const auto p = parent.find(k);
      k = p == parent.end() ? "" : p->second;
    }
    std::reverse(chain.begin(), chain.end());
    std::string path = chain.front();
    for (std::size_t i = 1; i < chain.size(); ++i) path += " -> " + chain[i];
    for (const SourceHit& hit : facts->second.sources) {
      out.push_back({hit.file, hit.line, std::string(kTaint),
                     "'" + key + "' is reachable from checksum-pinned code (" +
                         path + ") and touches " + hit.what});
    }
  }
}

void lock_order_pass(const Index& index,
                     const std::map<std::string, BodyFacts>& facts_by_key,
                     std::vector<Violation>& out) {
  // Declared partial order: edge a -> b means a is acquired before b.
  // RIM_ACQUIRED_AFTER(x) on m declares x -> m; RIM_ACQUIRED_BEFORE(x)
  // declares m -> x.
  std::set<std::pair<std::string, std::string>> edges;
  std::set<std::string> nodes;
  for (const MutexMember& m : index.mutexes) {
    const std::string id = m.klass + "::" + m.name;
    nodes.insert(id);
    for (const std::string& raw : m.after) {
      const std::string other = resolve_mutex(index, raw, m.klass);
      if (!other.empty()) {
        edges.insert({other, id});
        nodes.insert(other);
      }
    }
    for (const std::string& raw : m.before) {
      const std::string other = resolve_mutex(index, raw, m.klass);
      if (!other.empty()) {
        edges.insert({id, other});
        nodes.insert(other);
      }
    }
  }
  // Transitive closure (the order sets are tiny).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : std::set<std::pair<std::string, std::string>>(
             edges)) {
      for (const std::string& c : nodes) {
        if (edges.count({b, c}) != 0 && edges.count({a, c}) == 0) {
          edges.insert({a, c});
          changed = true;
        }
      }
    }
  }
  const auto must_precede = [&](const std::string& a, const std::string& b) {
    return edges.count({a, b}) != 0;
  };

  for (const FunctionDef& f : index.functions) {
    const auto facts = facts_by_key.find(fn_key(f));
    if (facts == facts_by_key.end()) continue;
    // Held at entry (RIM_REQUIRES), then lexical acquisitions in order.
    std::vector<Acquisition> seq;
    for (const std::string& raw : f.requires_mutexes) {
      const std::string id = resolve_mutex(index, raw, f.klass);
      if (!id.empty()) seq.push_back({id, f.file, f.line, false});
    }
    for (const Acquisition& a : facts->second.acquisitions) {
      seq.push_back(a);
      if (a.in_task_lambda) {
        out.push_back(
            {a.file, a.line, std::string(kLockOrder),
             "mutex '" + a.mutex_id +
                 "' acquired inside a ThreadPool submit() task lambda; pool "
                 "tasks must stay lock-free (capture a snapshot or use "
                 "atomics — DESIGN.md §9)"});
      }
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        if (seq[i].mutex_id != seq[j].mutex_id &&
            must_precede(seq[j].mutex_id, seq[i].mutex_id)) {
          out.push_back(
              {seq[j].file, seq[j].line, std::string(kLockOrder),
               "'" + fn_key(f) + "' acquires '" + seq[j].mutex_id +
                   "' while holding '" + seq[i].mutex_id +
                   "', inverting the declared order (" + seq[j].mutex_id +
                   " before " + seq[i].mutex_id + ")"});
        }
      }
    }
  }
}

void coverage_pass(Index& index, std::vector<Violation>& out) {
  for (Violation& v : index.coverage) {
    if (v.rule.rfind("member-candidate:", 0) == 0) {
      // Deferred member candidates: only flag members of classes that do
      // hold a Mutex (the lock discipline applies there; plain structs are
      // out of scope for this pass).
      const std::string klass = v.rule.substr(sizeof("member-candidate:") - 1);
      if (index.mutex_bearing.count(klass) == 0) continue;
      v.rule = std::string(kCoverage);
    }
    out.push_back(std::move(v));
  }
  index.coverage.clear();
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::vector<std::string> project_files(
    const std::string& compile_commands_path) {
  const std::string text = read_file(compile_commands_path);
  if (text.empty()) {
    throw std::runtime_error("cannot read compile_commands at " +
                             compile_commands_path);
  }
  const auto entries = parse_compile_commands(text);
  if (entries.empty()) {
    throw std::runtime_error("no entries parsed from " + compile_commands_path);
  }

  std::set<std::string> files;
  std::set<std::string> roots;  // include roots: every ".../src/" prefix
  for (const auto& [dir, file] : entries) {
    fs::path p(file);
    if (p.is_relative()) p = fs::path(dir) / p;
    const std::string norm = normalize_path(p);
    if (norm.find("/src/") == std::string::npos) continue;  // tests/bench/deps
    if (norm.find("/_deps/") != std::string::npos) continue;
    files.insert(norm);
    roots.insert(norm.substr(0, norm.rfind("/src/") + 5));
  }

  // Transitive closure over quoted includes, resolved against the including
  // file's directory and the src/ roots (the project's -I convention).
  std::vector<std::string> queue(files.begin(), files.end());
  while (!queue.empty()) {
    const std::string current = queue.back();
    queue.pop_back();
    const std::string src = read_file(current);
    if (src.empty()) continue;
    const ScanResult scanned = detail::scan(current, src);
    for (const auto& [line, include] : scanned.quoted_includes) {
      std::vector<std::string> candidates;
      candidates.push_back(
          normalize_path(fs::path(current).parent_path() / include));
      for (const std::string& root : roots) {
        candidates.push_back(normalize_path(fs::path(root) / include));
      }
      for (const std::string& cand : candidates) {
        if (cand.find("/src/") == std::string::npos) continue;
        if (files.count(cand) != 0 || !fs::is_regular_file(cand)) continue;
        files.insert(cand);
        queue.push_back(cand);
        break;
      }
    }
  }
  return {files.begin(), files.end()};
}

LintReport analyze_project_files(const std::vector<std::string>& files) {
  Index index;
  for (const std::string& path : files) {
    FileScan f;
    f.real_path = path;
    f.display = display_path(normalize_path(fs::path(path)));
    const std::string src = read_file(path);
    f.scan = detail::scan(f.display, src);
    f.toks = strip_directives(f.scan.tokens);
    index.files.push_back(std::move(f));
  }
  std::sort(index.files.begin(), index.files.end(),
            [](const FileScan& a, const FileScan& b) {
              return a.display < b.display;
            });

  for (std::size_t i = 0; i < index.files.size(); ++i) {
    parse_file(index.files[i], i, index);
  }

  // Merge body facts per function key (declaration + out-of-line definition
  // and overloads union their callees/sources).
  std::map<std::string, BodyFacts> facts_by_key;
  for (const FunctionDef& f : index.functions) {
    BodyFacts facts = analyze_body(index, f);
    BodyFacts& merged = facts_by_key[fn_key(f)];
    merged.callees.insert(facts.callees.begin(), facts.callees.end());
    merged.sources.insert(merged.sources.end(), facts.sources.begin(),
                          facts.sources.end());
    merged.acquisitions.insert(merged.acquisitions.end(),
                               facts.acquisitions.begin(),
                               facts.acquisitions.end());
  }

  std::vector<Violation> violations;
  taint_pass(index, facts_by_key, violations);
  lock_order_pass(index, facts_by_key, violations);
  coverage_pass(index, violations);

  // Apply suppressions file by file (mode kProject: project suppressions
  // that match nothing are dangling HERE, not in the per-file mode).
  std::map<std::string, std::vector<Violation>> by_file;
  for (Violation& v : violations) by_file[v.file].push_back(std::move(v));

  LintReport report;
  for (const FileScan& f : index.files) {
    auto it = by_file.find(f.display);
    std::vector<Violation> mine =
        it == by_file.end() ? std::vector<Violation>{} : std::move(it->second);
    if (it != by_file.end()) by_file.erase(it);
    detail::SuppressionOutcome outcome = detail::apply_suppressions(
        f.scan, std::move(mine), f.display, detail::SuppressionMode::kProject);
    report.active.insert(report.active.end(), outcome.active.begin(),
                         outcome.active.end());
    report.active.insert(report.active.end(), outcome.dangling.begin(),
                         outcome.dangling.end());
    report.suppressed.insert(report.suppressed.end(),
                             outcome.suppressed.begin(),
                             outcome.suppressed.end());
  }
  // Violations in files we never scanned (shouldn't happen) pass through.
  for (auto& [file, rest] : by_file) {
    report.active.insert(report.active.end(), rest.begin(), rest.end());
  }
  detail::sort_violations(report.active);
  detail::sort_violations(report.suppressed);
  return report;
}

LintReport analyze_project(const std::string& compile_commands_path) {
  std::string path = compile_commands_path;
  if (fs::is_directory(path)) {
    path = normalize_path(fs::path(path) / "compile_commands.json");
  }
  return analyze_project_files(project_files(path));
}

}  // namespace rim::lint
