#pragma once

#include <string>
#include <vector>

#include "lint.hpp"

/// \file project.hpp
/// rim_lint --project: the cross-TU passes (DESIGN.md §13).
///
/// Where lint.cpp judges one translation unit at a time, this analyzer reads
/// the whole TU set out of compile_commands.json, builds a symbol index and
/// an approximate (name-based) call graph, and runs three passes on top:
///
///  - project-taint: reachability from the checksum-pinned entry points
///    (Scenario::apply_batch, SpeculativeExecutor, SinrAssessor, snapshot
///    serialization, the `_scalar` SIMD twins) to any nondeterminism source
///    (unordered/pointer-keyed iteration, raw randomness outside the entropy
///    homes, wall-clock reads outside rim/obs/).
///  - project-lock-order: acquisition sequences checked against the partial
///    order declared by RIM_ACQUIRED_AFTER / RIM_ACQUIRED_BEFORE (plus
///    RIM_REQUIRES as held-at-entry), and lexical MutexLock acquisitions
///    inside a ThreadPool submit() task lambda.
///  - project-annotation-coverage: plain-data members of mutex-bearing
///    classes under src/rim/ carrying neither RIM_GUARDED_BY nor std::atomic
///    nor const, and mutable statics whose type is not an internally
///    synchronized class.
///
/// Soundness: the call graph links by bare function name over the same token
/// stream the per-file rules use — no overload resolution, no virtual
/// dispatch, no function pointers. That makes the taint pass an
/// over-approximation on name collisions and an under-approximation through
/// indirect calls; both caveats are documented in DESIGN.md §13 and are the
/// price of staying dependency-free. Violations carry the witness chain in
/// the message so a human can confirm or suppress at the source line.

namespace rim::lint {

/// The TU list --project analyzes: every "file" entry in
/// \p compile_commands_path (a compile_commands.json file) that lives under
/// a src/ directory, plus the transitive closure of their quoted #includes,
/// deduplicated and sorted. Throws std::runtime_error when the file cannot
/// be read or parsed.
[[nodiscard]] std::vector<std::string> project_files(
    const std::string& compile_commands_path);

/// Run the three project passes over exactly \p files (absolute or
/// cwd-relative paths; tests hand fixture trees straight to this).
/// Suppressions apply per source line with SuppressionMode::kProject, so a
/// RIM_LINT_ALLOW(project-*) at a definition site covers violations reached
/// from any TU, and a project suppression that matches nothing is reported
/// dangling here (not by the per-file mode).
[[nodiscard]] LintReport analyze_project_files(
    const std::vector<std::string>& files);

/// project_files() + analyze_project_files().
[[nodiscard]] LintReport analyze_project(
    const std::string& compile_commands_path);

}  // namespace rim::lint
