#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint.hpp"

/// \file scan.hpp
/// The shared tokenizer behind rim_lint (DESIGN.md §8, §13).
///
/// Both the per-file rules (lint.cpp) and the project-wide passes
/// (project.cpp) consume the same ScanResult: a comment/string-stripped
/// token stream with line numbers, the quoted #include directives, and the
/// RIM_LINT_ALLOW suppression markers. Keeping one scanner is what makes
/// suppression semantics identical across modes — a suppression parsed here
/// covers its own line and the next line of code, whichever pass produced
/// the violation.

namespace rim::lint::detail {

struct Token {
  std::string text;
  std::size_t line = 0;
};

struct Suppression {
  std::size_t line = 0;  ///< the comment's line; covers `line` and `line + 1`
  std::string rule;
  bool used = false;
};

/// Everything the scanner extracts from one translation unit.
struct ScanResult {
  std::vector<Token> tokens;
  /// (line, quoted include path) for every `#include "..."` directive.
  std::vector<std::pair<std::size_t, std::string>> quoted_includes;
  std::vector<Suppression> suppressions;
  std::vector<Violation> comment_violations;  ///< malformed RIM_LINT_ALLOW
};

[[nodiscard]] bool ident_start(char c);
[[nodiscard]] bool ident_char(char c);
[[nodiscard]] bool digit(char c);
void trim(std::string& s);

/// Scan \p src: tokens (comments/strings stripped), include directives,
/// suppression markers.
[[nodiscard]] ScanResult scan(std::string_view path, std::string_view src);

/// Which pass is asking: per-file rules or the project-wide passes. A
/// suppression for a project rule is *applied* in both modes (it sits on
/// the source line either way) but its dangling check runs only in the
/// mode that can produce the violation — per-file mode cannot see a
/// project-taint violation, so a project suppression that matched nothing
/// there is not dangling, merely out of scope.
enum class SuppressionMode { kFile, kProject };

/// What applying the suppressions did to one file's violations.
struct SuppressionOutcome {
  std::vector<Violation> active;      ///< violations that survived
  std::vector<Violation> suppressed;  ///< violations a RIM_LINT_ALLOW covered
  std::vector<Violation> dangling;    ///< allow-format: suppression matched nothing
};

/// Match \p violations (all in file \p path) against the suppressions in
/// \p scanned. A suppression covers its own line and the next line of
/// actual code after it.
[[nodiscard]] SuppressionOutcome apply_suppressions(
    const ScanResult& scanned, std::vector<Violation> violations,
    std::string_view path, SuppressionMode mode);

void sort_violations(std::vector<Violation>& v);

}  // namespace rim::lint::detail
