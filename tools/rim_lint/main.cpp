#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint.hpp"
#include "project.hpp"

/// rim_lint CLI (DESIGN.md §8, §13).
///
///   rim_lint [paths...]            lint C++ sources under paths
///                                  (default: src tests bench examples)
///   rim_lint --project [build]     cross-TU passes (taint, lock order,
///                                  annotation coverage) over the TU set in
///                                  <build>/compile_commands.json
///                                  (default build dir: "build")
///   rim_lint --binary-check f...   only the binary-file rule, any file type
///                                  (CI pipes `git ls-files` through this)
///   rim_lint --json                emit the machine-readable report on
///                                  stdout instead of the text lines
///                                  (consumed by tools/check_lint.py)
///   rim_lint --list-rules          print the rule catalog
///
/// Exit status: 0 clean, 1 active violations found, 2 usage/setup error.
/// The text format is byte-stable ("file:line: [rule] message"): greps and
/// editor integrations parse it, so format changes go through --json.

namespace {

void print(const std::vector<rim::lint::Violation>& violations) {
  for (const rim::lint::Violation& v : violations) {
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool binary_only = false;
  bool list_rules = false;
  bool project = false;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--binary-check") {
      binary_only = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rim_lint [--binary-check | --list-rules | --project] "
          "[--json] [paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rim_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (binary_only && project) {
    std::fprintf(stderr, "rim_lint: --binary-check and --project conflict\n");
    return 2;
  }

  if (list_rules) {
    for (const rim::lint::RuleInfo& rule : rim::lint::rules()) {
      std::printf("%-28s %s\n", std::string(rule.name).c_str(),
                  std::string(rule.summary).c_str());
    }
    return 0;
  }

  rim::lint::LintReport report;
  const char* mode = "files";
  if (binary_only) {
    for (const std::string& path : paths) {
      const std::vector<rim::lint::Violation> v = rim::lint::check_binary(path);
      report.active.insert(report.active.end(), v.begin(), v.end());
    }
  } else if (project) {
    mode = "project";
    const std::string where = paths.empty() ? "build" : paths.front();
    if (paths.size() > 1) {
      std::fprintf(stderr, "rim_lint: --project takes one build dir or "
                           "compile_commands.json path\n");
      return 2;
    }
    try {
      report = rim::lint::analyze_project(where);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rim_lint: %s\n", e.what());
      return 2;
    }
  } else {
    if (paths.empty()) paths = {"src", "tests", "bench", "examples"};
    report = rim::lint::lint_tree_report(paths);
  }

  if (json) {
    std::fputs(rim::lint::report_json(report, mode).c_str(), stdout);
  } else {
    print(report.active);
  }
  if (!report.active.empty()) {
    std::fprintf(stderr, "rim_lint: %zu violation(s)\n", report.active.size());
    return 1;
  }
  return 0;
}
