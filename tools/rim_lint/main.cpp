#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

/// rim_lint CLI (DESIGN.md §8).
///
///   rim_lint [paths...]            lint C++ sources under paths
///                                  (default: src tests bench examples)
///   rim_lint --binary-check f...   only the binary-file rule, any file type
///                                  (CI pipes `git ls-files` through this)
///   rim_lint --list-rules          print the rule catalog
///
/// Exit status: 0 clean, 1 violations found, 2 usage error.

namespace {

void print(const std::vector<rim::lint::Violation>& violations) {
  for (const rim::lint::Violation& v : violations) {
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool binary_only = false;
  bool list_rules = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--binary-check") {
      binary_only = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rim_lint [--binary-check | --list-rules] [paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rim_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const rim::lint::RuleInfo& rule : rim::lint::rules()) {
      std::printf("%-20s %s\n", std::string(rule.name).c_str(),
                  std::string(rule.summary).c_str());
    }
    return 0;
  }

  std::vector<rim::lint::Violation> violations;
  if (binary_only) {
    for (const std::string& path : paths) {
      const std::vector<rim::lint::Violation> v = rim::lint::check_binary(path);
      violations.insert(violations.end(), v.begin(), v.end());
    }
  } else {
    if (paths.empty()) paths = {"src", "tests", "bench", "examples"};
    violations = rim::lint::lint_tree(paths);
  }

  print(violations);
  if (!violations.empty()) {
    std::fprintf(stderr, "rim_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  return 0;
}
