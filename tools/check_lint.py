#!/usr/bin/env python3
"""Ratchet gate over rim_lint's JSON report (DESIGN.md §13).

Compares the active violations in a ``rim_lint --json`` report against the
committed baseline (LINT_BASELINE.json): any violation NOT in the baseline
fails the build; baselined violations that disappeared are reported so the
baseline can be shrunk (the ratchet only ever tightens — the baseline is a
burn-down list, not an allow-list for new debt).

Entries match on (file, rule, message) as a multiset; line numbers are
deliberately excluded so unrelated edits that shift code do not churn the
gate.

Usage:
  rim_lint --project build --json > lint-report.json
  check_lint.py --lint-json lint-report.json \
                --baseline LINT_BASELINE.json \
                [--report lint-diff.md]
  check_lint.py --self-test

Exit status: 0 gate passed, 1 new violations (or self-test failure),
2 usage/IO error.
"""

from __future__ import annotations

import argparse
import collections
import json
import sys


def load_entries(violations):
    """Multiset of (file, rule, message) over active violations."""
    counts = collections.Counter()
    for v in violations:
        if v.get("suppressed"):
            continue
        counts[(v["file"], v["rule"], v["message"])] += 1
    return counts


def diff(report_counts, baseline_counts):
    new = report_counts - baseline_counts
    fixed = baseline_counts - report_counts
    return new, fixed


def format_entry(entry, count):
    file, rule, message = entry
    suffix = f" (x{count})" if count > 1 else ""
    return f"- `{file}` **[{rule}]** {message}{suffix}"


def markdown_report(new, fixed):
    lines = ["# rim_lint ratchet", ""]
    if not new and not fixed:
        lines.append("Gate clean: report matches the baseline exactly.")
    if new:
        lines += [f"## New violations ({sum(new.values())}) — gate FAILED", ""]
        lines += [format_entry(e, c) for e, c in sorted(new.items())]
        lines += ["",
                  "Fix the violation, or suppress it at the source line with "
                  "`// RIM_LINT_ALLOW(rule): reason` if it is sanctioned. "
                  "Do not add entries to LINT_BASELINE.json for new code."]
    if fixed:
        lines += ["", f"## Fixed baselined violations ({sum(fixed.values())})",
                  ""]
        lines += [format_entry(e, c) for e, c in sorted(fixed.items())]
        lines += ["", "Shrink LINT_BASELINE.json so these cannot regress."]
    return "\n".join(lines) + "\n"


def run_gate(report_json, baseline_json, report_path=None, out=sys.stdout):
    report_counts = load_entries(report_json.get("violations", []))
    baseline_counts = collections.Counter()
    for e in baseline_json.get("entries", []):
        baseline_counts[(e["file"], e["rule"], e["message"])] += 1
    new, fixed = diff(report_counts, baseline_counts)
    md = markdown_report(new, fixed)
    if report_path:
        with open(report_path, "w", encoding="utf-8") as f:
            f.write(md)
    out.write(md)
    return 1 if new else 0


def self_test():
    """The gate must fail on a synthetic violation and pass when clean."""
    synthetic = {
        "generator": "rim_lint",
        "mode": "project",
        "violations": [
            {"file": "src/rim/x.cpp", "line": 3, "rule": "project-taint",
             "message": "synthetic", "suppressed": False},
        ],
        "counts": {"active": 1, "suppressed": 0},
    }
    empty_baseline = {"entries": []}

    class Sink:
        def write(self, _):
            pass

    failures = []
    if run_gate(synthetic, empty_baseline, out=Sink()) != 1:
        failures.append("synthetic violation did not fail the gate")
    if run_gate({"violations": []}, empty_baseline, out=Sink()) != 0:
        failures.append("clean report did not pass the gate")
    # A baselined violation passes (burn-down), a second instance fails.
    baseline = {"entries": [{"file": "src/rim/x.cpp", "rule": "project-taint",
                             "message": "synthetic"}]}
    if run_gate(synthetic, baseline, out=Sink()) != 0:
        failures.append("baselined violation failed the gate")
    doubled = dict(synthetic)
    doubled["violations"] = synthetic["violations"] * 2
    if run_gate(doubled, baseline, out=Sink()) != 1:
        failures.append("duplicate beyond baseline count did not fail")
    # Suppressed violations never count against the gate.
    suppressed = {"violations": [dict(synthetic["violations"][0],
                                      suppressed=True)]}
    if run_gate(suppressed, empty_baseline, out=Sink()) != 0:
        failures.append("suppressed violation failed the gate")
    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    print("self-test:", "FAILED" if failures else "ok")
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lint-json", help="rim_lint --json output file")
    parser.add_argument("--baseline", help="LINT_BASELINE.json path")
    parser.add_argument("--report", help="write a markdown diff here")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the gate on synthetic reports")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.lint_json or not args.baseline:
        parser.error("--lint-json and --baseline are required")
    try:
        with open(args.lint_json, encoding="utf-8") as f:
            report = json.load(f)
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_lint: {e}", file=sys.stderr)
        return 2
    return run_gate(report, baseline, args.report)


if __name__ == "__main__":
    sys.exit(main())
