/// Experiment E21 — the redesigned hot path under serving load, plus fair
/// admission. Phase 1 drives the query-dominated assessment path (the
/// SoA + SIMD receiver recount behind query_interference_of) from
/// concurrent tenants and compares requests/second against the E20
/// baseline recorded in BENCH_5.json (run bench_service first). Phase 2
/// mixes one hog against seven well-behaved tenants with per-tenant token
/// buckets enabled and checks that every tenant's completion count stays
/// within 2x of the median — the hog is shed, not served first. The
/// registry snapshot is written to BENCH_6.json.
///
/// The throughput acceptance also gates on a multi-core host: the batch
/// wave executor and the concurrent tenants need real parallelism, so on
/// a single-hardware-thread machine the leg reports FAIL by design.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rim/analysis/experiment.hpp"
#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/rng.hpp"
#include "rim/svc/client.hpp"
#include "rim/svc/errors.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSessions = 8;       ///< matches the E20 baseline
constexpr std::size_t kSessionNodes = 256;  ///< matches the E20 seed size
constexpr std::size_t kQueriesPerTenant = 4000;

// Fairness mix: one hog offering 10x the well-behaved load, against
// buckets sized so a polite tenant is never shed (burst covers its whole
// offer) while the hog runs out of burst and is rate-limited.
constexpr std::size_t kFairTenants = 7;
constexpr std::uint64_t kFairAttempts = 600;
constexpr std::uint64_t kHogAttempts = 6000;
constexpr double kBucketRate = 100.0;  ///< tokens/s after the burst is gone
constexpr double kBucketBurst = 600.0;

double ms_since(Clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - start)
                                 .count()) /
         1000.0;
}

/// Seed one session with the E20-shaped network: a chained point cloud.
std::vector<core::Mutation> seed_mutations(std::uint64_t seed) {
  std::vector<core::Mutation> batch;
  batch.reserve(kSessionNodes * 2);
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < kSessionNodes; ++i) {
    batch.push_back(core::Mutation::add_node(
        {rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)}));
  }
  for (std::size_t i = 1; i < kSessionNodes; ++i) {
    batch.push_back(core::Mutation::add_edge(
        static_cast<NodeId>(i - 1), static_cast<NodeId>(i)));
  }
  return batch;
}

/// Open and seed a session; empty error string on success.
std::string open_seeded_session(svc::Client& client, std::uint64_t seed,
                                std::uint64_t& session) {
  const svc::SvcResult<std::uint64_t> opened = client.try_create_session();
  if (!opened) return "create_session: " + opened.error().message;
  session = *opened;
  const svc::SvcResult<core::BatchResult> applied =
      client.try_apply_batch(session, seed_mutations(seed));
  if (!applied) return "seed apply_batch: " + applied.error().message;
  return {};
}

struct QueryWorker {
  std::string error;          ///< first hard failure, empty when clean
  std::uint64_t ok = 0;       ///< successful responses
  std::uint64_t shed = 0;     ///< explicit "overloaded" responses
};

/// The timed hot loop: point interference queries against a live session.
void run_queries(svc::Service& service, std::uint64_t seed,
                 std::uint64_t queries, QueryWorker& result) {
  svc::LoopbackTransport transport(service);
  svc::Client client(transport);
  std::uint64_t session = 0;
  result.error = open_seeded_session(client, seed, session);
  if (!result.error.empty()) return;
  sim::Rng rng(seed * 31 + 3);
  for (std::uint64_t q = 0; q < queries; ++q) {
    const auto v = static_cast<NodeId>(rng.next_below(kSessionNodes));
    const svc::SvcResult<std::uint32_t> answer =
        client.try_query_interference_of(session, v);
    if (answer) {
      ++result.ok;
    } else if (answer.error().code == svc::SvcErrorCode::kOverloaded) {
      ++result.shed;
    } else {
      result.error = "query_interference_of: " + answer.error().message;
      return;
    }
  }
}

}  // namespace

int main() {
  bool ok = true;
  analysis::run_experiment(
      {"E21", "Hot-path serving throughput and fair admission",
       "Section 1 (serving many deployments without starving any)",
       "query-dominated serving runs >= 10x the E20 request rate with "
       "< 5% sheds; token buckets keep every tenant within 2x of the "
       "median completions under a 1-hog/7-fair mix"},
      std::cout, [&ok](std::ostream& out) {
        const unsigned hardware_threads = std::thread::hardware_concurrency();
        out << "hardware threads: " << hardware_threads << "\n";

        // --- Phase 1: query-path throughput across concurrent tenants. ---
        svc::ServiceConfig config;
        config.limits.max_sessions = kSessions * 2;
        config.limits.max_live_sessions = kSessions * 2;
        config.limits.max_in_flight = kSessions * 2;
        svc::Service service(config);

        std::vector<QueryWorker> workers(kSessions);
        {
          std::vector<std::thread> tenants;
          tenants.reserve(kSessions);
          for (std::size_t s = 0; s < kSessions; ++s) {
            tenants.emplace_back([&service, s, &workers] {
              run_queries(service, 2000 + s, kQueriesPerTenant, workers[s]);
            });
          }
          for (std::thread& tenant : tenants) tenant.join();
        }
        // The timed window intentionally includes session seeding, like
        // E20's window includes its seed batches: same offered-load shape,
        // different request mix.
        const auto t_load = Clock::now();
        std::vector<QueryWorker> timed(kSessions);
        {
          std::vector<std::thread> tenants;
          tenants.reserve(kSessions);
          for (std::size_t s = 0; s < kSessions; ++s) {
            tenants.emplace_back([&service, s, &timed] {
              run_queries(service, 3000 + s, kQueriesPerTenant, timed[s]);
            });
          }
          for (std::thread& tenant : tenants) tenant.join();
        }
        const double load_ms = ms_since(t_load);

        std::uint64_t requests = 0;
        std::uint64_t sheds = 0;
        std::size_t clean = 0;
        for (std::size_t s = 0; s < kSessions; ++s) {
          if (timed[s].error.empty()) {
            ++clean;
          } else {
            out << "tenant " << s << " FAILED: " << timed[s].error << '\n';
            ok = false;
          }
          requests += timed[s].ok;
          sheds += timed[s].shed;
        }
        const io::Json svc_stats = service.counters().to_json();
        const io::Json* latency = svc_stats.find("latency_ns");
        const double p50 = latency ? latency->find("p50")->as_number(0.0) : 0.0;
        const double p99 = latency ? latency->find("p99")->as_number(0.0) : 0.0;
        const double req_per_s =
            load_ms > 0.0 ? double(requests) * 1000.0 / load_ms : 0.0;

        io::Table table({"sessions", "requests", "shed", "wall ms", "req/s",
                         "p50 us", "p99 us"});
        table.row()
            .cell(static_cast<std::uint64_t>(kSessions))
            .cell(requests)
            .cell(sheds)
            .cell(load_ms, 1)
            .cell(req_per_s, 0)
            .cell(p50 / 1000.0, 1)
            .cell(p99 / 1000.0, 1);
        table.print(out);

        // --- Baseline comparison against BENCH_5.json (E20). ---
        double baseline_req_per_s = 0.0;
        {
          std::ifstream file("BENCH_5.json");
          std::stringstream text;
          text << file.rdbuf();
          io::Json baseline;
          std::string parse_error;
          if (file && io::Json::parse(text.str(), baseline, parse_error)) {
            if (const io::Json* bench = baseline.find("bench")) {
              if (const io::Json* rate = bench->find("requests_per_second")) {
                baseline_req_per_s = rate->as_number(0.0);
              }
            }
          }
          if (baseline_req_per_s <= 0.0) {
            out << "no usable BENCH_5.json baseline in the working "
                   "directory (run bench_service first)\n";
          }
        }
        const double speedup =
            baseline_req_per_s > 0.0 ? req_per_s / baseline_req_per_s : 0.0;
        out << "baseline (E20): " << baseline_req_per_s
            << " req/s; this leg: " << req_per_s << " req/s; speedup "
            << speedup << "x\n";
        const double total_offered = double(requests + sheds);
        const double shed_fraction =
            total_offered > 0.0 ? double(sheds) / total_offered : 1.0;
        if (clean == kSessions && speedup >= 10.0) {
          out << "ACCEPTANCE: hot-path req/s >= 10x E20 baseline PASS\n";
        } else {
          out << "ACCEPTANCE: hot-path req/s >= 10x E20 baseline FAIL\n";
          ok = false;
        }
        if (shed_fraction < 0.05) {
          out << "ACCEPTANCE: sheds < 5% of offered load PASS\n";
        } else {
          out << "ACCEPTANCE: sheds < 5% of offered load FAIL\n";
          ok = false;
        }
        if (hardware_threads >= 2) {
          out << "ACCEPTANCE: multi-core host (hardware_threads >= 2) PASS\n";
        } else {
          out << "ACCEPTANCE: multi-core host (hardware_threads >= 2) FAIL\n";
          ok = false;
        }

        // --- Phase 2: 1 hog + 7 fair tenants, buckets on. ---
        // Every session gets the same bucket; the fair tenants' whole
        // offer fits inside the burst so they are never shed, while the
        // hog's 10x offer runs the bucket dry and is rate-limited. The
        // fairness claim is about *completions*: the hog cannot convert
        // its extra offered load into extra service.
        svc::ServiceConfig fair_config;
        fair_config.limits.max_sessions = kSessions * 2;
        fair_config.limits.max_live_sessions = kSessions * 2;
        fair_config.limits.max_in_flight = kSessions * 2;
        fair_config.limits.tenant_rate_per_s = kBucketRate;
        fair_config.limits.tenant_burst = kBucketBurst;
        svc::Service fair_service(fair_config);

        std::vector<QueryWorker> mix(kFairTenants + 1);
        {
          std::vector<std::thread> tenants;
          tenants.reserve(mix.size());
          tenants.emplace_back([&fair_service, &mix] {
            run_queries(fair_service, 4000, kHogAttempts, mix[0]);
          });
          for (std::size_t s = 0; s < kFairTenants; ++s) {
            tenants.emplace_back([&fair_service, s, &mix] {
              run_queries(fair_service, 4100 + s, kFairAttempts, mix[s + 1]);
            });
          }
          for (std::thread& tenant : tenants) tenant.join();
        }
        std::vector<std::uint64_t> completions;
        completions.reserve(mix.size());
        for (std::size_t s = 0; s < mix.size(); ++s) {
          if (!mix[s].error.empty()) {
            out << (s == 0 ? "hog" : "fair tenant") << " FAILED: "
                << mix[s].error << '\n';
            ok = false;
          }
          completions.push_back(mix[s].ok);
        }
        std::vector<std::uint64_t> sorted = completions;
        std::sort(sorted.begin(), sorted.end());
        const std::uint64_t median = sorted[sorted.size() / 2];
        const std::uint64_t lowest = sorted.front();
        const std::uint64_t highest = sorted.back();
        out << "fairness mix: hog completed " << mix[0].ok << " (shed "
            << mix[0].shed << "), fair tenants completed";
        for (std::size_t s = 1; s < mix.size(); ++s) out << ' ' << mix[s].ok;
        out << "; median " << median << "\n";
        out << "tenant sheds counted by service: "
            << fair_service.counters().rejected_tenant.value() << "\n";
        const bool fair_ok = median > 0 && highest <= 2 * median &&
                             2 * lowest >= median && mix[0].shed > 0;
        if (fair_ok) {
          out << "ACCEPTANCE: tenant completions within 2x of median PASS\n";
        } else {
          out << "ACCEPTANCE: tenant completions within 2x of median FAIL\n";
          ok = false;
        }

        // --- Registry snapshot => BENCH_6.json artifact. ---
        io::JsonObject bench;
        bench["experiment"] = io::Json(std::string("E21"));
        bench["sessions"] = io::Json(kSessions);
        bench["requests"] = io::Json(requests);
        bench["requests_per_second"] = io::Json(req_per_s);
        bench["latency_p50_ns"] = io::Json(p50);
        bench["latency_p99_ns"] = io::Json(p99);
        bench["shed"] = io::Json(sheds);
        bench["hardware_threads"] = io::Json(std::uint64_t{hardware_threads});
        bench["baseline_requests_per_second"] = io::Json(baseline_req_per_s);
        bench["speedup_vs_baseline"] = io::Json(speedup);
        io::JsonObject fairness;
        fairness["hog_completed"] = io::Json(mix[0].ok);
        fairness["hog_shed"] = io::Json(mix[0].shed);
        fairness["median_completed"] = io::Json(median);
        fairness["max_completed"] = io::Json(highest);
        fairness["min_completed"] = io::Json(lowest);
        bench["fairness"] = io::Json(std::move(fairness));
        analysis::stamp_bench(bench);
        service.registry().add_source(
            "bench", [b = io::Json(std::move(bench))] { return b; });
        std::ofstream file("BENCH_6.json");
        file << service.registry().snapshot().dump() << "\n";
        out << "metrics snapshot written to BENCH_6.json\n";
      });
  return ok ? 0 : 1;
}
