/// Experiment E7 — Figure 9, Theorem 5.4: A_gen yields O(sqrt Δ)
/// interference on arbitrary highway instances.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/fit.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E7", "A_gen on random highway instances",
       "Figure 9; Theorem 5.4",
       "I(A_gen) = O(sqrt Δ) regardless of the node distribution"},
      std::cout, [](std::ostream& out) {
        // Figure 9 illustration: one dense segment, hub skeleton printed.
        const auto demo = sim::uniform_highway(30, 1.0, 5);
        const highway::AGenResult fig = highway::a_gen(demo, 1.0);
        out << "demo segment (n=30, Δ=" << fig.delta
            << ", spacing=" << fig.hub_spacing << "): hubs at";
        for (NodeId h : fig.hubs) out << ' ' << h;
        out << "\n\n";

        // Density sweep: interference vs Δ, averaged over seeds.
        io::Table table({"n", "length", "mean Δ", "mean I(A_gen)", "sqrt(Δ)",
                         "I/sqrt(Δ)", "mean I(linear)"});
        std::vector<double> deltas;
        std::vector<double> interferences;
        for (const auto& [n, length] :
             std::vector<std::pair<std::size_t, double>>{{200, 40.0},
                                                         {200, 20.0},
                                                         {400, 20.0},
                                                         {800, 20.0},
                                                         {1600, 20.0},
                                                         {3200, 20.0}}) {
          std::vector<double> delta_samples;
          std::vector<double> i_samples;
          std::vector<double> lin_samples;
          for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const auto inst = sim::uniform_highway(n, length, seed);
            const highway::AGenResult result = highway::a_gen(inst, 1.0);
            delta_samples.push_back(static_cast<double>(result.delta));
            i_samples.push_back(static_cast<double>(
                highway::graph_interference_1d(inst, result.topology)));
            lin_samples.push_back(static_cast<double>(
                highway::graph_interference_1d(inst,
                                               highway::linear_chain(inst, 1.0))));
          }
          const double mean_delta = analysis::summarize(delta_samples).mean;
          const double mean_i = analysis::summarize(i_samples).mean;
          table.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(length, 0)
              .cell(mean_delta, 1)
              .cell(mean_i, 1)
              .cell(std::sqrt(mean_delta), 1)
              .cell(mean_i / std::sqrt(mean_delta), 2)
              .cell(analysis::summarize(lin_samples).mean, 1);
          deltas.push_back(mean_delta);
          interferences.push_back(mean_i);
        }
        table.print(out);
        const analysis::LinearFit fit =
            analysis::fit_power_law(deltas, interferences);
        out << "\nlog-log fit: I(A_gen) ~ Δ^" << fit.slope
            << " (R^2 = " << fit.r_squared
            << "); Theorem 5.4 predicts exponent 0.5.\n"
            << "Note the linear chain's column: on these uniform instances it\n"
               "is much better than A_gen — the observation motivating A_apx.\n";
      });
  return 0;
}
