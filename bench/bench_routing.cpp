/// Experiment E14 — the forwarding-plane cost of interference reduction:
/// geographic routing (greedy + GPSR-style recovery) over the topology zoo.
/// Low-interference topologies pay in path stretch; planar ones guarantee
/// delivery. Quantifies the trade-off the paper's related-work section
/// describes qualitatively.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/core/interference.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/rng.hpp"
#include "rim/io/table.hpp"
#include "rim/routing/geographic.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/registry.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E14", "Geographic routing over controlled topologies",
       "Related work (geo-routing citations [1], [7], [8]); Section 2",
       "sparser/low-interference topologies raise path stretch; greedy alone "
       "fails in voids, GFG recovers on planar graphs"},
      std::cout, [](std::ostream& out) {
        const auto points = sim::uniform_square(250, 3.5, 4);
        const graph::Graph udg = graph::build_udg(points, 1.0);

        io::Table table({"topology", "I recv", "greedy ok", "gfg ok",
                         "hop stretch", "euclid stretch"});
        for (const char* name :
             {"mst", "gabriel", "rng", "udel", "xtc", "lmst", "hub2d"}) {
          const auto* algorithm = topology::find_algorithm(name);
          const graph::Graph topo = algorithm->build(points, udg);

          // Greedy-only success over sampled pairs.
          sim::Rng rng(9);
          std::size_t greedy_ok = 0;
          std::size_t attempted = 0;
          const auto labels = graph::component_labels(topo);
          while (attempted < 150) {
            const NodeId s = static_cast<NodeId>(rng.next_below(points.size()));
            const NodeId t = static_cast<NodeId>(rng.next_below(points.size()));
            if (s == t || labels[s] != labels[t]) continue;
            ++attempted;
            greedy_ok +=
                routing::greedy_route(points, topo, s, t).delivered ? 1u : 0u;
          }
          const routing::RoutingReport report =
              routing::evaluate_routing(points, topo, 300, 9);
          table.row()
              .cell(name)
              .cell(core::graph_interference(topo, points))
              .cell(static_cast<double>(greedy_ok) /
                        static_cast<double>(attempted),
                    3)
              .cell(report.success_rate, 3)
              .cell(report.mean_hop_stretch, 2)
              .cell(report.mean_euclid_stretch, 2);
        }
        table.print(out);
        out << "\nNote: GFG's recovery guarantee needs planarity (gabriel,\n"
               "rng, udel rows); on non-planar topologies the perimeter walk\n"
               "can fail, visible in the 'gfg ok' column.\n";
      });
  return 0;
}
