/// Experiment E8 — Theorem 5.6: A_apx approximates the optimal
/// connectivity-preserving topology within O(Δ^{1/4}) by switching between
/// the linear chain (γ <= sqrt Δ) and A_gen (γ > sqrt Δ).

#include <cmath>
#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/exact_optimum.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/highway/local_search.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

namespace {

struct Case {
  const char* name;
  rim::highway::HighwayInstance instance;
};

}  // namespace

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E8", "A_apx: hybrid approximation on heterogeneous instances",
       "Theorem 5.6; Section 5.3",
       "measured / opt-bound <= O(Δ^{1/4}); branch picked per instance class"},
      std::cout, [](std::ostream& out) {
        std::vector<Case> cases;
        cases.push_back({"uniform dense", sim::uniform_highway(600, 6.0, 3)});
        cases.push_back({"uniform sparse", sim::uniform_highway(200, 60.0, 3)});
        cases.push_back({"exp chain", highway::exponential_chain(256)});
        cases.push_back(
            {"perturbed exp", sim::perturbed_exponential_chain(256, 0.25, 4)});
        cases.push_back({"blocked", sim::blocked_highway(12, 50, 0.5, 1.0, 5)});

        io::Table table({"instance", "n", "Δ", "γ", "branch", "I(A_apx)",
                         "I(linear)", "I(A_gen)", "LB(√(γ/2))", "apx/LB",
                         "Δ^0.25"});
        for (const Case& c : cases) {
          const auto& inst = c.instance;
          const highway::AApxResult apx = highway::a_apx(inst, 1.0);
          const std::uint32_t apx_i =
              highway::graph_interference_1d(inst, apx.topology);
          const std::uint32_t lin_i = highway::graph_interference_1d(
              inst, highway::linear_chain(inst, 1.0));
          const std::uint32_t gen_i = highway::graph_interference_1d(
              inst, highway::a_gen(inst, 1.0).topology);
          const double lb =
              std::max(1.0, highway::lemma55_lower_bound(apx.gamma));
          table.row()
              .cell(c.name)
              .cell(static_cast<std::uint64_t>(inst.size()))
              .cell(static_cast<std::uint64_t>(apx.delta))
              .cell(apx.gamma)
              .cell(apx.used_agen ? "A_gen" : "linear")
              .cell(apx_i)
              .cell(lin_i)
              .cell(gen_i)
              .cell(lb, 1)
              .cell(static_cast<double>(apx_i) / lb, 2)
              .cell(std::pow(static_cast<double>(apx.delta), 0.25), 2);
        }
        table.print(out);

        // Tightness of the lower bound on a small chain, where local search
        // (cheap at this size) gives a near-optimal upper estimate.
        {
          const auto chain = highway::exponential_chain(24);
          const auto points = chain.to_points();
          const graph::Graph udg = chain.udg(1.0);
          highway::LocalSearchParams params;
          params.max_rounds = 8;
          const auto ls = highway::local_search_min_interference(
              points, udg, highway::linear_chain(chain, 1.0), params);
          const highway::AApxResult apx = highway::a_apx(chain, 1.0);
          out << "\nLemma 5.5 tightness on the exponential chain n=24: "
              << "LB = " << highway::lemma55_lower_bound(apx.gamma)
              << ", local-search tree achieves " << ls.interference
              << ", A_apx achieves "
              << highway::graph_interference_1d(chain, apx.topology) << ".\n";
        }

        out << "\nReading: on uniform/blocked instances A_apx takes the linear\n"
               "branch and beats A_gen outright; on exponential-type instances\n"
               "it takes A_gen and stays within a small multiple of the\n"
               "Lemma 5.5 lower bound — the apx/LB column is O(Δ^{1/4}) as\n"
               "Theorem 5.6 promises.\n";
      });
  return 0;
}
