/// Experiment E19 — the parallel batch pipeline: replaying a 100k-node
/// churn trace in batches of 256 through Scenario::apply_batch() (conflict
/// waves on the shared thread pool) against the same trace applied one
/// mutation at a time. Exactness is asserted bit-for-bit against the
/// serial replay at full scale and against Strategy::kBrute at small
/// scale; the observability registry snapshot is written to BENCH_2.json.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "rim/analysis/experiment.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/scenario.hpp"
#include "rim/geom/dynamic_grid.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/obs/registry.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/workload.hpp"
#include "rim/topology/mst_topology.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

std::vector<std::uint32_t> snapshot_interference(core::Scenario& scenario) {
  const auto view = scenario.interference();
  return {view.begin(), view.end()};
}

/// Pre-generates the whole trace so both replays see identical batches.
/// Node counts evolve exactly as a (serial or batch) replay would: each
/// removal shrinks the id space by one, each addition grows it by one.
std::vector<std::vector<core::Mutation>> make_trace(
    std::size_t nodes, std::size_t batches, const sim::WorkloadConfig& config,
    std::uint64_t seed) {
  std::vector<std::vector<core::Mutation>> trace;
  trace.reserve(batches);
  sim::Rng rng(seed);
  std::size_t n = nodes;
  for (std::size_t b = 0; b < batches; ++b) {
    trace.push_back(sim::make_churn_batch(rng, n, config));
    for (const core::Mutation& m : trace.back()) {
      if (m.kind == core::Mutation::Kind::kAddNode) ++n;
      if (m.kind == core::Mutation::Kind::kRemoveNode) --n;
    }
  }
  return trace;
}

/// Spatially local churn generator for the large-scale throughput run.
/// make_churn_batch() teleports moved nodes anywhere in the square, which
/// is fine for small tenants but at 100k nodes over an MST would stretch
/// disks across the deployment and push every batch into the deferred
/// full-evaluation path — measuring nothing. This generator tracks node
/// positions through renames and keeps moves and new edges local, so the
/// batch pipeline's incremental waves are what gets timed.
class LocalTrace {
 public:
  LocalTrace(std::span<const geom::Vec2> points, double side,
             std::uint64_t seed)
      : pos_(points.begin(), points.end()),
        grid_(1.0),
        side_(side),
        rng_(seed) {
    for (NodeId v = 0; v < pos_.size(); ++v) grid_.insert(v, pos_[v]);
  }

  std::vector<core::Mutation> next_batch(std::size_t size) {
    using core::Mutation;
    std::vector<Mutation> batch;
    batch.reserve(size + size / 8);
    const std::size_t removes = size * 15 / 100;
    for (std::size_t i = 0; i < removes && pos_.size() > 8; ++i) {
      const auto victim = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const auto last = static_cast<NodeId>(pos_.size() - 1);
      batch.push_back(Mutation::remove_node(victim));
      grid_.erase(victim);  // mirror the engine's swap-with-last
      if (victim != last) grid_.relabel(last, victim);
      pos_[victim] = pos_.back();
      pos_.pop_back();
    }
    const std::size_t moves = size * 35 / 100;
    for (std::size_t i = 0; i < moves; ++i) {
      const auto v = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const geom::Vec2 p{clamp(pos_[v].x + rng_.uniform(-0.4, 0.4)),
                         clamp(pos_[v].y + rng_.uniform(-0.4, 0.4))};
      batch.push_back(Mutation::move_node(v, p));
      grid_.move(v, p);
      pos_[v] = p;
    }
    const std::size_t adds = size * 15 / 100;
    for (std::size_t i = 0; i < adds; ++i) {
      const auto anchor = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const geom::Vec2 p{clamp(pos_[anchor].x + rng_.uniform(-0.5, 0.5)),
                         clamp(pos_[anchor].y + rng_.uniform(-0.5, 0.5))};
      const auto id = static_cast<NodeId>(pos_.size());
      batch.push_back(Mutation::add_node(p));
      batch.push_back(Mutation::add_edge(id, grid_.nearest(p)));
      grid_.insert(id, p);
      pos_.push_back(p);
    }
    for (std::size_t i = removes + moves + adds; i < size; ++i) {
      // Edge flips between nearest-neighbor pairs keep disks bounded.
      const auto u = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const NodeId v = grid_.nearest(pos_[u], u);
      if (v == kInvalidNode) continue;
      batch.push_back(rng_.next_double() < 0.5 ? Mutation::add_edge(u, v)
                                               : Mutation::remove_edge(u, v));
    }
    return batch;
  }

 private:
  [[nodiscard]] double clamp(double x) const {
    return x < 0.0 ? 0.0 : (x > side_ ? side_ : x);
  }

  std::vector<geom::Vec2> pos_;
  geom::DynamicGrid grid_;
  double side_;
  sim::Rng rng_;
};

bool identical(const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
  return a == b;
}

}  // namespace

int main() {
  bool ok = true;
  analysis::run_experiment(
      {"E19", "Parallel batch pipeline vs one-at-a-time replay",
       "Section 1 & 3 (locality of updates => conflict-free batch waves)",
       "apply_batch on a 100k-node churn trace (batches of 256) is >= 3x "
       "faster than serial replay on >= 8 hardware threads, bit-identical "
       "throughout"},
      std::cout, [&ok](std::ostream& out) {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

        // --- Exactness at small scale, cross-checked against kBrute. ---
        {
          sim::WorkloadConfig config;
          config.initial_nodes = 500;
          config.batch_size = 64;
          config.side = 6.0;
          core::Scenario serial = sim::make_tenant_scenario(config, 0);
          core::Scenario batched = sim::make_tenant_scenario(config, 0);
          const auto trace = make_trace(serial.node_count(), 12, config, 99);
          for (const auto& batch : trace) {
            for (const core::Mutation& m : batch) serial.apply(m);
            (void)batched.apply_batch(batch);
            if (!identical(snapshot_interference(serial),
                           snapshot_interference(batched))) {
              out << "EXACTNESS: batch replay diverged from serial at 500 "
                     "nodes\n";
              ok = false;
              return;
            }
          }
          const geom::PointSet points = serial.points();
          const auto brute = core::evaluate_interference(
              serial.topology(), points, core::Strategy::kBrute);
          if (!identical(brute.per_node, snapshot_interference(batched))) {
            out << "EXACTNESS: batch replay diverged from kBrute\n";
            ok = false;
            return;
          }
          out << "exactness: 12 batches @ 500 nodes bit-identical to serial "
                 "and kBrute\n";
        }

        // --- Throughput at 100k nodes, batches of 256. ---
        io::Table table({"nodes", "batches", "batch size", "serial ms",
                         "batch ms", "speedup", "waves", "deferred"});
        double speedup = 0.0;
        {
          // Constant density (~12.5 nodes per unit square), MST topology —
          // the same network family as E18, so disks stay local and the
          // incremental waves (not the deferred fallback) are measured.
          const std::size_t n = 100000;
          const std::size_t batch_size = 256;
          const std::size_t batches = 40;
          const double side = std::sqrt(static_cast<double>(n) / 12.5);
          const geom::PointSet points = sim::uniform_square(n, side, 42);
          const graph::Graph udg = graph::build_udg(points, 1.0);
          const graph::Graph mst = topology::mst_topology(points, udg);

          core::Scenario serial(points, mst);
          core::Scenario batched(points, mst);
          (void)serial.interference();
          (void)batched.interference();
          LocalTrace gen(points, side, 1234);
          std::vector<std::vector<core::Mutation>> trace;
          trace.reserve(batches);
          for (std::size_t b = 0; b < batches; ++b) {
            trace.push_back(gen.next_batch(batch_size));
          }

          const auto t_serial = Clock::now();
          for (const auto& batch : trace) {
            for (const core::Mutation& m : batch) serial.apply(m);
            (void)serial.interference();
          }
          const double serial_ms = ns_since(t_serial) / 1e6;

          parallel::ThreadPool& pool = parallel::ThreadPool::shared();
          std::uint64_t waves = 0;
          std::uint64_t deferred = 0;
          const auto t_batch = Clock::now();
          for (const auto& batch : trace) {
            const core::BatchResult r = batched.apply_batch(batch, &pool);
            waves += r.waves;
            deferred += r.deferred;
            (void)batched.interference();
          }
          const double batch_ms = ns_since(t_batch) / 1e6;

          if (!identical(snapshot_interference(serial),
                         snapshot_interference(batched))) {
            out << "EXACTNESS: batch replay diverged from serial at 100k "
                   "nodes\n";
            ok = false;
            return;
          }
          speedup = serial_ms / batch_ms;
          table.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(static_cast<std::uint64_t>(batches))
              .cell(static_cast<std::uint64_t>(batch_size))
              .cell(serial_ms, 1)
              .cell(batch_ms, 1)
              .cell(speedup, 2)
              .cell(waves)
              .cell(deferred);
          table.print(out);

          obs::Registry::global().add_source(
              "scenario_batch", [stats = batched.stats_json()] { return stats; });
        }

        // --- WorkloadDriver: many tenants replayed concurrently. ---
        {
          sim::WorkloadConfig config;
          config.tenants = 4;
          config.initial_nodes = 2000;
          config.batches = 8;
          config.batch_size = 128;
          config.side = 12.0;
          sim::WorkloadDriver driver(config);
          const sim::WorkloadReport serial_report =
              driver.run(sim::ReplayMode::kSerial);
          const sim::WorkloadReport conc_report =
              driver.run(sim::ReplayMode::kConcurrentTenants);
          for (std::size_t t = 0; t < serial_report.tenants.size(); ++t) {
            if (serial_report.tenants[t].interference_checksum !=
                conc_report.tenants[t].interference_checksum) {
              out << "EXACTNESS: concurrent tenant replay diverged\n";
              ok = false;
              return;
            }
          }
          out << "workload: " << config.tenants
              << " tenants bit-identical serial vs concurrent, serial "
              << serial_report.elapsed_ns / 1000000 << " ms vs concurrent "
              << conc_report.elapsed_ns / 1000000 << " ms\n";
          obs::Registry::global().add_source(
              "workload", [stats = driver.stats_json()] { return stats; });
        }

        // --- Observability snapshot => BENCH_2.json artifact. ---
        {
          io::JsonObject bench;
          bench["experiment"] = io::Json(std::string("E19"));
          bench["hardware_threads"] = io::Json(hw);
          bench["speedup"] = io::Json(speedup);
          obs::Registry::global().add_source(
              "bench", [b = io::Json(std::move(bench))] { return b; });
          std::ofstream file("BENCH_2.json");
          file << obs::Registry::global().snapshot().dump() << "\n";
          out << "metrics snapshot written to BENCH_2.json\n";
        }

        if (hw < 8) {
          out << "ACCEPTANCE: batch speedup >= 3x SKIPPED (" << hw
              << " hardware threads < 8)\n";
        } else if (speedup >= 3.0) {
          out << "ACCEPTANCE: batch speedup >= 3x PASS\n";
        } else {
          out << "ACCEPTANCE: batch speedup >= 3x FAIL (" << speedup << "x)\n";
          ok = false;
        }
      });
  return ok ? 0 : 1;
}
