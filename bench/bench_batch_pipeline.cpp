/// Experiment E19 — the parallel batch pipeline: replaying a 100k-node
/// churn trace in batches of 256 through Scenario::apply_batch() (conflict
/// waves on the shared thread pool) against the same trace applied one
/// mutation at a time. Exactness is asserted bit-for-bit against the
/// serial replay at full scale and against Strategy::kBrute at small
/// scale; the observability registry snapshot is written to BENCH_2.json.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "local_trace.hpp"
#include "rim/analysis/experiment.hpp"
#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/scenario.hpp"
#include "rim/geom/dynamic_grid.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/obs/registry.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/workload.hpp"
#include "rim/topology/mst_topology.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

std::vector<std::uint32_t> snapshot_interference(core::Scenario& scenario) {
  const auto view = scenario.interference();
  return {view.begin(), view.end()};
}

/// Pre-generates the whole trace so both replays see identical batches.
/// Node counts evolve exactly as a (serial or batch) replay would: each
/// removal shrinks the id space by one, each addition grows it by one.
std::vector<std::vector<core::Mutation>> make_trace(
    std::size_t nodes, std::size_t batches, const sim::WorkloadConfig& config,
    std::uint64_t seed) {
  std::vector<std::vector<core::Mutation>> trace;
  trace.reserve(batches);
  sim::Rng rng(seed);
  std::size_t n = nodes;
  for (std::size_t b = 0; b < batches; ++b) {
    trace.push_back(sim::make_churn_batch(rng, n, config));
    for (const core::Mutation& m : trace.back()) {
      if (m.kind == core::Mutation::Kind::kAddNode) ++n;
      if (m.kind == core::Mutation::Kind::kRemoveNode) --n;
    }
  }
  return trace;
}

bool identical(const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
  return a == b;
}

}  // namespace

int main() {
  bool ok = true;
  analysis::run_experiment(
      {"E19", "Parallel batch pipeline vs one-at-a-time replay",
       "Section 1 & 3 (locality of updates => conflict-free batch waves)",
       "apply_batch on a 100k-node churn trace (batches of 256) is >= 3x "
       "faster than serial replay on >= 8 hardware threads, bit-identical "
       "throughout"},
      std::cout, [&ok](std::ostream& out) {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

        // --- Exactness at small scale, cross-checked against kBrute. ---
        {
          sim::WorkloadConfig config;
          config.initial_nodes = 500;
          config.batch_size = 64;
          config.side = 6.0;
          core::Scenario serial = sim::make_tenant_scenario(config, 0);
          core::Scenario batched = sim::make_tenant_scenario(config, 0);
          const auto trace = make_trace(serial.node_count(), 12, config, 99);
          for (const auto& batch : trace) {
            for (const core::Mutation& m : batch) serial.apply(m);
            (void)batched.apply_batch(batch);
            if (!identical(snapshot_interference(serial),
                           snapshot_interference(batched))) {
              out << "EXACTNESS: batch replay diverged from serial at 500 "
                     "nodes\n";
              ok = false;
              return;
            }
          }
          const geom::PointSet points = serial.points();
          const auto brute = core::Assessor{}.assess(
              serial.topology(), points, core::Strategy::kBrute);
          if (!identical(brute.per_node, snapshot_interference(batched))) {
            out << "EXACTNESS: batch replay diverged from kBrute\n";
            ok = false;
            return;
          }
          out << "exactness: 12 batches @ 500 nodes bit-identical to serial "
                 "and kBrute\n";
        }

        // --- Throughput at 100k nodes, batches of 256. ---
        io::Table table({"nodes", "batches", "batch size", "serial ms",
                         "batch ms", "speedup", "waves", "deferred"});
        double speedup = 0.0;
        {
          // Constant density (~12.5 nodes per unit square), MST topology —
          // the same network family as E18, so disks stay local and the
          // incremental waves (not the deferred fallback) are measured.
          const std::size_t n = 100000;
          const std::size_t batch_size = 256;
          const std::size_t batches = 40;
          const double side = std::sqrt(static_cast<double>(n) / 12.5);
          const geom::PointSet points = sim::uniform_square(n, side, 42);
          const graph::Graph udg = graph::build_udg(points, 1.0);
          const graph::Graph mst = topology::mst_topology(points, udg);

          core::Scenario serial(points, mst);
          core::Scenario batched(points, mst);
          (void)serial.interference();
          (void)batched.interference();
          bench::LocalTrace gen(points, side, 1234);
          std::vector<std::vector<core::Mutation>> trace;
          trace.reserve(batches);
          for (std::size_t b = 0; b < batches; ++b) {
            trace.push_back(gen.next_batch(batch_size));
          }

          const auto t_serial = Clock::now();
          for (const auto& batch : trace) {
            for (const core::Mutation& m : batch) serial.apply(m);
            (void)serial.interference();
          }
          const double serial_ms = ns_since(t_serial) / 1e6;

          parallel::ThreadPool& pool = parallel::ThreadPool::shared();
          std::uint64_t waves = 0;
          std::uint64_t deferred = 0;
          const auto t_batch = Clock::now();
          for (const auto& batch : trace) {
            const core::BatchResult r = batched.apply_batch(batch, &pool);
            waves += r.waves;
            deferred += r.deferred;
            (void)batched.interference();
          }
          const double batch_ms = ns_since(t_batch) / 1e6;

          if (!identical(snapshot_interference(serial),
                         snapshot_interference(batched))) {
            out << "EXACTNESS: batch replay diverged from serial at 100k "
                   "nodes\n";
            ok = false;
            return;
          }
          // A single-core runner cannot measure parallel speedup — the two
          // timings differ only by scheduler noise (0.9x-1.1x), and recording
          // that number would let a noise regression trip downstream plots.
          // Mirror the E21 multi-core gate: mark the leg skipped instead.
          io::Table& row = table.row()
                               .cell(static_cast<std::uint64_t>(n))
                               .cell(static_cast<std::uint64_t>(batches))
                               .cell(static_cast<std::uint64_t>(batch_size))
                               .cell(serial_ms, 1)
                               .cell(batch_ms, 1);
          if (hw < 2) {
            row.cell("skipped (1 core)");
          } else {
            speedup = serial_ms / batch_ms;
            row.cell(speedup, 2);
          }
          row.cell(waves).cell(deferred);
          table.print(out);

          obs::Registry::global().add_source(
              "scenario_batch", [stats = batched.stats_json()] { return stats; });
        }

        // --- WorkloadDriver: many tenants replayed concurrently. ---
        {
          sim::WorkloadConfig config;
          config.tenants = 4;
          config.initial_nodes = 2000;
          config.batches = 8;
          config.batch_size = 128;
          config.side = 12.0;
          sim::WorkloadDriver driver(config);
          const sim::WorkloadReport serial_report =
              driver.run(sim::ReplayMode::kSerial);
          const sim::WorkloadReport conc_report =
              driver.run(sim::ReplayMode::kConcurrentTenants);
          for (std::size_t t = 0; t < serial_report.tenants.size(); ++t) {
            if (serial_report.tenants[t].interference_checksum !=
                conc_report.tenants[t].interference_checksum) {
              out << "EXACTNESS: concurrent tenant replay diverged\n";
              ok = false;
              return;
            }
          }
          out << "workload: " << config.tenants
              << " tenants bit-identical serial vs concurrent, serial "
              << serial_report.elapsed_ns / 1000000 << " ms vs concurrent "
              << conc_report.elapsed_ns / 1000000 << " ms\n";
          obs::Registry::global().add_source(
              "workload", [stats = driver.stats_json()] { return stats; });
        }

        // --- Observability snapshot => BENCH_2.json artifact. ---
        {
          io::JsonObject bench;
          bench["experiment"] = io::Json(std::string("E19"));
          bench["hardware_threads"] = io::Json(hw);
          // On a 1-core runner the parallel leg is skipped (see above):
          // speedup stays 0 and this flag tells consumers why.
          bench["speedup_skipped"] = io::Json(hw < 2);
          bench["speedup"] = io::Json(speedup);
          analysis::stamp_bench(bench);
          obs::Registry::global().add_source(
              "bench", [b = io::Json(std::move(bench))] { return b; });
          std::ofstream file("BENCH_2.json");
          file << obs::Registry::global().snapshot().dump() << "\n";
          out << "metrics snapshot written to BENCH_2.json\n";
        }

        if (hw < 8) {
          out << "ACCEPTANCE: batch speedup >= 3x SKIPPED (" << hw
              << " hardware threads < 8)\n";
        } else if (speedup >= 3.0) {
          out << "ACCEPTANCE: batch speedup >= 3x PASS\n";
        } else {
          out << "ACCEPTANCE: batch speedup >= 3x FAIL (" << speedup << "x)\n";
          ok = false;
        }
      });
  return ok ? 0 : 1;
}
