/// Experiment E10 — the introduction's motivation, made measurable:
/// receiver-side interference => collisions => retransmissions => energy.
/// The same instances run under different topologies through the slotted
/// MAC; delivery and energy track the paper's interference measure.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/io/table.hpp"
#include "rim/mac/simulation.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/registry.hpp"

namespace {

void report_row(rim::io::Table& table, const char* name,
                const rim::mac::SimulationReport& r) {
  const double collision_rate =
      r.mac.transmissions == 0
          ? 0.0
          : static_cast<double>(r.mac.collisions) /
                static_cast<double>(r.mac.transmissions);
  table.row()
      .cell(name)
      .cell(r.interference)
      .cell(r.mac.delivered)
      .cell(r.mac.delivery_ratio(), 3)
      .cell(collision_rate, 3)
      .cell(r.mac.mean_delay(), 1)
      .cell(r.mac.energy_per_delivery(), 4);
}

}  // namespace

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E10", "Packet-level consequences of interference",
       "Introduction (motivation); Section 3 disk model",
       "lower receiver-centric interference => higher throughput, fewer "
       "collisions, less energy per delivered frame"},
      std::cout, [](std::ostream& out) {
        // Part 1: exponential chain, saturated traffic.
        {
          const auto chain = highway::exponential_chain(48);
          const auto points = chain.to_points();
          mac::SimulationConfig config;
          config.slots = 4000;
          config.arrival_rate = 1.0;
          config.mac.transmit_probability = 0.1;
          config.seed = 3;
          io::Table table({"topology", "I(G')", "delivered", "deliv. ratio",
                           "collision rate", "mean delay", "energy/frame"});
          report_row(table, "linear chain",
                     mac::simulate_traffic(highway::linear_chain(chain, 1.0),
                                           points, config));
          report_row(table, "A_exp",
                     mac::simulate_traffic(highway::a_exp(chain).topology,
                                           points, config));
          out << "-- exponential chain (n=48), saturated slotted ALOHA\n";
          table.print(out);
          out << '\n';
        }

        // Part 2: random 2-D deployment across the topology zoo.
        {
          const auto points = sim::uniform_square(150, 3.0, 9);
          const graph::Graph udg = graph::build_udg(points, 1.0);
          mac::SimulationConfig config;
          config.slots = 4000;
          config.arrival_rate = 1.0;
          config.mac.transmit_probability = 0.1;
          config.seed = 4;
          io::Table table({"topology", "I(G')", "delivered", "deliv. ratio",
                           "collision rate", "mean delay", "energy/frame"});
          report_row(table, "udg (no control)",
                     mac::simulate_traffic(udg, points, config));
          for (const char* name : {"nnf", "mst", "gabriel", "rng", "yao6",
                                   "xtc", "lmst", "life", "lise2"}) {
            const auto* algorithm = topology::find_algorithm(name);
            report_row(
                table, name,
                mac::simulate_traffic(algorithm->build(points, udg), points,
                                      config));
          }
          out << "-- uniform 2-D deployment (n=150), saturated slotted ALOHA\n";
          table.print(out);
        }
      });
  return 0;
}
