/// Experiment E12 — performance of the library's kernels (google-benchmark):
/// interference evaluation strategies, UDG construction, spatial indices,
/// and the Section 5 algorithms.

#include <benchmark/benchmark.h>

#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/scenario.hpp"
#include "rim/geom/grid_index.hpp"
#include "rim/geom/kdtree.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/mst_topology.hpp"
#include "rim/topology/registry.hpp"

namespace {

using namespace rim;

struct Prepared {
  geom::PointSet points;
  graph::Graph udg;
  graph::Graph mst;
  std::vector<double> radii;
};

Prepared prepare(std::size_t n) {
  Prepared p;
  // Density held constant (~12.5 nodes per unit square).
  const double side = std::sqrt(static_cast<double>(n) / 12.5);
  p.points = sim::uniform_square(n, side, 42);
  p.udg = graph::build_udg(p.points, 1.0);
  p.mst = topology::mst_topology(p.points, p.udg);
  p.radii = core::transmission_radii(p.mst, p.points);
  return p;
}

void BM_InterferenceBrute(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::interference_vector(
        p.points, p.radii, core::Strategy::kBrute));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InterferenceBrute)->RangeMultiplier(4)->Range(256, 4096)->Complexity();

void BM_InterferenceGrid(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::interference_vector(
        p.points, p.radii, core::Strategy::kGrid));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InterferenceGrid)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

void BM_InterferenceParallel(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::interference_vector(
        p.points, p.radii, core::Strategy::kParallel));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InterferenceParallel)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity();

void BM_ScenarioChurnEvent(benchmark::State& state) {
  // One fully-evaluated churn tick on the incremental engine: alternating
  // arrival (nearest-neighbor attachment) and departure, with the
  // interference cache refreshed after every event. Compare against
  // BM_InterferenceGrid at the same n for the incremental-vs-full gap.
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)));
  const double side = std::sqrt(static_cast<double>(p.points.size()) / 12.5);
  core::Scenario scenario(p.points, p.mst);
  benchmark::DoNotOptimize(scenario.max_interference());
  sim::Rng rng(19);
  bool add = true;
  for (auto _ : state) {
    if (add) {
      const geom::Vec2 q{rng.uniform(0.0, side), rng.uniform(0.0, side)};
      const NodeId id = scenario.add_node(q);
      const NodeId partner = scenario.nearest_node(q, id);
      if (partner != kInvalidNode) scenario.add_edge(id, partner);
    } else {
      scenario.remove_node(
          static_cast<NodeId>(rng.next_below(scenario.node_count())));
    }
    add = !add;
    benchmark::DoNotOptimize(scenario.max_interference());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScenarioChurnEvent)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity();

void BM_ScenarioMoveNode(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)));
  core::Scenario scenario(p.points, p.mst);
  benchmark::DoNotOptimize(scenario.max_interference());
  sim::Rng rng(23);
  for (auto _ : state) {
    const auto v = static_cast<NodeId>(rng.next_below(scenario.node_count()));
    const geom::Vec2 q = scenario.position(v);
    scenario.move_node(v, {q.x + 0.1 * (rng.next_double() - 0.5),
                           q.y + 0.1 * (rng.next_double() - 0.5)});
    benchmark::DoNotOptimize(scenario.max_interference());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScenarioMoveNode)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity();

void BM_UdgConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n) / 12.5);
  const auto points = sim::uniform_square(n, side, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_udg(points, 1.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UdgConstruction)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

void BM_GridIndexQuery(benchmark::State& state) {
  const auto points = sim::uniform_square(65536, 72.0, 3);
  const geom::GridIndex index(points, 1.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.count_in_disk(points[i % points.size()], 1.0));
    ++i;
  }
}
BENCHMARK(BM_GridIndexQuery);

void BM_KdTreeNearest(benchmark::State& state) {
  const auto points = sim::uniform_square(65536, 72.0, 3);
  const geom::KdTree tree(points);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.nearest(points[i % points.size()], static_cast<NodeId>(i % points.size())));
    ++i;
  }
}
BENCHMARK(BM_KdTreeNearest);

void BM_AExp(benchmark::State& state) {
  const auto chain =
      highway::exponential_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(highway::a_exp(chain));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AExp)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_AGen(benchmark::State& state) {
  const auto inst = sim::uniform_highway(
      static_cast<std::size_t>(state.range(0)),
      static_cast<double>(state.range(0)) / 40.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(highway::a_gen(inst, 1.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AGen)->RangeMultiplier(4)->Range(1024, 65536)->Complexity();

void BM_AApx(benchmark::State& state) {
  const auto inst = sim::uniform_highway(
      static_cast<std::size_t>(state.range(0)),
      static_cast<double>(state.range(0)) / 40.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(highway::a_apx(inst, 1.0));
  }
}
BENCHMARK(BM_AApx)->RangeMultiplier(4)->Range(1024, 65536);

void BM_Interference1D(benchmark::State& state) {
  const auto inst = sim::uniform_highway(
      static_cast<std::size_t>(state.range(0)),
      static_cast<double>(state.range(0)) / 40.0, 5);
  const auto topo = highway::a_gen(inst, 1.0).topology;
  for (auto _ : state) {
    benchmark::DoNotOptimize(highway::graph_interference_1d(inst, topo));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Interference1D)->RangeMultiplier(4)->Range(1024, 65536)->Complexity();

void BM_TopologyAlgorithms(benchmark::State& state) {
  const Prepared p = prepare(1000);
  const auto algorithms = topology::all_algorithms();
  const auto& algorithm = algorithms[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(algorithm.name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm.build(p.points, p.udg));
  }
}
BENCHMARK(BM_TopologyAlgorithms)->DenseRange(0, 9);

}  // namespace
