/// Experiment E18 — the incremental interference engine: per-event cost of
/// core::Scenario mutations (arrivals with nearest-neighbor attachment,
/// departures, moves) against stateless full kGrid recomputation, on a
/// 100k-node churn trace. The paper's robustness result (one added node
/// perturbs any I(v) by at most 1) is what makes the O(affected-disk)
/// delta exact; this experiment shows it is also fast.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "rim/analysis/experiment.hpp"
#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/scenario.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/geom/dynamic_grid.hpp"
#include "rim/geom/grid_kernels.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/simd/simd.hpp"
#include "rim/topology/mst_topology.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

/// One churn event against the live scenario: arrival (nearest-neighbor
/// attachment), departure, or a local move. Returns after refreshing the
/// engine's interference cache, i.e. the cost of a fully-evaluated tick.
void churn_event(core::Scenario& scenario, sim::Rng& rng, double side) {
  const double roll = rng.next_double();
  if (roll < 0.4 || scenario.node_count() < 3) {
    const geom::Vec2 p{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    const NodeId id = scenario.add_node(p);
    const NodeId partner = scenario.nearest_node(p, id);
    if (partner != kInvalidNode) scenario.add_edge(id, partner);
  } else if (roll < 0.8) {
    scenario.remove_node(
        static_cast<NodeId>(rng.next_below(scenario.node_count())));
  } else {
    const auto v = static_cast<NodeId>(rng.next_below(scenario.node_count()));
    const geom::Vec2 p = scenario.position(v);
    scenario.move_node(v, {p.x + 0.2 * (rng.next_double() - 0.5),
                           p.y + 0.2 * (rng.next_double() - 0.5)});
  }
  (void)scenario.max_interference();
}

}  // namespace

int main() {
  analysis::run_experiment(
      {"E18", "Incremental engine vs full recomputation under churn",
       "Section 1 & 3 (robustness => locality of updates)",
       "Scenario deltas are >= 10x cheaper per churn event than stateless "
       "full kGrid recomputation at 100k nodes"},
      std::cout, [](std::ostream& out) {
        io::Table table({"nodes", "events", "incr us/event", "full us/eval",
                         "speedup", "full evals"});
        for (const std::size_t n : {10000ul, 100000ul}) {
          // Constant density (~12.5 nodes per unit square), MST topology.
          const double side = std::sqrt(static_cast<double>(n) / 12.5);
          const geom::PointSet points = sim::uniform_square(n, side, 42);
          const graph::Graph udg = graph::build_udg(points, 1.0);
          const graph::Graph mst = topology::mst_topology(points, udg);

          core::Scenario scenario(points, mst);
          (void)scenario.max_interference();  // prime the cache

          // Incremental: a full churn trace of deltas on the live engine.
          const std::size_t events = 1000;
          sim::Rng rng(7);
          const auto t_incr = Clock::now();
          for (std::size_t e = 0; e < events; ++e) {
            churn_event(scenario, rng, side);
          }
          const double incr_us =
              ns_since(t_incr) / 1e3 / static_cast<double>(events);

          // Baseline: stateless full kGrid evaluation of the same network
          // (what every consumer paid per tick before the engine existed).
          const graph::Graph topo_now = scenario.topology();
          const geom::PointSet points_now = scenario.points();
          const std::size_t full_reps = 20;
          core::InterferenceSummary last_full;
          const auto t_full = Clock::now();
          for (std::size_t r = 0; r < full_reps; ++r) {
            last_full = core::Assessor{}.assess(
                topo_now, points_now, core::Strategy::kGrid);
            if (last_full.max == 0xffffffffu) out << "";  // defeat DCE
          }
          const double full_us =
              ns_since(t_full) / 1e3 / static_cast<double>(full_reps);

          table.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(static_cast<std::uint64_t>(events))
              .cell(incr_us, 1)
              .cell(full_us, 1)
              .cell(full_us / incr_us, 1)
              .cell(scenario.stats().full_evaluations);

          if (n == 100000ul) {
            out << "engine stats (100k trace): "
                << scenario.stats_json().dump() << "\n";
            out << (full_us / incr_us >= 10.0
                        ? "ACCEPTANCE: speedup >= 10x PASS"
                        : "ACCEPTANCE: speedup >= 10x FAIL")
                << "\n";

            // SIMD/scalar bit-identity at scale: recount I(v) for every
            // node of the live post-churn store through the active vector
            // backend and the scalar reference twin, and require identical
            // FNV-1a checksums (the same kernel pair the randomized churn
            // trace above exercised through Scenario's delta path).
            const std::size_t count = points_now.size();
            const std::vector<double> r2 =
                core::transmission_radii_squared(topo_now, points_now);
            double max_r2 = 0.0;
            geom::DynamicGrid grid(1.0);
            for (NodeId v = 0; v < count; ++v) {
              grid.insert(v, points_now[v], r2[v]);
              if (r2[v] > max_r2) max_r2 = r2[v];
            }
            std::vector<std::uint32_t> simd_iv(count);
            std::vector<std::uint32_t> scalar_iv(count);
            for (NodeId v = 0; v < count; ++v) {
              simd_iv[v] =
                  geom::count_covering(grid, points_now[v], max_r2, v).covered;
              scalar_iv[v] =
                  geom::count_covering_scalar(grid, points_now[v], max_r2, v)
                      .covered;
            }
            const std::uint64_t simd_sum = core::fnv1a_words(simd_iv);
            const std::uint64_t scalar_sum = core::fnv1a_words(scalar_iv);
            const std::uint64_t full_sum = core::fnv1a_words(last_full.per_node);
            out << "interference checksums (" << count << " nodes, backend "
                << simd::kBackend << "): simd=" << std::hex << simd_sum
                << " scalar=" << scalar_sum << " full_eval=" << full_sum
                << std::dec << "\n";
            out << (simd_sum == scalar_sum && simd_sum == full_sum
                        ? "ACCEPTANCE: simd/scalar checksums identical PASS"
                        : "ACCEPTANCE: simd/scalar checksums identical FAIL")
                << "\n\n";
          }
        }
        table.print(out);
      });
  return 0;
}
