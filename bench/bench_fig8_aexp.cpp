/// Experiment E5 — Figure 8, Theorem 5.1: A_exp on the exponential node
/// chain achieves interference O(sqrt n); hubs are connected to one more
/// node each (1, 1, 2, 3, ...).

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/fit.hpp"
#include "rim/core/radii.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/io/table.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E5", "A_exp on the exponential node chain",
       "Figure 8; Theorem 5.1 (upper), Theorem 5.2 (lower)",
       "I(G_exp) ~ sqrt(2n), matching the sqrt(n) lower bound"},
      std::cout, [](std::ostream& out) {
        // Figure 8 reproduction for n = 32: hub structure and profile.
        const auto chain = highway::exponential_chain(32);
        const highway::AExpResult fig = highway::a_exp(chain);
        out << "hubs (n=32): ";
        for (NodeId h : fig.hubs) out << h << ' ';
        out << "\nhub gaps:    ";
        for (std::size_t i = 1; i < fig.hubs.size(); ++i) {
          out << fig.hubs[i] - fig.hubs[i - 1] << ' ';
        }
        const auto points = chain.to_points();
        const auto radii = core::transmission_radii(fig.topology, points);
        const auto per_node = highway::interference_1d(chain.positions(), radii);
        out << "\nper-node I : ";
        for (std::uint32_t i : per_node) out << i << ' ';
        out << "\n\n";

        io::Table table({"n", "I(A_exp)", "thm5.1 upper", "thm5.2 lower",
                         "sqrt(2n)", "I/sqrt(n)"});
        std::vector<double> ns;
        std::vector<double> is;
        for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
          const auto c = highway::exponential_chain(n);
          const highway::AExpResult result = highway::a_exp(c);
          table.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(result.interference)
              .cell(highway::aexp_upper_bound(n))
              .cell(highway::exponential_chain_lower_bound(n))
              .cell(std::sqrt(2.0 * static_cast<double>(n)), 1)
              .cell(static_cast<double>(result.interference) /
                        std::sqrt(static_cast<double>(n)),
                    3);
          ns.push_back(static_cast<double>(n));
          is.push_back(static_cast<double>(result.interference));
        }
        table.print(out);
        const analysis::LinearFit fit = analysis::fit_power_law(ns, is);
        out << "\nlog-log fit: I(A_exp) ~ n^" << fit.slope
            << " (R^2 = " << fit.r_squared << "); paper predicts exponent 0.5.\n";
      });
  return 0;
}
