#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/geom/dynamic_grid.hpp"
#include "rim/sim/rng.hpp"

/// \file local_trace.hpp
/// Spatially local churn generator shared by the large-scale pipeline
/// benches (E19, E22). sim::make_churn_batch() teleports moved nodes
/// anywhere in the square, which is fine for small tenants but at 100k
/// nodes over an MST would stretch disks across the deployment and push
/// every batch into the deferred full-evaluation path — measuring nothing.
/// This generator tracks node positions through renames and keeps moves and
/// new edges local, so the incremental machinery (waves or speculative
/// tasks) is what gets timed.

namespace rim::bench {

class LocalTrace {
 public:
  LocalTrace(std::span<const geom::Vec2> points, double side,
             std::uint64_t seed)
      : pos_(points.begin(), points.end()),
        grid_(1.0),
        side_(side),
        rng_(seed) {
    for (NodeId v = 0; v < pos_.size(); ++v) grid_.insert(v, pos_[v]);
  }

  std::vector<core::Mutation> next_batch(std::size_t size) {
    using core::Mutation;
    std::vector<Mutation> batch;
    batch.reserve(size + size / 8);
    const std::size_t removes = size * 15 / 100;
    for (std::size_t i = 0; i < removes && pos_.size() > 8; ++i) {
      const auto victim = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const auto last = static_cast<NodeId>(pos_.size() - 1);
      batch.push_back(Mutation::remove_node(victim));
      grid_.erase(victim);  // mirror the engine's swap-with-last
      if (victim != last) grid_.relabel(last, victim);
      pos_[victim] = pos_.back();
      pos_.pop_back();
    }
    const std::size_t moves = size * 35 / 100;
    for (std::size_t i = 0; i < moves; ++i) {
      const auto v = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const geom::Vec2 p{clamp(pos_[v].x + rng_.uniform(-0.4, 0.4)),
                         clamp(pos_[v].y + rng_.uniform(-0.4, 0.4))};
      batch.push_back(Mutation::move_node(v, p));
      grid_.move(v, p);
      pos_[v] = p;
    }
    const std::size_t adds = size * 15 / 100;
    for (std::size_t i = 0; i < adds; ++i) {
      const auto anchor = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const geom::Vec2 p{clamp(pos_[anchor].x + rng_.uniform(-0.5, 0.5)),
                         clamp(pos_[anchor].y + rng_.uniform(-0.5, 0.5))};
      const auto id = static_cast<NodeId>(pos_.size());
      batch.push_back(Mutation::add_node(p));
      batch.push_back(Mutation::add_edge(id, grid_.nearest(p)));
      grid_.insert(id, p);
      pos_.push_back(p);
    }
    for (std::size_t i = removes + moves + adds; i < size; ++i) {
      // Edge flips between nearest-neighbor pairs keep disks bounded.
      const auto u = static_cast<NodeId>(rng_.next_below(pos_.size()));
      const NodeId v = grid_.nearest(pos_[u], u);
      if (v == kInvalidNode) continue;
      batch.push_back(rng_.next_double() < 0.5 ? Mutation::add_edge(u, v)
                                               : Mutation::remove_edge(u, v));
    }
    return batch;
  }

 private:
  [[nodiscard]] double clamp(double x) const {
    return x < 0.0 ? 0.0 : (x > side_ ? side_ : x);
  }

  std::vector<geom::Vec2> pos_;
  geom::DynamicGrid grid_;
  double side_;
  sim::Rng rng_;
};

/// FNV-1a over the little-endian bytes of an interference vector — the same
/// digest sim::WorkloadDriver reports, so checksums are comparable across
/// benches.
[[nodiscard]] inline std::uint64_t fnv1a_interference(
    std::span<const std::uint32_t> values) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint32_t v : values) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xFFU;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

}  // namespace rim::bench
