/// Experiment E20 — the rim::svc serving layer under load: N concurrent
/// clients each drive their own session of topology churn through the
/// service (loopback transport, so the protocol cost itself is measured,
/// not the kernel's TCP stack) and report throughput and latency from the
/// service's obs counters. A second phase overloads a deliberately tiny
/// admission gate and verifies excess load is *shed* with explicit
/// "overloaded" responses — never queued. The registry snapshot is
/// written to BENCH_5.json.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "rim/analysis/experiment.hpp"
#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/workload.hpp"
#include "rim/svc/client.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSessions = 8;
constexpr std::size_t kBatchesPerSession = 24;
constexpr std::size_t kBatchSize = 64;
constexpr std::size_t kInitialNodes = 256;

double ms_since(Clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - start)
                                 .count()) /
         1000.0;
}

/// The session seed: a grid-ish point cloud chained into one component,
/// expressed as wire mutations.
std::vector<core::Mutation> seed_mutations(std::uint64_t seed) {
  std::vector<core::Mutation> batch;
  batch.reserve(kInitialNodes * 2);
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < kInitialNodes; ++i) {
    batch.push_back(core::Mutation::add_node(
        {rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)}));
  }
  for (std::size_t i = 1; i < kInitialNodes; ++i) {
    batch.push_back(core::Mutation::add_edge(
        static_cast<NodeId>(i - 1), static_cast<NodeId>(i)));
  }
  return batch;
}

struct WorkerResult {
  std::string error;            ///< first failure, empty when clean
  std::uint64_t requests = 0;   ///< ok responses this worker saw
  std::uint64_t mutations = 0;  ///< mutations the service applied for it
};

/// One tenant: create a session, seed it, run churn batches with an
/// interference query after each, close. Every response is an implicit
/// protocol check — any error aborts the worker.
void run_tenant(svc::Service& service, std::uint64_t seed,
                WorkerResult& result) {
  svc::LoopbackTransport transport(service);
  svc::Client client(transport);
  // Typed calls (SvcResult<T>): a failure is an SvcError value carrying the
  // decoded wire code, not a bool plus string accessors.
  const svc::SvcResult<std::uint64_t> opened = client.try_create_session();
  if (!opened) {
    result.error = "create_session: " + opened.error().message;
    return;
  }
  const std::uint64_t session = *opened;
  ++result.requests;
  svc::SvcResult<core::BatchResult> applied =
      client.try_apply_batch(session, seed_mutations(seed));
  if (!applied) {
    result.error = "seed apply_batch: " + applied.error().message;
    return;
  }
  ++result.requests;
  result.mutations += applied->applied;

  sim::Rng rng(seed * 7919 + 1);
  sim::WorkloadConfig churn;
  churn.batch_size = kBatchSize;
  std::size_t nodes = kInitialNodes;
  for (std::size_t b = 0; b < kBatchesPerSession; ++b) {
    const std::vector<core::Mutation> batch =
        sim::make_churn_batch(rng, nodes, churn);
    for (const core::Mutation& m : batch) {
      if (m.kind == core::Mutation::Kind::kAddNode) ++nodes;
      if (m.kind == core::Mutation::Kind::kRemoveNode) --nodes;
    }
    applied = client.try_apply_batch(session, batch);
    if (!applied) {
      result.error = "apply_batch: " + applied.error().message;
      return;
    }
    ++result.requests;
    result.mutations += applied->applied;
    const svc::SvcResult<io::Json> interference =
        client.try_query_interference(session);
    if (!interference) {
      result.error = "query_interference: " + interference.error().message;
      return;
    }
    ++result.requests;
  }
  if (const svc::SvcResult<void> closed = client.try_close_session(session);
      !closed) {
    result.error = "close_session: " + closed.error().message;
    return;
  }
  ++result.requests;
}

}  // namespace

int main() {
  bool ok = true;
  analysis::run_experiment(
      {"E20", "Multi-tenant serving layer under churn load",
       "Section 1 (ad-hoc networks serve many independent deployments)",
       "svc sustains >= 8 concurrent sessions of batch churn; admission "
       "control sheds (never queues) load past max_in_flight"},
      std::cout, [&ok](std::ostream& out) {
        // --- Phase 1: throughput across kSessions concurrent tenants. ---
        svc::ServiceConfig config;
        config.limits.max_sessions = kSessions * 2;
        config.limits.max_live_sessions = kSessions * 2;
        config.limits.max_in_flight = kSessions * 2;
        svc::Service service(config);

        std::vector<WorkerResult> results(kSessions);
        std::vector<std::thread> tenants;
        tenants.reserve(kSessions);
        const auto t_load = Clock::now();
        for (std::size_t s = 0; s < kSessions; ++s) {
          tenants.emplace_back([&service, s, &results] {
            run_tenant(service, 1000 + s, results[s]);
          });
        }
        for (std::thread& tenant : tenants) tenant.join();
        const double load_ms = ms_since(t_load);

        std::uint64_t requests = 0;
        std::uint64_t mutations = 0;
        std::size_t clean = 0;
        for (std::size_t s = 0; s < kSessions; ++s) {
          if (results[s].error.empty()) {
            ++clean;
          } else {
            out << "tenant " << s << " FAILED: " << results[s].error << '\n';
          }
          requests += results[s].requests;
          mutations += results[s].mutations;
        }
        const io::Json svc_stats = service.counters().to_json();
        const io::Json* latency = svc_stats.find("latency_ns");
        const double p50 =
            latency ? latency->find("p50")->as_number(0.0) : 0.0;
        const double p99 =
            latency ? latency->find("p99")->as_number(0.0) : 0.0;

        io::Table table({"sessions", "requests", "mutations", "wall ms",
                         "req/s", "p50 us", "p99 us"});
        const double req_per_s = load_ms > 0.0
                                     ? double(requests) * 1000.0 / load_ms
                                     : 0.0;
        table.row()
            .cell(static_cast<std::uint64_t>(kSessions))
            .cell(requests)
            .cell(mutations)
            .cell(load_ms, 1)
            .cell(req_per_s, 0)
            .cell(p50 / 1000.0, 1)
            .cell(p99 / 1000.0, 1);
        table.print(out);

        if (clean == kSessions) {
          out << "ACCEPTANCE: concurrent sessions >= 8 PASS\n";
        } else {
          out << "ACCEPTANCE: concurrent sessions >= 8 FAIL (" << clean
              << " of " << kSessions << " tenants clean)\n";
          ok = false;
        }

        // --- Phase 2: overload a tiny gate; excess must be shed. ---
        // 12 pushers of millisecond-scale batch work against a 2-slot
        // gate: most attempts find the gate full and get an immediate
        // "overloaded" answer. Pushers retry the *same* batch until it is
        // admitted (keeping session state consistent), so every shed is
        // an explicit, client-visible refusal — never a queued request.
        svc::ServiceConfig tiny;
        tiny.limits.max_in_flight = 2;
        tiny.limits.max_sessions = 64;
        svc::Service gated(tiny);
        constexpr std::size_t kPushers = 12;
        constexpr std::size_t kGatedBatches = 8;
        std::atomic<std::uint64_t> answered{0};
        std::atomic<std::uint64_t> shed{0};
        std::atomic<std::uint64_t> other{0};
        std::vector<std::thread> pushers;
        pushers.reserve(kPushers);
        for (std::size_t p = 0; p < kPushers; ++p) {
          pushers.emplace_back([&gated, p, &answered, &shed, &other] {
            svc::LoopbackTransport transport(gated);
            svc::Client client(transport);
            // Retries the call until the gate admits it; counts how the
            // service answered each attempt. SvcError::retryable() is the
            // typed form of the old error_code() string comparison.
            const auto insist = [&](auto&& call) -> bool {
              while (true) {
                const auto result = call();
                if (result.has_value()) {
                  answered.fetch_add(1, std::memory_order_relaxed);
                  return true;
                }
                if (!result.error().retryable()) {
                  other.fetch_add(1, std::memory_order_relaxed);
                  return false;
                }
                shed.fetch_add(1, std::memory_order_relaxed);
              }
            };
            std::uint64_t session = 0;
            if (!insist([&]() -> svc::SvcResult<void> {
                  const auto opened = client.try_create_session();
                  if (!opened) return rim::common::Unexpected(opened.error());
                  session = *opened;
                  return {};
                }))
              return;
            if (!insist([&] {
                  return client.try_apply_batch(session,
                                                seed_mutations(500 + p));
                }))
              return;
            sim::Rng rng(p * 31 + 7);
            sim::WorkloadConfig churn;
            churn.batch_size = kBatchSize;
            std::size_t nodes = kInitialNodes;
            for (std::size_t b = 0; b < kGatedBatches; ++b) {
              const std::vector<core::Mutation> batch =
                  sim::make_churn_batch(rng, nodes, churn);
              for (const core::Mutation& m : batch) {
                if (m.kind == core::Mutation::Kind::kAddNode) ++nodes;
                if (m.kind == core::Mutation::Kind::kRemoveNode) --nodes;
              }
              if (!insist([&] {
                    return client.try_apply_batch(session, batch);
                  }))
                return;
            }
          });
        }
        for (std::thread& pusher : pushers) pusher.join();
        const std::uint64_t counted_shed =
            gated.counters().rejected_overloaded.value();
        out << "overload: " << answered.load() << " answered, " << shed.load()
            << " shed with explicit responses (service counted "
            << counted_shed << "), " << other.load() << " other errors\n";
        // Shed responses must be explicit (client-visible) and counted;
        // nothing may vanish into a queue: every attempt was answered.
        const bool shed_ok = other.load() == 0 &&
                             shed.load() == counted_shed && shed.load() > 0;
        if (shed_ok) {
          out << "ACCEPTANCE: admission shed excess load PASS\n";
        } else {
          out << "ACCEPTANCE: admission shed excess load FAIL\n";
          ok = false;
        }

        // --- Registry snapshot => BENCH_5.json artifact. ---
        io::JsonObject bench;
        bench["experiment"] = io::Json(std::string("E20"));
        bench["sessions"] = io::Json(kSessions);
        bench["requests"] = io::Json(requests);
        bench["requests_per_second"] = io::Json(req_per_s);
        bench["latency_p50_ns"] = io::Json(p50);
        bench["latency_p99_ns"] = io::Json(p99);
        bench["shed"] = io::Json(counted_shed);
        analysis::stamp_bench(bench);
        service.registry().add_source(
            "bench", [b = io::Json(std::move(bench))] { return b; });
        std::ofstream file("BENCH_5.json");
        file << service.registry().snapshot().dump() << "\n";
        out << "metrics snapshot written to BENCH_5.json\n";
      });
  return ok ? 0 : 1;
}
