/// Experiment E1 — Figure 1: robustness of the interference measure under
/// single-node addition.
///
/// A cluster of n-1 roughly homogeneously placed nodes plus one outlier
/// whose attachment forces a long bridge link. The sender-centric measure
/// of Burkhart et al. jumps from O(1) to ~n; the receiver-centric measure
/// of this paper moves by at most 2 (newcomer's disk + enlarged partner
/// disk).

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/core/assessor.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/topology/mst_topology.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E1", "Single-node addition: sender- vs receiver-centric interference",
       "Figure 1; Introduction & Section 3",
       "sender-centric max jumps to ~n; receiver-centric increases by <= 2"},
      std::cout, [](std::ostream& out) {
        io::Table table({"n", "recv before", "recv after", "recv max +",
                         "send before", "send after", "send jump"});
        for (std::size_t n : {25u, 50u, 100u, 200u, 400u, 800u}) {
          const geom::PointSet all = sim::figure1_instance(n, /*seed=*/7);
          const geom::PointSet cluster(all.begin(), all.end() - 1);
          const graph::Graph udg = graph::build_udg(cluster, 1.0);
          const graph::Graph topo = topology::mst_topology(cluster, udg);
          const core::NodeAdditionImpact impact = core::Assessor{}.assess_addition(
              cluster, topo, all.back(), core::AttachPolicy::kNearestNeighbor);
          table.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(impact.receiver_before)
              .cell(impact.receiver_after)
              .cell(impact.receiver_max_node_increase)
              .cell(impact.sender_before)
              .cell(impact.sender_after)
              .cell(impact.sender_after - impact.sender_before);
        }
        table.print(out);
        out << "\nReading: 'recv max +' stays <= 2 at every size while the\n"
               "sender-centric measure jumps to ~n, reproducing Figure 1's\n"
               "argument that the MobiHoc'04 measure is not robust.\n";
      });
  return 0;
}
