/// Ablation experiments for the design choices DESIGN.md calls out:
///  A. A_gen hub spacing: the paper's ⌈sqrt Δ⌉ against alternatives.
///  B. A_apx switching threshold: γ ≷ c · sqrt(Δ) for several c.
///  C. Local search rounds: marginal benefit per sweep.

#include <chrono>
#include <cmath>
#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/core/radii.hpp"
#include "rim/geom/grid_index.hpp"
#include "rim/graph/udg.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/critical.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/highway/local_search.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"EA", "Ablations: hub spacing, A_apx threshold, local-search budget",
       "Sections 5.2, 5.3 design choices",
       "⌈sqrt Δ⌉ spacing near-optimal; threshold c in [0.5, 2] robust"},
      std::cout, [](std::ostream& out) {
        // A. Hub spacing sweep on uniform highways.
        {
          const auto inst = sim::uniform_highway(800, 10.0, 7);
          const std::size_t delta = inst.max_degree(1.0);
          const auto default_spacing = static_cast<std::size_t>(
              std::ceil(std::sqrt(static_cast<double>(delta))));
          io::Table table({"spacing", "I(A_gen)", "note"});
          for (std::size_t spacing :
               {std::size_t{1}, default_spacing / 4, default_spacing / 2,
                default_spacing, default_spacing * 2, default_spacing * 4,
                delta}) {
            if (spacing == 0) continue;
            const auto result = highway::a_gen(inst, 1.0, spacing);
            table.row()
                .cell(static_cast<std::uint64_t>(spacing))
                .cell(highway::graph_interference_1d(inst, result.topology))
                .cell(spacing == default_spacing ? "<- paper's ceil(sqrt D)"
                                                 : "");
          }
          out << "-- A: A_gen hub spacing (uniform highway, n=800, Δ=" << delta
              << ")\n";
          table.print(out);
          out << "\nOn uniform instances small spacing approximates the linear\n"
                 "chain and wins — the ceil(sqrt Δ) choice optimises the WORST\n"
                 "case, which the exponential chain below exhibits:\n\n";

          const auto chain = highway::exponential_chain(1024);
          const std::size_t chain_delta = chain.max_degree(1.0);
          const auto chain_default = static_cast<std::size_t>(
              std::ceil(std::sqrt(static_cast<double>(chain_delta))));
          io::Table chain_table({"spacing", "I(A_gen)", "note"});
          for (std::size_t spacing :
               {std::size_t{1}, chain_default / 4, chain_default / 2,
                chain_default, chain_default * 2, chain_default * 4,
                chain_delta}) {
            if (spacing == 0) continue;
            const auto result = highway::a_gen(chain, 1.0, spacing);
            chain_table.row()
                .cell(static_cast<std::uint64_t>(spacing))
                .cell(highway::graph_interference_1d(chain, result.topology))
                .cell(spacing == chain_default ? "<- paper's ceil(sqrt D)"
                                               : "");
          }
          out << "-- A': A_gen hub spacing (exponential chain, n=1024, Δ="
              << chain_delta << ")\n";
          chain_table.print(out);
          out << '\n';
        }

        // B. A_apx switching threshold γ > c sqrt(Δ).
        {
          out << "-- B: A_apx threshold γ > c·sqrt(Δ): worst interference over "
                 "a mixed instance pool\n";
          std::vector<highway::HighwayInstance> pool;
          pool.push_back(sim::uniform_highway(400, 5.0, 1));
          pool.push_back(sim::uniform_highway(400, 40.0, 2));
          pool.push_back(highway::exponential_chain(256));
          pool.push_back(sim::perturbed_exponential_chain(256, 0.2, 3));
          pool.push_back(sim::blocked_highway(10, 40, 0.5, 1.0, 4));
          io::Table table({"c", "worst I", "mean I", "agen picks"});
          for (double c : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            std::vector<double> values;
            std::uint64_t picks = 0;
            for (const auto& inst : pool) {
              const std::uint32_t g = highway::gamma(inst, 1.0);
              const auto delta = static_cast<double>(inst.max_degree(1.0));
              graph::Graph topo;
              if (static_cast<double>(g) > c * std::sqrt(delta)) {
                topo = highway::a_gen(inst, 1.0).topology;
                ++picks;
              } else {
                topo = highway::linear_chain(inst, 1.0);
              }
              values.push_back(static_cast<double>(
                  highway::graph_interference_1d(inst, topo)));
            }
            const auto s = analysis::summarize(values);
            table.row().cell(c, 2).cell(s.max, 0).cell(s.mean, 1).cell(picks);
          }
          table.print(out);
          out << '\n';
        }

        // C. Local-search budget on a mid-size exponential chain.
        {
          const auto chain = highway::exponential_chain(20);
          const auto points = chain.to_points();
          const graph::Graph udg = chain.udg(1.0);
          const graph::Graph seed = highway::linear_chain(chain, 1.0);
          io::Table table({"rounds", "I(tree)", "swaps", "local optimum"});
          for (std::size_t rounds : {0u, 1u, 2u, 4u, 8u, 16u}) {
            highway::LocalSearchParams params;
            params.max_rounds = rounds;
            const auto result = highway::local_search_min_interference(
                points, udg, seed, params);
            table.row()
                .cell(static_cast<std::uint64_t>(rounds))
                .cell(result.interference)
                .cell(static_cast<std::uint64_t>(result.swaps_applied))
                .cell(result.reached_local_optimum);
          }
          out << "-- C: local-search budget (exponential chain n=20, seeded "
                 "from the linear chain)\n";
          table.print(out);
          out << '\n';
        }

        // D. Grid cell size in the interference evaluator: the library
        // keys cells to the median transmission radius; sweep multiples of
        // it and time the coverage queries.
        {
          const auto points = sim::uniform_square(20000, 40.0, 13);
          const graph::Graph udg = graph::build_udg(points, 1.0);
          const graph::Graph mst = topology::mst_topology(points, udg);
          const auto radii = core::transmission_radii(mst, points);
          std::vector<double> sorted(radii.begin(), radii.end());
          std::sort(sorted.begin(), sorted.end());
          const double median = sorted[sorted.size() / 2];
          io::Table table({"cell / median_r", "query time (ms)", "note"});
          for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 16.0}) {
            const geom::GridIndex index(points, median * factor);
            const auto start = std::chrono::steady_clock::now();
            std::uint64_t sink = 0;
            for (NodeId u = 0; u < points.size(); ++u) {
              if (radii[u] <= 0.0) continue;
              index.for_each_in_disk_squared(points[u], radii[u] * radii[u],
                                             [&](NodeId) { ++sink; });
            }
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
            // RIM_LINT_ALLOW(float-equality): factor iterates over exact
            // literal ablation settings; 1.0 labels the default row.
            const bool is_default = factor == 1.0;
            table.row().cell(factor, 2).cell(ms, 1).cell(
                is_default ? "<- library default" : "");
            (void)sink;
          }
          out << "-- D: interference-evaluator grid cell size (n=20000 "
                 "uniform, MST radii)\n";
          table.print(out);
        }
      });
  return 0;
}
