/// Experiment E3 — Theorem 4.1, Figures 3-5: the Nearest Neighbor Forest
/// (contained in essentially all classic topology-control outputs) suffers
/// interference Ω(n) on the two-exponential-chains instance, while an
/// explicit tree achieves O(1).

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/fit.hpp"
#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/topology/mst_topology.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E3", "NNF vs optimal tree on the two-exponential-chains instance",
       "Theorem 4.1; Figures 3, 4, 5",
       "I(NNF) grows ~ n/3 (leftmost node); optimal tree stays O(1)"},
      std::cout, [](std::ostream& out) {
        io::Table table({"m (h-nodes)", "n", "I(NNF)", "I(h0) NNF", "I(MST)",
                         "I(fig5 tree)", "NNF/opt ratio"});
        std::vector<double> ns;
        std::vector<double> nnf_values;
        for (std::size_t m : {4u, 8u, 16u, 32u, 64u, 128u}) {
          const sim::TwoChainInstance inst = sim::two_exponential_chains(m);
          const graph::Graph udg = graph::build_udg(inst.points, 1.0);
          const graph::Graph nnf =
              topology::nearest_neighbor_forest(inst.points, udg);
          const graph::Graph mst = topology::mst_topology(inst.points, udg);
          const graph::Graph fig5 = inst.low_interference_tree();
          const core::InterferenceSummary nnf_summary =
              core::Assessor{}.assess(nnf, inst.points);
          const std::uint32_t mst_i = core::graph_interference(mst, inst.points);
          const std::uint32_t opt_i = core::graph_interference(fig5, inst.points);
          table.row()
              .cell(static_cast<std::uint64_t>(m))
              .cell(static_cast<std::uint64_t>(inst.points.size()))
              .cell(nnf_summary.max)
              .cell(nnf_summary.per_node[inst.h[0]])
              .cell(mst_i)
              .cell(opt_i)
              .cell(static_cast<double>(nnf_summary.max) /
                        static_cast<double>(opt_i),
                    2);
          ns.push_back(static_cast<double>(inst.points.size()));
          nnf_values.push_back(static_cast<double>(nnf_summary.max));
        }
        table.print(out);
        const analysis::LinearFit fit = analysis::fit_power_law(ns, nnf_values);
        out << "\nlog-log fit of I(NNF) vs n: slope = " << fit.slope
            << " (R^2 = " << fit.r_squared << ") — linear growth, while the\n"
            << "Figure-5-style tree holds a constant, so the ratio is Ω(n).\n"
            << "The MST column shows a classic 'good' topology inheriting the\n"
            << "same Ω(n) because it contains the NNF.\n";
      });
  return 0;
}
