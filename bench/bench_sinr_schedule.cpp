/// Experiment E16 — does the paper's combinatorial measure predict physical
/// reality? For every topology of one instance: receiver-centric
/// interference I(G'), disk-model frame length, and SINR-model frame length
/// (minimum slots to fire every link once), plus the cross-topology
/// correlation. Reference point: [11] (Meyer auf de Heide et al.) ties
/// interference to congestion; Moscibroda et al. argue for SINR.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/core/interference.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/io/table.hpp"
#include "rim/phy/scheduling.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/registry.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E16", "Protocol-model interference vs physical-model schedulability",
       "Section 3 model discussion; references [11] and the SINR literature",
       "frame length (disk and SINR) grows with I(G'); rank order preserved"},
      std::cout, [](std::ostream& out) {
        // Part 1: topology zoo on one 2-D instance.
        {
          const auto points = sim::uniform_square(150, 3.0, 12);
          const graph::Graph udg = graph::build_udg(points, 1.0);
          io::Table table({"topology", "edges", "I recv", "frame(disk)",
                           "frame(SINR)"});
          std::vector<double> interference;
          std::vector<double> disk_frames;
          std::vector<double> sinr_frames;
          for (const auto& algorithm : topology::all_algorithms()) {
            const graph::Graph topo = algorithm.build(points, udg);
            const std::uint32_t i = core::graph_interference(topo, points);
            const std::size_t disk = phy::schedule_links_disk(topo, points).length();
            const std::size_t sinr = phy::schedule_links_sinr(topo, points).length();
            table.row()
                .cell(algorithm.name)
                .cell(static_cast<std::uint64_t>(topo.edge_count()))
                .cell(i)
                .cell(static_cast<std::uint64_t>(disk))
                .cell(static_cast<std::uint64_t>(sinr));
            interference.push_back(i);
            disk_frames.push_back(static_cast<double>(disk));
            sinr_frames.push_back(static_cast<double>(sinr));
          }
          out << "-- topology zoo, uniform n=150\n";
          table.print(out);
          out << "\ncorrelation I(G') vs frame length: disk "
              << analysis::pearson(interference, disk_frames) << ", SINR "
              << analysis::pearson(interference, sinr_frames) << "\n\n";
        }

        // Part 2: the exponential chain across sizes — frame length follows
        // the Θ(n) vs Θ(sqrt n) separation of Section 5.
        {
          io::Table table({"n", "I(linear)", "frame(linear)", "I(A_exp)",
                           "frame(A_exp)"});
          for (std::size_t n : {16u, 32u, 64u, 128u}) {
            const auto chain = highway::exponential_chain(n);
            const auto points = chain.to_points();
            const graph::Graph linear = highway::linear_chain(chain, 1.0);
            const graph::Graph aexp = highway::a_exp(chain).topology;
            table.row()
                .cell(static_cast<std::uint64_t>(n))
                .cell(core::graph_interference(linear, points))
                .cell(static_cast<std::uint64_t>(
                    phy::schedule_links_disk(linear, points).length()))
                .cell(core::graph_interference(aexp, points))
                .cell(static_cast<std::uint64_t>(
                    phy::schedule_links_disk(aexp, points).length()));
          }
          out << "-- exponential chain: one-shot frame length saturates\n";
          table.print(out);
          out << "\nNote: on the exponential chain EVERY link's disk covers\n"
                 "the left end of the chain, so all links pairwise conflict\n"
                 "and one-shot scheduling serialises to m = n-1 slots for\n"
                 "both topologies — frame length measures per-shot\n"
                 "concurrency, while I(G') bounds how many transmitters can\n"
                 "disturb one receiver. The zoo correlation above shows they\n"
                 "agree when geometry leaves room for concurrency; this\n"
                 "instance shows where they intentionally differ.\n";
        }
      });
  return 0;
}
