/// Experiment E15 — longitudinal robustness: interference trajectories of
/// both models under continuous node churn (arrivals/departures with
/// topology recomputation), the dynamic version of the Figure 1 argument.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/churn.hpp"
#include "rim/topology/registry.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E15", "Interference trajectories under node churn",
       "Introduction & Section 3 (robustness)",
       "receiver-centric trajectory moves in small steps; sender-centric "
       "spikes when bridge links appear"},
      std::cout, [](std::ostream& out) {
        io::Table table({"topology", "events", "recv mean", "recv max jump",
                         "send mean", "send max jump"});
        for (const char* name : {"mst", "gabriel", "lmst", "life", "hub2d"}) {
          const auto* algorithm = topology::find_algorithm(name);
          sim::ChurnConfig config;
          config.initial_nodes = 80;
          config.events = 120;
          config.side = 2.5;
          config.seed = 17;
          const sim::ChurnTrace trace = sim::run_churn(config, algorithm->build);
          std::vector<double> recv;
          std::vector<double> send;
          for (const sim::ChurnStep& step : trace.steps) {
            recv.push_back(step.receiver_max);
            send.push_back(step.sender_max);
          }
          table.row()
              .cell(name)
              .cell(static_cast<std::uint64_t>(config.events))
              .cell(analysis::summarize(recv).mean, 1)
              .cell(trace.max_receiver_jump())
              .cell(analysis::summarize(send).mean, 1)
              .cell(trace.max_sender_jump());
        }
        table.print(out);

        // A Figure-1-style churn scenario: a dense cluster where 15% of
        // arrivals are outliers forcing bridge links — the sender-centric
        // trajectory spikes by ~cluster size, the receiver one stays calm.
        sim::ChurnConfig config;
        config.initial_nodes = 60;
        config.events = 120;
        config.side = 0.4;  // dense cluster
        config.outlier_probability = 0.15;
        config.seed = 23;
        const auto* mst = topology::find_algorithm("mst");
        const sim::ChurnTrace trace = sim::run_churn(config, mst->build);
        out << "\ncluster+outlier churn (mst, 15% outlier arrivals): "
            << "recv max jump = " << trace.max_receiver_jump()
            << ", send max jump = " << trace.max_sender_jump() << "\n";
      });
  return 0;
}
