/// Experiment E4 — Figures 6 and 7: the linearly connected exponential node
/// chain. Every node but the rightmost covers the leftmost node, so
/// interference is n - 2 there; the per-node profile reproduces Figure 7's
/// node labels.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/core/radii.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/io/table.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E4", "Linearly connected exponential node chain",
       "Figures 6 and 7; Section 5.1",
       "per-node interference n-2, n-2, ..., decreasing to the right"},
      std::cout, [](std::ostream& out) {
        // Figure 7 reproduction: the per-node interference labels for n=8.
        const std::size_t kFigureN = 8;
        const auto chain = highway::exponential_chain(kFigureN);
        const graph::Graph topo = highway::linear_chain(chain, 1.0);
        const auto points = chain.to_points();
        const auto radii = core::transmission_radii(topo, points);
        const auto per_node = highway::interference_1d(chain.positions(), radii);
        io::Table profile({"node", "position", "radius", "I(v)"});
        for (NodeId v = 0; v < kFigureN; ++v) {
          profile.row()
              .cell(static_cast<std::uint64_t>(v))
              .cell(chain.position(v), 5)
              .cell(radii[v], 5)
              .cell(per_node[v]);
        }
        profile.print(out);

        out << "\nScaling of I(G_lin) with n (expected exactly n - 2):\n";
        io::Table scaling({"n", "I(linear chain)", "n-2"});
        for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
          const auto c = highway::exponential_chain(n);
          const std::uint32_t interference =
              highway::graph_interference_1d(c, highway::linear_chain(c, 1.0));
          scaling.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(interference)
              .cell(static_cast<std::uint64_t>(n - 2));
        }
        scaling.print(out);
      });
  return 0;
}
