/// Experiment E6 — Theorem 5.2: sqrt(n) is a lower bound for the
/// exponential node chain. For n <= 9 we enumerate every labeled spanning
/// tree (Cayley: n^(n-2)) and report the true optimum next to the
/// closed-form bound and A_exp's achieved value.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/exact_optimum.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/io/table.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E6", "Exact optimum vs the Theorem 5.2 lower bound",
       "Theorem 5.2; Section 5.1",
       "lower bound <= OPT <= I(A_exp) <= Theorem 5.1 upper bound"},
      std::cout, [](std::ostream& out) {
        io::Table table({"n", "trees searched", "OPT", "thm5.2 lower",
                         "I(A_exp)", "thm5.1 upper", "A_exp/OPT"});
        for (std::size_t n = 2; n <= 9; ++n) {
          const auto chain = highway::exponential_chain(n);
          const auto points = chain.to_points();
          const auto exact = highway::exact_minimum_interference_tree(
              points, chain.udg(1.0));
          const highway::AExpResult aexp = highway::a_exp(chain);
          table.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(exact->trees_considered)
              .cell(exact->interference)
              .cell(highway::exponential_chain_lower_bound(n))
              .cell(aexp.interference)
              .cell(highway::aexp_upper_bound(n))
              .cell(static_cast<double>(aexp.interference) /
                        static_cast<double>(exact->interference),
                    2);
        }
        table.print(out);
        out << "\nEvery row satisfies lower <= OPT <= A_exp <= upper; A_exp is\n"
               "asymptotically optimal (Theorems 5.1 + 5.2).\n\n"
               "Branch-and-bound extends the exact frontier past Prüfer\n"
               "enumeration (n^(n-2) trees would be ~10^10 at n = 12):\n";
        io::Table bb_table({"n", "states", "proven", "OPT", "thm5.2 lower",
                            "I(A_exp)"});
        for (std::size_t n = 10; n <= 12; ++n) {
          const auto chain = highway::exponential_chain(n);
          const auto points = chain.to_points();
          const highway::AExpResult aexp = highway::a_exp(chain);
          const auto bb = highway::exact_minimum_interference_tree_bb(
              points, chain.udg(1.0), 100'000'000, aexp.interference + 1);
          bb_table.row()
              .cell(static_cast<std::uint64_t>(n))
              .cell(bb->states_visited)
              .cell(bb->proven)
              .cell(bb->interference)
              .cell(highway::exponential_chain_lower_bound(n))
              .cell(aexp.interference);
        }
        bb_table.print(out);
      });
  return 0;
}
