/// Experiment E9 — Section 4's claim quantified: the interference of every
/// classic topology-control construction on random 2-D deployments, side by
/// side with spanner quality, degree, and power, in both interference
/// models.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/stretch.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/registry.hpp"

namespace {

void survey(std::ostream& out, const char* title,
            const std::vector<rim::geom::PointSet>& instances) {
  using namespace rim;
  out << title << '\n';
  io::Table table({"algorithm", "I recv (max)", "I recv (mean)", "I send (max)",
                   "deg max", "edges", "stretch max", "power", "connected"});
  for (const auto& algorithm : topology::all_algorithms()) {
    std::vector<double> recv_max;
    std::vector<double> recv_mean;
    std::vector<double> send_max;
    std::vector<double> deg;
    std::vector<double> edges;
    std::vector<double> stretch;
    std::vector<double> power;
    bool connected = true;
    for (const auto& points : instances) {
      const graph::Graph udg = graph::build_udg(points, 1.0);
      const graph::Graph topo = algorithm.build(points, udg);
      const core::InterferenceSummary recv =
          core::Assessor{}.assess(topo, points);
      recv_max.push_back(recv.max);
      recv_mean.push_back(recv.mean);
      send_max.push_back(core::evaluate_sender_centric(topo, points).max);
      deg.push_back(static_cast<double>(topo.max_degree()));
      edges.push_back(static_cast<double>(topo.edge_count()));
      const auto report = graph::measure_stretch(udg, topo, points);
      stretch.push_back(report.max_euclidean_stretch);
      power.push_back(
          core::total_power(core::transmission_radii(topo, points), 2.0));
      connected = connected && graph::preserves_connectivity(udg, topo);
    }
    table.row()
        .cell(algorithm.name)
        .cell(analysis::summarize(recv_max).mean, 1)
        .cell(analysis::summarize(recv_mean).mean, 2)
        .cell(analysis::summarize(send_max).mean, 1)
        .cell(analysis::summarize(deg).mean, 1)
        .cell(analysis::summarize(edges).mean, 0)
        .cell(analysis::summarize(stretch).mean, 2)
        .cell(analysis::summarize(power).mean, 2)
        .cell(connected);
  }
  table.print(out);
  out << '\n';
}

}  // namespace

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E9", "Interference survey of classic topology-control algorithms",
       "Section 4 (claim that known algorithms interfere); Theorem 4.1",
       "NNF-containing topologies cluster together; LIFE optimises the wrong "
       "(sender-centric) measure"},
      std::cout, [](std::ostream& out) {
        std::vector<geom::PointSet> uniform;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
          uniform.push_back(sim::uniform_square(200, 4.0, seed));
        }
        survey(out, "-- uniform deployments (n=200, 4x4, 5 seeds)", uniform);

        std::vector<geom::PointSet> clustered;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
          clustered.push_back(sim::gaussian_clusters(200, 5, 4.0, 0.25, seed));
        }
        survey(out, "-- clustered deployments (n=200, 5 clusters, 5 seeds)",
               clustered);

        std::vector<geom::PointSet> adversarial;
        adversarial.push_back(sim::two_exponential_chains(40).points);
        survey(out, "-- two-exponential-chains instance (m=40)", adversarial);
      });
  return 0;
}
