/// Experiment E17 — distributed executions of the local topology-control
/// algorithms: rounds, messages, and payload volume in the LOCAL model over
/// the UDG, with the distributed results verified against the centralized
/// constructions. (XTC's 1-round / O(m)-message execution is its selling
/// point in the paper's related work.)

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/core/interference.hpp"
#include "rim/dist/protocols.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/lmst.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"
#include "rim/topology/xtc.hpp"

namespace {

bool same_edges(const rim::graph::Graph& a, const rim::graph::Graph& b) {
  if (a.edge_count() != b.edge_count()) return false;
  for (rim::graph::Edge e : a.edges()) {
    if (!b.has_edge(e.u, e.v)) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E17", "Message complexity of distributed topology control",
       "Section 2 related work (XTC, LMST as local algorithms)",
       "NNF/XTC: 1 round, 2m messages; LMST: 2 rounds, + <= 6n notices; "
       "distributed == centralized"},
      std::cout, [](std::ostream& out) {
        io::Table table({"protocol", "n", "UDG edges", "rounds", "messages",
                         "payload (doubles)", "I(result)", "== centralized"});
        for (std::size_t n : {100u, 400u, 1600u}) {
          const double side = std::sqrt(static_cast<double>(n) / 16.0);
          const auto points = sim::uniform_square(n, side, 7);
          const graph::Graph udg = graph::build_udg(points, 1.0);

          {
            dist::DistributedNnf protocol(points, udg);
            const auto stats = dist::run_protocol(udg, protocol);
            const graph::Graph result = protocol.result();
            table.row()
                .cell("nnf")
                .cell(static_cast<std::uint64_t>(n))
                .cell(static_cast<std::uint64_t>(udg.edge_count()))
                .cell(static_cast<std::uint64_t>(stats.rounds))
                .cell(stats.messages)
                .cell(stats.payload_doubles)
                .cell(core::graph_interference(result, points))
                .cell(same_edges(result,
                                 topology::nearest_neighbor_forest(points, udg)));
          }
          {
            dist::DistributedXtc protocol(points, udg);
            const auto stats = dist::run_protocol(udg, protocol);
            const graph::Graph result = protocol.result();
            table.row()
                .cell("xtc")
                .cell(static_cast<std::uint64_t>(n))
                .cell(static_cast<std::uint64_t>(udg.edge_count()))
                .cell(static_cast<std::uint64_t>(stats.rounds))
                .cell(stats.messages)
                .cell(stats.payload_doubles)
                .cell(core::graph_interference(result, points))
                .cell(same_edges(result, topology::xtc(points, udg)));
          }
          {
            dist::DistributedLmst protocol(points, udg, 1.0);
            const auto stats = dist::run_protocol(udg, protocol);
            const graph::Graph result = protocol.result();
            table.row()
                .cell("lmst")
                .cell(static_cast<std::uint64_t>(n))
                .cell(static_cast<std::uint64_t>(udg.edge_count()))
                .cell(static_cast<std::uint64_t>(stats.rounds))
                .cell(stats.messages)
                .cell(stats.payload_doubles)
                .cell(core::graph_interference(result, points))
                .cell(same_edges(result, topology::lmst(points, udg)));
          }
        }
        table.print(out);
      });
  return 0;
}
