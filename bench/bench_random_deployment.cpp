/// Experiment E23 — million-node random-deployment validation: one seeded
/// uniform deployment per tier n ∈ {10k, 100k, 1M} (constant density, NNF
/// topology), evaluated under all three interference models in one process
/// — receiver-centric (the paper's), sender-centric (MobiHoc'04), and the
/// SINR physical comparator (DESIGN.md §12). The receiver-centric maximum
/// is checked against the Devroye–Morin-style O(sqrt(n log n)) bound as a
/// calibrated upper envelope plus a log-log growth-exponent fit; the SINR
/// SIMD and scalar kernel paths must produce bit-identical power
/// checksums at every tier. The registry snapshot lands in BENCH_8.json.
///
/// An optional argv[1] caps the largest tier (CI's PR legs run the 100k
/// smoke tier; the nightly scale job runs the full million).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/fit.hpp"
#include "rim/core/assessor.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/core/sinr.hpp"
#include "rim/io/table.hpp"
#include "rim/obs/registry.hpp"
#include "rim/sim/random_deployment.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - start)
                 .count()) /
         1e6;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream s;
  s << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
  return s.str();
}

struct TierResult {
  std::size_t nodes = 0;
  std::uint32_t receiver_max = 0;
  std::uint32_t sender_max = 0;
  std::uint32_t sinr_max = 0;
  double sinr_max_power = 0.0;
  std::uint64_t sinr_checksum = 0;
  bool sinr_checksums_identical = false;
  double receiver_ms = 0.0;
  double sender_ms = 0.0;
  double sinr_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_nodes = 1000000;
  if (argc > 1) max_nodes = std::strtoull(argv[1], nullptr, 10);

  bool ok = true;
  analysis::run_experiment(
      {"E23", "Million-node random deployment under three models",
       "PAPERS.md: Devroye-Morin bounds for random point sets; Aslanyan "
       "(physical model); MobiHoc'04 (sender-centric)",
       "receiver-centric max interference on uniform deployments stays "
       "within a calibrated c*sqrt(n ln n) envelope with growth exponent "
       "well below 0.5, while the SINR comparator's SIMD and scalar "
       "kernels agree bit-identically"},
      std::cout, [&](std::ostream& out) {
        constexpr std::uint64_t kSeed = 97;
        constexpr double kDensity = 12.5;  // nodes per unit square
        const std::size_t all_tiers[] = {10000, 100000, 1000000};

        std::vector<TierResult> tiers;
        bool checksums_ok = true;
        for (const std::size_t n : all_tiers) {
          if (n > max_nodes) continue;
          TierResult tier;
          tier.nodes = n;
          const double side = std::sqrt(static_cast<double>(n) / kDensity);
          const sim::RandomDeployment deployment(
              sim::RandomDeployment::Params{}
                  .with_kind(sim::RandomDeployment::Kind::kUniform)
                  .with_nodes(n)
                  .with_side(side),
              kSeed);
          const geom::PointSet points = deployment.generate();
          const graph::Graph nnf = topology::nearest_neighbor_forest(points);

          // One options object per deployment: the three models differ only
          // in with_model, so they assess the identical instance.
          const core::EvalOptions base =
              core::EvalOptions{}.with_strategy(core::Strategy::kGrid);
          const core::Assessor assessor;

          auto t0 = Clock::now();
          const core::InterferenceSummary receiver =
              assessor.assess(nnf, points, base);
          tier.receiver_ms = ms_since(t0);
          tier.receiver_max = receiver.max;

          t0 = Clock::now();
          core::EvalOptions sender_opts = base;
          const core::InterferenceSummary sender = assessor.assess(
              nnf, points, sender_opts.with_model(core::Model::kSenderCentric));
          tier.sender_ms = ms_since(t0);
          tier.sender_max = sender.max;

          // SINR through the SinrAssessor directly for the power column and
          // the checksum, then the scalar-twin replay for bit-identity.
          t0 = Clock::now();
          core::EvalOptions sinr_opts = base;
          sinr_opts.with_model(core::Model::kSinr);
          const core::SinrAssessor sinr_assessor(sinr_opts);
          const std::vector<double> radii2 =
              core::transmission_radii_squared(nnf, points);
          core::NodeSoA nodes;
          nodes.reserve(n);
          for (std::size_t v = 0; v < n; ++v) {
            nodes.insert(static_cast<NodeId>(v), points[v], radii2[v]);
          }
          const core::SinrSummary sinr = sinr_assessor.assess(nodes);
          tier.sinr_ms = ms_since(t0);
          tier.sinr_max = sinr.max;
          tier.sinr_max_power = sinr.max_power;
          tier.sinr_checksum = sinr.power_checksum;

          const core::SinrSummary sinr_scalar = sinr_assessor.assess_scalar(nodes);
          tier.sinr_checksums_identical =
              sinr.power_checksum == sinr_scalar.power_checksum &&
              sinr.max == sinr_scalar.max && sinr.total == sinr_scalar.total;
          checksums_ok = checksums_ok && tier.sinr_checksums_identical;

          tiers.push_back(tier);
        }

        io::Table table({"nodes", "recv max", "send max", "sinr max",
                         "sinr max power", "recv ms", "send ms", "sinr ms"});
        for (const TierResult& t : tiers) {
          table.row()
              .cell(t.nodes)
              .cell(t.receiver_max)
              .cell(t.sender_max)
              .cell(t.sinr_max)
              .cell(t.sinr_max_power, 6)
              .cell(t.receiver_ms, 1)
              .cell(t.sender_ms, 1)
              .cell(t.sinr_ms, 1);
        }
        table.print(out);
        out << "deployment seed " << kSeed << ", density " << kDensity
            << " nodes/unit^2, NNF topology; largest tier "
            << (tiers.empty() ? 0 : tiers.back().nodes) << " nodes\n";
        for (const TierResult& t : tiers) {
          out << "sinr power checksum @" << t.nodes << ": "
              << hex64(t.sinr_checksum) << "\n";
        }

        // --- Devroye-Morin envelope: calibrate c at the smallest tier with
        // a 2x safety factor, then demand every larger tier stays under
        // c * sqrt(n ln n). NNF maxima on uniform deployments grow far
        // slower than the bound, so the envelope is a one-sided robustness
        // check, not a tight band; the exponent fit below pins the shape.
        const auto bound = [](std::size_t n) {
          const auto dn = static_cast<double>(n);
          return std::sqrt(dn * std::log(dn));
        };
        bool envelope_ok = true;
        double calibrated_c = 0.0;
        double exponent = 0.0;
        if (tiers.size() >= 2) {
          calibrated_c = 2.0 * static_cast<double>(tiers[0].receiver_max) /
                         bound(tiers[0].nodes);
          for (std::size_t i = 1; i < tiers.size(); ++i) {
            const double limit = calibrated_c * bound(tiers[i].nodes);
            if (static_cast<double>(tiers[i].receiver_max) > limit) {
              envelope_ok = false;
              out << "envelope violated @" << tiers[i].nodes << ": max "
                  << tiers[i].receiver_max << " > " << limit << "\n";
            }
          }
          std::vector<double> xs, ys;
          for (const TierResult& t : tiers) {
            xs.push_back(static_cast<double>(t.nodes));
            ys.push_back(static_cast<double>(t.receiver_max));
          }
          exponent = analysis::fit_power_law(xs, ys).slope;
          out << "receiver-centric growth: calibrated c = " << calibrated_c
              << ", fitted exponent " << exponent
              << " (sqrt(n log n) bound would be ~0.5+)\n";
        }

        // --- Registry snapshot => BENCH_8.json artifact. ---
        {
          io::JsonObject bench;
          bench["experiment"] = io::Json(std::string("E23"));
          bench["seed"] = io::Json(kSeed);
          bench["density"] = io::Json(kDensity);
          bench["max_nodes"] = io::Json(max_nodes);
          io::JsonArray tier_docs;
          for (const TierResult& t : tiers) {
            io::JsonObject doc;
            doc["nodes"] = io::Json(t.nodes);
            doc["receiver_max"] = io::Json(t.receiver_max);
            doc["sender_max"] = io::Json(t.sender_max);
            doc["sinr_max"] = io::Json(t.sinr_max);
            doc["sinr_max_power"] = io::Json(t.sinr_max_power);
            doc["sinr_power_checksum"] = io::Json(hex64(t.sinr_checksum));
            doc["receiver_ms"] = io::Json(t.receiver_ms);
            doc["sender_ms"] = io::Json(t.sender_ms);
            doc["sinr_ms"] = io::Json(t.sinr_ms);
            tier_docs.push_back(io::Json(std::move(doc)));
          }
          bench["tiers"] = io::Json(std::move(tier_docs));
          bench["envelope_c"] = io::Json(calibrated_c);
          bench["growth_exponent"] = io::Json(exponent);
          // Throughput metric for the trajectory gate: largest-tier nodes
          // assessed per second, summed across the three models.
          if (!tiers.empty()) {
            const TierResult& top = tiers.back();
            const double total_ms = top.receiver_ms + top.sender_ms + top.sinr_ms;
            bench["nodes_per_second_all_models"] = io::Json(
                total_ms > 0.0 ? 3.0 * static_cast<double>(top.nodes) /
                                     (total_ms / 1000.0)
                               : 0.0);
          }
          analysis::stamp_bench(bench);
          obs::Registry::global().add_source(
              "bench", [b = io::Json(std::move(bench))] { return b; });
          std::ofstream file("BENCH_8.json");
          file << obs::Registry::global().snapshot().dump() << "\n";
          out << "metrics snapshot written to BENCH_8.json\n";
        }

        if (checksums_ok && !tiers.empty()) {
          out << "ACCEPTANCE: simd/scalar sinr checksums identical PASS\n";
        } else {
          out << "ACCEPTANCE: simd/scalar sinr checksums identical FAIL\n";
          ok = false;
        }
        if (tiers.size() < 2) {
          out << "ACCEPTANCE: receiver-centric max within c*sqrt(n log n) "
                 "envelope SKIPPED (single tier)\n";
          out << "ACCEPTANCE: growth exponent <= 0.55 SKIPPED (single "
                 "tier)\n";
        } else {
          if (envelope_ok) {
            out << "ACCEPTANCE: receiver-centric max within c*sqrt(n log n) "
                   "envelope PASS\n";
          } else {
            out << "ACCEPTANCE: receiver-centric max within c*sqrt(n log n) "
                   "envelope FAIL\n";
            ok = false;
          }
          if (exponent <= 0.55) {
            out << "ACCEPTANCE: growth exponent <= 0.55 PASS (" << exponent
                << ")\n";
          } else {
            out << "ACCEPTANCE: growth exponent <= 0.55 FAIL (" << exponent
                << ")\n";
            ok = false;
          }
        }
      });
  return ok ? 0 : 1;
}
