/// Experiment E11 — sender- vs receiver-centric models under node churn:
/// distribution of the interference increase caused by one added node,
/// across instance families and insertion points.

#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/core/assessor.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/mst_topology.hpp"

namespace {

struct Family {
  const char* name;
  std::function<rim::geom::PointSet(std::uint64_t)> make;
};

}  // namespace

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E11", "Node-churn robustness across instance families",
       "Introduction; Section 3 (robustness property)",
       "receiver-centric per-node increase <= 2 always; sender-centric jump "
       "unbounded (grows with n on cluster+outlier instances)"},
      std::cout, [](std::ostream& out) {
        std::vector<Family> families;
        families.push_back(
            {"uniform 2-D", [](std::uint64_t s) {
               return sim::uniform_square(120, 2.5, s);
             }});
        families.push_back(
            {"clustered 2-D", [](std::uint64_t s) {
               return sim::gaussian_clusters(120, 4, 2.5, 0.2, s);
             }});
        families.push_back(
            {"fig1 cluster", [](std::uint64_t s) {
               const auto all = sim::figure1_instance(120, s);
               return geom::PointSet(all.begin(), all.end() - 1);
             }});

        io::Table table({"family", "insertions", "recv + (mean)",
                         "recv + (max)", "send jump (mean)", "send jump (max)"});
        for (const Family& family : families) {
          std::vector<double> recv_increases;
          std::vector<double> send_jumps;
          for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            const geom::PointSet points = family.make(seed);
            const graph::Graph udg = graph::build_udg(points, 1.0);
            const graph::Graph topo = topology::mst_topology(points, udg);
            sim::Rng rng(seed * 101);
            for (int trial = 0; trial < 8; ++trial) {
              // Mix random in-region spots with the adversarial far spot.
              const geom::Vec2 spot =
                  trial == 0
                      ? geom::Vec2{points[0].x + 0.98, points[0].y}
                      : geom::Vec2{rng.uniform(-0.5, 3.0), rng.uniform(-0.5, 3.0)};
              const auto impact = core::Assessor{}.assess_addition(
                  points, topo, spot, core::AttachPolicy::kNearestNeighbor);
              recv_increases.push_back(impact.receiver_max_node_increase);
              send_jumps.push_back(
                  impact.sender_after > impact.sender_before
                      ? static_cast<double>(impact.sender_after -
                                            impact.sender_before)
                      : 0.0);
            }
          }
          const auto recv = analysis::summarize(recv_increases);
          const auto send = analysis::summarize(send_jumps);
          table.row()
              .cell(family.name)
              .cell(static_cast<std::uint64_t>(recv_increases.size()))
              .cell(recv.mean, 2)
              .cell(recv.max, 0)
              .cell(send.mean, 2)
              .cell(send.max, 0);
        }
        table.print(out);
        out << "\nThe receiver-centric 'max increase' column never exceeds 2\n"
               "(one for the newcomer's disk, one for its partner's grown\n"
               "disk); the sender-centric jump scales with the cluster size.\n";
      });
  return 0;
}
