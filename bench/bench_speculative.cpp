/// Experiment E22 — optimistic speculative batch execution: replaying a
/// spatially local churn trace against a 100k-node post-churn store under
/// the three execution modes of EvalOptions (serial, conflict waves,
/// speculative with rollback). Exactness is asserted unconditionally: the
/// FNV-1a digest of the final interference vector must be identical across
/// all three replays (the commit-order determinism argument, DESIGN.md
/// §11). Speedup acceptance is gated on a multi-core host, mirroring E21;
/// the observability registry snapshot is written to BENCH_7.json.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "local_trace.hpp"
#include "rim/analysis/experiment.hpp"
#include "rim/core/scenario.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/obs/registry.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

struct ModeResult {
  double ms = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t deferred = 0;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t replay_rounds = 0;
  std::uint64_t serial_tasks = 0;
};

/// Replay \p trace through one scenario configured for \p execution,
/// timing only the post-warmup batches (the store is "post-churn" by then:
/// slot order, grid occupancy, and radii all reflect sustained mutation).
ModeResult replay(const geom::PointSet& points, const graph::Graph& topology,
                  core::Execution execution, parallel::ThreadPool* pool,
                  const std::vector<std::vector<core::Mutation>>& trace,
                  std::size_t warmup_batches) {
  core::Scenario scenario(
      points, topology, core::EvalOptions{}.with_execution(execution));
  (void)scenario.interference();
  ModeResult result;
  for (std::size_t b = 0; b < trace.size(); ++b) {
    if (b == warmup_batches) {
      const auto t0 = Clock::now();
      for (std::size_t m = b; m < trace.size(); ++m) {
        const core::BatchResult r = scenario.apply_batch(trace[m], pool);
        result.deferred += r.deferred;
        result.committed += r.spec_committed;
        result.rolled_back += r.spec_rolled_back;
        result.replay_rounds += r.spec_replay_rounds;
        result.serial_tasks += r.spec_serial_tasks;
        (void)scenario.interference();
      }
      result.ms = ns_since(t0) / 1e6;
      break;
    }
    (void)scenario.apply_batch(trace[b], pool);
  }
  result.checksum = bench::fnv1a_interference(scenario.interference());
  return result;
}

}  // namespace

int main() {
  bool ok = true;
  analysis::run_experiment(
      {"E22", "Speculative batch execution with rollback",
       "Section 3 (Definition 3.1/3.2); commuting unit disk deltas",
       "optimistic execution commits conflict-free tasks without wave "
       "barriers, stays bit-identical to serial under rollback, and beats "
       "the serial replay >= 1.5x on a multi-core host"},
      std::cout, [&](std::ostream& out) {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

        // Low-conflict workload: constant density (~12.5 nodes per unit
        // square), MST topology, spatially local churn — the same network
        // family as E19, so disk footprints are small and mostly disjoint.
        const std::size_t n = 100000;
        const std::size_t batch_size = 256;
        const std::size_t warmup_batches = 8;
        const std::size_t timed_batches = 24;
        const double side = std::sqrt(static_cast<double>(n) / 12.5);
        const geom::PointSet points = sim::uniform_square(n, side, 42);
        const graph::Graph udg = graph::build_udg(points, 1.0);
        const graph::Graph mst = topology::mst_topology(points, udg);

        bench::LocalTrace gen(points, side, 1234);
        std::vector<std::vector<core::Mutation>> trace;
        trace.reserve(warmup_batches + timed_batches);
        for (std::size_t b = 0; b < warmup_batches + timed_batches; ++b) {
          trace.push_back(gen.next_batch(batch_size));
        }

        parallel::ThreadPool& pool = parallel::ThreadPool::shared();
        const ModeResult serial = replay(points, mst, core::Execution::kSerial,
                                         nullptr, trace, warmup_batches);
        const ModeResult wave = replay(points, mst, core::Execution::kWave,
                                       &pool, trace, warmup_batches);
        const ModeResult spec =
            replay(points, mst, core::Execution::kSpeculative, &pool, trace,
                   warmup_batches);

        // Exactness first, unconditionally: identical FNV-1a digests of the
        // final interference vector across all three executions.
        if (serial.checksum != wave.checksum ||
            serial.checksum != spec.checksum) {
          out << "EXACTNESS: execution modes diverged (serial "
              << serial.checksum << ", wave " << wave.checksum
              << ", speculative " << spec.checksum << ")\n";
          ok = false;
          return;
        }
        out << "exactness: serial/wave/speculative FNV-1a interference "
               "checksums identical ("
            << serial.checksum << ")\n";

        io::Table table({"mode", "timed ms", "speedup", "committed",
                         "rolled back", "replay rounds", "serial tail"});
        const auto add_row = [&](const char* mode, const ModeResult& r) {
          io::Table& row = table.row().cell(mode).cell(r.ms, 1);
          if (hw < 4) {
            row.cell("skipped (<4 cores)");
          } else {
            row.cell(serial.ms / r.ms, 2);
          }
          row.cell(r.committed)
              .cell(r.rolled_back)
              .cell(r.replay_rounds)
              .cell(r.serial_tasks);
        };
        add_row("serial", serial);
        add_row("wave", wave);
        add_row("speculative", spec);
        table.print(out);
        out << "deferred batches: serial " << serial.deferred << ", wave "
            << wave.deferred << ", speculative " << spec.deferred << "\n";

        const double spec_speedup = serial.ms / spec.ms;
        const double wave_speedup = serial.ms / wave.ms;

        // --- Registry snapshot => BENCH_7.json artifact. ---
        {
          io::JsonObject bench_doc;
          bench_doc["experiment"] = io::Json(std::string("E22"));
          bench_doc["hardware_threads"] = io::Json(hw);
          bench_doc["nodes"] = io::Json(n);
          bench_doc["batch_size"] = io::Json(batch_size);
          bench_doc["timed_batches"] = io::Json(timed_batches);
          bench_doc["serial_ms"] = io::Json(serial.ms);
          bench_doc["wave_ms"] = io::Json(wave.ms);
          bench_doc["speculative_ms"] = io::Json(spec.ms);
          // On a <4-core host the timings are scheduler noise; the flag
          // tells consumers the speedups are not meaningful there.
          bench_doc["speedup_skipped"] = io::Json(hw < 4);
          bench_doc["wave_speedup"] = io::Json(hw < 4 ? 0.0 : wave_speedup);
          bench_doc["speculative_speedup"] =
              io::Json(hw < 4 ? 0.0 : spec_speedup);
          bench_doc["interference_checksum"] =
              io::Json(static_cast<double>(serial.checksum));
          bench_doc["spec_committed"] = io::Json(spec.committed);
          bench_doc["spec_rolled_back"] = io::Json(spec.rolled_back);
          bench_doc["spec_replay_rounds"] = io::Json(spec.replay_rounds);
          bench_doc["spec_serial_tasks"] = io::Json(spec.serial_tasks);
          analysis::stamp_bench(bench_doc);
          obs::Registry::global().add_source(
              "bench", [b = io::Json(std::move(bench_doc))] { return b; });
          std::ofstream file("BENCH_7.json");
          file << obs::Registry::global().snapshot().dump() << "\n";
          out << "metrics snapshot written to BENCH_7.json\n";
        }

        if (hw < 4) {
          out << "ACCEPTANCE: speculative speedup >= 1.5x serial SKIPPED ("
              << hw << " hardware threads < 4)\n";
        } else if (spec_speedup >= 1.5) {
          out << "ACCEPTANCE: speculative speedup >= 1.5x serial PASS ("
              << spec_speedup << "x)\n";
        } else {
          out << "ACCEPTANCE: speculative speedup >= 1.5x serial FAIL ("
              << spec_speedup << "x)\n";
          ok = false;
        }
      });
  return ok ? 0 : 1;
}
