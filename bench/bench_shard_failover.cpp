/// Experiment E24 — sharded serving with transparent failover: 64 tenants
/// spread by consistent hashing across 4 backend shards behind one
/// rim::shard::Router, replaying the identical interleaved mutation
/// trajectory on two twin clusters. Halfway through, one twin has a whole
/// backend killed mid-run. Acceptance: every remaining command still
/// succeeds, the final per-tenant interference answers are byte-identical
/// (FNV-1a checksummed) to the unkilled twin's, and zero sessions are
/// lost. The router registry snapshot is written to BENCH_9.json.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rim/analysis/experiment.hpp"
#include "rim/io/json.hpp"
#include "rim/io/table.hpp"
#include "rim/shard/hash_ring.hpp"
#include "rim/shard/router.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

namespace {

using namespace rim;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBackends = 4;
constexpr std::size_t kTenants = 64;
constexpr std::size_t kRounds = 12;
constexpr std::size_t kKillAtRound = kRounds / 2;
constexpr std::size_t kShipEvery = 4;  // exercises adopt + journal replay

double ms_since(Clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - start)
                                 .count()) /
         1000.0;
}

/// Loopback transport with a kill switch: once tripped every exchange
/// fails like a SIGKILLed peer (kConnectionLost) — the router's exact
/// view of a dead shard (same device as the shard_router tests).
class KillableTransport final : public svc::Transport {
 public:
  KillableTransport(svc::RequestHandler& handler,
                    std::shared_ptr<std::atomic<bool>> killed)
      : inner_(handler), killed_(std::move(killed)) {}

  [[nodiscard]] svc::TransportStatus roundtrip(
      std::string_view frame, std::string& response_frame,
      std::string& error) override {
    if (killed_->load()) {
      error = "backend killed";
      return svc::TransportStatus::kConnectionLost;
    }
    return inner_.roundtrip(frame, response_frame, error);
  }

 private:
  svc::LoopbackTransport inner_;
  std::shared_ptr<std::atomic<bool>> killed_;
};

/// One twin: kBackends in-process Services fronted by a Router.
struct Cluster {
  std::vector<std::unique_ptr<svc::Service>> services;
  std::vector<std::shared_ptr<std::atomic<bool>>> killed;
  std::unique_ptr<shard::Router> router;
  std::uint64_t requests = 0;

  Cluster() {
    shard::RouterConfig config;
    config.replication.ship_every = kShipEvery;
    for (std::size_t i = 0; i < kBackends; ++i) {
      svc::ServiceConfig service_config;
      service_config.batch_pool_threads = 1;
      service_config.limits.max_sessions = kTenants * 2;
      service_config.limits.max_live_sessions = kTenants * 2;
      services.push_back(std::make_unique<svc::Service>(service_config));
      killed.push_back(std::make_shared<std::atomic<bool>>(false));
      svc::Service* service = services.back().get();
      auto killed_flag = killed.back();
      config.backends.push_back(
          {"shard-" + std::to_string(i),
           [service, killed_flag]() -> std::unique_ptr<svc::Transport> {
             if (killed_flag->load()) return nullptr;
             return std::make_unique<KillableTransport>(*service, killed_flag);
           }});
    }
    router = std::make_unique<shard::Router>(std::move(config));
  }

  std::string handle(const std::string& payload) {
    ++requests;
    return router->handle(payload);
  }
};

std::string num(double value) {
  return io::Json(value).dump();
}

/// Deterministic per-tenant trajectory, identical on both twins. Every
/// session grows a chain: seed two nodes plus an edge, then each round
/// appends a node, links it, and nudges an older node — all through one
/// apply_batch so the batch pipeline is on the failover path too.
std::string seed_payload(std::size_t tenant, std::uint64_t session) {
  const double base = 0.01 * static_cast<double>(tenant);
  return R"({"cmd":"apply_batch","id":10,"session":)" +
         std::to_string(session) + R"(,"batch":[{"kind":"add_node","x":)" +
         num(base) + R"(,"y":0.0},{"kind":"add_node","x":)" +
         num(base + 0.8) + R"(,"y":0.1},{"kind":"add_edge","u":0,"v":1}]})";
}

std::string round_payload(std::size_t tenant, std::uint64_t session,
                          std::size_t round) {
  const double x = 0.01 * static_cast<double>(tenant) +
                   0.7 * static_cast<double>(round + 2);
  const double y = 0.05 * static_cast<double>(round % 5);
  const std::size_t tip = round + 1;  // chain tip before this round
  return R"({"cmd":"apply_batch","id":)" + std::to_string(100 + round) +
         R"(,"session":)" + std::to_string(session) +
         R"(,"batch":[{"kind":"add_node","x":)" + num(x) + R"(,"y":)" +
         num(y) + R"(},{"kind":"add_edge","u":)" + std::to_string(tip) +
         R"(,"v":)" + std::to_string(tip + 1) +
         R"(},{"kind":"move_node","v":)" + std::to_string(round % (tip + 1)) +
         R"(,"x":)" + num(x * 0.5) + R"(,"y":)" + num(y + 0.01) + R"(}]})";
}

std::string final_query(std::uint64_t session) {
  return R"({"cmd":"query_interference","id":999,"session":)" +
         std::to_string(session) + "}";
}

bool is_ok(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

}  // namespace

int main() {
  bool ok = true;
  analysis::run_experiment(
      {"E24", "Shard failover under multi-tenant load",
       "Section 1 (robustness: the serving tier must survive node failure)",
       "64 tenants across 4 shards; killing one shard mid-run loses zero "
       "sessions and every final interference checksum matches the "
       "unkilled twin bit for bit"},
      std::cout, [&ok](std::ostream& out) {
        Cluster clean;
        Cluster killed;

        // Same wire session ids on both twins (allocation is deterministic).
        std::vector<std::uint64_t> sessions(kTenants, 0);
        for (std::size_t t = 0; t < kTenants; ++t) {
          const std::string create = R"({"cmd":"create_session","id":1})";
          const std::string clean_response = clean.handle(create);
          const std::string killed_response = killed.handle(create);
          if (!is_ok(clean_response) || clean_response != killed_response) {
            out << "tenant " << t << " create diverged\n";
            ok = false;
            return;
          }
          sessions[t] = t + 1;
          if (!is_ok(killed.handle(seed_payload(t, sessions[t]))) ||
              !is_ok(clean.handle(seed_payload(t, sessions[t])))) {
            out << "tenant " << t << " seed failed\n";
            ok = false;
            return;
          }
        }

        // Interleaved rounds: every tenant advances one batch per round so
        // the kill lands mid-trajectory for all tenants at once.
        const auto t_run = Clock::now();
        std::uint64_t divergent_commands = 0;
        for (std::size_t round = 0; round < kRounds; ++round) {
          if (round == kKillAtRound) killed.killed[0]->store(true);
          for (std::size_t t = 0; t < kTenants; ++t) {
            const std::string payload = round_payload(t, sessions[t], round);
            const std::string clean_response = clean.handle(payload);
            const std::string killed_response = killed.handle(payload);
            if (!is_ok(killed_response) ||
                clean_response != killed_response) {
              ++divergent_commands;
            }
          }
        }
        const double run_ms = ms_since(t_run);

        // Final checksums: FNV-1a over the full response bytes.
        std::size_t identical = 0;
        for (std::size_t t = 0; t < kTenants; ++t) {
          const std::string clean_response =
              clean.handle(final_query(sessions[t]));
          const std::string killed_response =
              killed.handle(final_query(sessions[t]));
          if (is_ok(killed_response) &&
              shard::fnv1a_bytes(clean_response) ==
                  shard::fnv1a_bytes(killed_response) &&
              clean_response == killed_response) {
            ++identical;
          }
        }

        const shard::RouterCounters& counters = killed.router->counters();
        const std::uint64_t moved = counters.sessions_moved.value();
        const std::uint64_t lost = counters.lost_sessions.value();
        const std::uint64_t requests = clean.requests + killed.requests;
        const double req_per_s =
            run_ms > 0.0 ? double(requests) * 1000.0 / run_ms : 0.0;

        io::Table table({"tenants", "shards", "rounds", "wall ms", "req/s",
                         "moved", "lost", "identical"});
        table.row()
            .cell(static_cast<std::uint64_t>(kTenants))
            .cell(static_cast<std::uint64_t>(kBackends))
            .cell(static_cast<std::uint64_t>(kRounds))
            .cell(run_ms, 1)
            .cell(req_per_s, 0)
            .cell(moved)
            .cell(lost)
            .cell(identical);
        table.print(out);

        if (identical == kTenants && divergent_commands == 0) {
          out << "ACCEPTANCE: checksum-identical tenants " << identical << "/"
              << kTenants << " PASS\n";
        } else {
          out << "ACCEPTANCE: checksum-identical tenants " << identical << "/"
              << kTenants << " (" << divergent_commands
              << " divergent commands) FAIL\n";
          ok = false;
        }
        if (lost == 0 && moved > 0) {
          out << "ACCEPTANCE: zero lost sessions, " << moved
              << " moved transparently PASS\n";
        } else {
          out << "ACCEPTANCE: zero lost sessions FAIL (" << lost << " lost, "
              << moved << " moved)\n";
          ok = false;
        }

        // --- Registry snapshot => BENCH_9.json artifact. ---
        io::JsonObject bench;
        bench["experiment"] = io::Json(std::string("E24"));
        bench["tenants"] = io::Json(kTenants);
        bench["shards"] = io::Json(kBackends);
        bench["requests"] = io::Json(requests);
        bench["requests_per_second"] = io::Json(req_per_s);
        bench["sessions_moved"] = io::Json(moved);
        bench["sessions_lost"] = io::Json(lost);
        bench["checksum_identical"] = io::Json(identical);
        analysis::stamp_bench(bench);
        killed.router->registry().add_source(
            "bench", [b = io::Json(std::move(bench))] { return b; });
        std::ofstream file("BENCH_9.json");
        file << killed.router->registry().snapshot().dump() << "\n";
        out << "metrics snapshot written to BENCH_9.json\n";
      });
  return ok ? 0 : 1;
}
