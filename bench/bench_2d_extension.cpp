/// Experiment E13 — the paper's future work (Section 6): adapting the
/// highway-model machinery to the plane. Compares the grid-hub lift of
/// A_gen and the local-search optimiser against the classic zoo on uniform,
/// clustered, and adversarial 2-D instances.

#include <cmath>
#include <iostream>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/histogram.hpp"
#include "rim/analysis/stats.hpp"
#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/ext2d/grid_hub.hpp"
#include "rim/ext2d/min_interference.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"

int main() {
  using namespace rim;
  analysis::run_experiment(
      {"E13", "2-D extension: grid-hub A_gen lift and local search",
       "Section 6 (future work: higher dimensions)",
       "grid-hub ~ O(sqrt Δ) in the plane; beats NNF-containing topologies "
       "on adversarial instances"},
      std::cout, [](std::ostream& out) {
        io::Table table({"instance", "n", "Δ", "I(MST)", "I(NNF)", "I(hub2d)",
                         "sqrt(Δ)", "I(local search)", "LS seed"});
        struct Case {
          std::string name;
          geom::PointSet points;
          bool run_local_search;
        };
        std::vector<Case> cases;
        cases.push_back({"uniform n=300", sim::uniform_square(300, 4.0, 2), false});
        cases.push_back({"dense n=600", sim::uniform_square(600, 3.0, 2), false});
        cases.push_back(
            {"clustered n=300", sim::gaussian_clusters(300, 5, 4.0, 0.2, 2), false});
        cases.push_back({"two-chains m=40", sim::two_exponential_chains(40).points,
                         true});
        cases.push_back({"two-chains m=100",
                         sim::two_exponential_chains(100).points, false});
        cases.push_back({"uniform n=60 (small, LS)",
                         sim::uniform_square(60, 1.6, 3), true});

        for (const Case& c : cases) {
          const graph::Graph udg = graph::build_udg(c.points, 1.0);
          const ext2d::GridHubResult hub = ext2d::grid_hub_2d(c.points, udg);
          io::Table& row = table.row();
          row.cell(c.name)
              .cell(static_cast<std::uint64_t>(c.points.size()))
              .cell(static_cast<std::uint64_t>(hub.delta))
              .cell(core::graph_interference(
                  topology::mst_topology(c.points, udg), c.points))
              .cell(core::graph_interference(
                  topology::nearest_neighbor_forest(c.points, udg), c.points))
              .cell(core::graph_interference(hub.topology, c.points))
              .cell(std::sqrt(static_cast<double>(hub.delta)), 1);
          if (c.run_local_search) {
            const ext2d::MinInterferenceResult ls =
                ext2d::min_interference_2d(c.points, udg, 3);
            row.cell(ls.interference).cell(ls.seed_name);
          } else {
            row.cell("-").cell("-");
          }
        }
        table.print(out);

        // Interference distribution: hub2d flattens the per-node profile on
        // the adversarial instance.
        const sim::TwoChainInstance inst = sim::two_exponential_chains(60);
        const graph::Graph udg = graph::build_udg(inst.points, 1.0);
        out << "\nper-node interference histogram, two-chains m=60, MST:\n";
        analysis::Histogram::of_values(
            core::Assessor{}.assess(
                topology::mst_topology(inst.points, udg), inst.points)
                .per_node)
            .render(out, 40);
        out << "\nsame instance, hub2d:\n";
        analysis::Histogram::of_values(
            core::Assessor{}.assess(
                ext2d::grid_hub_2d(inst.points, udg).topology, inst.points)
                .per_node)
            .render(out, 40);
      });
  return 0;
}
