# Empty compiler generated dependencies file for bench_fig7_linear_chain.
# This may be replaced when dependencies are built.
