file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_linear_chain.dir/bench_fig7_linear_chain.cpp.o"
  "CMakeFiles/bench_fig7_linear_chain.dir/bench_fig7_linear_chain.cpp.o.d"
  "bench_fig7_linear_chain"
  "bench_fig7_linear_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_linear_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
