# Empty dependencies file for bench_dist_protocols.
# This may be replaced when dependencies are built.
