file(REMOVE_RECURSE
  "CMakeFiles/bench_dist_protocols.dir/bench_dist_protocols.cpp.o"
  "CMakeFiles/bench_dist_protocols.dir/bench_dist_protocols.cpp.o.d"
  "bench_dist_protocols"
  "bench_dist_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
