file(REMOVE_RECURSE
  "CMakeFiles/bench_2d_extension.dir/bench_2d_extension.cpp.o"
  "CMakeFiles/bench_2d_extension.dir/bench_2d_extension.cpp.o.d"
  "bench_2d_extension"
  "bench_2d_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_2d_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
