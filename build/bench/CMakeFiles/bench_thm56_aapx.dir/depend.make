# Empty dependencies file for bench_thm56_aapx.
# This may be replaced when dependencies are built.
