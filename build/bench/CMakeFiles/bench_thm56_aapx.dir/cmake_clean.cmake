file(REMOVE_RECURSE
  "CMakeFiles/bench_thm56_aapx.dir/bench_thm56_aapx.cpp.o"
  "CMakeFiles/bench_thm56_aapx.dir/bench_thm56_aapx.cpp.o.d"
  "bench_thm56_aapx"
  "bench_thm56_aapx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm56_aapx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
