file(REMOVE_RECURSE
  "CMakeFiles/bench_model_compare.dir/bench_model_compare.cpp.o"
  "CMakeFiles/bench_model_compare.dir/bench_model_compare.cpp.o.d"
  "bench_model_compare"
  "bench_model_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
