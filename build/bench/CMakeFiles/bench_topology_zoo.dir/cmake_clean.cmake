file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_zoo.dir/bench_topology_zoo.cpp.o"
  "CMakeFiles/bench_topology_zoo.dir/bench_topology_zoo.cpp.o.d"
  "bench_topology_zoo"
  "bench_topology_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
