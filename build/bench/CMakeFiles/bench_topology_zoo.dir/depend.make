# Empty dependencies file for bench_topology_zoo.
# This may be replaced when dependencies are built.
