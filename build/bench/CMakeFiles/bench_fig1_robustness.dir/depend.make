# Empty dependencies file for bench_fig1_robustness.
# This may be replaced when dependencies are built.
