file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_robustness.dir/bench_fig1_robustness.cpp.o"
  "CMakeFiles/bench_fig1_robustness.dir/bench_fig1_robustness.cpp.o.d"
  "bench_fig1_robustness"
  "bench_fig1_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
