file(REMOVE_RECURSE
  "CMakeFiles/bench_sinr_schedule.dir/bench_sinr_schedule.cpp.o"
  "CMakeFiles/bench_sinr_schedule.dir/bench_sinr_schedule.cpp.o.d"
  "bench_sinr_schedule"
  "bench_sinr_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sinr_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
