# Empty dependencies file for bench_sinr_schedule.
# This may be replaced when dependencies are built.
