# Empty dependencies file for bench_thm52_lowerbound.
# This may be replaced when dependencies are built.
