file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_aexp.dir/bench_fig8_aexp.cpp.o"
  "CMakeFiles/bench_fig8_aexp.dir/bench_fig8_aexp.cpp.o.d"
  "bench_fig8_aexp"
  "bench_fig8_aexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_aexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
