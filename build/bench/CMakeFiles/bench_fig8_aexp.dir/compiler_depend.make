# Empty compiler generated dependencies file for bench_fig8_aexp.
# This may be replaced when dependencies are built.
