file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_agen.dir/bench_fig9_agen.cpp.o"
  "CMakeFiles/bench_fig9_agen.dir/bench_fig9_agen.cpp.o.d"
  "bench_fig9_agen"
  "bench_fig9_agen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_agen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
