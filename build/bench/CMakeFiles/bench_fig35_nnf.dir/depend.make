# Empty dependencies file for bench_fig35_nnf.
# This may be replaced when dependencies are built.
