file(REMOVE_RECURSE
  "CMakeFiles/bench_fig35_nnf.dir/bench_fig35_nnf.cpp.o"
  "CMakeFiles/bench_fig35_nnf.dir/bench_fig35_nnf.cpp.o.d"
  "bench_fig35_nnf"
  "bench_fig35_nnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig35_nnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
