file(REMOVE_RECURSE
  "CMakeFiles/bench_mac_collisions.dir/bench_mac_collisions.cpp.o"
  "CMakeFiles/bench_mac_collisions.dir/bench_mac_collisions.cpp.o.d"
  "bench_mac_collisions"
  "bench_mac_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mac_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
