# Empty compiler generated dependencies file for bench_mac_collisions.
# This may be replaced when dependencies are built.
