# Empty compiler generated dependencies file for test_json_histogram.
# This may be replaced when dependencies are built.
