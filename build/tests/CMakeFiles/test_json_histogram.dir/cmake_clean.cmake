file(REMOVE_RECURSE
  "CMakeFiles/test_json_histogram.dir/json_histogram_test.cpp.o"
  "CMakeFiles/test_json_histogram.dir/json_histogram_test.cpp.o.d"
  "test_json_histogram"
  "test_json_histogram.pdb"
  "test_json_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
