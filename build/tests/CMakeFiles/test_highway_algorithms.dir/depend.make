# Empty dependencies file for test_highway_algorithms.
# This may be replaced when dependencies are built.
