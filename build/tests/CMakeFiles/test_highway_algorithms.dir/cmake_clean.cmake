file(REMOVE_RECURSE
  "CMakeFiles/test_highway_algorithms.dir/highway_algorithms_test.cpp.o"
  "CMakeFiles/test_highway_algorithms.dir/highway_algorithms_test.cpp.o.d"
  "test_highway_algorithms"
  "test_highway_algorithms.pdb"
  "test_highway_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_highway_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
