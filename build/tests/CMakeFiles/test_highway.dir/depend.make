# Empty dependencies file for test_highway.
# This may be replaced when dependencies are built.
