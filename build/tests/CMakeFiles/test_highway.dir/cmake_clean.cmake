file(REMOVE_RECURSE
  "CMakeFiles/test_highway.dir/highway_test.cpp.o"
  "CMakeFiles/test_highway.dir/highway_test.cpp.o.d"
  "test_highway"
  "test_highway.pdb"
  "test_highway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_highway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
