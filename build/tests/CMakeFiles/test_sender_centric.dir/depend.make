# Empty dependencies file for test_sender_centric.
# This may be replaced when dependencies are built.
