file(REMOVE_RECURSE
  "CMakeFiles/test_sender_centric.dir/sender_centric_test.cpp.o"
  "CMakeFiles/test_sender_centric.dir/sender_centric_test.cpp.o.d"
  "test_sender_centric"
  "test_sender_centric.pdb"
  "test_sender_centric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sender_centric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
