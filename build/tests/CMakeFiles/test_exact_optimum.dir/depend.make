# Empty dependencies file for test_exact_optimum.
# This may be replaced when dependencies are built.
