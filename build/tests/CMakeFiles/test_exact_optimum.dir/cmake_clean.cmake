file(REMOVE_RECURSE
  "CMakeFiles/test_exact_optimum.dir/exact_optimum_test.cpp.o"
  "CMakeFiles/test_exact_optimum.dir/exact_optimum_test.cpp.o.d"
  "test_exact_optimum"
  "test_exact_optimum.pdb"
  "test_exact_optimum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_optimum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
