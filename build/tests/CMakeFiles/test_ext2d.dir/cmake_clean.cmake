file(REMOVE_RECURSE
  "CMakeFiles/test_ext2d.dir/ext2d_test.cpp.o"
  "CMakeFiles/test_ext2d.dir/ext2d_test.cpp.o.d"
  "test_ext2d"
  "test_ext2d.pdb"
  "test_ext2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ext2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
