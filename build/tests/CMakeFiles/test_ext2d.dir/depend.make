# Empty dependencies file for test_ext2d.
# This may be replaced when dependencies are built.
