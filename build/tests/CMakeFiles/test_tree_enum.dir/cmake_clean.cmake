file(REMOVE_RECURSE
  "CMakeFiles/test_tree_enum.dir/tree_enum_test.cpp.o"
  "CMakeFiles/test_tree_enum.dir/tree_enum_test.cpp.o.d"
  "test_tree_enum"
  "test_tree_enum.pdb"
  "test_tree_enum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
