# Empty dependencies file for test_tree_enum.
# This may be replaced when dependencies are built.
