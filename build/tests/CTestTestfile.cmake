# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_delaunay[1]_include.cmake")
include("/root/repo/build/tests/test_ext2d[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_churn[1]_include.cmake")
include("/root/repo/build/tests/test_json_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_branch_bound[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_tree_enum[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_interference[1]_include.cmake")
include("/root/repo/build/tests/test_sender_centric[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_highway[1]_include.cmake")
include("/root/repo/build/tests/test_highway_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_exact_optimum[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_adversarial[1]_include.cmake")
include("/root/repo/build/tests/test_mac[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
