# Empty dependencies file for rim.
# This may be replaced when dependencies are built.
