
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rim/analysis/experiment.cpp" "src/CMakeFiles/rim.dir/rim/analysis/experiment.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/analysis/experiment.cpp.o.d"
  "/root/repo/src/rim/analysis/fit.cpp" "src/CMakeFiles/rim.dir/rim/analysis/fit.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/analysis/fit.cpp.o.d"
  "/root/repo/src/rim/analysis/histogram.cpp" "src/CMakeFiles/rim.dir/rim/analysis/histogram.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/analysis/histogram.cpp.o.d"
  "/root/repo/src/rim/analysis/stats.cpp" "src/CMakeFiles/rim.dir/rim/analysis/stats.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/analysis/stats.cpp.o.d"
  "/root/repo/src/rim/core/incremental.cpp" "src/CMakeFiles/rim.dir/rim/core/incremental.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/core/incremental.cpp.o.d"
  "/root/repo/src/rim/core/interference.cpp" "src/CMakeFiles/rim.dir/rim/core/interference.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/core/interference.cpp.o.d"
  "/root/repo/src/rim/core/radii.cpp" "src/CMakeFiles/rim.dir/rim/core/radii.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/core/radii.cpp.o.d"
  "/root/repo/src/rim/core/sender_centric.cpp" "src/CMakeFiles/rim.dir/rim/core/sender_centric.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/core/sender_centric.cpp.o.d"
  "/root/repo/src/rim/dist/engine.cpp" "src/CMakeFiles/rim.dir/rim/dist/engine.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/dist/engine.cpp.o.d"
  "/root/repo/src/rim/dist/protocols.cpp" "src/CMakeFiles/rim.dir/rim/dist/protocols.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/dist/protocols.cpp.o.d"
  "/root/repo/src/rim/ext2d/grid_hub.cpp" "src/CMakeFiles/rim.dir/rim/ext2d/grid_hub.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/ext2d/grid_hub.cpp.o.d"
  "/root/repo/src/rim/ext2d/min_interference.cpp" "src/CMakeFiles/rim.dir/rim/ext2d/min_interference.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/ext2d/min_interference.cpp.o.d"
  "/root/repo/src/rim/geom/closest_pair.cpp" "src/CMakeFiles/rim.dir/rim/geom/closest_pair.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/geom/closest_pair.cpp.o.d"
  "/root/repo/src/rim/geom/convex_hull.cpp" "src/CMakeFiles/rim.dir/rim/geom/convex_hull.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/geom/convex_hull.cpp.o.d"
  "/root/repo/src/rim/geom/delaunay.cpp" "src/CMakeFiles/rim.dir/rim/geom/delaunay.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/geom/delaunay.cpp.o.d"
  "/root/repo/src/rim/geom/grid_index.cpp" "src/CMakeFiles/rim.dir/rim/geom/grid_index.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/geom/grid_index.cpp.o.d"
  "/root/repo/src/rim/geom/kdtree.cpp" "src/CMakeFiles/rim.dir/rim/geom/kdtree.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/geom/kdtree.cpp.o.d"
  "/root/repo/src/rim/graph/connectivity.cpp" "src/CMakeFiles/rim.dir/rim/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/graph/connectivity.cpp.o.d"
  "/root/repo/src/rim/graph/graph.cpp" "src/CMakeFiles/rim.dir/rim/graph/graph.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/graph/graph.cpp.o.d"
  "/root/repo/src/rim/graph/mst.cpp" "src/CMakeFiles/rim.dir/rim/graph/mst.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/graph/mst.cpp.o.d"
  "/root/repo/src/rim/graph/shortest_path.cpp" "src/CMakeFiles/rim.dir/rim/graph/shortest_path.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/graph/shortest_path.cpp.o.d"
  "/root/repo/src/rim/graph/stretch.cpp" "src/CMakeFiles/rim.dir/rim/graph/stretch.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/graph/stretch.cpp.o.d"
  "/root/repo/src/rim/graph/tree_enum.cpp" "src/CMakeFiles/rim.dir/rim/graph/tree_enum.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/graph/tree_enum.cpp.o.d"
  "/root/repo/src/rim/graph/udg.cpp" "src/CMakeFiles/rim.dir/rim/graph/udg.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/graph/udg.cpp.o.d"
  "/root/repo/src/rim/highway/a_apx.cpp" "src/CMakeFiles/rim.dir/rim/highway/a_apx.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/a_apx.cpp.o.d"
  "/root/repo/src/rim/highway/a_exp.cpp" "src/CMakeFiles/rim.dir/rim/highway/a_exp.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/a_exp.cpp.o.d"
  "/root/repo/src/rim/highway/a_gen.cpp" "src/CMakeFiles/rim.dir/rim/highway/a_gen.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/a_gen.cpp.o.d"
  "/root/repo/src/rim/highway/bounds.cpp" "src/CMakeFiles/rim.dir/rim/highway/bounds.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/bounds.cpp.o.d"
  "/root/repo/src/rim/highway/critical.cpp" "src/CMakeFiles/rim.dir/rim/highway/critical.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/critical.cpp.o.d"
  "/root/repo/src/rim/highway/exact_optimum.cpp" "src/CMakeFiles/rim.dir/rim/highway/exact_optimum.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/exact_optimum.cpp.o.d"
  "/root/repo/src/rim/highway/highway_instance.cpp" "src/CMakeFiles/rim.dir/rim/highway/highway_instance.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/highway_instance.cpp.o.d"
  "/root/repo/src/rim/highway/interference_1d.cpp" "src/CMakeFiles/rim.dir/rim/highway/interference_1d.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/interference_1d.cpp.o.d"
  "/root/repo/src/rim/highway/linear_chain.cpp" "src/CMakeFiles/rim.dir/rim/highway/linear_chain.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/linear_chain.cpp.o.d"
  "/root/repo/src/rim/highway/local_search.cpp" "src/CMakeFiles/rim.dir/rim/highway/local_search.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/highway/local_search.cpp.o.d"
  "/root/repo/src/rim/io/csv.cpp" "src/CMakeFiles/rim.dir/rim/io/csv.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/io/csv.cpp.o.d"
  "/root/repo/src/rim/io/dot.cpp" "src/CMakeFiles/rim.dir/rim/io/dot.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/io/dot.cpp.o.d"
  "/root/repo/src/rim/io/json.cpp" "src/CMakeFiles/rim.dir/rim/io/json.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/io/json.cpp.o.d"
  "/root/repo/src/rim/io/table.cpp" "src/CMakeFiles/rim.dir/rim/io/table.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/io/table.cpp.o.d"
  "/root/repo/src/rim/mac/csma_mac.cpp" "src/CMakeFiles/rim.dir/rim/mac/csma_mac.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/mac/csma_mac.cpp.o.d"
  "/root/repo/src/rim/mac/event_queue.cpp" "src/CMakeFiles/rim.dir/rim/mac/event_queue.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/mac/event_queue.cpp.o.d"
  "/root/repo/src/rim/mac/medium.cpp" "src/CMakeFiles/rim.dir/rim/mac/medium.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/mac/medium.cpp.o.d"
  "/root/repo/src/rim/mac/simulation.cpp" "src/CMakeFiles/rim.dir/rim/mac/simulation.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/mac/simulation.cpp.o.d"
  "/root/repo/src/rim/mac/slotted_mac.cpp" "src/CMakeFiles/rim.dir/rim/mac/slotted_mac.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/mac/slotted_mac.cpp.o.d"
  "/root/repo/src/rim/parallel/thread_pool.cpp" "src/CMakeFiles/rim.dir/rim/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/rim/phy/scheduling.cpp" "src/CMakeFiles/rim.dir/rim/phy/scheduling.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/phy/scheduling.cpp.o.d"
  "/root/repo/src/rim/phy/sinr.cpp" "src/CMakeFiles/rim.dir/rim/phy/sinr.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/phy/sinr.cpp.o.d"
  "/root/repo/src/rim/routing/geographic.cpp" "src/CMakeFiles/rim.dir/rim/routing/geographic.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/routing/geographic.cpp.o.d"
  "/root/repo/src/rim/sim/adversarial.cpp" "src/CMakeFiles/rim.dir/rim/sim/adversarial.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/sim/adversarial.cpp.o.d"
  "/root/repo/src/rim/sim/churn.cpp" "src/CMakeFiles/rim.dir/rim/sim/churn.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/sim/churn.cpp.o.d"
  "/root/repo/src/rim/sim/generators.cpp" "src/CMakeFiles/rim.dir/rim/sim/generators.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/sim/generators.cpp.o.d"
  "/root/repo/src/rim/sim/rng.cpp" "src/CMakeFiles/rim.dir/rim/sim/rng.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/sim/rng.cpp.o.d"
  "/root/repo/src/rim/topology/cbtc.cpp" "src/CMakeFiles/rim.dir/rim/topology/cbtc.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/cbtc.cpp.o.d"
  "/root/repo/src/rim/topology/gabriel.cpp" "src/CMakeFiles/rim.dir/rim/topology/gabriel.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/gabriel.cpp.o.d"
  "/root/repo/src/rim/topology/knn.cpp" "src/CMakeFiles/rim.dir/rim/topology/knn.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/knn.cpp.o.d"
  "/root/repo/src/rim/topology/life.cpp" "src/CMakeFiles/rim.dir/rim/topology/life.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/life.cpp.o.d"
  "/root/repo/src/rim/topology/lise.cpp" "src/CMakeFiles/rim.dir/rim/topology/lise.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/lise.cpp.o.d"
  "/root/repo/src/rim/topology/lmst.cpp" "src/CMakeFiles/rim.dir/rim/topology/lmst.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/lmst.cpp.o.d"
  "/root/repo/src/rim/topology/mst_topology.cpp" "src/CMakeFiles/rim.dir/rim/topology/mst_topology.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/mst_topology.cpp.o.d"
  "/root/repo/src/rim/topology/nearest_neighbor_forest.cpp" "src/CMakeFiles/rim.dir/rim/topology/nearest_neighbor_forest.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/nearest_neighbor_forest.cpp.o.d"
  "/root/repo/src/rim/topology/registry.cpp" "src/CMakeFiles/rim.dir/rim/topology/registry.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/registry.cpp.o.d"
  "/root/repo/src/rim/topology/rng_graph.cpp" "src/CMakeFiles/rim.dir/rim/topology/rng_graph.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/rng_graph.cpp.o.d"
  "/root/repo/src/rim/topology/xtc.cpp" "src/CMakeFiles/rim.dir/rim/topology/xtc.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/xtc.cpp.o.d"
  "/root/repo/src/rim/topology/yao.cpp" "src/CMakeFiles/rim.dir/rim/topology/yao.cpp.o" "gcc" "src/CMakeFiles/rim.dir/rim/topology/yao.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
