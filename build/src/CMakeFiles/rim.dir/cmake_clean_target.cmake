file(REMOVE_RECURSE
  "librim.a"
)
