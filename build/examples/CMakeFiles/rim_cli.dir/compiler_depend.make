# Empty compiler generated dependencies file for rim_cli.
# This may be replaced when dependencies are built.
