file(REMOVE_RECURSE
  "CMakeFiles/rim_cli.dir/rim_cli.cpp.o"
  "CMakeFiles/rim_cli.dir/rim_cli.cpp.o.d"
  "rim_cli"
  "rim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
