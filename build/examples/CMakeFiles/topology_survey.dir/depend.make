# Empty dependencies file for topology_survey.
# This may be replaced when dependencies are built.
