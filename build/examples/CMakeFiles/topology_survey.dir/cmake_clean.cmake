file(REMOVE_RECURSE
  "CMakeFiles/topology_survey.dir/topology_survey.cpp.o"
  "CMakeFiles/topology_survey.dir/topology_survey.cpp.o.d"
  "topology_survey"
  "topology_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
