# Empty compiler generated dependencies file for mac_showcase.
# This may be replaced when dependencies are built.
