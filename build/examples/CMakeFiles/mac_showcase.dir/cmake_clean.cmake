file(REMOVE_RECURSE
  "CMakeFiles/mac_showcase.dir/mac_showcase.cpp.o"
  "CMakeFiles/mac_showcase.dir/mac_showcase.cpp.o.d"
  "mac_showcase"
  "mac_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
