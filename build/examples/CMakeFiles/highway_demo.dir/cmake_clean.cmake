file(REMOVE_RECURSE
  "CMakeFiles/highway_demo.dir/highway_demo.cpp.o"
  "CMakeFiles/highway_demo.dir/highway_demo.cpp.o.d"
  "highway_demo"
  "highway_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
