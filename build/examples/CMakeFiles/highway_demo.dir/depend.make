# Empty dependencies file for highway_demo.
# This may be replaced when dependencies are built.
