#include <gtest/gtest.h>

#include "rim/dist/engine.hpp"
#include "rim/dist/protocols.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/lmst.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"
#include "rim/topology/xtc.hpp"

namespace rim::dist {
namespace {

bool same_edges(const graph::Graph& a, const graph::Graph& b) {
  if (a.edge_count() != b.edge_count()) return false;
  for (graph::Edge e : a.edges()) {
    if (!b.has_edge(e.u, e.v)) return false;
  }
  return true;
}

TEST(Engine, CountsMessagesAndPayload) {
  // A 3-node path: round-0 position exchange is 2+2... node degrees are
  // 1, 2, 1 -> 4 messages, 8 payload doubles.
  const geom::PointSet points{{0, 0}, {0.5, 0}, {1.0, 0}};
  const graph::Graph udg = graph::build_udg(points, 0.6);
  DistributedNnf protocol(points, udg);
  const ExecutionStats stats = run_protocol(udg, protocol);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.messages, 4u);
  EXPECT_EQ(stats.payload_doubles, 8u);
}

class ProtocolEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  geom::PointSet points_ = sim::uniform_square(130, 2.4, GetParam());
  graph::Graph udg_ = graph::build_udg(points_, 1.0);
};

TEST_P(ProtocolEquivalence, DistributedNnfMatchesCentralized) {
  DistributedNnf protocol(points_, udg_);
  (void)run_protocol(udg_, protocol);
  EXPECT_TRUE(same_edges(protocol.result(),
                         topology::nearest_neighbor_forest(points_, udg_)));
}

TEST_P(ProtocolEquivalence, DistributedXtcMatchesCentralized) {
  DistributedXtc protocol(points_, udg_);
  (void)run_protocol(udg_, protocol);
  EXPECT_TRUE(same_edges(protocol.result(), topology::xtc(points_, udg_)));
}

TEST_P(ProtocolEquivalence, DistributedLmstMatchesCentralized) {
  DistributedLmst protocol(points_, udg_, 1.0);
  (void)run_protocol(udg_, protocol);
  EXPECT_TRUE(same_edges(protocol.result(), topology::lmst(points_, udg_)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(ProtocolCosts, RoundZeroIsTwoMessagesPerEdge) {
  const auto points = sim::uniform_square(100, 2.0, 9);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  DistributedXtc protocol(points, udg);
  const ExecutionStats stats = run_protocol(udg, protocol);
  EXPECT_EQ(stats.messages, 2 * udg.edge_count());
}

TEST(ProtocolCosts, LmstSecondRoundIsSelectionsOnly) {
  const auto points = sim::uniform_square(100, 2.0, 10);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  DistributedLmst protocol(points, udg, 1.0);
  const ExecutionStats stats = run_protocol(udg, protocol);
  EXPECT_EQ(stats.rounds, 2u);
  // Round 0: 2 per UDG edge. Round 1: one notice per (directed) selection,
  // bounded by 6 per node (local-MST degree bound).
  const std::uint64_t round1 = stats.messages - 2 * udg.edge_count();
  EXPECT_LE(round1, 6 * points.size());
  EXPECT_GT(round1, 0u);
}

TEST(Protocols, EmptyAndIsolatedNodes) {
  const geom::PointSet points{{0, 0}, {10, 10}};
  const graph::Graph udg = graph::build_udg(points, 1.0);  // no edges
  DistributedNnf nnf(points, udg);
  const ExecutionStats stats = run_protocol(udg, nnf);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(nnf.result().edge_count(), 0u);
  DistributedLmst lmst_p(points, udg, 1.0);
  (void)run_protocol(udg, lmst_p);
  EXPECT_EQ(lmst_p.result().edge_count(), 0u);
}

}  // namespace
}  // namespace rim::dist
