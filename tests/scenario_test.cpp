#include <gtest/gtest.h>

#include <vector>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/scenario.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::core {
namespace {

graph::Graph mst_of(const geom::PointSet& points) {
  return topology::mst_topology(points, graph::build_udg(points, 1.0));
}

/// Reference oracle: from-scratch kBrute evaluation of the scenario's
/// exported topology and points.
std::vector<std::uint32_t> brute_reference(Scenario& scenario) {
  const graph::Graph topo = scenario.topology();
  const geom::PointSet points = scenario.points();
  const std::vector<double> radii2 = transmission_radii_squared(topo, points);
  return interference_vector_squared(points, radii2, Strategy::kBrute);
}

void expect_matches_brute(Scenario& scenario, const char* context) {
  const std::vector<std::uint32_t> expected = brute_reference(scenario);
  const auto actual = scenario.interference();
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(actual[v], expected[v]) << context << ", node " << v;
  }
}

TEST(Scenario, ConstructionMatchesStatelessEvaluation) {
  const auto points = sim::uniform_square(120, 3.0, 9);
  const graph::Graph topo = mst_of(points);
  Scenario scenario(points, topo);
  const InterferenceSummary via_engine = scenario.summary();
  const InterferenceSummary via_free = Assessor{}.assess(topo, points);
  EXPECT_EQ(via_engine.per_node, via_free.per_node);
  EXPECT_EQ(via_engine.max, via_free.max);
  EXPECT_EQ(via_engine.total, via_free.total);
}

TEST(Scenario, AddEdgeGrowsDisksExactly) {
  // Chain 0-1, isolated 2: adding 1-2 enlarges r_1 and gives 2 a disk.
  const geom::PointSet points{{0, 0}, {1, 0}, {3, 0}};
  graph::Graph topo(3);
  topo.add_edge(0, 1);
  Scenario scenario(points, topo);
  (void)scenario.interference();  // prime the cache, then mutate
  scenario.add_edge(1, 2);
  expect_matches_brute(scenario, "after add_edge");
  EXPECT_EQ(scenario.radius_squared(1), 4.0);
  EXPECT_EQ(scenario.radius_squared(2), 4.0);
}

TEST(Scenario, RemoveNodeRenamesLastNode) {
  const auto points = sim::uniform_square(40, 1.5, 3);
  Scenario scenario(points, mst_of(points));
  (void)scenario.interference();
  const NodeId renamed = scenario.remove_node(5);
  EXPECT_EQ(renamed, static_cast<NodeId>(points.size() - 1));
  EXPECT_EQ(scenario.node_count(), points.size() - 1);
  EXPECT_EQ(scenario.position(5), points[points.size() - 1]);
  expect_matches_brute(scenario, "after remove_node");
  // Removing the (new) last node needs no rename.
  EXPECT_EQ(scenario.remove_node(
                static_cast<NodeId>(scenario.node_count() - 1)),
            kInvalidNode);
}

TEST(Scenario, IsolatedNewcomerDisturbsNothing) {
  const auto points = sim::uniform_square(60, 2.0, 11);
  Scenario scenario(points, mst_of(points));
  const InterferenceSummary before = scenario.summary();
  scenario.add_node({1.0, 1.0});
  const auto after = scenario.interference();
  for (NodeId v = 0; v < points.size(); ++v) {
    EXPECT_EQ(after[v], before.per_node[v]) << "node " << v;
  }
}

/// The headline property: after an arbitrary randomized mutation sequence,
/// the incrementally-maintained vector is bit-identical to the kBrute
/// oracle on the exported state.
class ScenarioProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioProperty, RandomizedMutationsMatchBrute) {
  sim::Rng rng(GetParam());
  const auto points = sim::uniform_square(80, 2.0, GetParam() ^ 0x5eedu);
  Scenario scenario(points, mst_of(points));
  (void)scenario.interference();  // start from a warm cache

  const double side = 2.0;
  for (int op = 0; op < 1000; ++op) {
    const double roll = rng.next_double();
    const auto n = scenario.node_count();
    if (roll < 0.25 || n < 4) {
      const geom::Vec2 p{rng.uniform(-0.2, side + 0.2),
                         rng.uniform(-0.2, side + 0.2)};
      const NodeId id = scenario.add_node(p);
      if (rng.next_double() < 0.8) {
        const NodeId partner = scenario.nearest_node(p, id);
        if (partner != kInvalidNode) scenario.add_edge(id, partner);
      }
    } else if (roll < 0.45) {
      scenario.remove_node(static_cast<NodeId>(rng.next_below(n)));
    } else if (roll < 0.70) {
      // Local jitter: the common churn case, served by the incremental path.
      const auto v = static_cast<NodeId>(rng.next_below(n));
      const geom::Vec2 q = scenario.position(v);
      scenario.move_node(v, {q.x + rng.uniform(-0.15, 0.15),
                             q.y + rng.uniform(-0.15, 0.15)});
    } else if (roll < 0.85) {
      // Arbitrary (possibly deployment-spanning) edges: adversarial cover
      // for the deferred/full-evaluation path.
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (u != v) scenario.add_edge(u, v);
    } else {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto neighbors = scenario.neighbors(u);
      if (!neighbors.empty()) {
        scenario.remove_edge(
            u, neighbors[rng.next_below(neighbors.size())]);
      }
    }
    // Query after every op: keeps the cache warm (so the next delta takes
    // the incremental path) and checks bit-identity at every step.
    const std::vector<std::uint32_t> expected = brute_reference(scenario);
    const auto actual = scenario.interference();
    ASSERT_EQ(std::vector<std::uint32_t>(actual.begin(), actual.end()),
              expected)
        << "op " << op << " seed " << GetParam();
  }
  expect_matches_brute(scenario, "final state");
  // The engine must actually have exercised the incremental path.
  EXPECT_GT(scenario.stats().incremental_updates, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Scenario, OversizedDeltaFallsBackToFullEvaluation) {
  // A hub wired to everyone has a disk spanning the deployment; touching it
  // must defer to a batched full recompute, and stay exact.
  const auto points = sim::uniform_square(400, 2.0, 17);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(0, v);
  Scenario scenario(points, topo);
  (void)scenario.interference();
  const std::uint64_t full_before = scenario.stats().full_evaluations;

  scenario.move_node(0, {1.1, 0.9});  // drags a deployment-wide disk along
  expect_matches_brute(scenario, "after oversized move");
  EXPECT_GT(scenario.stats().deferred_mutations, 0u);
  EXPECT_GT(scenario.stats().full_evaluations, full_before);
}

TEST(Scenario, MoveToCurrentPositionIsStrictNoOp) {
  // Moving a node onto its own position must not recount, defer, or
  // trigger a full evaluation — the engine treats it as a no-op.
  const auto points = sim::uniform_square(80, 1.5, 23);
  Scenario scenario(points, mst_of(points));
  const std::vector<std::uint32_t> before(scenario.interference().begin(),
                                          scenario.interference().end());
  const std::uint64_t inc_before = scenario.stats().incremental_updates;
  const std::uint64_t def_before = scenario.stats().deferred_mutations;
  const std::uint64_t full_before = scenario.stats().full_evaluations;

  for (NodeId v = 0; v < scenario.node_count(); v += 7) {
    scenario.move_node(v, scenario.position(v));
  }
  scenario.apply(Mutation::move_node(3, scenario.position(3)));

  EXPECT_EQ(std::vector<std::uint32_t>(scenario.interference().begin(),
                                       scenario.interference().end()),
            before);
  EXPECT_EQ(scenario.stats().incremental_updates.value(), inc_before);
  EXPECT_EQ(scenario.stats().deferred_mutations.value(), def_before);
  EXPECT_EQ(scenario.stats().full_evaluations.value(), full_before);
}

TEST(Scenario, StatsJsonExposesCounters) {
  const auto points = sim::uniform_square(50, 1.5, 29);
  Scenario scenario(points, mst_of(points));
  (void)scenario.interference();
  scenario.add_node({0.5, 0.5});
  (void)scenario.interference();
  const std::string json = scenario.stats_json().dump();
  EXPECT_NE(json.find("\"full_evaluations\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("incremental_updates"), std::string::npos);
  EXPECT_NE(json.find("cells_touched"), std::string::npos);
}

/// Regression for the paper's robustness bound through the redesigned
/// assessor: one arrival under nearest-neighbor attachment increases any
/// pre-existing node's interference by at most 2 (its own disk plus the
/// attachment partner's enlarged disk).
TEST(ScenarioRegression, NodeAdditionBoundedByTwoUnderNearestNeighbor) {
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const auto points = sim::uniform_square(60, 2.0, seed);
    const graph::Graph topo = mst_of(points);
    sim::Rng rng(seed ^ 0xfeedu);
    for (int trial = 0; trial < 8; ++trial) {
      const geom::Vec2 p{rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
      const auto impact = Assessor{}.assess_addition(points, topo, p,
                                               AttachPolicy::kNearestNeighbor);
      EXPECT_LE(impact.receiver_max_node_increase, 2u)
          << "seed " << seed << " newcomer (" << p.x << ", " << p.y << ")";
    }
  }
}

}  // namespace
}  // namespace rim::core
