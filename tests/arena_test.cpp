#include <cstdint>
#include <cstring>
#include <utility>

#include <gtest/gtest.h>

#include "rim/common/arena.hpp"

/// Arena lifetime and reuse rules (DESIGN.md §10): bump allocation with
/// correct alignment, reset() keeping only the largest block, and move
/// semantics that keep outstanding allocations valid.

namespace rim::common {
namespace {

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena(128);
  auto* a = arena.alloc_array<std::uint8_t>(3);
  auto* b = arena.alloc_array<double>(4);
  auto* c = arena.create<std::uint64_t>(42u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint64_t), 0u);
  EXPECT_EQ(*c, 42u);
  // Writes through one pointer must not alias another allocation.
  std::memset(a, 0xAB, 3);
  for (int i = 0; i < 4; ++i) b[i] = 1.5 * i;
  EXPECT_EQ(*c, 42u);
  EXPECT_EQ(a[2], 0xAB);
  EXPECT_EQ(b[3], 4.5);
  EXPECT_GE(arena.bytes_used(), 3 + 4 * sizeof(double) + sizeof(std::uint64_t));
}

TEST(Arena, GrowsBeyondTheInitialBlockAndConsolidatesOnReset) {
  Arena arena(64);
  // Far more than the initial block: forces chained growth.
  for (int i = 0; i < 100; ++i) {
    auto* chunk = arena.alloc_array<double>(64);
    chunk[0] = i;  // the memory must be writable
  }
  EXPECT_GT(arena.block_count(), 1u);
  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Blocks double per growth, so within a few reset/replay rounds the
  // retained block covers the whole workload and steady state allocates
  // nothing (block count stays 1 through the round).
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    for (int i = 0; i < 100; ++i) (void)arena.alloc_array<double>(64);
  }
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(Arena, ZeroLengthArraysAreValidPointers) {
  Arena arena;
  auto* a = arena.alloc_array<int>(0);
  auto* b = arena.alloc_array<int>(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
}

TEST(Arena, MoveTransfersBlockOwnership) {
  Arena arena(64);
  auto* value = arena.create<std::uint32_t>(7u);
  Arena moved = std::move(arena);
  // The allocation lives in the moved-to arena's blocks.
  EXPECT_EQ(*value, 7u);
  auto* more = moved.alloc_array<std::uint32_t>(8);
  more[7] = 9;
  EXPECT_EQ(*value, 7u);
}

}  // namespace
}  // namespace rim::common
