#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <vector>

#include "rim/core/radii.hpp"
#include "rim/core/scenario.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/graph/udg.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/sim/fault.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/mst_topology.hpp"

/// Tests for core::SpeculativeExecutor (Execution::kSpeculative batches).
/// The headline contract is the same bit-identity the wave path guarantees:
/// a speculative batch must leave the scenario in exactly the state serial
/// application would, regardless of conflicts, rollbacks, validation
/// failures, or injected faults. The adversarial cases pin the two extremes
/// through the obs counters: a conflict-free batch commits with zero
/// rollbacks, and a batch with no available pool degenerates to the serial
/// tail entirely.

namespace rim::core {
namespace {

std::vector<std::uint32_t> brute_reference(Scenario& scenario) {
  const graph::Graph topo = scenario.topology();
  const geom::PointSet points = scenario.points();
  const std::vector<double> radii2 = transmission_radii_squared(topo, points);
  return interference_vector_squared(points, radii2, Strategy::kBrute);
}

void expect_scenarios_identical(Scenario& a, Scenario& b, const char* context) {
  ASSERT_EQ(a.node_count(), b.node_count()) << context;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << context;
  const auto ia = a.interference();
  const auto ib = b.interference();
  ASSERT_EQ(ia.size(), ib.size()) << context;
  for (std::size_t v = 0; v < ia.size(); ++v) {
    ASSERT_EQ(ia[v], ib[v]) << context << ", node " << v;
    ASSERT_EQ(a.position(v), b.position(v)) << context << ", node " << v;
    ASSERT_EQ(a.radius_squared(v), b.radius_squared(v))
        << context << ", node " << v;
  }
}

void expect_matches_brute(Scenario& scenario, const char* context) {
  const std::vector<std::uint32_t> expected = brute_reference(scenario);
  const auto actual = scenario.interference();
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(actual[v], expected[v]) << context << ", node " << v;
  }
}

/// A "triple field": `active` triples A—B (distance 1) and A—C (distance
/// 1/2) spaced `active_spacing` apart, plus far-away ballast triples that
/// only exist to keep the batch's touched-region estimate well below the
/// deferral threshold. Removing each active A—C edge shrinks exactly one
/// disk (C's) per triple: with spacing 100 the resulting disk tasks have
/// pairwise disjoint grid footprints (a deterministically conflict-free
/// speculative batch); with spacing 0.05 every disk lands on the same
/// clustered cells (the all-conflict twin).
struct TripleField {
  geom::PointSet points;
  std::vector<Mutation> batch;
};

TripleField make_triple_field(std::size_t active, double active_spacing,
                              std::size_t ballast) {
  TripleField field;
  field.points.reserve((active + ballast) * 3);
  for (std::size_t i = 0; i < active; ++i) {
    const double x = active_spacing * static_cast<double>(i);
    field.points.push_back({x, 0.0});        // A
    field.points.push_back({x + 1.0, 0.0});  // B
    field.points.push_back({x + 0.5, 0.0});  // C
  }
  for (std::size_t i = 0; i < ballast; ++i) {
    const double x = 100000.0 + 100.0 * static_cast<double>(i);
    field.points.push_back({x, 0.0});
    field.points.push_back({x + 1.0, 0.0});
    field.points.push_back({x + 0.5, 0.0});
  }
  for (std::size_t i = 0; i < active; ++i) {
    const NodeId a = static_cast<NodeId>(3 * i);
    const NodeId c = static_cast<NodeId>(3 * i + 2);
    field.batch.push_back(Mutation::remove_edge(a, c));
  }
  return field;
}

Scenario make_triple_scenario(const TripleField& field, EvalOptions options) {
  graph::Graph topo(field.points.size());
  for (NodeId a = 0; a + 2 < field.points.size(); a += 3) {
    topo.add_edge(a, a + 1);
    topo.add_edge(a, a + 2);
  }
  Scenario scenario(field.points, topo, options);
  (void)scenario.interference();
  return scenario;
}

/// Constant-density MST scenario (the E19/E22 network family): disks stay
/// local, so batches run through the incremental pipeline instead of the
/// deferred full-evaluation fallback.
Scenario make_mst_scenario(std::size_t n, double side, std::uint64_t seed,
                           EvalOptions options) {
  const geom::PointSet points = sim::uniform_square(n, side, seed);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  Scenario scenario(points, mst, options);
  (void)scenario.interference();
  return scenario;
}

/// Spatially local churn (moves jitter by <= 0.3, edge flips go to the
/// nearest neighbor, adds attach locally): the batch generator that keeps
/// every disk task small. Generated against \p reference *before* the batch
/// is applied anywhere, so all replicas see the same mutations.
std::vector<Mutation> make_local_batch(Scenario& reference, sim::Rng& rng,
                                       std::size_t size, double side) {
  std::vector<Mutation> batch;
  batch.reserve(size);
  std::size_t n = reference.node_count();
  const auto clamp = [side](double x) {
    return x < 0.0 ? 0.0 : (x > side ? side : x);
  };
  const std::size_t moves = size / 2;
  for (std::size_t i = 0; i < moves; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(n));
    const geom::Vec2 old = reference.position(v);
    batch.push_back(Mutation::move_node(
        v, {clamp(old.x + rng.uniform(-0.3, 0.3)),
            clamp(old.y + rng.uniform(-0.3, 0.3))}));
  }
  const std::size_t adds = size / 10;
  for (std::size_t i = 0; i < adds; ++i) {
    const auto anchor = static_cast<NodeId>(rng.next_below(n));
    const geom::Vec2 p = reference.position(anchor);
    batch.push_back(Mutation::add_node(
        {clamp(p.x + rng.uniform(-0.3, 0.3)),
         clamp(p.y + rng.uniform(-0.3, 0.3))}));
    batch.push_back(Mutation::add_edge(static_cast<NodeId>(n), anchor));
    ++n;
  }
  for (std::size_t i = moves + adds; i < size; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = reference.nearest_node(reference.position(u), u);
    if (v == kInvalidNode) continue;
    batch.push_back(rng.next_double() < 0.5 ? Mutation::add_edge(u, v)
                                            : Mutation::remove_edge(u, v));
  }
  return batch;
}

/// The headline property: randomized local-churn batches, applied
/// speculatively on a real pool, stay bit-identical to serial application,
/// to the wave path, and to the kBrute oracle.
class SpeculativeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpeculativeProperty, RandomizedBatchesMatchSerialWaveAndBrute) {
  const std::size_t n = 3000;
  const double side = 15.5;  // ~12.5 nodes per unit square
  Scenario serial = make_mst_scenario(n, side, GetParam(), EvalOptions{});
  Scenario wave = make_mst_scenario(n, side, GetParam(), EvalOptions{});
  Scenario spec = make_mst_scenario(
      n, side, GetParam(),
      EvalOptions{}.with_execution(Execution::kSpeculative));

  parallel::ThreadPool pool(4);
  sim::Rng rng(GetParam() ^ 0x5bec0de5u);
  for (int round = 0; round < 6; ++round) {
    const std::vector<Mutation> batch =
        make_local_batch(serial, rng, 20, side);
    for (const Mutation& m : batch) serial.apply(m);
    wave.apply_batch(batch, &pool);
    const BatchResult result = spec.apply_batch(batch, &pool);
    if (!result.deferred) {
      // No hooks: every non-deferred task must eventually commit.
      EXPECT_EQ(result.spec_committed, result.disk_tasks);
    }
    expect_scenarios_identical(serial, wave, "wave vs serial");
    expect_scenarios_identical(serial, spec, "speculative vs serial");
  }
  expect_matches_brute(spec, "speculative vs brute");
  EXPECT_GT(spec.stats().spec_batches, 0u);
  EXPECT_GT(spec.stats().spec_committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpeculativeProperty,
                         ::testing::Values(17u, 29u, 41u));

TEST(Speculative, SerialExecutionModeMatchesApply) {
  Scenario reference = make_mst_scenario(2000, 12.6, 7, EvalOptions{});
  Scenario serial_mode = make_mst_scenario(
      2000, 12.6, 7, EvalOptions{}.with_execution(Execution::kSerial));

  sim::Rng rng(0xacedu);
  bool saw_tasks = false;
  for (int round = 0; round < 4; ++round) {
    const std::vector<Mutation> batch =
        make_local_batch(reference, rng, 16, 12.6);
    for (const Mutation& m : batch) reference.apply(m);
    const BatchResult result = serial_mode.apply_batch(batch, nullptr);
    if (!result.deferred && result.disk_tasks > 0) {
      EXPECT_EQ(result.waves, 1u);
      saw_tasks = true;
    }
    EXPECT_EQ(result.spec_committed, 0u);
    expect_scenarios_identical(reference, serial_mode, "kSerial vs apply");
  }
  EXPECT_TRUE(saw_tasks);
  EXPECT_EQ(serial_mode.stats().spec_batches, 0u);
}

TEST(Speculative, NoConflictBatchCommitsWithoutRollbacks) {
  const TripleField field = make_triple_field(8, 100.0, 56);
  Scenario spec = make_triple_scenario(
      field, EvalOptions{}.with_execution(Execution::kSpeculative));
  Scenario serial = make_triple_scenario(field, EvalOptions{});

  parallel::ThreadPool pool(4);
  const BatchResult result = spec.apply_batch(field.batch, &pool);
  for (const Mutation& m : field.batch) serial.apply(m);

  // One disk task per active triple (C's shrink; A's farthest neighbor
  // stays B), footprints pairwise disjoint: nothing may conflict, nothing
  // may fall to the serial tail.
  ASSERT_FALSE(result.deferred);
  EXPECT_EQ(result.disk_tasks, 8u);
  EXPECT_EQ(result.spec_committed, 8u);
  EXPECT_EQ(result.spec_rolled_back, 0u);
  EXPECT_EQ(result.spec_replay_rounds, 0u);
  EXPECT_EQ(result.spec_serial_tasks, 0u);
  EXPECT_EQ(spec.stats().spec_committed, 8u);
  EXPECT_EQ(spec.stats().spec_rolled_back, 0u);
  EXPECT_EQ(spec.stats().spec_serial_tasks, 0u);
  EXPECT_EQ(spec.stats().spec_chain_length.count(), 8u);
  EXPECT_EQ(spec.stats().spec_chain_length.max(), 1u);

  expect_scenarios_identical(serial, spec, "no-conflict vs serial");
  expect_matches_brute(spec, "no-conflict vs brute");
}

TEST(Speculative, AllConflictBatchStaysExactUnderContention) {
  // Spacing 0.05 stacks all eight active disks inside ~1.4 units: every
  // task walks the same clustered cells, so any two concurrent attempts
  // conflict. Whatever the interleaving, the result must stay exact and
  // every task must commit exactly once.
  const TripleField field = make_triple_field(8, 0.05, 248);
  Scenario spec = make_triple_scenario(
      field, EvalOptions{}.with_execution(Execution::kSpeculative));
  Scenario serial = make_triple_scenario(field, EvalOptions{});

  parallel::ThreadPool pool(4);
  const BatchResult result = spec.apply_batch(field.batch, &pool);
  for (const Mutation& m : field.batch) serial.apply(m);

  ASSERT_FALSE(result.deferred);
  EXPECT_EQ(result.spec_committed, result.disk_tasks);
  EXPECT_EQ(spec.stats().spec_chain_length.count(), result.disk_tasks);
  expect_scenarios_identical(serial, spec, "all-conflict vs serial");
  expect_matches_brute(spec, "all-conflict vs brute");
}

TEST(Speculative, WithoutPoolEveryTaskDegeneratesToSerialTail) {
  const TripleField field = make_triple_field(8, 0.05, 248);
  Scenario spec = make_triple_scenario(
      field, EvalOptions{}.with_execution(Execution::kSpeculative));
  Scenario serial = make_triple_scenario(field, EvalOptions{});

  const BatchResult result = spec.apply_batch(field.batch, nullptr);
  for (const Mutation& m : field.batch) serial.apply(m);

  // No workers: the executor runs its serial tail for the whole batch —
  // the worst case the adversarial all-conflict batch also degrades to.
  ASSERT_FALSE(result.deferred);
  EXPECT_EQ(result.spec_serial_tasks, result.disk_tasks);
  EXPECT_EQ(result.spec_committed, result.disk_tasks);
  EXPECT_EQ(result.spec_rolled_back, 0u);
  EXPECT_EQ(result.spec_replay_rounds, 0u);
  EXPECT_EQ(spec.stats().spec_serial_tasks, result.disk_tasks);
  expect_scenarios_identical(serial, spec, "serial tail vs serial");
}

/// Fails every odd task's first validation (lock-free per-task one-shot,
/// per the §8 hook contract): each odd task rolls back exactly once and
/// commits on the replay round, while the even tasks' commits keep the
/// round progressing (failing *all* tasks would trip the zero-progress
/// guard and fall to the serial tail instead). On the disjoint triple
/// field nothing else can conflict, so the counters are exact despite
/// real concurrency.
class FailFirstValidation final : public BatchHooks {
 public:
  bool after_speculative_task(std::size_t task) override {
    if (task % 2 == 0) return true;
    return failed_[task].exchange(true, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<bool>, 64> failed_{};
};

TEST(Speculative, ForcedValidationFailureRollsBackOnceAndReplays) {
  const TripleField field = make_triple_field(8, 100.0, 56);
  Scenario spec = make_triple_scenario(
      field, EvalOptions{}.with_execution(Execution::kSpeculative));
  Scenario serial = make_triple_scenario(field, EvalOptions{});

  parallel::ThreadPool pool(4);
  FailFirstValidation hooks;
  const BatchResult result = spec.apply_batch(field.batch, &pool, &hooks);
  for (const Mutation& m : field.batch) serial.apply(m);

  ASSERT_FALSE(result.deferred);
  EXPECT_EQ(result.disk_tasks, 8u);
  EXPECT_EQ(result.spec_rolled_back, 4u);
  EXPECT_EQ(result.spec_committed, 8u);
  EXPECT_EQ(result.spec_replay_rounds, 1u);
  EXPECT_EQ(result.spec_serial_tasks, 0u);
  // Odd commits took exactly two attempts (fail, replay, commit).
  EXPECT_EQ(spec.stats().spec_chain_length.count(), 8u);
  EXPECT_EQ(spec.stats().spec_chain_length.max(), 2u);

  expect_scenarios_identical(serial, spec, "forced rollback vs serial");
  expect_matches_brute(spec, "forced rollback vs brute");
}

TEST(Speculative, ExecutionModeSurvivesSnapshotRoundTrip) {
  const TripleField field = make_triple_field(4, 10.0, 0);
  Scenario scenario = make_triple_scenario(
      field, EvalOptions{}.with_execution(Execution::kSpeculative));

  const Snapshot snap = scenario.snapshot();
  const std::vector<std::uint8_t> bytes = snap.to_bytes();
  Snapshot decoded;
  std::string error;
  ASSERT_TRUE(Snapshot::from_bytes(bytes, decoded, error)) << error;
  EXPECT_EQ(decoded.options.execution, Execution::kSpeculative);

  Scenario restored{EvalOptions{}};
  ASSERT_TRUE(restored.restore(decoded, &error)) << error;
  EXPECT_EQ(restored.options().execution, Execution::kSpeculative);
}

// --- fault injection at the speculation hook points ----------------------

TEST(SpeculativeFaults, NewKindsRoundTripThroughJson) {
  for (const sim::FaultKind kind : {sim::FaultKind::kPoisonSpecTask,
                                    sim::FaultKind::kSpecValidationFail}) {
    const sim::FaultEvent event{3, kind, 5};
    sim::FaultEvent decoded;
    std::string error;
    ASSERT_TRUE(sim::FaultEvent::from_json(event.to_json(), decoded, error))
        << error;
    EXPECT_EQ(decoded.kind, kind);
    EXPECT_EQ(decoded.batch, 3u);
    EXPECT_EQ(decoded.index, 5u);
    EXPECT_TRUE(sim::is_engine_fault(kind));
  }
}

TEST(SpeculativeFaults, PoisonedTaskRecoversViaSnapshotRestoreReplay) {
  const TripleField field = make_triple_field(8, 100.0, 56);
  Scenario faulty = make_triple_scenario(
      field, EvalOptions{}.with_execution(Execution::kSpeculative));
  Scenario clean = faulty;

  parallel::ThreadPool pool(4);
  const sim::FaultEvent event{0, sim::FaultKind::kPoisonSpecTask, 0};
  const sim::FaultedBatchOutcome outcome = sim::apply_batch_with_faults(
      faulty, field.batch, &event, &pool, /*recover=*/true);
  EXPECT_TRUE(outcome.fault_fired);
  EXPECT_TRUE(outcome.restored);

  clean.apply_batch(field.batch, &pool);
  expect_scenarios_identical(clean, faulty, "poison-recover vs clean");
}

TEST(SpeculativeFaults, ValidationFaultSelfHealsWithoutRecovery) {
  const TripleField field = make_triple_field(8, 100.0, 56);
  Scenario faulty = make_triple_scenario(
      field, EvalOptions{}.with_execution(Execution::kSpeculative));
  Scenario clean = faulty;

  parallel::ThreadPool pool(4);
  const sim::FaultEvent event{0, sim::FaultKind::kSpecValidationFail, 0};
  const sim::FaultedBatchOutcome outcome = sim::apply_batch_with_faults(
      faulty, field.batch, &event, &pool, /*recover=*/false);
  // The fault struck, rolled one task back — and the replay made the batch
  // exact anyway: a transient validation failure needs no snapshot
  // recovery, unlike a poisoned (vetoed) task.
  EXPECT_TRUE(outcome.fault_fired);
  EXPECT_FALSE(outcome.restored);
  EXPECT_GE(outcome.result.spec_rolled_back, 1u);
  EXPECT_EQ(outcome.result.spec_committed, outcome.result.disk_tasks);

  clean.apply_batch(field.batch, &pool);
  expect_scenarios_identical(clean, faulty, "validation fault vs clean");
}

}  // namespace
}  // namespace rim::core
