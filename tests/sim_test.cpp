#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"

namespace rim::sim {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, NextBelowCoversRangeUniformlyEnough) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.next_below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 5.0, draws * 0.02);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Generators, UniformSquareBoundsAndDeterminism) {
  const auto a = uniform_square(100, 3.0, 5);
  const auto b = uniform_square(100, 3.0, 5);
  EXPECT_EQ(a, b);
  for (const auto& p : a) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 3.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 3.0);
  }
}

TEST(Generators, GaussianClustersCenterSpread) {
  const auto points = gaussian_clusters(500, 3, 10.0, 0.1, 6);
  EXPECT_EQ(points.size(), 500u);
  // With stddev 0.1 and 3 clusters, x-coordinates concentrate near at most
  // 3 values: check that the empirical spread is far from uniform by
  // verifying many points share a small neighborhood.
  std::size_t close_pairs = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      if (geom::dist(points[i], points[j]) < 0.5) ++close_pairs;
    }
  }
  EXPECT_GT(close_pairs, 500u);
}

TEST(Generators, UniformHighwaySortedWithinRange) {
  const auto inst = uniform_highway(200, 12.0, 7);
  const auto& xs = inst.positions();
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  EXPECT_GE(xs.front(), 0.0);
  EXPECT_LT(xs.back(), 12.0);
}

TEST(Generators, PerturbedExponentialChainKeepsGrowth) {
  const auto inst = perturbed_exponential_chain(32, 0.2, 8);
  const auto& xs = inst.positions();
  EXPECT_DOUBLE_EQ(xs.back() - xs.front(), 1.0);
  // Gap ratios stay near 2 within the jitter envelope.
  for (std::size_t i = 2; i < xs.size(); ++i) {
    const double ratio = (xs[i] - xs[i - 1]) / (xs[i - 1] - xs[i - 2]);
    EXPECT_GT(ratio, 2.0 * 0.8 / 1.2 - 1e-9);
    EXPECT_LT(ratio, 2.0 * 1.2 / 0.8 + 1e-9);
  }
}

TEST(Generators, PerturbedChainWithZeroJitterIsExactChain) {
  const auto jittered = perturbed_exponential_chain(16, 0.0, 9);
  const auto exact = highway::exponential_chain(16);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(jittered.position(static_cast<NodeId>(i)),
                exact.position(static_cast<NodeId>(i)), 1e-12);
  }
}

TEST(Generators, BlockedHighwayStructure) {
  const auto inst = blocked_highway(4, 25, 0.5, 2.0, 10);
  EXPECT_EQ(inst.size(), 100u);
  // Every point lies inside its block's [left, left + width) interval.
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const double x = inst.position(static_cast<NodeId>(i));
    const double offset = std::fmod(x, 2.0);
    EXPECT_LT(offset, 0.5);
  }
}

}  // namespace
}  // namespace rim::sim
