#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rim/geom/convex_hull.hpp"
#include "rim/geom/delaunay.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/mst.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/gabriel.hpp"

namespace rim::geom {
namespace {

TEST(ConvexHull, Square) {
  const PointSet points{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const auto hull = convex_hull(points);
  EXPECT_EQ(hull.size(), 4u);
  // CCW from the lexicographic minimum (0,0).
  EXPECT_EQ(hull[0], 0u);
  EXPECT_EQ(std::set<NodeId>(hull.begin(), hull.end()),
            (std::set<NodeId>{0, 1, 2, 3}));
}

TEST(ConvexHull, CollinearPointsReduceToExtremes) {
  const PointSet points{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = convex_hull(points);
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_EQ(hull[0], 0u);
  EXPECT_EQ(hull[1], 3u);
}

TEST(ConvexHull, DuplicatesAndTiny) {
  EXPECT_EQ(convex_hull(PointSet{{1, 1}}).size(), 1u);
  EXPECT_EQ(convex_hull(PointSet{{1, 1}, {1, 1}}).size(), 1u);
  EXPECT_EQ(convex_hull(PointSet{}).size(), 0u);
}

TEST(ConvexHull, ContainsAllInputPoints) {
  const auto points = sim::uniform_square(200, 3.0, 11);
  const auto hull = convex_hull(points);
  for (const Vec2& p : points) {
    EXPECT_TRUE(hull_contains(points, hull, p));
  }
  EXPECT_FALSE(hull_contains(points, hull, {-1.0, -1.0}));
  EXPECT_FALSE(hull_contains(points, hull, {4.0, 4.0}));
}

TEST(InCircumcircle, UnitCircleCases) {
  const Vec2 a{1, 0};
  const Vec2 b{0, 1};
  const Vec2 c{-1, 0};  // CCW on the unit circle
  EXPECT_TRUE(in_circumcircle(a, b, c, {0, 0}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {0, -1.0001}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {2, 0}));
}

class DelaunayProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelaunayProperties, EmptyCircumcircleProperty) {
  const auto points = sim::uniform_square(60, 2.0, GetParam());
  const Delaunay del(points);
  ASSERT_FALSE(del.triangles().empty());
  for (const Triangle& t : del.triangles()) {
    for (NodeId w = 0; w < points.size(); ++w) {
      if (w == t.v[0] || w == t.v[1] || w == t.v[2]) continue;
      EXPECT_FALSE(in_circumcircle(points[t.v[0]], points[t.v[1]],
                                   points[t.v[2]], points[w]))
          << "point " << w << " inside circumcircle of triangle " << t.v[0]
          << "," << t.v[1] << "," << t.v[2];
    }
  }
}

TEST_P(DelaunayProperties, SatisfiesEulerFormula) {
  // V - E + F = 2 with F = triangles + outer face — exact for any planar
  // triangulation regardless of collinear hull vertices (which make the
  // classic 3n-3-h count off by the number of such vertices).
  const auto points = sim::uniform_square(80, 2.0, GetParam() + 100);
  const Delaunay del(points);
  const std::size_t n = points.size();
  EXPECT_EQ(del.edges().edge_count(), n + del.triangles().size() - 1);
  // And h from the convex hull bounds the triangle count from both sides.
  const std::size_t h = convex_hull(points).size();
  EXPECT_LE(del.triangles().size(), 2 * n - 2 - h);
  EXPECT_GE(del.triangles().size() + 2, 2 * n - 2 - h - n / 10);
}

TEST_P(DelaunayProperties, ContainsGabrielAndMst) {
  const auto points = sim::uniform_square(70, 2.0, GetParam() + 200);
  const Delaunay del(points);
  // Euclidean MST of the complete graph is a Delaunay subgraph.
  const graph::Graph mst = graph::euclidean_mst_complete(points);
  for (graph::Edge e : mst.edges()) {
    EXPECT_TRUE(del.edges().has_edge(e.u, e.v)) << e.u << "-" << e.v;
  }
  // Gabriel(UDG) is a Delaunay subgraph too.
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph gg = topology::gabriel_graph(points, udg);
  for (graph::Edge e : gg.edges()) {
    EXPECT_TRUE(del.edges().has_edge(e.u, e.v)) << e.u << "-" << e.v;
  }
}

TEST_P(DelaunayProperties, DelaunayIsConnectedAndPlanarSized) {
  const auto points = sim::uniform_square(100, 2.5, GetParam() + 300);
  const Delaunay del(points);
  EXPECT_TRUE(graph::is_connected(del.edges()));
  EXPECT_LE(del.edges().edge_count(), 3 * points.size());  // planarity bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayProperties,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Delaunay, TinyInputs) {
  EXPECT_EQ(Delaunay(PointSet{}).edges().node_count(), 0u);
  EXPECT_EQ(Delaunay(PointSet{{0, 0}}).edges().edge_count(), 0u);
  const Delaunay two(PointSet{{0, 0}, {1, 0}});
  EXPECT_EQ(two.edges().edge_count(), 1u);
  const Delaunay tri(PointSet{{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(tri.edges().edge_count(), 3u);
  EXPECT_EQ(tri.triangles().size(), 1u);
}

TEST(Delaunay, CollinearFallbackIsPath) {
  const PointSet points{{3, 0}, {0, 0}, {1, 0}, {2, 0}};
  const Delaunay del(points);
  EXPECT_EQ(del.edges().edge_count(), 3u);
  EXPECT_TRUE(del.edges().has_edge(1, 2));
  EXPECT_TRUE(del.edges().has_edge(2, 3));
  EXPECT_TRUE(del.edges().has_edge(3, 0));
  EXPECT_TRUE(graph::is_connected(del.edges()));
}

TEST(UnitDelaunay, SubgraphOfUdgAndPreservesConnectivity) {
  for (std::uint64_t seed : {5u, 6u}) {
    const auto points = sim::uniform_square(120, 2.5, seed);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const graph::Graph udel = unit_delaunay(points, 1.0);
    for (graph::Edge e : udel.edges()) {
      EXPECT_TRUE(udg.has_edge(e.u, e.v));
    }
    EXPECT_TRUE(graph::preserves_connectivity(udg, udel)) << seed;
  }
}

}  // namespace
}  // namespace rim::geom
