#include <gtest/gtest.h>

#include "rim/core/interference.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/exact_optimum.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/sim/generators.hpp"

namespace rim::highway {
namespace {

class BbMatchesEnumeration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BbMatchesEnumeration, SameOptimumOnRandom2D) {
  const auto points = sim::uniform_square(7, 1.1, GetParam());
  const graph::Graph udg = graph::build_udg(points, 2.0);  // complete
  const auto enumerated = exact_minimum_interference_tree(points, udg);
  const auto bb = exact_minimum_interference_tree_bb(points, udg);
  ASSERT_TRUE(enumerated.has_value());
  ASSERT_TRUE(bb.has_value());
  EXPECT_TRUE(bb->proven);
  EXPECT_EQ(bb->interference, enumerated->interference);
  EXPECT_TRUE(graph::is_connected(bb->tree));
  EXPECT_TRUE(graph::is_forest(bb->tree));
  EXPECT_EQ(core::graph_interference(bb->tree, points), bb->interference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BbMatchesEnumeration,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class BbOnChains : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BbOnChains, MatchesEnumerationUpToNine) {
  const std::size_t n = GetParam();
  const auto chain = exponential_chain(n);
  const auto points = chain.to_points();
  const auto enumerated =
      exact_minimum_interference_tree(points, chain.udg(1.0));
  const auto bb = exact_minimum_interference_tree_bb(points, chain.udg(1.0));
  ASSERT_TRUE(bb.has_value());
  EXPECT_TRUE(bb->proven);
  EXPECT_EQ(bb->interference, enumerated->interference) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BbOnChains,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u));

TEST(BranchBound, ExtendsFrontierPastPrufer) {
  // n = 11 chain: 11^9 ≈ 2.4e9 Prüfer trees, but B&B proves the optimum in
  // a modest state count.
  const auto chain = exponential_chain(11);
  const auto points = chain.to_points();
  const AExpResult aexp = a_exp(chain);
  const auto bb = exact_minimum_interference_tree_bb(
      points, chain.udg(1.0), 20'000'000, aexp.interference + 1);
  ASSERT_TRUE(bb.has_value());
  EXPECT_TRUE(bb->proven);
  EXPECT_GE(bb->interference, exponential_chain_lower_bound(11));
  EXPECT_LE(bb->interference, aexp.interference);
}

TEST(BranchBound, IncumbentPrimingPrunesHarder) {
  const auto chain = exponential_chain(10);
  const auto points = chain.to_points();
  const auto cold = exact_minimum_interference_tree_bb(points, chain.udg(1.0));
  const auto primed = exact_minimum_interference_tree_bb(
      points, chain.udg(1.0), 20'000'000, a_exp(chain).interference + 1);
  ASSERT_TRUE(cold.has_value() && primed.has_value());
  EXPECT_EQ(cold->interference, primed->interference);
  EXPECT_LE(primed->states_visited, cold->states_visited);
}

TEST(BranchBound, DisconnectedReturnsNullopt) {
  const geom::PointSet points{{0, 0}, {9, 9}};
  EXPECT_FALSE(exact_minimum_interference_tree_bb(
                   points, graph::build_udg(points, 1.0))
                   .has_value());
}

TEST(BranchBound, BudgetExhaustionReportsUnproven) {
  const auto points = sim::uniform_square(12, 1.0, 9);
  const graph::Graph udg = graph::build_udg(points, 2.0);
  const auto bb = exact_minimum_interference_tree_bb(points, udg, /*max_states=*/50);
  ASSERT_TRUE(bb.has_value());
  EXPECT_FALSE(bb->proven);
  // The fallback answer is still a valid spanning tree.
  EXPECT_TRUE(graph::is_connected(bb->tree));
}

TEST(BranchBound, RespectsUdgRestriction) {
  // Sparse UDG: the optimum must use only UDG edges.
  const auto inst = sim::uniform_highway(9, 4.0, 12);
  if (!inst.udg_connected(1.0)) GTEST_SKIP();
  const auto points = inst.to_points();
  const graph::Graph udg = inst.udg(1.0);
  const auto bb = exact_minimum_interference_tree_bb(points, udg);
  ASSERT_TRUE(bb.has_value());
  for (graph::Edge e : bb->tree.edges()) {
    EXPECT_TRUE(udg.has_edge(e.u, e.v));
  }
  const auto enumerated = exact_minimum_interference_tree(points, udg);
  EXPECT_EQ(bb->interference, enumerated->interference);
}

}  // namespace
}  // namespace rim::highway
