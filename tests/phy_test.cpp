#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rim/core/interference.hpp"
#include "rim/graph/udg.hpp"
#include "rim/phy/scheduling.hpp"
#include "rim/phy/sinr.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::phy {
namespace {

TEST(Sinr, IsolatedLinkAlwaysDecodes) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const SinrModel model(topo, points);
  const std::vector<std::uint8_t> tx{1, 0};
  EXPECT_TRUE(model.link_feasible(0, 1, tx));
  // SINR equals beta * margin exactly at the farthest neighbor, no
  // interference.
  EXPECT_NEAR(model.sinr(0, 1, tx),
              model.params().beta * model.params().margin, 1e-9);
}

TEST(Sinr, SilentNodeHasNoPower) {
  const geom::PointSet points{{0, 0}, {1, 0}, {5, 5}};
  graph::Graph topo(3);
  topo.add_edge(0, 1);
  const SinrModel model(topo, points);
  EXPECT_DOUBLE_EQ(model.power(2), 0.0);
  EXPECT_GT(model.power(0), 0.0);
}

TEST(Sinr, ReceivedPowerFollowsPathLoss) {
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}};
  graph::Graph topo(3);
  topo.add_edge(0, 2);  // r_0 = 2
  const SinrModel model(topo, points);
  // Doubling the distance scales received power by 2^-alpha.
  const double near = model.received_power(0, 1);
  const double far = model.received_power(0, 2);
  EXPECT_NEAR(near / far, std::pow(2.0, model.params().alpha), 1e-9);
}

TEST(Sinr, StrongInterfererKillsLink) {
  // v halfway between its sender and a co-channel interferer of equal
  // power: SINR ~ 1 < beta.
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  graph::Graph topo(4);
  topo.add_edge(0, 1);  // link under test, r_0 = 1
  topo.add_edge(2, 3);  // interferer with r_2 = 1, distance to v also 1
  const SinrModel model(topo, points);
  const std::vector<std::uint8_t> both{1, 0, 1, 0};
  EXPECT_FALSE(model.link_feasible(0, 1, both));
  const std::vector<std::uint8_t> alone{1, 0, 0, 0};
  EXPECT_TRUE(model.link_feasible(0, 1, alone));
}

TEST(Sinr, HalfDuplexAndNonTransmittingSender) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const SinrModel model(topo, points);
  const std::vector<std::uint8_t> both{1, 1};
  EXPECT_FALSE(model.link_feasible(0, 1, both));
  const std::vector<std::uint8_t> none{0, 0};
  EXPECT_FALSE(model.link_feasible(0, 1, none));
}

TEST(ScheduleDisk, ValidAndCompleteOnRandomInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto points = sim::uniform_square(80, 2.0, seed);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const graph::Graph mst = topology::mst_topology(points, udg);
    const Schedule schedule = schedule_links_disk(mst, points);
    EXPECT_TRUE(schedule_valid_disk(schedule, mst, points)) << seed;
    EXPECT_EQ(schedule.scheduled_links(), mst.edge_count()) << seed;
  }
}

TEST(ScheduleDisk, LengthAtLeastMaxDegree) {
  // All links at one node pairwise conflict (shared endpoint).
  const auto points = sim::uniform_square(100, 2.0, 7);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  const Schedule schedule = schedule_links_disk(mst, points);
  EXPECT_GE(schedule.length(), mst.max_degree());
}

TEST(ScheduleDisk, IndependentLinksShareOneSlot) {
  // Two far-apart short links: no conflict, one slot.
  const geom::PointSet points{{0, 0}, {0.5, 0}, {10, 0}, {10.5, 0}};
  graph::Graph topo(4);
  topo.add_edge(0, 1);
  topo.add_edge(2, 3);
  const Schedule schedule = schedule_links_disk(topo, points);
  EXPECT_EQ(schedule.length(), 1u);
}

TEST(ScheduleDisk, CoveringLinksAreSeparated) {
  // The long link's transmitter covers the short link's receiver.
  const geom::PointSet points{{0, 0}, {0.4, 0}, {1.0, 0}, {3.0, 0}};
  graph::Graph topo(4);
  topo.add_edge(0, 1);  // receiver 1 inside node 2's disk below
  topo.add_edge(2, 3);  // r_2 = 2 covers node 1
  const Schedule schedule = schedule_links_disk(topo, points);
  EXPECT_EQ(schedule.length(), 2u);
}

TEST(ScheduleSinr, AllLinksScheduledAndSlotsFeasible) {
  for (std::uint64_t seed : {4u, 5u}) {
    const auto points = sim::uniform_square(70, 2.0, seed);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const graph::Graph mst = topology::mst_topology(points, udg);
    const Schedule schedule = schedule_links_sinr(mst, points);
    EXPECT_EQ(schedule.scheduled_links(), mst.edge_count()) << seed;
    // Re-verify feasibility of every slot independently.
    const SinrModel model(mst, points);
    std::vector<std::uint8_t> tx(points.size(), 0);
    for (const auto& slot : schedule.slots) {
      std::fill(tx.begin(), tx.end(), 0);
      for (graph::Edge e : slot) tx[e.u] = 1;
      for (graph::Edge e : slot) {
        EXPECT_TRUE(model.link_feasible(e.u, e.v, tx))
            << "slot infeasible, seed " << seed;
      }
    }
  }
}

TEST(ScheduleSinr, SoloLinkNeedsOneSlot) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  EXPECT_EQ(schedule_links_sinr(topo, points).length(), 1u);
}

TEST(ScheduleDisk, EmptyTopology) {
  const geom::PointSet points{{0, 0}, {1, 1}};
  const graph::Graph topo(2);
  EXPECT_EQ(schedule_links_disk(topo, points).length(), 0u);
  EXPECT_EQ(schedule_links_sinr(topo, points).length(), 0u);
}

TEST(Schedules, Deterministic) {
  const auto points = sim::uniform_square(60, 2.0, 15);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  const Schedule a = schedule_links_disk(mst, points);
  const Schedule b = schedule_links_disk(mst, points);
  ASSERT_EQ(a.length(), b.length());
  for (std::size_t k = 0; k < a.length(); ++k) {
    EXPECT_EQ(a.slots[k].size(), b.slots[k].size());
  }
}

class SinrParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(SinrParamSweep, HigherAlphaLocalisesInterference) {
  // With a steeper path-loss exponent, remote interferers matter less, so
  // the SINR frame length cannot grow as alpha rises (same margins).
  const auto points = sim::uniform_square(70, 2.5, 16);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  SinrParams base;
  base.alpha = GetParam();
  const Schedule schedule = schedule_links_sinr(mst, points, base);
  EXPECT_EQ(schedule.scheduled_links(), mst.edge_count());
  // Every slot stays independently feasible under these params.
  const SinrModel model(mst, points, base);
  std::vector<std::uint8_t> tx(points.size(), 0);
  for (const auto& slot : schedule.slots) {
    std::fill(tx.begin(), tx.end(), 0);
    for (graph::Edge e : slot) tx[e.u] = 1;
    for (graph::Edge e : slot) {
      EXPECT_TRUE(model.link_feasible(e.u, e.v, tx)) << "alpha " << base.alpha;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, SinrParamSweep,
                         ::testing::Values(2.0, 2.5, 3.0, 4.0, 5.0));

TEST(Schedules, FrameLengthTracksInterference) {
  // The E16 claim in miniature: the high-interference linear exponential
  // chain needs a longer frame than a low-interference topology of the
  // same instance.
  const auto chain_points = [] {
    geom::PointSet p;
    double x = 0.0;
    double gap = 1.0 / 512.0;
    for (int i = 0; i < 10; ++i) {
      p.push_back({x, 0.0});
      x += gap;
      gap *= 2.0;
    }
    return p;
  }();
  const graph::Graph udg = graph::build_udg(chain_points, 1.0);
  graph::Graph linear(chain_points.size());
  for (NodeId i = 0; i + 1 < chain_points.size(); ++i) linear.add_edge(i, i + 1);
  graph::Graph star(chain_points.size());
  for (NodeId i = 1; i < chain_points.size(); ++i) star.add_edge(0, i);
  const std::size_t linear_frame =
      schedule_links_disk(linear, chain_points).length();
  const std::uint32_t linear_i =
      core::graph_interference(linear, chain_points);
  EXPECT_GE(linear_frame, static_cast<std::size_t>(linear_i) / 2);
  (void)udg;
  (void)star;
}

}  // namespace
}  // namespace rim::phy
