#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "rim/svc/protocol.hpp"

// Wire protocol unit tests: framing, the response envelope builders, the
// mutation codec, and the untrusted-integer helper. The service-level
// byte-identity properties live in svc_service_test.cpp.

namespace rim::svc {
namespace {

TEST(SvcFrame, RoundTripsPayload) {
  const std::string payload = R"({"cmd":"ping","id":7})";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  std::size_t consumed = 0;
  std::string decoded;
  EXPECT_EQ(try_decode_frame(frame, kDefaultMaxFrameBytes, consumed, decoded),
            FrameStatus::kFrame);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded, payload);
}

TEST(SvcFrame, HeaderIsLittleEndian) {
  const std::string frame = encode_frame(std::string(0x0102, 'x'));
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0x00);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 0x00);
}

TEST(SvcFrame, NeedsMoreOnEveryProperPrefix) {
  const std::string frame = encode_frame("{\"cmd\":\"ping\"}");
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::size_t consumed = 0;
    std::string decoded;
    EXPECT_EQ(try_decode_frame(std::string_view(frame).substr(0, cut),
                               kDefaultMaxFrameBytes, consumed, decoded),
              FrameStatus::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(SvcFrame, DecodesBackToBackFrames) {
  const std::string first = encode_frame("AAAA");
  const std::string second = encode_frame("BB");
  std::string buffer = first + second;

  std::size_t consumed = 0;
  std::string decoded;
  ASSERT_EQ(try_decode_frame(buffer, kDefaultMaxFrameBytes, consumed, decoded),
            FrameStatus::kFrame);
  EXPECT_EQ(decoded, "AAAA");
  buffer.erase(0, consumed);
  ASSERT_EQ(try_decode_frame(buffer, kDefaultMaxFrameBytes, consumed, decoded),
            FrameStatus::kFrame);
  EXPECT_EQ(decoded, "BB");
  EXPECT_EQ(consumed, buffer.size());
}

TEST(SvcFrame, RejectsOversizedDeclaredLength) {
  const std::string frame = encode_frame(std::string(64, 'x'));
  std::size_t consumed = 0;
  std::string decoded;
  EXPECT_EQ(try_decode_frame(frame, 63, consumed, decoded),
            FrameStatus::kTooLarge);
  // The cap applies from the header alone — a 4-byte prefix suffices.
  EXPECT_EQ(try_decode_frame(std::string_view(frame).substr(0, 4), 63,
                             consumed, decoded),
            FrameStatus::kTooLarge);
}

TEST(SvcFrame, EmptyPayloadIsAFrame) {
  const std::string frame = encode_frame("");
  std::size_t consumed = 0;
  std::string decoded = "sentinel";
  EXPECT_EQ(try_decode_frame(frame, kDefaultMaxFrameBytes, consumed, decoded),
            FrameStatus::kFrame);
  EXPECT_EQ(consumed, kFrameHeaderBytes);
  EXPECT_TRUE(decoded.empty());
}

TEST(SvcEnvelope, OkResponseShape) {
  io::JsonObject result;
  result["value"] = io::Json(3);
  EXPECT_EQ(make_ok(9, io::Json(std::move(result))),
            R"({"id":9,"ok":true,"result":{"value":3}})");
}

TEST(SvcEnvelope, ErrorResponseShape) {
  EXPECT_EQ(make_error(4, code::kNoSession, "no session 4"),
            R"({"code":"no_session","error":"no session 4","id":4,)"
            R"("ok":false})");
}

TEST(SvcEnvelope, PeekRequestId) {
  EXPECT_EQ(peek_request_id(R"({"cmd":"ping","id":42})"), 42u);
  EXPECT_EQ(peek_request_id(R"({"cmd":"ping"})"), 0u);
  EXPECT_EQ(peek_request_id("not json"), 0u);
  EXPECT_EQ(peek_request_id(R"({"id":-3})"), 0u);
  EXPECT_EQ(peek_request_id(R"({"id":2.5})"), 0u);
}

TEST(SvcMutationCodec, RoundTripsEveryKind) {
  const std::vector<core::Mutation> batch = {
      core::Mutation::add_node({0.125, -7.5}),
      core::Mutation::remove_node(3),
      core::Mutation::add_edge(1, 2),
      core::Mutation::remove_edge(2, 1),
      core::Mutation::move_node(0, {1e-3, 0.3333333333333333}),
  };
  io::JsonArray array;
  for (const core::Mutation& mutation : batch) {
    array.push_back(mutation_to_json(mutation));
  }
  std::vector<core::Mutation> decoded;
  std::string error;
  ASSERT_TRUE(
      mutation_batch_from_json(io::Json(array), decoded, error))
      << error;
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(decoded[i].kind, batch[i].kind) << i;
    EXPECT_EQ(decoded[i].u, batch[i].u) << i;
    EXPECT_EQ(decoded[i].v, batch[i].v) << i;
    // %.17g round-trips doubles bit-exactly.
    EXPECT_EQ(decoded[i].position.x, batch[i].position.x) << i;
    EXPECT_EQ(decoded[i].position.y, batch[i].position.y) << i;
  }
}

TEST(SvcMutationCodec, AcceptsInvalidNodeIdForTraceReplay) {
  // Replayed fault traces legitimately carry kInvalidNode (dropped ids);
  // Scenario::apply skips them, so the codec must not reject them.
  const core::Mutation mutation = core::Mutation::remove_node(kInvalidNode);
  core::Mutation decoded;
  std::string error;
  ASSERT_TRUE(mutation_from_json(mutation_to_json(mutation), decoded, error))
      << error;
  EXPECT_EQ(decoded.v, kInvalidNode);
}

TEST(SvcMutationCodec, RejectsStructuralGarbage) {
  core::Mutation out;
  std::string error;
  io::Json parsed;
  ASSERT_TRUE(io::Json::parse(R"({"kind":"warp_node","v":1})", parsed, error));
  EXPECT_FALSE(mutation_from_json(parsed, out, error));
  ASSERT_TRUE(io::Json::parse(R"({"kind":"add_edge","u":1})", parsed, error));
  EXPECT_FALSE(mutation_from_json(parsed, out, error));
  ASSERT_TRUE(io::Json::parse(R"({"kind":"add_node","x":1})", parsed, error));
  EXPECT_FALSE(mutation_from_json(parsed, out, error));
  ASSERT_TRUE(io::Json::parse(R"([1,2,3])", parsed, error));
  EXPECT_FALSE(mutation_from_json(parsed, out, error));
  std::vector<core::Mutation> batch;
  ASSERT_TRUE(io::Json::parse(R"({"kind":"add_edge","u":1,"v":2})", parsed,
                              error));
  EXPECT_FALSE(mutation_batch_from_json(parsed, batch, error))
      << "a single object is not a batch";
}

TEST(SvcJsonToU64, AcceptsExactIntegersInRange) {
  std::uint64_t out = 0;
  EXPECT_TRUE(json_to_u64(io::Json(0), 10, out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(json_to_u64(io::Json(10), 10, out));
  EXPECT_EQ(out, 10u);
}

TEST(SvcJsonToU64, RejectsNonIntegersAndOutOfRange) {
  std::uint64_t out = 0;
  EXPECT_FALSE(json_to_u64(io::Json(11), 10, out));
  EXPECT_FALSE(json_to_u64(io::Json(-1), 10, out));
  EXPECT_FALSE(json_to_u64(io::Json(2.5), 10, out));
  EXPECT_FALSE(json_to_u64(io::Json("7"), 10, out));
  EXPECT_FALSE(json_to_u64(io::Json(true), 10, out));
  EXPECT_FALSE(json_to_u64(io::Json(nullptr), 10, out));
  // Beyond 2^53 doubles cannot represent every integer exactly; the
  // helper refuses the whole range rather than guess.
  EXPECT_FALSE(json_to_u64(io::Json(9.1e18),
                           std::numeric_limits<std::uint64_t>::max(), out));
}

}  // namespace
}  // namespace rim::svc
