#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "rim/core/node_soa.hpp"
#include "rim/sim/rng.hpp"

/// NodeSoA property tests: the swap-with-last compaction must preserve the
/// id ↔ slot mapping under arbitrary op interleavings, and the canonical
/// serialization must be independent of slot history (byte-identical
/// round-trips).

namespace rim::core {
namespace {

struct ShadowNode {
  geom::Vec2 p;
  double r2;
};

/// Every invariant the mapping promises, checked against a shadow map.
void expect_consistent(const NodeSoA& soa,
                       const std::map<NodeId, ShadowNode>& shadow) {
  ASSERT_EQ(soa.size(), shadow.size());
  // Slots are dense: every slot holds a registered id that maps back.
  for (std::uint32_t slot = 0; slot < soa.size(); ++slot) {
    const NodeId id = soa.id_at(slot);
    ASSERT_TRUE(soa.contains(id));
    EXPECT_EQ(soa.slot_of(id), slot);
  }
  for (const auto& [id, node] : shadow) {
    ASSERT_TRUE(soa.contains(id));
    EXPECT_EQ(soa.position(id).x, node.p.x);
    EXPECT_EQ(soa.position(id).y, node.p.y);
    EXPECT_EQ(soa.radius2(id), node.r2);
  }
}

TEST(NodeSoA, RandomizedOpsPreserveMappingAndRoundTrip) {
  sim::Rng rng(2026);
  NodeSoA soa;
  std::map<NodeId, ShadowNode> shadow;
  NodeId next_id = 0;
  const auto random_present = [&]() -> NodeId {
    auto it = shadow.begin();
    std::advance(it, static_cast<long>(rng.next_below(shadow.size())));
    return it->first;
  };

  for (int op = 0; op < 1000; ++op) {
    const double coin = rng.next_double();
    if (shadow.empty() || coin < 0.40) {
      const ShadowNode node{{rng.uniform(-9.0, 9.0), rng.uniform(-9.0, 9.0)},
                            rng.next_double() < 0.2 ? 0.0
                                                    : rng.uniform(0.0, 4.0)};
      soa.insert(next_id, node.p, node.r2);
      shadow.emplace(next_id, node);
      ++next_id;
    } else if (coin < 0.65) {
      const NodeId victim = random_present();
      soa.remove(victim);
      shadow.erase(victim);
    } else if (coin < 0.80) {
      // Relabel a present id to a fresh one: columns untouched.
      const NodeId from = random_present();
      soa.relabel(from, next_id);
      shadow.emplace(next_id, shadow.at(from));
      shadow.erase(from);
      ++next_id;
    } else if (coin < 0.90) {
      const NodeId id = random_present();
      const geom::Vec2 p{rng.uniform(-9.0, 9.0), rng.uniform(-9.0, 9.0)};
      soa.set_position(id, p);
      shadow.at(id).p = p;
    } else {
      const NodeId id = random_present();
      const double r2 = rng.uniform(0.0, 4.0);
      soa.set_radius2(id, r2);
      shadow.at(id).r2 = r2;
    }
    if (op % 50 == 0) expect_consistent(soa, shadow);

    // Byte-identical round-trip at every step would be slow; sample it.
    if (op % 100 == 99) {
      const std::vector<std::uint8_t> bytes = soa.serialize();
      const std::optional<NodeSoA> restored = NodeSoA::deserialize(bytes);
      ASSERT_TRUE(restored.has_value());
      EXPECT_TRUE(*restored == soa);
      EXPECT_EQ(restored->serialize(), bytes);
      EXPECT_EQ(restored->checksum(), soa.checksum());
    }
  }
  expect_consistent(soa, shadow);
}

TEST(NodeSoA, SerializationIsSlotHistoryIndependent) {
  // Build the same logical content along two different op histories: the
  // canonical (ascending-id) serialization must not see the difference.
  NodeSoA direct;
  direct.insert(0, {0.0, 0.0}, 1.0);
  direct.insert(1, {1.0, 0.0}, 2.0);
  direct.insert(2, {2.0, 0.0}, 3.0);

  NodeSoA churned;
  churned.insert(2, {2.0, 0.0}, 3.0);
  churned.insert(7, {9.0, 9.0}, 9.0);
  churned.insert(0, {0.0, 0.0}, 1.0);
  churned.remove(7);  // swap-with-last scrambles slot order
  churned.insert(1, {1.0, 0.0}, 2.0);

  EXPECT_TRUE(direct == churned);
  EXPECT_EQ(direct.serialize(), churned.serialize());
  EXPECT_EQ(direct.checksum(), churned.checksum());
}

TEST(NodeSoA, RemoveReportsTheMovedId) {
  NodeSoA soa;
  soa.insert(0, {0.0, 0.0}, 0.0);
  soa.insert(1, {1.0, 0.0}, 0.0);
  soa.insert(2, {2.0, 0.0}, 0.5);
  // Removing a middle id moves the last slot's id; removing the node in
  // the last slot moves nothing.
  EXPECT_EQ(soa.remove(0), 2u);
  EXPECT_EQ(soa.position(2).x, 2.0);
  // Id 2 now occupies slot 0, so removing it moves id 1 (the last slot).
  EXPECT_EQ(soa.remove(2), 1u);
  EXPECT_EQ(soa.remove(1), kInvalidNode);
  EXPECT_TRUE(soa.empty());
}

TEST(NodeSoA, DenseTracksScenarioInvariant) {
  NodeSoA soa;
  for (NodeId v = 0; v < 10; ++v) soa.insert(v, {double(v), 0.0}, 0.0);
  EXPECT_TRUE(soa.dense());
  // Scenario's remove protocol: remove v, then relabel last -> v.
  const NodeId last = 9;
  soa.remove(3);
  EXPECT_FALSE(soa.dense());
  soa.relabel(last, 3);
  EXPECT_TRUE(soa.dense());
}

TEST(NodeSoA, DeserializeRejectsMalformedInput) {
  NodeSoA soa;
  soa.insert(0, {0.5, -0.5}, 1.5);
  soa.insert(1, {1.5, 2.5}, 0.0);
  std::vector<std::uint8_t> bytes = soa.serialize();
  // Truncation anywhere must fail, not crash or half-load.
  for (std::size_t cut = 1; cut < bytes.size(); cut += 5) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + long(cut));
    EXPECT_FALSE(NodeSoA::deserialize(truncated).has_value()) << cut;
  }
  // Duplicate id: rewrite the second record's id to equal the first's.
  std::vector<std::uint8_t> dup = bytes;
  // Header is 8 bytes; each record is 28 bytes starting with the u32 id.
  std::copy(dup.begin() + 8, dup.begin() + 12, dup.begin() + 36);
  EXPECT_FALSE(NodeSoA::deserialize(dup).has_value());
}

}  // namespace
}  // namespace rim::core
