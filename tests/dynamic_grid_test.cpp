#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "rim/geom/dynamic_grid.hpp"
#include "rim/sim/rng.hpp"

/// Focused coverage for geom::DynamicGrid under the engine's churn
/// patterns: relabel() (the swap-with-last rename) and repeated
/// insert/erase/move cycles, cross-checked against a naive id->position map.

namespace rim::geom {
namespace {

std::vector<NodeId> ids_in_disk(const DynamicGrid& grid, Vec2 center,
                                double radius2) {
  std::vector<NodeId> out;
  grid.for_each_in_disk_squared(center, radius2,
                                [&](NodeId id, Vec2) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ids_in_disk_naive(
    const std::unordered_map<NodeId, Vec2>& reference, Vec2 center,
    double radius2) {
  std::vector<NodeId> out;
  for (const auto& [id, p] : reference) {
    if (dist2(p, center) <= radius2) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DynamicGrid, RelabelMovesIdentityNotPosition) {
  DynamicGrid grid(0.5);
  grid.insert(0, {0.1, 0.1});
  grid.insert(1, {1.0, 1.0});
  grid.insert(2, {2.0, 2.0});

  grid.erase(1);
  grid.relabel(2, 1);  // swap-with-last: 2 takes over id 1

  EXPECT_TRUE(grid.contains(0));
  EXPECT_TRUE(grid.contains(1));
  EXPECT_FALSE(grid.contains(2));
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.position(1), (Vec2{2.0, 2.0}));
  // Queries see the new id at the old position, never the old id.
  EXPECT_EQ(ids_in_disk(grid, {2.0, 2.0}, 0.01), (std::vector<NodeId>{1}));
  EXPECT_EQ(ids_in_disk(grid, {10.0, 10.0}, 1000.0),
            (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(grid.stats().relabels.value(), 1u);
}

TEST(DynamicGrid, RelabelIntoLargerIdGrowsMirrors) {
  // relabel() must also work "upwards" (to > any id seen so far).
  DynamicGrid grid(1.0);
  grid.insert(0, {0.0, 0.0});
  grid.relabel(0, 7);
  EXPECT_FALSE(grid.contains(0));
  EXPECT_TRUE(grid.contains(7));
  EXPECT_EQ(grid.position(7), (Vec2{0.0, 0.0}));
  EXPECT_EQ(grid.nearest({0.5, 0.0}), 7u);
}

/// The engine's removal pattern, repeated: erase a random id, then relabel
/// the current max id into the vacated slot — exactly Scenario's
/// swap-with-last. The grid must stay consistent with a naive reference
/// through hundreds of such renames mixed with inserts and moves.
TEST(DynamicGrid, SwapWithLastChurnStaysConsistent) {
  sim::Rng rng(97);
  DynamicGrid grid(0.4);
  std::unordered_map<NodeId, Vec2> reference;

  std::size_t n = 0;
  const auto insert = [&](Vec2 p) {
    const auto id = static_cast<NodeId>(n++);
    grid.insert(id, p);
    reference[id] = p;
  };
  for (int i = 0; i < 64; ++i) {
    insert({rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)});
  }

  for (int round = 0; round < 600; ++round) {
    const double roll = rng.next_double();
    if (roll < 0.35 || n < 8) {
      insert({rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)});
    } else if (roll < 0.65) {
      // Swap-with-last removal.
      const auto victim = static_cast<NodeId>(rng.next_below(n));
      const auto last = static_cast<NodeId>(n - 1);
      grid.erase(victim);
      reference.erase(victim);
      if (victim != last) {
        grid.relabel(last, victim);
        reference[victim] = reference[last];
        reference.erase(last);
      }
      --n;
    } else {
      const auto id = static_cast<NodeId>(rng.next_below(n));
      const Vec2 p{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
      grid.move(id, p);
      reference[id] = p;
    }

    ASSERT_EQ(grid.size(), reference.size()) << "round " << round;
    const Vec2 center{rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
    const double radius2 = rng.uniform(0.01, 2.0);
    ASSERT_EQ(ids_in_disk(grid, center, radius2),
              ids_in_disk_naive(reference, center, radius2))
        << "round " << round;
  }
  EXPECT_GT(grid.stats().relabels.value(), 50u);
  EXPECT_GT(grid.stats().erases.value(), 50u);
}

TEST(DynamicGrid, StatsCountersTrackOperations) {
  DynamicGrid grid(1.0);
  grid.insert(0, {0.0, 0.0});
  grid.insert(1, {1.5, 0.0});
  grid.move(0, {0.5, 0.5});
  grid.erase(1);
  (void)ids_in_disk(grid, {0.0, 0.0}, 4.0);
  (void)grid.nearest({1.0, 1.0});
  const auto& stats = grid.stats();
  EXPECT_EQ(stats.inserts.value(), 2u);
  EXPECT_EQ(stats.moves.value(), 1u);
  EXPECT_EQ(stats.erases.value(), 1u);
  EXPECT_GE(stats.disk_queries.value(), 2u);  // nearest() queries disks too
  EXPECT_EQ(stats.nearest_queries.value(), 1u);
  const std::string json = stats.to_json().dump();
  EXPECT_NE(json.find("\"inserts\":2"), std::string::npos) << json;
  // clear() resets the lifetime counters along with the contents.
  grid.clear(1.0);
  EXPECT_EQ(grid.stats().inserts.value(), 0u);
}

}  // namespace
}  // namespace rim::geom
