#include <gtest/gtest.h>

#include <string>

#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/routing/geographic.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/gabriel.hpp"
#include "rim/topology/rng_graph.hpp"

namespace rim::routing {
namespace {

TEST(Greedy, StraightChainDelivers) {
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const graph::Graph g = graph::build_udg(points, 1.0);
  const RouteResult r = greedy_route(points, g, 0, 3);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.path, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(r.hops(), 3u);
}

TEST(Greedy, SourceEqualsTarget) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  const graph::Graph g = graph::build_udg(points, 1.0);
  const RouteResult r = greedy_route(points, g, 1, 1);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Greedy, FailsAtVoid) {
  // A "C"-shaped void: the node nearest the target has no closer neighbor.
  //   s(0,0) -- a(0.9,0) ... target t(2.2,0) reachable only via the detour
  //   b(0.9,0.9) -- c(1.8,0.9) -- t.
  const geom::PointSet points{
      {0.0, 0.0}, {0.9, 0.0}, {0.9, 0.9}, {1.8, 0.9}, {2.2, 0.0}};
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const RouteResult r = greedy_route(points, g, 0, 4);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.stuck_at, 1u);  // greedy moved to node 1 and got stuck
}

TEST(Gfg, RecoversAroundVoid) {
  const geom::PointSet points{
      {0.0, 0.0}, {0.9, 0.0}, {0.9, 0.9}, {1.8, 0.9}, {2.2, 0.0}};
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const RouteResult r = gfg_route(points, g, 0, 4);
  EXPECT_TRUE(r.delivered);
  EXPECT_GT(r.perimeter_hops, 0u);
  EXPECT_EQ(r.path.back(), 4u);
}

TEST(Gfg, UnreachableTargetTerminates) {
  const geom::PointSet points{{0, 0}, {0.5, 0}, {5, 5}};
  const graph::Graph g = graph::build_udg(points, 1.0);
  const RouteResult r = gfg_route(points, g, 0, 2);
  EXPECT_FALSE(r.delivered);
  EXPECT_LT(r.path.size(), 100u);  // terminated, not budget-exhausted
}

class GfgOnPlanarTopologies : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GfgOnPlanarTopologies, DeliversAllConnectedPairsOnGabriel) {
  const auto points = sim::uniform_square(80, 2.2, GetParam());
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph gg = topology::gabriel_graph(points, udg);
  const auto labels = graph::component_labels(gg);
  std::size_t attempted = 0;
  std::size_t delivered = 0;
  for (NodeId s = 0; s < points.size(); s += 7) {
    for (NodeId t = 1; t < points.size(); t += 11) {
      if (s == t || labels[s] != labels[t]) continue;
      ++attempted;
      delivered += gfg_route(points, gg, s, t).delivered ? 1 : 0;
    }
  }
  ASSERT_GT(attempted, 10u);
  EXPECT_EQ(delivered, attempted);  // planar + connected => always delivered
}

TEST_P(GfgOnPlanarTopologies, DeliversOnRng) {
  const auto points = sim::uniform_square(70, 2.0, GetParam() + 50);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph rng = topology::relative_neighborhood_graph(points, udg);
  const auto labels = graph::component_labels(rng);
  std::size_t attempted = 0;
  std::size_t delivered = 0;
  for (NodeId s = 0; s < points.size(); s += 5) {
    for (NodeId t = 2; t < points.size(); t += 9) {
      if (s == t || labels[s] != labels[t]) continue;
      ++attempted;
      delivered += gfg_route(points, rng, s, t).delivered ? 1 : 0;
    }
  }
  ASSERT_GT(attempted, 10u);
  EXPECT_EQ(delivered, attempted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GfgOnPlanarTopologies,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Gfg, PathIsValidWalk) {
  const auto points = sim::uniform_square(60, 2.0, 13);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph gg = topology::gabriel_graph(points, udg);
  const auto labels = graph::component_labels(gg);
  for (NodeId t = 1; t < 20; ++t) {
    if (labels[0] != labels[t]) continue;
    const RouteResult r = gfg_route(points, gg, 0, t);
    ASSERT_TRUE(r.delivered);
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      EXPECT_TRUE(gg.has_edge(r.path[i - 1], r.path[i]))
          << "hop " << i << " to target " << t;
    }
    EXPECT_EQ(r.hops(), r.greedy_hops + r.perimeter_hops);
  }
}

TEST(EvaluateRouting, ReportSanity) {
  const auto points = sim::uniform_square(100, 2.2, 17);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph gg = topology::gabriel_graph(points, udg);
  const RoutingReport report = evaluate_routing(points, gg, 200, 3);
  EXPECT_GT(report.attempted, 50u);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  EXPECT_GE(report.mean_hop_stretch, 1.0);
  EXPECT_GE(report.mean_euclid_stretch, 1.0);
}

TEST(EvaluateRouting, GreedyOnUdgBeatsGabrielInStretch) {
  // Denser graphs give straighter paths; the report must reflect that.
  const auto points = sim::uniform_square(100, 2.2, 19);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph gg = topology::gabriel_graph(points, udg);
  const RoutingReport dense = evaluate_routing(points, udg, 150, 5);
  const RoutingReport sparse = evaluate_routing(points, gg, 150, 5);
  EXPECT_LE(dense.mean_hop_stretch, sparse.mean_hop_stretch + 0.2);
}

}  // namespace
}  // namespace rim::routing
