#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/svc/client.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

#include "svc_test_util.hpp"

// The `metrics` command serves the service's obs::Registry snapshot:
// global counters under "svc" (requests, rejects, latency percentiles)
// and one "svc.session.<id>" source per live session.

namespace rim::svc {
namespace {

using core::Mutation;

const io::Json* path(const io::Json& root,
                     const std::vector<std::string>& keys) {
  const io::Json* node = &root;
  for (const std::string& key : keys) {
    node = node->find(key);
    if (node == nullptr) return nullptr;
  }
  return node;
}

double number_at(const io::Json& root, const std::vector<std::string>& keys) {
  const io::Json* node = path(root, keys);
  return node != nullptr ? node->as_number(-1.0) : -1.0;
}

TEST(SvcMetrics, RegistrySnapshotCarriesGlobalAndPerSessionCounters) {
  ServiceConfig config;
  config.batch_pool_threads = 2;
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);

  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  const std::vector<Mutation> batch = {
      Mutation::add_node({0.0, 0.0}), Mutation::add_node({1.0, 0.0}),
      Mutation::add_edge(0, 1)};
  core::BatchResult result;
  ASSERT_TRUE(ok(client.try_apply_batch(session, batch), result));
  io::Json interference;
  ASSERT_TRUE(ok(client.try_query_interference(session), interference));
  // One deliberate per-session error.
  NodeId renamed = kInvalidNode;
  EXPECT_FALSE(ok(client.try_remove_node(session, 1234), renamed));

  io::Json metrics;
  ASSERT_TRUE(ok(client.try_metrics(), metrics));

  // Global counters: create + batch + query + failed remove + this
  // metrics request itself (counted on entry; its ok/latency land only
  // after the snapshot is produced).
  EXPECT_EQ(number_at(metrics, {"svc", "counters", "requests"}), 5.0);
  EXPECT_EQ(number_at(metrics, {"svc", "counters", "ok"}), 3.0);
  EXPECT_EQ(number_at(metrics, {"svc", "counters", "errors"}), 1.0);
  EXPECT_EQ(number_at(metrics, {"svc", "counters", "rejected_overloaded"}),
            0.0);
  EXPECT_EQ(number_at(metrics, {"svc", "sessions", "count"}), 1.0);
  EXPECT_EQ(number_at(metrics, {"svc", "sessions", "live"}), 1.0);
  EXPECT_EQ(number_at(metrics, {"svc", "limits", "max_in_flight"}),
            double(config.limits.max_in_flight));
  EXPECT_EQ(number_at(metrics, {"svc", "manager", "created"}), 1.0);
  EXPECT_EQ(number_at(metrics, {"svc", "manager", "evictions"}), 0.0);

  // Latency histogram: the 4 finished requests are recorded before this
  // snapshot is produced, with sane percentile ordering.
  const double latency_count =
      number_at(metrics, {"svc", "counters", "latency_ns", "count"});
  EXPECT_GE(latency_count, 4.0);
  EXPECT_GE(number_at(metrics, {"svc", "counters", "latency_ns", "p99"}),
            number_at(metrics, {"svc", "counters", "latency_ns", "p50"}));
  EXPECT_GT(number_at(metrics, {"svc", "counters", "handle_ns"}), 0.0);

  // Per-session source: 3 session-addressed commands, 1 error, the
  // batch's 3 mutations, and a populated latency histogram.
  const std::string source = "svc.session." + std::to_string(session);
  EXPECT_EQ(number_at(metrics, {source, "requests"}), 3.0);
  EXPECT_EQ(number_at(metrics, {source, "errors"}), 1.0);
  EXPECT_EQ(number_at(metrics, {source, "mutations"}), 3.0);
  EXPECT_EQ(number_at(metrics, {source, "spills"}), 0.0);
  EXPECT_EQ(number_at(metrics, {source, "latency_ns", "count"}), 3.0);
  EXPECT_GE(number_at(metrics, {source, "latency_ns", "p99"}),
            number_at(metrics, {source, "latency_ns", "p50"}));
}

TEST(SvcMetrics, RejectionsAndEvictionsAreCounted) {
  ServiceConfig config;
  config.batch_pool_threads = 1;
  config.limits.max_live_sessions = 1;
  config.limits.spill_dir = ::testing::TempDir();
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);

  std::uint64_t first = 0;
  std::uint64_t second = 0;
  ASSERT_TRUE(ok(client.try_create_session(), first));
  ASSERT_TRUE(ok(client.try_create_session(), second));  // evicts `first`
  io::Json touch;
  ASSERT_TRUE(ok(client.try_query_interference(first), touch));  // restores it

  // One shed request via a zero-capacity twin of the admission gate:
  // drain capacity by reconfiguring is impossible post-hoc, so spend the
  // budget with in-flight tickets instead.
  std::vector<Service::Ticket> hoard;
  for (std::size_t i = 0; i < config.limits.max_in_flight; ++i) {
    Service::Ticket ticket = service.try_admit();
    ASSERT_TRUE(static_cast<bool>(ticket));
    hoard.push_back(std::move(ticket));
  }
  EXPECT_FALSE(ok(client.try_ping()));
  EXPECT_EQ(client.error_code(), code::kOverloaded);
  hoard.clear();

  io::Json metrics;
  ASSERT_TRUE(ok(client.try_metrics(), metrics));
  EXPECT_EQ(number_at(metrics, {"svc", "counters", "rejected_overloaded"}),
            1.0);
  EXPECT_EQ(number_at(metrics, {"svc", "manager", "evictions"}), 2.0);
  EXPECT_EQ(number_at(metrics, {"svc", "manager", "spill_restores"}), 1.0);
  const std::string source = "svc.session." + std::to_string(first);
  EXPECT_EQ(number_at(metrics, {source, "spills"}), 1.0);
  EXPECT_EQ(number_at(metrics, {source, "spill_restores"}), 1.0);
}

TEST(SvcMetrics, ClosedSessionsLeaveTheRegistry) {
  ServiceConfig config;
  config.batch_pool_threads = 1;
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);
  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  io::Json metrics;
  ASSERT_TRUE(ok(client.try_metrics(), metrics));
  const std::string source = "svc.session." + std::to_string(session);
  EXPECT_NE(path(metrics, {source}), nullptr);
  ASSERT_TRUE(ok(client.try_close_session(session)));
  ASSERT_TRUE(ok(client.try_metrics(), metrics));
  EXPECT_EQ(path(metrics, {source}), nullptr);
}

}  // namespace
}  // namespace rim::svc
