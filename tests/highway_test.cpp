#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/critical.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"

namespace rim::highway {
namespace {

TEST(HighwayInstance, SortsPositions) {
  const auto inst = HighwayInstance::from_positions({3.0, 1.0, 2.0});
  EXPECT_EQ(inst.positions(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(inst.span(), 2.0);
}

TEST(HighwayInstance, ToPointsEmbedsOnAxis) {
  const auto inst = HighwayInstance::from_positions({0.0, 0.5});
  const auto points = inst.to_points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(geom::is_one_dimensional(points));
  EXPECT_DOUBLE_EQ(points[1].x, 0.5);
}

TEST(HighwayInstance, UdgMatchesGeneric2DConstruction) {
  const auto inst = sim::uniform_highway(120, 15.0, 3);
  const graph::Graph one_d = inst.udg(1.0);
  const graph::Graph two_d = graph::build_udg_brute(inst.to_points(), 1.0);
  ASSERT_EQ(one_d.edge_count(), two_d.edge_count());
  for (graph::Edge e : two_d.edges()) EXPECT_TRUE(one_d.has_edge(e.u, e.v));
}

TEST(HighwayInstance, MaxDegreeMatchesUdg) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto inst = sim::uniform_highway(100, 12.0, seed);
    EXPECT_EQ(inst.max_degree(1.0), inst.udg(1.0).max_degree()) << seed;
  }
}

TEST(HighwayInstance, UdgConnectedIffNoLargeGap) {
  const auto connected = HighwayInstance::from_positions({0.0, 0.9, 1.8});
  EXPECT_TRUE(connected.udg_connected(1.0));
  const auto split = HighwayInstance::from_positions({0.0, 0.9, 2.0});
  EXPECT_FALSE(split.udg_connected(1.0));
  EXPECT_TRUE(split.udg_connected(1.11));
}

TEST(ExponentialChain, GapsDoubleAndSpanNormalised) {
  const auto chain = exponential_chain(8);
  const auto& xs = chain.positions();
  ASSERT_EQ(xs.size(), 8u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  for (std::size_t i = 2; i < xs.size(); ++i) {
    EXPECT_NEAR((xs[i] - xs[i - 1]) / (xs[i - 1] - xs[i - 2]), 2.0, 1e-9);
  }
}

TEST(ExponentialChain, DeltaIsNMinusOne) {
  // Span <= 1 means the UDG is complete (paper Section 5.1).
  const auto chain = exponential_chain(16);
  EXPECT_EQ(chain.max_degree(1.0), 15u);
}

TEST(ExponentialChain, LargestSupportedSize) {
  const auto chain = exponential_chain(1024);
  EXPECT_EQ(chain.size(), 1024u);
  EXPECT_TRUE(std::is_sorted(chain.positions().begin(), chain.positions().end()));
  EXPECT_GT(chain.positions()[1], 0.0);  // smallest gap still resolvable
}

TEST(Interference1D, MatchesGenericEvaluatorOnRandomInstances) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const auto inst = sim::uniform_highway(150, 10.0, seed);
    const graph::Graph chain = linear_chain(inst, 1.0);
    const auto points = inst.to_points();
    const auto radii = core::transmission_radii(chain, points);
    const auto fast = interference_1d(inst.positions(), radii);
    const auto generic =
        core::interference_vector(points, radii, core::Strategy::kBrute);
    EXPECT_EQ(fast, generic) << seed;
  }
}

TEST(Interference1D, ZeroRadiiZeroInterference) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> radii{0.0, 0.0, 0.0};
  const auto v = interference_1d(xs, radii);
  EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(Interference1D, ClosedIntervalBoundary) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> radii{1.0, 0.0};
  const auto v = interference_1d(xs, radii);
  EXPECT_EQ(v[1], 1u);  // exactly at radius: covered
  EXPECT_EQ(v[0], 0u);  // self-coverage excluded
}

TEST(Coverage1D, IncrementalMatchesBatch) {
  const auto inst = sim::uniform_highway(100, 8.0, 12);
  const auto& xs = inst.positions();
  Coverage1D cov(xs);
  std::vector<double> radii(xs.size(), 0.0);
  sim::Rng rng(99);
  for (int step = 0; step < 300; ++step) {
    const NodeId u = static_cast<NodeId>(rng.next_below(xs.size()));
    const double r = rng.uniform(0.0, 3.0);
    cov.raise_radius(u, r);
    radii[u] = std::max(radii[u], r);
    if (step % 50 == 0) {
      const auto expected = interference_1d(xs, radii);
      for (NodeId v = 0; v < xs.size(); ++v) {
        ASSERT_EQ(cov.interference_of(v), expected[v])
            << "step " << step << " node " << v;
      }
      const std::uint32_t expected_max =
          *std::max_element(expected.begin(), expected.end());
      EXPECT_EQ(cov.max_interference(), expected_max);
    }
  }
}

TEST(Coverage1D, LoweringRadiusIsIgnored) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  Coverage1D cov(xs);
  cov.raise_radius(0, 2.0);
  EXPECT_EQ(cov.interference_of(2), 1u);
  cov.raise_radius(0, 0.5);  // no-op
  EXPECT_EQ(cov.interference_of(2), 1u);
}

TEST(LinearChain, Figure7LinearExponentialChainInterference) {
  // Figure 7: connecting the exponential chain linearly yields interference
  // n-2 at the leftmost node (every node but the rightmost covers it).
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const auto chain = exponential_chain(n);
    const graph::Graph topo = linear_chain(chain, 1.0);
    const auto points = chain.to_points();
    const auto radii = core::transmission_radii(topo, points);
    const auto per_node = interference_1d(chain.positions(), radii);
    EXPECT_EQ(per_node[0], n - 2) << "n=" << n;
    EXPECT_EQ(graph_interference_1d(chain, topo), n - 2) << "n=" << n;
  }
}

TEST(LinearChain, UniformSpacingHasConstantInterference) {
  // Contrast case driving A_apx: equal gaps -> every node covered by <= 4.
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(0.3 * i);
  const auto inst = HighwayInstance::from_positions(std::move(xs));
  const graph::Graph topo = linear_chain(inst, 1.0);
  EXPECT_LE(graph_interference_1d(inst, topo), 4u);
}

TEST(LinearChain, SkipsGapsBeyondRadius) {
  const auto inst = HighwayInstance::from_positions({0.0, 0.5, 3.0, 3.5});
  const graph::Graph topo = linear_chain(inst, 1.0);
  EXPECT_EQ(topo.edge_count(), 2u);
  EXPECT_TRUE(topo.has_edge(0, 1));
  EXPECT_TRUE(topo.has_edge(2, 3));
  EXPECT_TRUE(graph::preserves_connectivity(inst.udg(1.0), topo));
}

TEST(Critical, LinearRadiiOfUniformChain) {
  const auto inst = HighwayInstance::from_positions({0.0, 1.0, 2.0, 3.0});
  const auto radii = linear_radii(inst, 1.0);
  EXPECT_EQ(radii, (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
}

TEST(Critical, CountsEqualLinearChainInterference) {
  for (std::uint64_t seed : {21u, 22u}) {
    const auto inst = sim::uniform_highway(120, 10.0, seed);
    const graph::Graph chain = linear_chain(inst, 1.0);
    const auto points = inst.to_points();
    const auto radii = core::transmission_radii(chain, points);
    EXPECT_EQ(critical_counts(inst, 1.0),
              interference_1d(inst.positions(), radii))
        << seed;
  }
}

TEST(Critical, CriticalSetMatchesDefinition52) {
  const auto chain = exponential_chain(10);
  const auto counts = critical_counts(chain, 1.0);
  for (NodeId v = 0; v < chain.size(); v += 3) {
    const auto set = critical_set(chain, v, 1.0);
    EXPECT_EQ(set.size(), counts[v]) << "node " << v;
    for (NodeId u : set) EXPECT_NE(u, v);
  }
}

TEST(Critical, GammaOfExponentialChainIsNMinusTwo) {
  // The leftmost node is interfered with by all linear-chain transmitters
  // except the rightmost.
  for (std::size_t n : {6u, 12u, 24u}) {
    EXPECT_EQ(gamma(exponential_chain(n), 1.0), n - 2) << n;
  }
}

TEST(Critical, GammaOfUniformChainIsSmall) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(0.4 * i);
  EXPECT_LE(gamma(HighwayInstance::from_positions(std::move(xs)), 1.0), 4u);
}

TEST(Bounds, ExponentialChainLowerBoundValues) {
  EXPECT_EQ(exponential_chain_lower_bound(2), 1u);
  EXPECT_EQ(exponential_chain_lower_bound(5), 2u);   // 2^2+1 = 5
  EXPECT_EQ(exponential_chain_lower_bound(6), 3u);   // needs I=3
  EXPECT_EQ(exponential_chain_lower_bound(10), 3u);  // 3^2+1 = 10
  EXPECT_EQ(exponential_chain_lower_bound(11), 4u);
  EXPECT_EQ(exponential_chain_lower_bound(101), 10u);
}

TEST(Bounds, LowerBoundIsMonotone) {
  std::uint32_t last = 0;
  for (std::size_t n = 2; n < 2000; ++n) {
    const std::uint32_t lb = exponential_chain_lower_bound(n);
    EXPECT_GE(lb, last);
    last = lb;
  }
}

TEST(Bounds, AexpUpperBoundAtLeastLowerBound) {
  for (std::size_t n = 2; n < 1000; ++n) {
    EXPECT_GE(aexp_upper_bound(n), exponential_chain_lower_bound(n)) << n;
  }
}

TEST(Bounds, AexpUpperBoundGrowsLikeSqrt) {
  EXPECT_LE(aexp_upper_bound(10000), 160u);  // ~ sqrt(2*10000) = 141
  EXPECT_GE(aexp_upper_bound(10000), 120u);
}

TEST(Bounds, Lemma55LowerBound) {
  EXPECT_DOUBLE_EQ(lemma55_lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(lemma55_lower_bound(2), 0.0);
  EXPECT_DOUBLE_EQ(lemma55_lower_bound(4), 1.0);
  EXPECT_NEAR(lemma55_lower_bound(100), std::sqrt(49.0), 1e-12);
}

}  // namespace
}  // namespace rim::highway
