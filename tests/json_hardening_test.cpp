#include <gtest/gtest.h>

#include <string>

#include "rim/io/json.hpp"

// Hardening tests for io::Json::parse against untrusted input — the parser
// now sits on the svc wire path, so hostile bytes must always produce a
// clean parse error: no UB, no stack overflow, no smuggled non-finite
// numbers. Happy-path parsing is covered in io_test.cpp.

namespace rim::io {
namespace {

bool parses(const std::string& text, std::string* error_out = nullptr) {
  Json out;
  std::string error;
  const bool ok = Json::parse(text, out, error);
  if (error_out != nullptr) *error_out = error;
  return ok;
}

std::string nested(std::size_t depth, char open, char close) {
  std::string text(depth, open);
  text += "1";
  text.append(depth, close);
  return text;
}

TEST(JsonHardening, DepthLimitIsDocumentedAndEnforced) {
  // Exactly at the limit parses; one past it is an error, not a crash.
  EXPECT_TRUE(parses(nested(Json::kMaxParseDepth, '[', ']')));
  std::string error;
  EXPECT_FALSE(parses(nested(Json::kMaxParseDepth + 1, '[', ']'), &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(JsonHardening, DeepHostileNestingIsRejectedNotFatal) {
  // A buffer of '[' with no closers: depth-limited long before the stack
  // is at risk, even at a megabyte of nesting.
  EXPECT_FALSE(parses(std::string(1u << 20, '[')));
  EXPECT_FALSE(parses(std::string(1u << 20, '{')));
  // Mixed nesting counts against the same limit.
  std::string mixed;
  for (std::size_t i = 0; i < Json::kMaxParseDepth; ++i) {
    mixed += (i % 2 == 0) ? "[" : "{\"k\":";
  }
  mixed += "1";
  EXPECT_FALSE(parses(mixed + "]"));  // unbalanced anyway
}

TEST(JsonHardening, DepthLimitAppliesInsideObjects) {
  std::string text;
  for (std::size_t i = 0; i < Json::kMaxParseDepth + 1; ++i) {
    text += "{\"k\":";
  }
  text += "1";
  text.append(Json::kMaxParseDepth + 1, '}');
  std::string error;
  EXPECT_FALSE(parses(text, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(JsonHardening, LongStringsParse) {
  const std::string body(1u << 20, 'a');
  Json out;
  std::string error;
  ASSERT_TRUE(Json::parse("\"" + body + "\"", out, error)) << error;
  ASSERT_NE(out.as_string(), nullptr);
  EXPECT_EQ(*out.as_string(), body);
}

TEST(JsonHardening, EscapeHandling) {
  Json out;
  std::string error;
  ASSERT_TRUE(Json::parse(R"("a\"b\\c\/d\b\f\n\r\t")", out, error)) << error;
  ASSERT_NE(out.as_string(), nullptr);
  EXPECT_EQ(*out.as_string(), "a\"b\\c/d\b\f\n\r\t");

  ASSERT_TRUE(Json::parse(R"("Aé€")", out, error)) << error;
  ASSERT_NE(out.as_string(), nullptr);
  EXPECT_EQ(*out.as_string(), "A\xC3\xA9\xE2\x82\xAC");

  EXPECT_FALSE(parses(R"("\q")"));
  EXPECT_FALSE(parses(R"("\u00g0")"));
  EXPECT_FALSE(parses(R"("\u12)"));
  EXPECT_FALSE(parses("\"raw\ncontrol\""));
}

TEST(JsonHardening, EscapedStringsRoundTripThroughDump) {
  Json out;
  std::string error;
  ASSERT_TRUE(Json::parse(R"("tab\there\nand \"quotes\"")", out, error));
  Json again;
  ASSERT_TRUE(Json::parse(out.dump(), again, error)) << error;
  ASSERT_NE(again.as_string(), nullptr);
  EXPECT_EQ(*again.as_string(), *out.as_string());
}

TEST(JsonHardening, NumberOverflowIsAParseError) {
  std::string error;
  EXPECT_FALSE(parses("1e999", &error));
  EXPECT_NE(error.find("overflows"), std::string::npos) << error;
  EXPECT_FALSE(parses("-1e999"));
  EXPECT_FALSE(parses("[1,2,1e999]"));
  EXPECT_FALSE(parses(R"({"x":1e999})"));
  // A huge digit string overflows too (strtod saturates to inf).
  EXPECT_FALSE(parses(std::string(400, '9')));
}

TEST(JsonHardening, NumberUnderflowAndExtremesAreAccepted) {
  Json out;
  std::string error;
  // Gradual underflow collapses toward zero — finite, so acceptable.
  ASSERT_TRUE(Json::parse("1e-999", out, error)) << error;
  EXPECT_EQ(out.as_number(1.0), 0.0);
  ASSERT_TRUE(Json::parse("1.7976931348623157e308", out, error)) << error;
  EXPECT_TRUE(out.is_number());
  ASSERT_TRUE(Json::parse("-1.7976931348623157e308", out, error)) << error;
  EXPECT_TRUE(out.is_number());
}

TEST(JsonHardening, NonFiniteLiteralsNeverParse) {
  // JSON has no Inf/NaN spellings; make sure none sneak through strtod,
  // which would otherwise happily accept "inf"/"nan".
  EXPECT_FALSE(parses("inf"));
  EXPECT_FALSE(parses("Infinity"));
  EXPECT_FALSE(parses("nan"));
  EXPECT_FALSE(parses("-inf"));
  EXPECT_FALSE(parses("NaN"));
}

TEST(JsonHardening, TruncatedDocumentsFailCleanly) {
  const std::string document =
      R"({"a":[1,2.5,true,null,"sA"],"b":{"c":"d"}})";
  Json out;
  std::string error;
  ASSERT_TRUE(Json::parse(document, out, error)) << error;
  // Every proper prefix must fail with an error, never crash or accept.
  for (std::size_t cut = 0; cut < document.size(); ++cut) {
    EXPECT_FALSE(parses(document.substr(0, cut)))
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(JsonHardening, TrailingGarbageIsRejected) {
  EXPECT_FALSE(parses("{} {}"));
  EXPECT_FALSE(parses("1 2"));
  EXPECT_FALSE(parses("null x"));
  EXPECT_FALSE(parses("[1],"));
}

TEST(JsonHardening, MalformedStructuresAreRejected) {
  EXPECT_FALSE(parses(""));
  EXPECT_FALSE(parses("   "));
  EXPECT_FALSE(parses("[1,]"));
  EXPECT_FALSE(parses("{\"a\"}"));
  EXPECT_FALSE(parses("{\"a\":}"));
  EXPECT_FALSE(parses("{a:1}"));
  EXPECT_FALSE(parses("[1 2]"));
  EXPECT_FALSE(parses("+1"));
  EXPECT_FALSE(parses(".5"));
  EXPECT_FALSE(parses("-"));
  EXPECT_FALSE(parses("01x"));
  EXPECT_FALSE(parses("tru"));
  EXPECT_FALSE(parses("\x00\x01\x02"));
}

TEST(JsonHardening, ErrorsCarryAnOffset) {
  std::string error;
  EXPECT_FALSE(parses("[1,2,oops]", &error));
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

}  // namespace
}  // namespace rim::io
