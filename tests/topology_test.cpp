#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>

#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/topology/cbtc.hpp"
#include "rim/topology/gabriel.hpp"
#include "rim/topology/knn.hpp"
#include "rim/topology/life.hpp"
#include "rim/topology/lise.hpp"
#include "rim/topology/lmst.hpp"
#include "rim/topology/mst_topology.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"
#include "rim/topology/registry.hpp"
#include "rim/topology/rng_graph.hpp"
#include "rim/topology/xtc.hpp"
#include "rim/topology/yao.hpp"
#include "rim/graph/stretch.hpp"
#include "rim/sim/generators.hpp"

namespace rim::topology {
namespace {

struct Instance {
  geom::PointSet points;
  graph::Graph udg;
};

Instance random_instance(std::size_t n, double side, std::uint64_t seed) {
  Instance inst;
  inst.points = sim::uniform_square(n, side, seed);
  inst.udg = graph::build_udg(inst.points, 1.0);
  return inst;
}

bool is_subgraph(const graph::Graph& sub, const graph::Graph& super) {
  for (graph::Edge e : sub.edges()) {
    if (!super.has_edge(e.u, e.v)) return false;
  }
  return true;
}

TEST(Nnf, EveryNonIsolatedNodeHasItsNearestNeighborLink) {
  const Instance inst = random_instance(80, 2.0, 3);
  const graph::Graph nnf = nearest_neighbor_forest(inst.points, inst.udg);
  for (NodeId u = 0; u < inst.points.size(); ++u) {
    if (inst.udg.degree(u) == 0) {
      EXPECT_EQ(nnf.degree(u), 0u);
      continue;
    }
    NodeId nearest = kInvalidNode;
    double best = std::numeric_limits<double>::infinity();
    for (NodeId v : inst.udg.neighbors(u)) {
      const double d2 = geom::dist2(inst.points[u], inst.points[v]);
      if (d2 < best || (d2 == best && v < nearest)) {
        best = d2;
        nearest = v;
      }
    }
    EXPECT_TRUE(nnf.has_edge(u, nearest)) << "node " << u;
  }
}

TEST(Nnf, IsSubgraphOfUdg) {
  const Instance inst = random_instance(60, 2.5, 4);
  EXPECT_TRUE(is_subgraph(nearest_neighbor_forest(inst.points, inst.udg), inst.udg));
}

TEST(Nnf, MutualNearestPairProducesOneEdge) {
  const geom::PointSet points{{0, 0}, {0.1, 0}};
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph nnf = nearest_neighbor_forest(points, udg);
  EXPECT_EQ(nnf.edge_count(), 1u);
}

TEST(Mst, ContainsNnf) {
  // Classic fact: the Euclidean MST contains every nearest-neighbor link.
  const Instance inst = random_instance(70, 2.0, 5);
  const graph::Graph nnf = nearest_neighbor_forest(inst.points, inst.udg);
  const graph::Graph mst = mst_topology(inst.points, inst.udg);
  EXPECT_TRUE(is_subgraph(nnf, mst));
}

TEST(HierarchyOnRandomInstances, MstInRngInGabrielInUdg) {
  for (std::uint64_t seed : {1u, 2u, 3u, 9u}) {
    const Instance inst = random_instance(90, 2.0, seed);
    const graph::Graph mst = mst_topology(inst.points, inst.udg);
    const graph::Graph rng = relative_neighborhood_graph(inst.points, inst.udg);
    const graph::Graph gg = gabriel_graph(inst.points, inst.udg);
    EXPECT_TRUE(is_subgraph(mst, rng)) << seed;
    EXPECT_TRUE(is_subgraph(rng, gg)) << seed;
    EXPECT_TRUE(is_subgraph(gg, inst.udg)) << seed;
  }
}

TEST(Gabriel, RemovesEdgeWithWitnessInsideDiametralDisk) {
  const geom::PointSet points{{0, 0}, {1, 0}, {0.5, 0.1}};
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph gg = gabriel_graph(points, udg);
  EXPECT_FALSE(gg.has_edge(0, 1));
  EXPECT_TRUE(gg.has_edge(0, 2));
  EXPECT_TRUE(gg.has_edge(1, 2));
}

TEST(Gabriel, RightAngleWitnessOnBoundaryDoesNotBlock) {
  // Witness exactly on the diametral circle: edge survives (open-disk rule).
  const geom::PointSet points{{0, 0}, {1, 0}, {0.5, 0.5}};
  const graph::Graph udg = graph::build_udg(points, 1.0);
  EXPECT_TRUE(gabriel_graph(points, udg).has_edge(0, 1));
}

TEST(RngGraph, LuneWitnessBlocksEdge) {
  // Equilateral-ish: node 2 close to both 0 and 1 kills edge {0,1}.
  const geom::PointSet points{{0, 0}, {1, 0}, {0.5, 0.3}};
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph rng = relative_neighborhood_graph(points, udg);
  EXPECT_FALSE(rng.has_edge(0, 1));
}

TEST(Yao, UnionPreservesConnectivityWithSixCones) {
  for (std::uint64_t seed : {1u, 6u, 11u}) {
    const Instance inst = random_instance(100, 2.0, seed);
    const graph::Graph yao = yao_graph(inst.points, inst.udg, 6);
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg, yao)) << seed;
    EXPECT_TRUE(is_subgraph(yao, inst.udg)) << seed;
  }
}

TEST(Yao, OneConeKeepsOnlyNearestByAngleStructure) {
  const geom::PointSet points{{0, 0}, {0.5, 0.1}, {0.9, 0.2}};
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph yao = yao_graph(points, udg, 1);
  // With a single cone each node keeps just its nearest neighbor (union
  // symmetrization): same result as the NNF here.
  EXPECT_TRUE(yao.has_edge(0, 1));
  EXPECT_TRUE(yao.has_edge(1, 2));
  EXPECT_FALSE(yao.has_edge(0, 2));
}

TEST(Yao, IntersectionIsSubgraphOfUnion) {
  const Instance inst = random_instance(80, 2.0, 13);
  const graph::Graph yu = yao_graph(inst.points, inst.udg, 6, Symmetrization::kUnion);
  const graph::Graph yi =
      yao_graph(inst.points, inst.udg, 6, Symmetrization::kIntersection);
  EXPECT_TRUE(is_subgraph(yi, yu));
}

TEST(Xtc, PreservesConnectivityAndBoundsDegree) {
  for (std::uint64_t seed : {2u, 8u, 14u}) {
    const Instance inst = random_instance(120, 2.0, seed);
    const graph::Graph x = xtc(inst.points, inst.udg);
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg, x)) << seed;
    // Euclidean XTC is a subgraph of the RNG, whose degree is at most 6
    // for points in general position.
    EXPECT_LE(x.max_degree(), 6u) << seed;
    EXPECT_TRUE(
        is_subgraph(x, relative_neighborhood_graph(inst.points, inst.udg)))
        << seed;
  }
}

TEST(Lmst, PreservesConnectivityAndBoundsDegree) {
  for (std::uint64_t seed : {3u, 7u, 19u}) {
    const Instance inst = random_instance(120, 2.0, seed);
    const graph::Graph l = lmst(inst.points, inst.udg);
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg, l)) << seed;
    EXPECT_LE(l.max_degree(), 6u) << seed;
    EXPECT_TRUE(is_subgraph(l, inst.udg)) << seed;
  }
}

TEST(Lmst, ContainsGlobalMst) {
  // With consistent unique weights the global MST survives localization.
  const Instance inst = random_instance(60, 1.5, 23);
  const graph::Graph global = mst_topology(inst.points, inst.udg);
  const graph::Graph local = lmst(inst.points, inst.udg);
  EXPECT_TRUE(is_subgraph(global, local));
}

TEST(Life, SpanningForestPreservingConnectivity) {
  for (std::uint64_t seed : {4u, 10u, 16u}) {
    const Instance inst = random_instance(70, 2.0, seed);
    const graph::Graph f = life(inst.points, inst.udg);
    EXPECT_TRUE(graph::is_forest(f)) << seed;
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg, f)) << seed;
  }
}

TEST(Lise, ProducesTSpanner) {
  const Instance inst = random_instance(60, 1.8, 31);
  const double t = 2.0;
  const graph::Graph spanner = lise(inst.points, inst.udg, t);
  const auto report = graph::measure_stretch(inst.udg, spanner, inst.points);
  EXPECT_LE(report.max_euclidean_stretch, t + 1e-9);
}

TEST(Lise, LargerTGivesSparserGraph) {
  const Instance inst = random_instance(60, 1.8, 32);
  const graph::Graph tight = lise(inst.points, inst.udg, 1.2);
  const graph::Graph loose = lise(inst.points, inst.udg, 4.0);
  EXPECT_GE(tight.edge_count(), loose.edge_count());
}

TEST(Knn, DegreeAtLeastKWhenUdgRich) {
  const Instance inst = random_instance(100, 1.2, 40);  // dense
  const std::size_t k = 3;
  const graph::Graph g = knn_topology(inst.points, inst.udg, k);
  for (NodeId u = 0; u < inst.points.size(); ++u) {
    const std::size_t expect = std::min(k, inst.udg.degree(u));
    EXPECT_GE(g.degree(u), expect) << "node " << u;
  }
}

TEST(Knn, ContainsNnf) {
  const Instance inst = random_instance(80, 2.0, 41);
  const graph::Graph nnf = nearest_neighbor_forest(inst.points, inst.udg);
  const graph::Graph g = knn_topology(inst.points, inst.udg, 1);
  EXPECT_TRUE(is_subgraph(nnf, g));
}

TEST(Cbtc, PreservesConnectivityAtTwoThirdsPi) {
  for (std::uint64_t seed : {5u, 21u, 33u}) {
    const Instance inst = random_instance(110, 2.0, seed);
    const graph::Graph c = cbtc(inst.points, inst.udg);
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg, c)) << seed;
    EXPECT_TRUE(is_subgraph(c, inst.udg)) << seed;
  }
}

TEST(Cbtc, ContainsNnf) {
  // CBTC grows nearest-first, so the nearest neighbor is always selected.
  const Instance inst = random_instance(90, 2.0, 6);
  const graph::Graph nnf = nearest_neighbor_forest(inst.points, inst.udg);
  const graph::Graph c = cbtc(inst.points, inst.udg);
  EXPECT_TRUE(is_subgraph(nnf, c));
}

TEST(Cbtc, SmallerAlphaKeepsMoreEdges) {
  const Instance inst = random_instance(100, 2.0, 7);
  const graph::Graph narrow = cbtc(inst.points, inst.udg, 1.0);
  const graph::Graph wide = cbtc(inst.points, inst.udg, 3.0);
  EXPECT_GE(narrow.edge_count(), wide.edge_count());
}

TEST(Cbtc, NodeWithCoveredConesStopsEarly) {
  // A node surrounded by 3 close neighbors at 120° needs nothing farther.
  geom::PointSet points{{0, 0}};
  for (int k = 0; k < 3; ++k) {
    const double angle = 2.0 * 3.14159265358979 * k / 3.0;
    points.push_back({0.1 * std::cos(angle), 0.1 * std::sin(angle)});
  }
  points.push_back({0.9, 0.0});  // far node that u need not select
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph c = cbtc(points, udg, 2.0943951023931953);
  // Node 0 keeps its three ring neighbors; the far node may still connect
  // TO node 0 (union symmetrization), so only check node 0's own growth
  // stopped: it selected nothing beyond the ring before cones were covered.
  EXPECT_TRUE(c.has_edge(0, 1));
  EXPECT_TRUE(c.has_edge(0, 2));
  EXPECT_TRUE(c.has_edge(0, 3));
}

TEST(Registry, AllAlgorithmsListedAndFindable) {
  const auto algorithms = all_algorithms();
  EXPECT_GE(algorithms.size(), 13u);
  for (const NamedAlgorithm& a : algorithms) {
    EXPECT_EQ(find_algorithm(a.name), &a);
  }
  EXPECT_EQ(find_algorithm("no-such-algorithm"), nullptr);
}

TEST(Registry, DeclaredConnectivityPreservationHolds) {
  const Instance inst = random_instance(90, 2.0, 50);
  for (const NamedAlgorithm& a : all_algorithms()) {
    const graph::Graph result = a.build(inst.points, inst.udg);
    EXPECT_TRUE(is_subgraph(result, inst.udg)) << a.name;
    if (a.preserves_connectivity) {
      EXPECT_TRUE(graph::preserves_connectivity(inst.udg, result)) << a.name;
    }
  }
}

TEST(Registry, DeclaredNnfContainmentHolds) {
  const Instance inst = random_instance(90, 2.0, 51);
  const graph::Graph nnf = nearest_neighbor_forest(inst.points, inst.udg);
  for (const NamedAlgorithm& a : all_algorithms()) {
    if (!a.contains_nnf) continue;
    const graph::Graph result = a.build(inst.points, inst.udg);
    EXPECT_TRUE(is_subgraph(nnf, result)) << a.name;
  }
}

TEST(Registry, AlgorithmsAreDeterministic) {
  const Instance inst = random_instance(70, 2.0, 52);
  for (const NamedAlgorithm& a : all_algorithms()) {
    const graph::Graph first = a.build(inst.points, inst.udg);
    const graph::Graph second = a.build(inst.points, inst.udg);
    ASSERT_EQ(first.edge_count(), second.edge_count()) << a.name;
    for (graph::Edge e : first.edges()) {
      EXPECT_TRUE(second.has_edge(e.u, e.v)) << a.name;
    }
  }
}

TEST(Registry, HandlesDisconnectedInputs) {
  // Two far-apart blobs: every algorithm must cope with multi-component UDGs.
  geom::PointSet points = sim::uniform_square(30, 0.8, 53);
  for (const geom::Vec2& p : sim::uniform_square(30, 0.8, 54)) {
    points.push_back({p.x + 10.0, p.y});
  }
  const graph::Graph udg = graph::build_udg(points, 1.0);
  ASSERT_GT(graph::component_count(udg), 1u);
  for (const NamedAlgorithm& a : all_algorithms()) {
    const graph::Graph result = a.build(points, udg);
    if (a.preserves_connectivity) {
      EXPECT_TRUE(graph::preserves_connectivity(udg, result)) << a.name;
    }
  }
}

TEST(Registry, EmptyAndSingletonInputs) {
  const geom::PointSet empty;
  const graph::Graph udg0 = graph::build_udg(empty, 1.0);
  const geom::PointSet one{{0, 0}};
  const graph::Graph udg1 = graph::build_udg(one, 1.0);
  for (const NamedAlgorithm& a : all_algorithms()) {
    EXPECT_EQ(a.build(empty, udg0).node_count(), 0u) << a.name;
    const graph::Graph g1 = a.build(one, udg1);
    EXPECT_EQ(g1.node_count(), 1u) << a.name;
    EXPECT_EQ(g1.edge_count(), 0u) << a.name;
  }
}

}  // namespace
}  // namespace rim::topology
