#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rim/obs/metrics.hpp"
#include "rim/obs/registry.hpp"

namespace rim::obs {
namespace {

TEST(Counter, AccumulatesAndSnapshots) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c += 4;
  c.add(5);
  EXPECT_EQ(c.value(), 10u);
  // Copies snapshot the value; the copy counts independently.
  Counter d = c;
  ++d;
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(d.value(), 11u);
  EXPECT_EQ(c.to_json().dump(), "10");
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) ++c;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, AggregatesPowersOfTwoBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 1000ull}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1106.0 / 6.0);
  // Power-of-two buckets: the quantile is the bucket's upper bound, so it
  // is never below the true value and at most ~2x above it.
  EXPECT_GE(h.quantile(0.99), 1000u);
  EXPECT_LE(h.quantile(0.01), 1u);
  const std::string json = h.to_json().dump();
  EXPECT_NE(json.find("\"count\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("p50"), std::string::npos);
  EXPECT_NE(json.find("p99"), std::string::npos);
}

TEST(Histogram, CopyIsASnapshot) {
  Histogram h;
  h.record(7);
  Histogram copy = h;
  copy.record(9);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_EQ(copy.max(), 9u);
}

TEST(ScopedTimer, RecordsElapsedTime) {
  Counter ns;
  Histogram h;
  {
    const ScopedTimer timer(ns, &h);
    // Any nonempty scope takes > 0 ns on a steady clock with ns resolution;
    // we only assert the sink moved at all.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_GT(ns.value(), 0u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), ns.value());
}

TEST(Registry, SnapshotIsDeterministicAndKeyed) {
  Registry registry;
  Counter hits;
  hits.add(3);
  registry.add_source("zeta", [&hits] { return hits.to_json(); });
  registry.add_source("alpha", [] { return io::Json("hello"); });
  EXPECT_EQ(registry.size(), 2u);
  // Keys come out in lexicographic order regardless of insertion order.
  EXPECT_EQ(registry.snapshot().dump(), R"({"alpha":"hello","zeta":3})");
  // Re-registering a name replaces the producer.
  registry.add_source("alpha", [] { return io::Json(1); });
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.snapshot().dump(), R"({"alpha":1,"zeta":3})");
  registry.remove_source("zeta");
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.snapshot().dump(), R"({"alpha":1})");
}

TEST(Registry, GlobalIsAProcessSingleton) {
  Registry::global().add_source("obs_test_probe", [] { return io::Json(42); });
  const std::string snap = Registry::global().snapshot().dump();
  EXPECT_NE(snap.find("\"obs_test_probe\":42"), std::string::npos);
  Registry::global().remove_source("obs_test_probe");
}

}  // namespace
}  // namespace rim::obs
