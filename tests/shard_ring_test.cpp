#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rim/shard/hash_ring.hpp"
#include "rim/shard/retry.hpp"

namespace {

using namespace rim;
using shard::Backoff;
using shard::BackoffPolicy;
using shard::fnv1a_bytes;
using shard::HashRing;

std::vector<std::uint64_t> sample_keys(std::size_t count) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(fnv1a_bytes("session:" + std::to_string(i)));
  }
  return keys;
}

TEST(ShardRing, OwnerIsInsertionOrderIndependent) {
  HashRing forward(64);
  forward.add("a");
  forward.add("b");
  forward.add("c");
  forward.add("d");
  HashRing backward(64);
  backward.add("d");
  backward.add("c");
  backward.add("b");
  backward.add("a");
  for (const std::uint64_t key : sample_keys(2048)) {
    EXPECT_EQ(forward.owner(key), backward.owner(key));
  }
}

TEST(ShardRing, AllMembersOwnSomethingAndPlacementIsTotal) {
  HashRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  ring.add("d");
  std::map<std::string, std::size_t> load;
  for (const std::uint64_t key : sample_keys(4096)) {
    const std::string owner = ring.owner(key);
    ASSERT_FALSE(owner.empty());
    ++load[owner];
  }
  EXPECT_EQ(load.size(), 4u);
  for (const auto& [member, count] : load) {
    // With 64 mixed vnodes each member holds roughly a quarter of the
    // keys; anything under 1/8 or over 1/2 means the mix regressed.
    EXPECT_GT(count, 4096u / 8) << member;
    EXPECT_LT(count, 4096u / 2) << member;
  }
}

TEST(ShardRing, AddMovesBoundedSliceAndRemoveRestoresExactly) {
  HashRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  ring.add("d");
  const std::vector<std::uint64_t> keys = sample_keys(4096);
  std::vector<std::string> before;
  before.reserve(keys.size());
  for (const std::uint64_t key : keys) before.push_back(ring.owner(key));

  ring.add("e");
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string owner = ring.owner(keys[i]);
    if (owner != before[i]) {
      // Every move must be *to* the new member — existing members never
      // exchange keys among themselves.
      EXPECT_EQ(owner, "e");
      ++moved;
    }
  }
  // The new member takes ~1/5 of the key space; allow generous slack but
  // reject both "nothing moved" and "everything moved".
  EXPECT_GT(moved, keys.size() / 20);
  EXPECT_LT(moved, keys.size() / 2);

  // Placement is a pure function of the member set: removing the member
  // restores the original assignment exactly.
  ring.remove("e");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ring.owner(keys[i]), before[i]);
  }
}

TEST(ShardRing, DownMembersAreSkippedWithoutRingMutation) {
  HashRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  const std::uint64_t key = fnv1a_bytes("session:42");
  const std::string owner = ring.owner(key);
  const std::string fallback = ring.owner(key, {owner});
  EXPECT_NE(fallback, owner);
  EXPECT_FALSE(fallback.empty());
  // All down: no owner, but the ring itself is untouched.
  EXPECT_EQ(ring.owner(key, {"a", "b", "c"}), "");
  EXPECT_EQ(ring.owner(key), owner);
}

TEST(ShardRing, PeerIsLiveAndDistinctFromOwner) {
  HashRing ring(64);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  for (const std::uint64_t key : sample_keys(512)) {
    const std::string owner = ring.owner(key);
    const std::string peer = ring.peer(key);
    EXPECT_NE(peer, owner);
    EXPECT_FALSE(peer.empty());
  }
  HashRing solo(64);
  solo.add("only");
  EXPECT_EQ(solo.peer(fnv1a_bytes("k")), "");
}

TEST(ShardBackoff, ScheduleIsDeterministicUnderInjectedClock) {
  const BackoffPolicy policy{.base_delay_ns = 50,
                             .multiplier = 2.0,
                             .max_delay_ns = 300,
                             .max_attempts = 4};
  EXPECT_EQ(policy.delay_ns(0), 0u);
  EXPECT_EQ(policy.delay_ns(1), 50u);
  EXPECT_EQ(policy.delay_ns(2), 100u);
  EXPECT_EQ(policy.delay_ns(3), 200u);
  EXPECT_EQ(policy.delay_ns(4), 300u);  // clamped
  EXPECT_EQ(policy.delay_ns(60), 300u);  // no overflow at deep counts

  Backoff backoff(policy);
  EXPECT_TRUE(backoff.due(0));
  EXPECT_EQ(backoff.on_failure(1000), 1050u);
  EXPECT_FALSE(backoff.due(1049));
  EXPECT_TRUE(backoff.due(1050));
  EXPECT_EQ(backoff.on_failure(1050), 1150u);
  EXPECT_EQ(backoff.on_failure(1150), 1350u);
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_EQ(backoff.on_failure(1350), 1650u);
  EXPECT_TRUE(backoff.exhausted());
  backoff.reset();
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_TRUE(backoff.due(0));
  EXPECT_EQ(backoff.failures(), 0u);
}

}  // namespace
