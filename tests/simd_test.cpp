#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "rim/geom/dynamic_grid.hpp"
#include "rim/geom/grid_kernels.hpp"
#include "rim/sim/rng.hpp"
#include "rim/simd/simd.hpp"

/// SIMD-vs-scalar bit-identity. The kernels count integer outcomes of the
/// exact predicate d2 <= r2 with d2 = dx*dx + dy*dy in two roundings, so
/// the vector backends must agree with the scalar references *exactly* —
/// on random inputs, on denormals, and on radii constructed to sit exactly
/// on the containment boundary.

namespace rim {
namespace {

using geom::DynamicGrid;
using geom::Vec2;
using simd::CoverageCounts;

struct Columns {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> ws;
};

Columns random_columns(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  Columns c;
  c.xs.reserve(n);
  c.ys.reserve(n);
  c.ws.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.xs.push_back(rng.uniform(-5.0, 5.0));
    c.ys.push_back(rng.uniform(-5.0, 5.0));
    // Mix of non-transmitting (w = 0), small, and large disks.
    const double coin = rng.next_double();
    c.ws.push_back(coin < 0.25 ? 0.0 : rng.uniform(0.0, 9.0));
  }
  return c;
}

void expect_identical(const Columns& c, double cx, double cy,
                      double query_r2) {
  const CoverageCounts simd_counts = simd::count_coverage(
      c.xs.data(), c.ys.data(), c.ws.data(), c.xs.size(), cx, cy, query_r2);
  const CoverageCounts scalar_counts = simd::count_coverage_scalar(
      c.xs.data(), c.ys.data(), c.ws.data(), c.xs.size(), cx, cy, query_r2);
  EXPECT_EQ(simd_counts.visited, scalar_counts.visited);
  EXPECT_EQ(simd_counts.covered, scalar_counts.covered);
}

TEST(Simd, BackendIsDeclared) {
  EXPECT_TRUE(simd::kBackend == "sse2" || simd::kBackend == "neon" ||
              simd::kBackend == "scalar");
  EXPECT_EQ(simd::kHaveSimd, simd::kBackend != "scalar");
}

TEST(Simd, CountCoverageMatchesScalarOnRandomColumns) {
  // Odd and even sizes: the width-2 backends take different tail paths.
  for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 129u, 1000u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Columns c = random_columns(n, seed * 1000 + n);
      sim::Rng rng(seed);
      expect_identical(c, rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0),
                       rng.uniform(0.0, 16.0));
      expect_identical(c, 0.0, 0.0,
                       std::numeric_limits<double>::infinity());
    }
  }
}

TEST(Simd, CountCoverageMatchesScalarOnDenormals) {
  // Coordinates and weights in the denormal range: d2 underflows to
  // denormal or zero; both kernels must land on identical bits.
  const double dmin = std::numeric_limits<double>::denorm_min();
  Columns c;
  c.xs = {0.0, dmin, -dmin, 2 * dmin, 1e-160, -1e-160, dmin};
  c.ys = {dmin, 0.0, dmin, -2 * dmin, 1e-160, 1e-160, -dmin};
  c.ws = {dmin, 0.0, 4 * dmin, dmin, 1e-320, 8e-320, 2 * dmin};
  expect_identical(c, 0.0, 0.0, 1.0);
  expect_identical(c, dmin, -dmin, 16 * dmin);
  expect_identical(c, 0.0, 0.0, 0.0);
}

TEST(Simd, CountCoverageMatchesScalarOnExactBoundaryRadii) {
  // Construct weights exactly equal to the computed d2 of each point from
  // the query center: containment is decided by d2 <= w with equality.
  const double cx = 0.125;
  const double cy = -0.25;
  Columns c = random_columns(257, 42);
  std::vector<double> d2(c.xs.size());
  simd::squared_distances_scalar(c.xs.data(), c.ys.data(), c.xs.size(), cx,
                                 cy, d2.data());
  for (std::size_t i = 0; i < c.xs.size(); ++i) {
    if (i % 3 == 0) c.ws[i] = d2[i];                    // exactly on boundary
    if (i % 3 == 1) c.ws[i] = std::nextafter(d2[i], 0.0);  // one ulp inside
  }
  expect_identical(c, cx, cy, std::numeric_limits<double>::infinity());
  // The boundary weights must actually count as covered (closed disk).
  const CoverageCounts counts = simd::count_coverage(
      c.xs.data(), c.ys.data(), c.ws.data(), c.xs.size(), cx, cy,
      std::numeric_limits<double>::infinity());
  std::uint64_t expected_covered = 0;
  for (std::size_t i = 0; i < c.xs.size(); ++i) {
    if (c.ws[i] > 0.0 && d2[i] <= c.ws[i]) ++expected_covered;
  }
  EXPECT_EQ(counts.covered, expected_covered);
}

TEST(Simd, CountCoverageTreatsNaNAsOutside) {
  Columns c;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  c.xs = {nan, 0.0, 1.0};
  c.ys = {0.0, nan, 1.0};
  c.ws = {1.0, 1.0, nan};
  expect_identical(c, 0.0, 0.0, 100.0);
  const CoverageCounts counts = simd::count_coverage(
      c.xs.data(), c.ys.data(), c.ws.data(), c.xs.size(), 0.0, 0.0, 100.0);
  // NaN coordinates fail every <=; a NaN weight fails d2 <= w.
  EXPECT_EQ(counts.visited, 1u);
  EXPECT_EQ(counts.covered, 0u);
}

TEST(Simd, SquaredDistancesBitIdenticalToScalar) {
  const Columns c = random_columns(513, 7);
  std::vector<double> vec_out(c.xs.size());
  std::vector<double> scalar_out(c.xs.size());
  simd::squared_distances(c.xs.data(), c.ys.data(), c.xs.size(), 1.5, -2.5,
                          vec_out.data());
  simd::squared_distances_scalar(c.xs.data(), c.ys.data(), c.xs.size(), 1.5,
                                 -2.5, scalar_out.data());
  // Byte compare: identical rounding, not just approximate equality.
  EXPECT_EQ(0, std::memcmp(vec_out.data(), scalar_out.data(),
                           vec_out.size() * sizeof(double)));
}

TEST(GridKernels, CountCoveringMatchesScalarTwin) {
  sim::Rng rng(11);
  DynamicGrid grid(0.7);
  const std::size_t n = 400;
  double max_w = 0.0;
  std::vector<Vec2> points;
  for (NodeId v = 0; v < n; ++v) {
    const Vec2 p{rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0)};
    const double w = rng.next_double() < 0.2 ? 0.0 : rng.uniform(0.0, 2.0);
    grid.insert(v, p, w);
    points.push_back(p);
    if (w > max_w) max_w = w;
  }
  for (NodeId v = 0; v < n; v += 17) {
    const geom::CoverageResult fast =
        geom::count_covering(grid, points[v], max_w, v);
    const geom::CoverageResult slow =
        geom::count_covering_scalar(grid, points[v], max_w, v);
    EXPECT_EQ(fast.covered, slow.covered);
    EXPECT_EQ(fast.visited, slow.visited);
    EXPECT_EQ(fast.cells, slow.cells);
  }
}

TEST(GridKernels, ApplyDiskDeltaMatchesScalarTwin) {
  sim::Rng rng(13);
  DynamicGrid grid(0.5);
  const std::size_t n = 300;
  for (NodeId v = 0; v < n; ++v) {
    grid.insert(v, {rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)},
                rng.uniform(0.0, 1.5));
  }
  std::vector<std::uint32_t> fast(n, 100);
  std::vector<std::uint32_t> slow(n, 100);
  for (int round = 0; round < 20; ++round) {
    const Vec2 center{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    const double old_r2 = rng.next_double() < 0.3 ? 0.0 : rng.uniform(0.0, 2.0);
    const double new_r2 = rng.next_double() < 0.3 ? 0.0 : rng.uniform(0.0, 2.0);
    const NodeId exclude = static_cast<NodeId>(rng.next_below(n));
    const geom::DeltaResult a = geom::apply_disk_delta(
        grid, center, old_r2, new_r2, exclude, fast.data());
    const geom::DeltaResult b = geom::apply_disk_delta_scalar(
        grid, center, old_r2, new_r2, exclude, slow.data());
    EXPECT_EQ(a.visited, b.visited);
    EXPECT_EQ(a.cells, b.cells);
  }
  EXPECT_EQ(fast, slow);
}

}  // namespace
}  // namespace rim
