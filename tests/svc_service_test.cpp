#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "rim/core/assessor.hpp"
#include "rim/core/scenario.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/workload.hpp"
#include "rim/svc/client.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

#include "svc_test_util.hpp"

// Loopback tests for the scenario service. The central property: every
// response is byte-identical to the payload built directly from the
// corresponding core::Scenario call on a twin engine — the wire layer adds
// framing and an envelope, never drift. Plus the admission-control story
// (shed, never queue) and LRU spill/restore.

namespace rim::svc {
namespace {

using core::Mutation;

/// Expected wire bytes for a result document (the envelope builder is
/// pinned byte-for-byte in svc_protocol_test.cpp).
std::string expect_ok(std::uint64_t id, io::JsonObject result) {
  return make_ok(id, io::Json(std::move(result)));
}

ServiceConfig loopback_config() {
  ServiceConfig config;
  config.batch_pool_threads = 2;
  return config;
}

/// A small deterministic topology driven through both the wire and the
/// twin: a triangle plus a pendant node.
const std::vector<Mutation> kSeedBatch = {
    Mutation::add_node({0.0, 0.0}),  Mutation::add_node({1.0, 0.0}),
    Mutation::add_node({0.5, 0.8}),  Mutation::add_node({2.25, 0.5}),
    Mutation::add_edge(0, 1),        Mutation::add_edge(1, 2),
    Mutation::add_edge(0, 2),        Mutation::add_edge(1, 3),
};

class SvcLoopback : public ::testing::Test {
 protected:
  SvcLoopback()
      : service_(loopback_config()), transport_(service_), client_(transport_) {}

  /// Create a wire session and seed both it and the twin with kSeedBatch.
  std::uint64_t seeded_session() {
    std::uint64_t session = 0;
    EXPECT_TRUE(ok(client_.try_create_session(), session));
    core::BatchResult wire_result;
    EXPECT_TRUE(ok(client_.try_apply_batch(session, kSeedBatch), wire_result));
    (void)twin_.apply_batch(kSeedBatch, nullptr);
    return session;
  }

  Service service_;
  LoopbackTransport transport_;
  Client client_;
  core::Scenario twin_;
};

TEST_F(SvcLoopback, PingMatchesExpectedBytes) {
  ASSERT_TRUE(ok(client_.try_ping()));
  io::JsonObject result;
  result["pong"] = io::Json(true);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));
}

TEST_F(SvcLoopback, AddNodeByteIdenticalToScenario) {
  const std::uint64_t session = seeded_session();
  NodeId wire_node = kInvalidNode;
  ASSERT_TRUE(ok(client_.try_add_node(session, 3.5, -1.25), wire_node));
  const NodeId direct = twin_.add_node({3.5, -1.25});
  EXPECT_EQ(wire_node, direct);
  io::JsonObject result;
  result["node"] = io::Json(direct);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));
}

TEST_F(SvcLoopback, RemoveNodeByteIdenticalToScenario) {
  const std::uint64_t session = seeded_session();
  NodeId renamed = kInvalidNode;
  ASSERT_TRUE(ok(client_.try_remove_node(session, 1), renamed));
  const NodeId direct = twin_.remove_node(1);
  EXPECT_EQ(renamed, direct);
  io::JsonObject result;
  result["renamed"] =
      direct == kInvalidNode ? io::Json(nullptr) : io::Json(direct);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));
  // Removing the (new) last node is the no-rename case: null on the wire.
  const NodeId last = static_cast<NodeId>(twin_.node_count() - 1);
  ASSERT_TRUE(ok(client_.try_remove_node(session, last), renamed));
  EXPECT_EQ(renamed, twin_.remove_node(last));
  EXPECT_EQ(renamed, kInvalidNode);
  io::JsonObject null_result;
  null_result["renamed"] = io::Json(nullptr);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(null_result)));
}

TEST_F(SvcLoopback, EdgeCommandsByteIdenticalToScenario) {
  const std::uint64_t session = seeded_session();
  bool added = false;
  ASSERT_TRUE(ok(client_.try_add_edge(session, 2, 3), added));
  EXPECT_EQ(added, twin_.add_edge(2, 3));
  io::JsonObject add_result;
  add_result["added"] = io::Json(added);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(add_result)));
  // Duplicate edge: both report false, byte-identically.
  ASSERT_TRUE(ok(client_.try_add_edge(session, 2, 3), added));
  EXPECT_EQ(added, twin_.add_edge(2, 3));
  EXPECT_FALSE(added);

  bool removed = false;
  ASSERT_TRUE(ok(client_.try_remove_edge(session, 0, 2), removed));
  EXPECT_EQ(removed, twin_.remove_edge(0, 2));
  io::JsonObject remove_result;
  remove_result["removed"] = io::Json(removed);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(remove_result)));
}

TEST_F(SvcLoopback, MoveAndQueryByteIdenticalToScenario) {
  const std::uint64_t session = seeded_session();
  ASSERT_TRUE(ok(client_.try_move_node(session, 3, 1.75, 0.25)));
  twin_.move_node(3, {1.75, 0.25});

  io::Json wire;
  ASSERT_TRUE(ok(client_.try_query_interference(session), wire));
  io::JsonObject result;
  io::JsonArray per_node;
  for (const std::uint32_t value : twin_.interference()) {
    per_node.emplace_back(value);
  }
  result["max"] = io::Json(twin_.max_interference());
  result["per_node"] = io::Json(std::move(per_node));
  result["total"] = io::Json(twin_.total_interference());
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));

  for (NodeId v = 0; v < twin_.node_count(); ++v) {
    std::uint32_t value = 0;
    ASSERT_TRUE(ok(client_.try_query_interference_of(session, v), value));
    EXPECT_EQ(value, twin_.interference_of(v));
    io::JsonObject single;
    single["node"] = io::Json(v);
    single["value"] = io::Json(twin_.interference_of(v));
    EXPECT_EQ(client_.last_response_payload(),
              expect_ok(client_.last_request_id(), std::move(single)));
  }
}

TEST_F(SvcLoopback, ApplyBatchByteIdenticalToScenario) {
  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client_.try_create_session(), session));
  core::BatchResult wire_result;
  ASSERT_TRUE(ok(client_.try_apply_batch(session, kSeedBatch), wire_result));
  const core::BatchResult direct = twin_.apply_batch(kSeedBatch, nullptr);
  io::JsonObject result;
  result["abort_index"] = io::Json(direct.abort_index);
  result["aborted"] = io::Json(direct.aborted);
  result["applied"] = io::Json(direct.applied);
  result["deferred"] = io::Json(direct.deferred);
  result["disk_tasks"] = io::Json(direct.disk_tasks);
  result["recounts"] = io::Json(direct.recounts);
  result["waves"] = io::Json(direct.waves);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));
  EXPECT_EQ(wire_result.applied, direct.applied);
}

TEST_F(SvcLoopback, ApplyBatchDeterministicAcrossSessions) {
  // The same batch against two fresh sessions produces identical response
  // bytes (modulo the echoed request id — so pin the id explicitly), and
  // identical snapshots afterwards.
  sim::Rng rng(7);
  sim::WorkloadConfig workload;
  workload.batch_size = 48;
  std::vector<Mutation> batch = kSeedBatch;
  for (const Mutation& m : sim::make_churn_batch(rng, 4, workload)) {
    batch.push_back(m);
  }

  std::string payloads[2];
  std::string snapshots[2];
  for (int round = 0; round < 2; ++round) {
    std::uint64_t session = 0;
    ASSERT_TRUE(ok(client_.try_create_session(), session));
    io::JsonObject params;
    params["session"] = io::Json(session);
    io::JsonArray mutations;
    for (const Mutation& m : batch) mutations.push_back(mutation_to_json(m));
    params["batch"] = io::Json(std::move(mutations));
    params["cmd"] = io::Json(cmd::kApplyBatch);
    params["id"] = io::Json(99);
    const std::string frame =
        encode_frame(io::Json(std::move(params)).dump());
    std::string response_frame;
    std::string error;
    ASSERT_EQ(transport_.roundtrip(frame, response_frame, error),
              TransportStatus::kOk)
        << error;
    std::size_t consumed = 0;
    ASSERT_EQ(try_decode_frame(response_frame, kDefaultMaxFrameBytes,
                               consumed, payloads[round]),
              FrameStatus::kFrame);
    io::Json snapshot_doc;
    ASSERT_TRUE(ok(client_.try_snapshot(session), snapshot_doc));
    snapshots[round] = snapshot_doc.dump();
  }
  EXPECT_EQ(payloads[0], payloads[1]);
  EXPECT_EQ(snapshots[0], snapshots[1]);
}

TEST_F(SvcLoopback, AssessByteIdenticalToScenario) {
  const std::uint64_t session = seeded_session();
  const std::vector<Mutation> probe = {
      Mutation::add_node({0.9, 0.1}),
      Mutation::add_edge(1, 4),
  };
  io::Json wire;
  ASSERT_TRUE(ok(client_.try_assess(session, probe), wire));
  const core::Assessment direct =
      core::Assessor{}.assess(twin_, std::span<const Mutation>(probe));
  io::JsonObject result;
  io::JsonArray affected;
  for (const NodeId v : direct.affected_ids) affected.emplace_back(v);
  result["affected_ids"] = io::Json(std::move(affected));
  io::JsonArray deltas;
  for (const std::int64_t d : direct.delta_per_node) {
    deltas.emplace_back(static_cast<long long>(d));
  }
  result["delta_per_node"] = io::Json(std::move(deltas));
  result["max_after"] = io::Json(direct.max_after);
  result["max_before"] = io::Json(direct.max_before);
  result["newcomer_interference"] = io::Json(direct.newcomer_interference);
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));
  // Assessment is a pure probe: session state must be unchanged.
  io::Json stats;
  ASSERT_TRUE(ok(client_.try_session_stats(session), stats));
  EXPECT_EQ(stats.find("nodes")->as_number(), double(twin_.node_count()));
}

TEST_F(SvcLoopback, SnapshotByteIdenticalToScenario) {
  const std::uint64_t session = seeded_session();
  io::Json wire_doc;
  ASSERT_TRUE(ok(client_.try_snapshot(session), wire_doc));
  io::JsonObject result;
  result["snapshot"] = twin_.snapshot().to_json();
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));
}

TEST_F(SvcLoopback, SnapshotRestoreRoundTripsThroughWire) {
  const std::uint64_t session = seeded_session();
  io::Json at_snapshot;
  ASSERT_TRUE(ok(client_.try_snapshot(session), at_snapshot));

  // Diverge, then restore over the wire.
  core::BatchResult ignored;
  const std::vector<Mutation> divergence = {
      Mutation::add_node({5.0, 5.0}), Mutation::add_edge(3, 4),
      Mutation::remove_edge(0, 1),    Mutation::move_node(2, {9.0, 9.0}),
  };
  ASSERT_TRUE(ok(client_.try_apply_batch(session, divergence), ignored));
  ASSERT_TRUE(ok(client_.try_restore(session, at_snapshot)));

  // The restored session re-snapshots byte-identically except the stats
  // block (restores counter) — so compare engine state via queries.
  io::Json wire;
  ASSERT_TRUE(ok(client_.try_query_interference(session), wire));
  io::JsonObject result;
  io::JsonArray per_node;
  for (const std::uint32_t value : twin_.interference()) {
    per_node.emplace_back(value);
  }
  result["max"] = io::Json(twin_.max_interference());
  result["per_node"] = io::Json(std::move(per_node));
  result["total"] = io::Json(twin_.total_interference());
  EXPECT_EQ(client_.last_response_payload(),
            expect_ok(client_.last_request_id(), std::move(result)));

  io::Json stats;
  ASSERT_TRUE(ok(client_.try_session_stats(session), stats));
  EXPECT_EQ(stats.find("nodes")->as_number(), double(twin_.node_count()));
  EXPECT_EQ(stats.find("edges")->as_number(), double(twin_.edge_count()));
}

TEST_F(SvcLoopback, RestoreRejectsGarbageAndKeepsState) {
  const std::uint64_t session = seeded_session();
  io::JsonObject garbage;
  garbage["not"] = io::Json("a snapshot");
  EXPECT_FALSE(ok(client_.try_restore(session, io::Json(std::move(garbage)))));
  EXPECT_EQ(client_.error_code(), code::kRestoreFailed);
  io::Json stats;
  ASSERT_TRUE(ok(client_.try_session_stats(session), stats));
  EXPECT_EQ(stats.find("nodes")->as_number(), double(twin_.node_count()));
}

TEST_F(SvcLoopback, ErrorResponsesCarryWireCodes) {
  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client_.try_create_session(), session));

  io::Json result;
  EXPECT_FALSE(ok(client_.try_call("warp_core", {}), result));
  EXPECT_EQ(client_.error_code(), code::kUnknownCommand);

  NodeId node = kInvalidNode;
  EXPECT_FALSE(ok(client_.try_add_node(777, 0.0, 0.0), node));
  EXPECT_EQ(client_.error_code(), code::kNoSession);

  NodeId renamed = kInvalidNode;
  EXPECT_FALSE(ok(client_.try_remove_node(session, 99), renamed));
  EXPECT_EQ(client_.error_code(), code::kBadRequest);

  io::JsonObject no_session;
  no_session["x"] = io::Json(0.0);
  no_session["y"] = io::Json(0.0);
  EXPECT_FALSE(ok(client_.try_call(cmd::kAddNode, std::move(no_session)), result));
  EXPECT_EQ(client_.error_code(), code::kBadRequest);

  EXPECT_FALSE(ok(client_.try_shutdown()));
  EXPECT_EQ(client_.error_code(), code::kShutdownDisabled);

  // Fault fields against a service with fault injection off.
  io::JsonObject fault_params;
  fault_params["session"] = io::Json(session);
  fault_params["batch"] = io::Json(io::JsonArray{});
  io::JsonObject fault;
  fault["kind"] = io::Json("crash_mid_batch");
  fault["index"] = io::Json(0);
  fault_params["fault"] = io::Json(std::move(fault));
  EXPECT_FALSE(ok(client_.try_call(cmd::kApplyBatch, std::move(fault_params)), result));
  EXPECT_EQ(client_.error_code(), code::kFaultDisabled);
}

TEST_F(SvcLoopback, UnparseablePayloadIsBadFrame) {
  const std::string frame = encode_frame("this is not json");
  std::string response_frame;
  std::string error;
  ASSERT_EQ(transport_.roundtrip(frame, response_frame, error),
            TransportStatus::kOk)
      << error;
  std::size_t consumed = 0;
  std::string payload;
  ASSERT_EQ(try_decode_frame(response_frame, kDefaultMaxFrameBytes, consumed,
                             payload),
            FrameStatus::kFrame);
  EXPECT_NE(payload.find("\"code\":\"bad_frame\""), std::string::npos)
      << payload;
  EXPECT_EQ(service_.counters().rejected_bad_frame.value(), 1u);
}

TEST(SvcAdmission, OversizedFrameIsShedAsBadFrame) {
  ServiceConfig config = loopback_config();
  config.limits.max_frame_bytes = 128;
  Service service(config);
  LoopbackTransport transport(service);
  const std::string frame = encode_frame(std::string(256, ' '));
  std::string response_frame;
  std::string error;
  ASSERT_EQ(transport.roundtrip(frame, response_frame, error),
            TransportStatus::kOk)
      << error;
  EXPECT_NE(response_frame.find("\"code\":\"bad_frame\""), std::string::npos);
}

TEST(SvcAdmission, InFlightCapShedsWithOverloaded) {
  ServiceConfig config = loopback_config();
  config.limits.max_in_flight = 0;  // every request is excess load
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);
  EXPECT_FALSE(ok(client.try_ping()));
  EXPECT_EQ(client.error_code(), code::kOverloaded);
  // The id still echoes so the client can correlate the rejection.
  EXPECT_NE(client.last_response_payload().find("\"id\":1"),
            std::string::npos);
  EXPECT_EQ(service.counters().rejected_overloaded.value(), 1u);
  EXPECT_EQ(service.counters().requests.value(), 1u);
}

TEST(SvcAdmission, SessionCapShedsWithOverloaded) {
  ServiceConfig config = loopback_config();
  config.limits.max_sessions = 2;
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);
  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  ASSERT_TRUE(ok(client.try_create_session(), session));
  EXPECT_FALSE(ok(client.try_create_session(), session));
  EXPECT_EQ(client.error_code(), code::kOverloaded);
  // Closing one admits the next create.
  ASSERT_TRUE(ok(client.try_close_session(1)));
  EXPECT_TRUE(ok(client.try_create_session(), session));
}

TEST(SvcAdmission, LiveCapWithoutSpillDirShedsAtCreate) {
  ServiceConfig config = loopback_config();
  config.limits.max_live_sessions = 1;
  config.limits.spill_dir.clear();
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);
  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  EXPECT_FALSE(ok(client.try_create_session(), session));
  EXPECT_EQ(client.error_code(), code::kOverloaded);
}

TEST(SvcEviction, LruSpillAndTransparentRestore) {
  ServiceConfig config = loopback_config();
  config.limits.max_live_sessions = 1;
  config.limits.spill_dir = ::testing::TempDir();
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);

  std::uint64_t first = 0;
  std::uint64_t second = 0;
  ASSERT_TRUE(ok(client.try_create_session(), first));
  core::BatchResult ignored;
  ASSERT_TRUE(ok(client.try_apply_batch(first, kSeedBatch), ignored));
  io::Json before_spill;
  ASSERT_TRUE(ok(client.try_query_interference(first), before_spill));

  // Creating the second session evicts the idle first one to disk.
  ASSERT_TRUE(ok(client.try_create_session(), second));
  EXPECT_EQ(service.sessions().counters().evictions.value(), 1u);
  EXPECT_EQ(service.sessions().live_count(), 1u);
  EXPECT_EQ(service.sessions().session_count(), 2u);
  {
    std::ifstream spill(service.sessions().spill_path(first),
                        std::ios::binary);
    EXPECT_TRUE(spill.good()) << "spill file missing";
  }

  // Touching the first session restores it transparently — and evicts
  // the second. Its answers are byte-identical to before the spill.
  io::Json after_restore;
  ASSERT_TRUE(ok(client.try_query_interference(first), after_restore));
  EXPECT_EQ(client.last_response_payload(),
            make_ok(client.last_request_id(), before_spill));
  EXPECT_EQ(service.sessions().counters().spill_restores.value(), 1u);
  EXPECT_EQ(service.sessions().counters().evictions.value(), 2u);

  // Closing the spilled second session removes its spill file.
  ASSERT_TRUE(ok(client.try_close_session(second)));
  std::ifstream gone(service.sessions().spill_path(second), std::ios::binary);
  EXPECT_FALSE(gone.good());
}

TEST(SvcReplica, DuplicateReplicatePutIsIdempotent) {
  // A shard router whose replicate response was torn retries its ship:
  // the exact duplicate must answer success (the replica is already
  // durable), while a *different* snapshot at the same seq stays a
  // rejected stale write.
  Service service(loopback_config());
  ASSERT_NE(service.handle(R"({"cmd":"create_session","id":1})")
                .find("\"ok\":true"),
            std::string::npos);
  ASSERT_NE(service
                .handle(
                    R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})")
                .find("\"ok\":true"),
            std::string::npos);
  std::string error;
  const auto snapshot_of = [&](std::uint64_t id, io::Json& document) {
    const std::string response = service.handle(
        R"({"cmd":"snapshot","id":)" + std::to_string(id) + R"(,"session":1})");
    EXPECT_TRUE(io::Json::parse(response, document, error)) << error;
    const io::Json* result = document.find("result");
    return result != nullptr ? result->find("snapshot") : nullptr;
  };
  const auto replicate = [&](std::uint64_t seq, const io::Json& snapshot) {
    io::JsonObject request;
    request["cmd"] = io::Json("replicate_session");
    request["id"] = io::Json(std::uint64_t{9});
    request["origin"] = io::Json(std::uint64_t{77});
    request["seq"] = io::Json(seq);
    request["snapshot"] = snapshot;
    return service.handle(io::Json(std::move(request)).dump());
  };
  io::Json first_doc;
  const io::Json* first = snapshot_of(3, first_doc);
  ASSERT_NE(first, nullptr);
  EXPECT_NE(replicate(1, *first).find("\"ok\":true"), std::string::npos);
  EXPECT_NE(replicate(1, *first).find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(service.replicas().size(), 1u);
  EXPECT_EQ(service.replicas().counters().rejected.value(), 0u);

  ASSERT_NE(service
                .handle(
                    R"({"cmd":"add_node","id":4,"session":1,"x":1.0,"y":0.5})")
                .find("\"ok\":true"),
            std::string::npos);
  io::Json second_doc;
  const io::Json* second = snapshot_of(5, second_doc);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(replicate(1, *second).find("stale replica seq"),
            std::string::npos);
  EXPECT_EQ(service.replicas().counters().rejected.value(), 1u);
  EXPECT_NE(replicate(2, *second).find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(service.replicas().size(), 1u);
}

}  // namespace
}  // namespace rim::svc
