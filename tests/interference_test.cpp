#include <gtest/gtest.h>

#include <algorithm>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::core {
namespace {

TEST(Radii, FarthestNeighborDefinesRadius) {
  const geom::PointSet points{{0, 0}, {1, 0}, {0, 2}};
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto radii = transmission_radii(g, points);
  EXPECT_DOUBLE_EQ(radii[0], 2.0);  // farthest neighbor is node 2
  EXPECT_DOUBLE_EQ(radii[1], 1.0);
  EXPECT_DOUBLE_EQ(radii[2], 2.0);
}

TEST(Radii, IsolatedNodeHasZeroRadius) {
  const geom::PointSet points{{0, 0}, {5, 5}};
  const graph::Graph g(2);
  const auto radii = transmission_radii(g, points);
  EXPECT_DOUBLE_EQ(radii[0], 0.0);
  EXPECT_DOUBLE_EQ(radii[1], 0.0);
}

TEST(Radii, TotalPowerQuadratic) {
  const std::vector<double> radii{1.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(total_power(radii, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(total_power(radii, 4.0), 17.0);
}

/// The paper's Figure 2: node u is covered by its direct neighbor and by a
/// non-neighboring node v whose own link is long enough to reach u.
TEST(Interference, PaperFigure2Example) {
  // u = 0, its neighbor a = 1; v = 2 linked to b = 3 (long link); c = 4
  // linked to b with a short link.
  const geom::PointSet points{
      {0.0, 0.0},   // u
      {0.4, 0.0},   // a
      {1.0, 0.3},   // v
      {2.1, 0.3},   // b
      {2.4, 0.3},   // c
  };
  graph::Graph topo(5);
  topo.add_edge(0, 1);  // u -- a
  topo.add_edge(2, 3);  // v -- b
  topo.add_edge(3, 4);  // b -- c
  const InterferenceSummary s = Assessor{}.assess(topo, points);
  // dist(v,u) ≈ 1.044 <= r_v = 1.1, so v covers u even though it is not a
  // topology neighbor of u.
  EXPECT_EQ(s.per_node[0], 2u) << "I(u): direct neighbor a plus remote v";
}

TEST(Interference, TwoNodesSingleEdge) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  graph::Graph g(2);
  g.add_edge(0, 1);
  const InterferenceSummary s = Assessor{}.assess(g, points);
  EXPECT_EQ(s.per_node[0], 1u);
  EXPECT_EQ(s.per_node[1], 1u);
  EXPECT_EQ(s.max, 1u);
  EXPECT_EQ(s.total, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
}

TEST(Interference, EmptyTopologyHasZeroInterference) {
  const geom::PointSet points{{0, 0}, {0.1, 0}, {0.2, 0}};
  const graph::Graph g(3);
  const InterferenceSummary s = Assessor{}.assess(g, points);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.total, 0u);
}

TEST(Interference, StarTopologyCenterCoversAll) {
  // Center 0 links to 4 leaves at distance 1; every leaf covered by center
  // (and by any leaf whose own disk reaches it).
  const geom::PointSet points{{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  graph::Graph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  const InterferenceSummary s = Assessor{}.assess(g, points);
  // Center: all 4 leaves have radius 1 = their distance to center.
  EXPECT_EQ(s.per_node[0], 4u);
  // A leaf: covered by center (r=1) and by no other leaf
  // (leaf-leaf distances are sqrt(2) or 2, both > 1).
  EXPECT_EQ(s.per_node[1], 1u);
  EXPECT_EQ(s.max, 4u);
}

TEST(Interference, BoundaryCoverageCounts) {
  // v exactly on the rim of u's disk: covered (closed disk).
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}};
  graph::Graph g(3);
  g.add_edge(0, 1);  // r_0 = r_1 = 1
  const InterferenceSummary s = Assessor{}.assess(g, points);
  EXPECT_EQ(s.per_node[2], 1u);  // node 2 is exactly at distance 1 from node 1
}

TEST(Interference, NodeInterferenceMatchesVectorEntry) {
  const auto points = sim::uniform_square(50, 2.0, 123);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  const auto radii = transmission_radii(mst, points);
  const auto vec = interference_vector(points, radii, Strategy::kBrute);
  for (NodeId v = 0; v < points.size(); v += 5) {
    EXPECT_EQ(node_interference(points, radii, v), vec[v]);
  }
}

class StrategyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(StrategyEquivalence, AllStrategiesAgree) {
  const auto [seed, n] = GetParam();
  const auto points = sim::uniform_square(n, 3.0, seed);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  const auto radii = transmission_radii(mst, points);
  const auto brute = interference_vector(points, radii, Strategy::kBrute);
  const auto grid = interference_vector(points, radii, Strategy::kGrid);
  const auto par = interference_vector(points, radii, Strategy::kParallel);
  EXPECT_EQ(brute, grid);
  EXPECT_EQ(brute, par);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StrategyEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 42u),
                       ::testing::Values(std::size_t{10}, std::size_t{100},
                                         std::size_t{500})));

TEST(Interference, StrategiesAgreeOnExponentialSpread) {
  // Wildly non-uniform density stresses the grid evaluator's cell choice.
  geom::PointSet points;
  double x = 0.0;
  for (int i = 0; i < 30; ++i) {
    points.push_back({x, 0.0});
    x = 2.0 * x + 0.001;
  }
  graph::Graph chain(points.size());
  for (NodeId i = 0; i + 1 < points.size(); ++i) chain.add_edge(i, i + 1);
  const auto radii = transmission_radii(chain, points);
  EXPECT_EQ(interference_vector(points, radii, Strategy::kBrute),
            interference_vector(points, radii, Strategy::kGrid));
  EXPECT_EQ(interference_vector(points, radii, Strategy::kBrute),
            interference_vector(points, radii, Strategy::kParallel));
}

TEST(Interference, HistogramSumsToNodeCount) {
  const auto points = sim::uniform_square(80, 2.0, 7);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const InterferenceSummary s = Assessor{}.assess(udg, points);
  const auto hist = s.histogram();
  std::uint64_t total_nodes = 0;
  for (std::uint32_t h : hist) total_nodes += h;
  EXPECT_EQ(total_nodes, points.size());
  ASSERT_FALSE(hist.empty());
  EXPECT_GT(hist[s.max], 0u);  // at least one node attains the max
}

TEST(Interference, DegreeLowerBoundsNodeInterference) {
  // Section 3: a node's degree lower-bounds its interference (each neighbor
  // covers it), and Δ(UDG) upper-bounds graph interference of any subgraph.
  const auto points = sim::uniform_square(120, 2.5, 99);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  const InterferenceSummary s = Assessor{}.assess(mst, points);
  for (NodeId v = 0; v < points.size(); ++v) {
    EXPECT_GE(s.per_node[v], mst.degree(v));
  }
  EXPECT_LE(s.max, udg.max_degree());
}

TEST(Interference, UdgInterferenceEqualsDegreeWhenComplete) {
  // In a complete UDG every node's radius reaches every other node.
  const auto points = sim::uniform_square(20, 0.5, 3);  // diameter < 1
  const graph::Graph udg = graph::build_udg(points, 1.0);
  ASSERT_EQ(udg.edge_count(), 20u * 19u / 2u);
  const InterferenceSummary s = Assessor{}.assess(udg, points);
  EXPECT_EQ(s.max, 19u);
  for (std::uint32_t i : s.per_node) EXPECT_EQ(i, 19u);
}

TEST(Interference, GraphInterferenceConvenienceMatchesSummary) {
  const auto points = sim::uniform_square(60, 2.0, 4);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  EXPECT_EQ(graph_interference(udg, points),
            Assessor{}.assess(udg, points).max);
}

TEST(Interference, AddingEdgesNeverDecreasesInterference) {
  // Radii grow monotonically with the edge set, hence coverage does too —
  // the monotonicity motivating "trees only" in Section 3.
  const auto points = sim::uniform_square(40, 1.5, 8);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  graph::Graph partial(points.size());
  std::vector<std::uint32_t> last(points.size(), 0);
  for (graph::Edge e : udg.edges()) {
    partial.add_edge(e.u, e.v);
    const InterferenceSummary s = Assessor{}.assess(partial, points);
    for (NodeId v = 0; v < points.size(); ++v) {
      EXPECT_GE(s.per_node[v], last[v]);
    }
    last = s.per_node;
  }
}

}  // namespace
}  // namespace rim::core
