#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "rim/common/expected.hpp"

/// common::Expected<T, E> — the typed-error vocabulary used by the svc
/// client (svc/errors.hpp). Exercises the value/error alternatives, the
/// void specialization, and move behavior.

namespace rim::common {
namespace {

struct Error {
  int code = 0;
  std::string message;
};

Expected<int, Error> parse_positive(int raw) {
  if (raw <= 0) return Unexpected(Error{raw, "not positive"});
  return raw;
}

TEST(Expected, HoldsValueOrError) {
  const Expected<int, Error> good = parse_positive(5);
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);

  const Expected<int, Error> bad = parse_positive(-3);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, -3);
  EXPECT_EQ(bad.error().message, "not positive");
}

TEST(Expected, ValueOrFallsBack) {
  EXPECT_EQ(parse_positive(9).value_or(1), 9);
  EXPECT_EQ(parse_positive(0).value_or(1), 1);
}

TEST(Expected, ArrowReachesMembers) {
  Expected<std::string, Error> s{std::string("hello")};
  EXPECT_EQ(s->size(), 5u);
  s->push_back('!');
  EXPECT_EQ(*s, "hello!");
}

TEST(Expected, MovesOutValueAndError) {
  Expected<std::string, Error> s{std::string("payload")};
  const std::string taken = std::move(s).value();
  EXPECT_EQ(taken, "payload");

  Expected<int, Error> e = Unexpected(Error{1, "boom"});
  const Error taken_error = std::move(e).error();
  EXPECT_EQ(taken_error.message, "boom");
}

TEST(Expected, VoidSpecialization) {
  const Expected<void, Error> ok{};
  EXPECT_TRUE(ok.has_value());

  const Expected<void, Error> failed = Unexpected(Error{2, "nope"});
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error().code, 2);
}

TEST(Expected, DefaultConstructsValueAlternative) {
  const Expected<int, Error> zero;
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(*zero, 0);
}

}  // namespace
}  // namespace rim::common
