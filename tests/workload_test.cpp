#include <gtest/gtest.h>

#include <vector>

#include "rim/sim/workload.hpp"

/// sim::WorkloadDriver contract: the report (everything except wall time)
/// is a pure function of the config — identical whether tenants run
/// serially, with parallel batch application, or concurrently on the
/// driver's own pool.

namespace rim::sim {
namespace {

void expect_same_tenants(const WorkloadReport& a, const WorkloadReport& b,
                         const char* context) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size()) << context;
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    const TenantStats& x = a.tenants[t];
    const TenantStats& y = b.tenants[t];
    EXPECT_EQ(x.tenant, y.tenant) << context << " tenant " << t;
    EXPECT_EQ(x.final_nodes, y.final_nodes) << context << " tenant " << t;
    EXPECT_EQ(x.final_edges, y.final_edges) << context << " tenant " << t;
    EXPECT_EQ(x.final_max_interference, y.final_max_interference)
        << context << " tenant " << t;
    EXPECT_EQ(x.interference_checksum, y.interference_checksum)
        << context << " tenant " << t;
    EXPECT_EQ(x.mutations_applied, y.mutations_applied)
        << context << " tenant " << t;
  }
}

WorkloadConfig test_config() {
  WorkloadConfig config;
  config.tenants = 3;
  config.initial_nodes = 60;
  config.batches = 6;
  config.batch_size = 40;
  config.side = 2.5;
  config.seed = 2025;
  return config;
}

TEST(Workload, ChurnBatchesAreValidAndOrdered) {
  WorkloadConfig config = test_config();
  Rng rng(7);
  const std::vector<core::Mutation> batch =
      make_churn_batch(rng, 100, config);
  ASSERT_FALSE(batch.empty());
  // Removals lead; no removal may follow the first non-removal.
  bool seen_other = false;
  for (const core::Mutation& m : batch) {
    if (m.kind == core::Mutation::Kind::kRemoveNode) {
      EXPECT_FALSE(seen_other) << "removal after non-removal";
    } else {
      seen_other = true;
    }
  }
  // Replaying on a real scenario applies every mutation (all ids valid).
  core::Scenario scenario = make_tenant_scenario(config, 0);
  Rng rng2(7);
  const std::vector<core::Mutation> batch2 =
      make_churn_batch(rng2, scenario.node_count(), config);
  const core::BatchResult result = scenario.apply_batch(batch2, nullptr);
  EXPECT_GT(result.applied, 0u);
}

TEST(Workload, GenerationIsDeterministic) {
  WorkloadConfig config = test_config();
  Rng a(42);
  Rng b(42);
  const auto batch_a = make_churn_batch(a, 80, config);
  const auto batch_b = make_churn_batch(b, 80, config);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(batch_a[i].kind),
              static_cast<int>(batch_b[i].kind));
    EXPECT_EQ(batch_a[i].u, batch_b[i].u);
    EXPECT_EQ(batch_a[i].v, batch_b[i].v);
    EXPECT_EQ(batch_a[i].position, batch_b[i].position);
  }
}

TEST(Workload, ReportIdenticalAcrossReplayModes) {
  const WorkloadConfig config = test_config();
  WorkloadDriver serial(config);
  WorkloadDriver pooled(config);
  WorkloadDriver concurrent(config);
  const WorkloadReport r_serial = serial.run(ReplayMode::kSerial);
  const WorkloadReport r_pooled = pooled.run(ReplayMode::kParallelBatches);
  const WorkloadReport r_conc = concurrent.run(ReplayMode::kConcurrentTenants);
  expect_same_tenants(r_serial, r_pooled, "serial vs pooled");
  expect_same_tenants(r_serial, r_conc, "serial vs concurrent");
  // The trace must actually do something.
  for (const TenantStats& t : r_serial.tenants) {
    EXPECT_GT(t.mutations_applied, 0u) << "tenant " << t.tenant;
    EXPECT_GE(t.final_nodes, 8u) << "tenant " << t.tenant;
  }
}

TEST(Workload, RunsAreRepeatable) {
  const WorkloadConfig config = test_config();
  WorkloadDriver driver(config);
  const WorkloadReport first = driver.run(ReplayMode::kSerial);
  const WorkloadReport second = driver.run(ReplayMode::kSerial);
  expect_same_tenants(first, second, "repeat run");
}

TEST(Workload, ReportAndDriverEmitJson) {
  WorkloadConfig config = test_config();
  config.tenants = 2;
  config.batches = 2;
  WorkloadDriver driver(config);
  const WorkloadReport report = driver.run(ReplayMode::kSerial);
  const std::string report_json = report.to_json().dump();
  EXPECT_NE(report_json.find("\"tenants\":["), std::string::npos)
      << report_json;
  EXPECT_NE(report_json.find("interference_checksum"), std::string::npos);
  const std::string driver_json = driver.stats_json().dump();
  EXPECT_NE(driver_json.find("\"runs\":1"), std::string::npos) << driver_json;
  EXPECT_NE(driver_json.find("batches_applied"), std::string::npos);
}

}  // namespace
}  // namespace rim::sim
