#include <gtest/gtest.h>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/topology/mst_topology.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"

namespace rim::sim {
namespace {

TEST(Figure1, InstanceShape) {
  const auto points = figure1_instance(50, 3);
  ASSERT_EQ(points.size(), 50u);
  // Cluster is tiny; outlier is the last point, within UDG reach.
  const graph::Graph udg = graph::build_udg(points, 1.0);
  EXPECT_TRUE(graph::is_connected(udg));
  EXPECT_GE(points.back().x, 0.9);
}

TEST(Figure1, BridgeEdgeCoverageIsOrderN) {
  for (std::size_t n : {20u, 50u, 100u}) {
    const auto points = figure1_instance(n, 4);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const graph::Graph mst = topology::mst_topology(points, udg);
    const core::SenderCentricSummary s =
        core::evaluate_sender_centric(mst, points);
    EXPECT_GE(s.max, static_cast<std::uint32_t>(n) - 5) << "n=" << n;
  }
}

TEST(Figure1, ReceiverCentricStaysModest) {
  // Receiver-centric interference of the MST on the same instance stays far
  // below n: only the bridge endpoints' two disks blanket the cluster.
  const std::size_t n = 100;
  const auto points = figure1_instance(n, 4);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  const core::InterferenceSummary cluster_only = [&] {
    // Interference of the cluster without the outlier, as baseline.
    geom::PointSet cluster(points.begin(), points.end() - 1);
    const graph::Graph cluster_udg = graph::build_udg(cluster, 1.0);
    const graph::Graph cluster_mst = topology::mst_topology(cluster, cluster_udg);
    return core::Assessor{}.assess(cluster_mst, cluster);
  }();
  const core::InterferenceSummary with_outlier =
      core::Assessor{}.assess(mst, points);
  // Bridging adds at most two blanket disks.
  EXPECT_LE(with_outlier.max, cluster_only.max + 2);
}

TEST(TwoChains, ConstructionInvariants) {
  for (std::size_t m : {3u, 5u, 10u, 20u}) {
    const TwoChainInstance inst = two_exponential_chains(m);
    EXPECT_EQ(inst.points.size(), 3 * m - 3) << m;
    EXPECT_EQ(inst.h.size(), m);
    // Diameter <= 1: the UDG is complete.
    const graph::Graph udg = graph::build_udg(inst.points, 1.0);
    EXPECT_EQ(udg.edge_count(),
              inst.points.size() * (inst.points.size() - 1) / 2)
        << m;
  }
}

TEST(TwoChains, NnfWiresHorizontalChainLinearly) {
  const TwoChainInstance inst = two_exponential_chains(12);
  const graph::Graph udg = graph::build_udg(inst.points, 1.0);
  const graph::Graph nnf =
      topology::nearest_neighbor_forest(inst.points, udg);
  for (std::size_t i = 0; i + 1 < inst.h.size(); ++i) {
    EXPECT_TRUE(nnf.has_edge(inst.h[i], inst.h[i + 1])) << "i=" << i;
  }
}

TEST(TwoChains, Theorem41NnfInterferenceIsOrderN) {
  // The leftmost horizontal node is covered by (at least) every other
  // horizontal node: interference >= m - 2.
  for (std::size_t m : {8u, 16u, 32u}) {
    const TwoChainInstance inst = two_exponential_chains(m);
    const graph::Graph udg = graph::build_udg(inst.points, 1.0);
    const graph::Graph nnf =
        topology::nearest_neighbor_forest(inst.points, udg);
    const core::InterferenceSummary s =
        core::Assessor{}.assess(nnf, inst.points);
    EXPECT_GE(s.per_node[inst.h[0]], static_cast<std::uint32_t>(m) - 2) << m;
  }
}

TEST(TwoChains, ExplicitTreeIsSpanningAndConstantInterference) {
  std::uint32_t worst = 0;
  for (std::size_t m : {5u, 10u, 20u, 40u, 80u}) {
    const TwoChainInstance inst = two_exponential_chains(m);
    const graph::Graph tree = inst.low_interference_tree();
    EXPECT_TRUE(graph::is_connected(tree)) << m;
    EXPECT_TRUE(graph::is_forest(tree)) << m;
    const std::uint32_t interference =
        core::graph_interference(tree, inst.points);
    worst = std::max(worst, interference);
  }
  // "Optimal tree with constant interference" (Figure 5): the measured
  // value must not grow with m. Constant observed: 3-4.
  EXPECT_LE(worst, 5u);
}

TEST(TwoChains, GapBetweenNnfAndOptimalGrowsLinearly) {
  const TwoChainInstance small = two_exponential_chains(8);
  const TwoChainInstance large = two_exponential_chains(64);
  const auto ratio = [](const TwoChainInstance& inst) {
    const graph::Graph udg = graph::build_udg(inst.points, 1.0);
    const double nnf = core::graph_interference(
        topology::nearest_neighbor_forest(inst.points, udg), inst.points);
    const double opt =
        core::graph_interference(inst.low_interference_tree(), inst.points);
    return nnf / opt;
  };
  EXPECT_GT(ratio(large), ratio(small) * 4.0);
}

}  // namespace
}  // namespace rim::sim
