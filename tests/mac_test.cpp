#include <gtest/gtest.h>

#include <vector>

#include "rim/graph/udg.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/mac/csma_mac.hpp"
#include "rim/mac/event_queue.hpp"
#include "rim/mac/medium.hpp"
#include "rim/mac/simulation.hpp"
#include "rim/mac/slotted_mac.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::mac {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilHorizonStops) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 10) q.schedule_in(1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(Medium, CoverersMatchInterferenceDefinition) {
  // 3-node chain with exponential-ish gaps: middle node's disk covers both.
  const geom::PointSet points{{0, 0}, {1, 0}, {3, 0}};
  graph::Graph topo(3);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  const Medium medium(topo, points);
  // Node 0: covered by 1 (r=2) — and by 2 (r=2 at distance 3? no).
  const auto c0 = medium.coverers_of(0);
  EXPECT_EQ(std::vector<NodeId>(c0.begin(), c0.end()), (std::vector<NodeId>{1}));
  // Node 1: covered by 0 (r=1) and 2 (r=2).
  const auto c1 = medium.coverers_of(1);
  EXPECT_EQ(std::vector<NodeId>(c1.begin(), c1.end()),
            (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(medium.covers(1, 2));
  EXPECT_FALSE(medium.covers(0, 2));
}

TEST(Medium, FrameReceptionRules) {
  const geom::PointSet points{{0, 0}, {1, 0}, {3, 0}};
  graph::Graph topo(3);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  const Medium medium(topo, points);
  std::vector<std::uint8_t> tx(3, 0);
  // Only node 0 transmits: node 1 receives.
  tx = {1, 0, 0};
  EXPECT_TRUE(medium.frame_received(0, 1, tx));
  // Receiver also transmitting: half duplex failure.
  tx = {1, 1, 0};
  EXPECT_FALSE(medium.frame_received(0, 1, tx));
  // Collision: node 2's disk covers node 1 too.
  tx = {1, 0, 1};
  EXPECT_FALSE(medium.frame_received(0, 1, tx));
  // Out of range: node 0 cannot reach node 2.
  tx = {1, 0, 0};
  EXPECT_FALSE(medium.frame_received(0, 2, tx));
  // Non-transmitting sender never delivers.
  tx = {0, 0, 0};
  EXPECT_FALSE(medium.frame_received(0, 1, tx));
}

TEST(SlottedMac, SingleFrameEventuallyDelivered) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const Medium medium(topo, points);
  SlottedMac mac(medium, SlottedMac::Params{0.5, 2.0, 64}, 1);
  mac.offer(Frame{0, 1, 0.0});
  for (int slot = 0; slot < 200 && mac.stats().delivered == 0; ++slot) {
    mac.step(static_cast<double>(slot));
  }
  EXPECT_EQ(mac.stats().delivered, 1u);
  EXPECT_EQ(mac.stats().offered, 1u);
  EXPECT_GE(mac.stats().transmissions, 1u);
}

TEST(SlottedMac, EnergyAccountsRangeAlpha) {
  const geom::PointSet points{{0, 0}, {2, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const Medium medium(topo, points);
  SlottedMac mac(medium, SlottedMac::Params{1.0, 2.0, 64}, 1);
  mac.offer(Frame{0, 1, 0.0});
  mac.step(0.0);  // p=1: transmits once, delivered (no contender)
  EXPECT_EQ(mac.stats().delivered, 1u);
  EXPECT_DOUBLE_EQ(mac.stats().energy, 4.0);  // r^2 = 4
}

TEST(SlottedMac, RetryCapDropsFrames) {
  // Two mutually interfering nodes both always transmitting: permanent
  // collision until the retry cap trips.
  const geom::PointSet points{{0, 0}, {0.5, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const Medium medium(topo, points);
  SlottedMac mac(medium, SlottedMac::Params{1.0, 2.0, 5}, 2);
  mac.offer(Frame{0, 1, 0.0});
  mac.offer(Frame{1, 0, 0.0});
  for (int slot = 0; slot < 20; ++slot) mac.step(slot);
  EXPECT_EQ(mac.stats().delivered, 0u);
  EXPECT_EQ(mac.stats().dropped, 2u);
  EXPECT_GT(mac.stats().collisions, 0u);
}

TEST(SlottedMac, FinalizeCountsBacklog) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const Medium medium(topo, points);
  SlottedMac mac(medium, SlottedMac::Params{0.0, 2.0, 64}, 3);  // never sends
  mac.offer(Frame{0, 1, 0.0});
  mac.offer(Frame{0, 1, 0.0});
  mac.step(0.0);
  EXPECT_EQ(mac.backlogged_nodes(), 1u);
  mac.finalize();
  EXPECT_EQ(mac.stats().backlog, 2u);
}

TEST(Simulation, DeterministicGivenSeed) {
  const auto points = sim::uniform_square(40, 2.0, 5);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  SimulationConfig config;
  config.slots = 500;
  config.seed = 77;
  const auto a = simulate_traffic(mst, points, config);
  const auto b = simulate_traffic(mst, points, config);
  EXPECT_EQ(a.mac.delivered, b.mac.delivered);
  EXPECT_EQ(a.mac.collisions, b.mac.collisions);
  EXPECT_DOUBLE_EQ(a.mac.energy, b.mac.energy);
}

TEST(Simulation, ConservationOfFrames) {
  const auto points = sim::uniform_square(50, 2.0, 6);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  SimulationConfig config;
  config.slots = 800;
  const auto report = simulate_traffic(mst, points, config);
  EXPECT_EQ(report.mac.offered,
            report.mac.delivered + report.mac.dropped + report.mac.backlog);
  EXPECT_EQ(report.mac.transmissions,
            report.mac.delivered + report.mac.collisions);
}

TEST(Simulation, HighInterferenceTopologyCollidesMore) {
  // Same instance, two topologies: linear exponential chain (interference
  // Θ(n)) versus A_exp (Θ(sqrt n)). Under saturated traffic the per-frame
  // success probability is roughly p (1-p)^{I(receiver)}, so the
  // low-interference topology must push through clearly more frames.
  const auto chain = highway::exponential_chain(48);
  const auto points = chain.to_points();
  SimulationConfig config;
  config.slots = 2000;
  config.arrival_rate = 1.0;  // saturate every queue
  config.mac.transmit_probability = 0.1;
  config.seed = 11;
  const auto linear =
      simulate_traffic(highway::linear_chain(chain, 1.0), points, config);
  const auto aexp =
      simulate_traffic(highway::a_exp(chain).topology, points, config);
  ASSERT_GT(linear.interference, aexp.interference);
  EXPECT_GT(aexp.mac.delivered, linear.mac.delivered * 13 / 10);
  // Collision rate (collisions per transmission) is higher under the
  // high-interference topology.
  const double linear_rate = static_cast<double>(linear.mac.collisions) /
                             static_cast<double>(linear.mac.transmissions);
  const double aexp_rate = static_cast<double>(aexp.mac.collisions) /
                           static_cast<double>(aexp.mac.transmissions);
  EXPECT_GT(linear_rate, aexp_rate);
}

TEST(CsmaMac, SingleFrameDelivered) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const Medium medium(topo, points);
  CsmaMac mac(medium, CsmaMac::Params{1.0, 2.0, 64}, 1);
  mac.offer(Frame{0, 1, 0.0});
  mac.step(0.0);
  EXPECT_EQ(mac.stats().delivered, 1u);
  EXPECT_EQ(mac.stats().collisions, 0u);
}

TEST(CsmaMac, CarrierSensePreventsMutualCollision) {
  // Two mutually audible backlogged nodes with persistence 1: whoever wins
  // the contention order transmits, the other defers — never the ALOHA
  // permanent collision.
  const geom::PointSet points{{0, 0}, {0.5, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const Medium medium(topo, points);
  CsmaMac mac(medium, CsmaMac::Params{1.0, 2.0, 64}, 2);
  mac.offer(Frame{0, 1, 0.0});
  mac.offer(Frame{1, 0, 0.0});
  for (int slot = 0; slot < 10 && mac.stats().delivered < 2; ++slot) {
    mac.step(slot);
  }
  EXPECT_EQ(mac.stats().delivered, 2u);
  EXPECT_EQ(mac.stats().collisions, 0u);
}

TEST(CsmaMac, HiddenTerminalsStillCollide) {
  // w covers the receiver v but is out of u's earshot: u cannot sense w, so
  // their simultaneous transmissions collide at v — CSMA's classic failure,
  // which keeps the receiver-centric interference measure predictive.
  const geom::PointSet points{{0, 0}, {1, 0}, {3, 0}, {5, 0}};
  graph::Graph topo(4);
  topo.add_edge(0, 1);  // u=0 -> v=1
  topo.add_edge(2, 3);  // w=2 with a long link (r=2 covers v=1)
  const Medium medium(topo, points);
  ASSERT_TRUE(medium.covers(2, 1));
  ASSERT_FALSE(medium.covers(2, 0));
  CsmaMac mac(medium, CsmaMac::Params{1.0, 2.0, 2}, 3);
  mac.offer(Frame{0, 1, 0.0});
  mac.offer(Frame{2, 3, 0.0});
  mac.step(0.0);
  // Both transmit (neither senses the other at its own location): the frame
  // to v=1 collides; the frame to 3 succeeds (nothing else covers node 3).
  EXPECT_EQ(mac.stats().transmissions, 2u);
  EXPECT_EQ(mac.stats().collisions, 1u);
  EXPECT_EQ(mac.stats().delivered, 1u);
}

TEST(CsmaSimulation, BeatsAlohaUnderSaturation) {
  const auto points = sim::uniform_square(80, 2.0, 21);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = topology::mst_topology(points, udg);
  SimulationConfig config;
  config.slots = 1500;
  config.arrival_rate = 1.0;
  config.mac.transmit_probability = 0.3;
  config.seed = 5;
  config.kind = MacKind::kAloha;
  const auto aloha = simulate_traffic(mst, points, config);
  config.kind = MacKind::kCsma;
  const auto csma = simulate_traffic(mst, points, config);
  EXPECT_GT(csma.mac.delivered, aloha.mac.delivered);
  const double aloha_rate = static_cast<double>(aloha.mac.collisions) /
                            static_cast<double>(aloha.mac.transmissions);
  const double csma_rate = static_cast<double>(csma.mac.collisions) /
                           static_cast<double>(csma.mac.transmissions);
  EXPECT_LT(csma_rate, aloha_rate);
}

TEST(CsmaSimulation, ConservationOfFrames) {
  const auto points = sim::uniform_square(50, 2.0, 22);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  SimulationConfig config;
  config.slots = 600;
  config.kind = MacKind::kCsma;
  const auto report = simulate_traffic(udg, points, config);
  EXPECT_EQ(report.mac.offered,
            report.mac.delivered + report.mac.dropped + report.mac.backlog);
  EXPECT_EQ(report.mac.transmissions,
            report.mac.delivered + report.mac.collisions);
}

TEST(Simulation, NoTrafficMeansCleanStats) {
  const auto points = sim::uniform_square(20, 1.5, 7);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  SimulationConfig config;
  config.slots = 100;
  config.arrival_rate = 0.0;
  const auto report = simulate_traffic(udg, points, config);
  EXPECT_EQ(report.mac.offered, 0u);
  EXPECT_EQ(report.mac.transmissions, 0u);
  EXPECT_DOUBLE_EQ(report.mac.delivery_ratio(), 1.0);
}

}  // namespace
}  // namespace rim::mac
