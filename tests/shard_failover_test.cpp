#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rim/obs/metrics.hpp"
#include "rim/shard/hash_ring.hpp"
#include "rim/shard/router.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

namespace {

using namespace rim;

/// See shard_router_test.cpp: loopback with a SIGKILL switch plus a
/// deliver-then-drop-response mode for torn-command coverage.
class KillableTransport final : public svc::Transport {
 public:
  KillableTransport(svc::RequestHandler& handler,
                    std::shared_ptr<std::atomic<bool>> killed,
                    std::shared_ptr<std::atomic<int>> drop_responses)
      : inner_(handler),
        killed_(std::move(killed)),
        drop_responses_(std::move(drop_responses)) {}

  [[nodiscard]] svc::TransportStatus roundtrip(
      std::string_view frame, std::string& response_frame,
      std::string& error) override {
    if (killed_->load()) {
      error = "backend killed";
      return svc::TransportStatus::kConnectionLost;
    }
    const svc::TransportStatus status =
        inner_.roundtrip(frame, response_frame, error);
    if (status == svc::TransportStatus::kOk && drop_responses_->load() > 0) {
      drop_responses_->fetch_sub(1);
      response_frame.clear();
      error = "connection reset mid-request";
      return svc::TransportStatus::kConnectionLost;
    }
    return status;
  }

 private:
  svc::LoopbackTransport inner_;
  std::shared_ptr<std::atomic<bool>> killed_;
  std::shared_ptr<std::atomic<int>> drop_responses_;
};

struct Cluster {
  std::vector<std::unique_ptr<svc::Service>> services;
  std::vector<std::shared_ptr<std::atomic<bool>>> killed;
  std::vector<std::shared_ptr<std::atomic<int>>> drop_responses;
  std::unique_ptr<shard::Router> router;

  explicit Cluster(std::size_t backends, std::size_t ship_every = 1,
                   std::size_t max_journal = 4096,
                   std::uint64_t health_interval_ms = 200) {
    shard::RouterConfig config;
    for (std::size_t i = 0; i < backends; ++i) {
      svc::ServiceConfig service_config;
      service_config.batch_pool_threads = 1;
      services.push_back(std::make_unique<svc::Service>(service_config));
      killed.push_back(std::make_shared<std::atomic<bool>>(false));
      drop_responses.push_back(std::make_shared<std::atomic<int>>(0));
      svc::Service* service = services.back().get();
      auto killed_flag = killed.back();
      auto drop = drop_responses.back();
      config.backends.push_back(
          {"shard-" + std::to_string(i),
           [service, killed_flag, drop]() -> std::unique_ptr<svc::Transport> {
             if (killed_flag->load()) return nullptr;
             return std::make_unique<KillableTransport>(*service, killed_flag,
                                                        drop);
           }});
    }
    config.replication.ship_every = ship_every;
    config.replication.max_journal = max_journal;
    config.health_interval_ms = health_interval_ms;
    router = std::make_unique<shard::Router>(std::move(config));
  }

  [[nodiscard]] std::size_t owner_index(std::uint64_t sid) const {
    shard::HashRing ring(router->config().vnodes);
    for (std::size_t i = 0; i < services.size(); ++i) {
      ring.add("shard-" + std::to_string(i));
    }
    const std::string owner =
        ring.owner(shard::fnv1a_bytes("session:" + std::to_string(sid)));
    return static_cast<std::size_t>(std::stoul(owner.substr(6)));
  }

  [[nodiscard]] std::string handle(const std::string& payload) {
    return router->handle(payload);
  }
};

/// The deterministic per-session conversation both twins replay. Split at
/// \p kill_after: the killed twin trips the owner's kill switch after that
/// many mutating commands.
std::vector<std::string> session_script() {
  return {
      R"({"cmd":"add_node","id":100,"session":1,"x":0.0,"y":0.0})",
      R"({"cmd":"add_node","id":101,"session":1,"x":1.0,"y":0.1})",
      R"({"cmd":"add_node","id":102,"session":1,"x":0.4,"y":0.8})",
      R"({"cmd":"add_edge","id":103,"session":1,"u":0,"v":1})",
      R"({"cmd":"add_edge","id":104,"session":1,"u":1,"v":2})",
      R"({"cmd":"apply_batch","id":105,"session":1,"batch":[)"
      R"({"kind":"add_node","x":1.8,"y":0.4},{"kind":"add_edge","u":2,"v":3},)"
      R"({"kind":"move_node","v":0,"x":0.1,"y":0.05}]})",
      R"({"cmd":"move","id":106,"session":1,"v":1,"x":1.1,"y":0.2})",
      R"({"cmd":"remove_edge","id":107,"session":1,"u":0,"v":1})",
      R"({"cmd":"add_edge","id":108,"session":1,"u":0,"v":2})",
  };
}

const char* kFinalQuery = R"({"cmd":"query_interference","id":200,"session":1})";
const char* kFinalStats = R"({"cmd":"session_stats","id":201,"session":1})";

/// The state-describing slice of a session_stats response: node and edge
/// counts, up to but excluding the engine's private telemetry ("stats").
/// Telemetry legitimately differs between twins — the adopted engine's
/// counter history records restores where the clean one records snapshot
/// ships — so checksum identity is asserted over topology, not telemetry.
std::string topology_view(const std::string& response) {
  const std::size_t begin = response.find("\"result\":");
  const std::size_t end = response.find(",\"stats\"");
  if (begin == std::string::npos || end == std::string::npos) return response;
  return response.substr(begin, end - begin);
}

TEST(ShardFailover, KilledOwnerRestoresOnPeerChecksumIdentical) {
  // Twin A runs clean; twin B's session owner is SIGKILLed mid-script.
  // After the kill every remaining command must still succeed (transparent
  // failover), and the final interference answers must be byte-identical —
  // the restored state is indistinguishable from never having failed.
  for (const std::size_t kill_after : {2u, 5u, 7u}) {
    Cluster clean(2, /*ship_every=*/2);
    Cluster killed(2, /*ship_every=*/2);
    ASSERT_NE(clean.handle(R"({"cmd":"create_session","id":1})")
                  .find("\"ok\":true"),
              std::string::npos);
    ASSERT_NE(killed.handle(R"({"cmd":"create_session","id":1})")
                  .find("\"ok\":true"),
              std::string::npos);
    const std::size_t owner = killed.owner_index(1);
    const std::vector<std::string> script = session_script();
    for (std::size_t i = 0; i < script.size(); ++i) {
      const std::string clean_response = clean.handle(script[i]);
      ASSERT_NE(clean_response.find("\"ok\":true"), std::string::npos);
      if (i == kill_after) killed.killed[owner]->store(true);
      const std::string killed_response = killed.handle(script[i]);
      // Responses stay identical command-by-command, *through* the kill.
      EXPECT_EQ(clean_response, killed_response)
          << "kill_after=" << kill_after << " diverged at: " << script[i];
    }
    EXPECT_EQ(clean.handle(kFinalQuery), killed.handle(kFinalQuery))
        << "kill_after=" << kill_after;
    const std::string clean_stats = clean.handle(kFinalStats);
    const std::string killed_stats = killed.handle(kFinalStats);
    ASSERT_NE(killed_stats.find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(topology_view(clean_stats), topology_view(killed_stats))
        << "kill_after=" << kill_after;
    EXPECT_EQ(killed.router->counters().lost_sessions.value(), 0u);
    EXPECT_EQ(killed.router->counters().sessions_moved.value(), 1u);
    EXPECT_GE(killed.router->replicator().counters().adoptions.value(), 1u);
    EXPECT_EQ(clean.router->counters().sessions_moved.value(), 0u);
  }
}

TEST(ShardFailover, TornCommandAppliesExactlyOnce) {
  // The owner applies a mutation but dies before answering. The command
  // was never acked, hence never journaled: failover restores acked state
  // on the peer and the router re-forwards the torn command exactly once.
  Cluster clean(2, /*ship_every=*/1);
  Cluster torn(2, /*ship_every=*/1);
  for (Cluster* cluster : {&clean, &torn}) {
    ASSERT_NE(cluster->handle(R"({"cmd":"create_session","id":1})")
                  .find("\"ok\":true"),
              std::string::npos);
    ASSERT_NE(
        cluster->handle(
            R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})")
            .find("\"ok\":true"),
        std::string::npos);
    ASSERT_NE(
        cluster->handle(
            R"({"cmd":"add_node","id":3,"session":1,"x":0.7,"y":0.0})")
            .find("\"ok\":true"),
        std::string::npos);
  }
  const std::size_t owner = torn.owner_index(1);
  torn.drop_responses[owner]->store(1);
  const char* tear = R"({"cmd":"add_edge","id":4,"session":1,"u":0,"v":1})";
  EXPECT_EQ(clean.handle(tear), torn.handle(tear));
  EXPECT_EQ(clean.handle(kFinalQuery), torn.handle(kFinalQuery));
  EXPECT_EQ(torn.router->counters().sessions_moved.value(), 1u);
  EXPECT_EQ(torn.router->counters().lost_sessions.value(), 0u);
}

TEST(ShardFailover, SessionWithNoPeerIsLostWithTypedError) {
  Cluster cluster(1);
  ASSERT_NE(cluster.handle(R"({"cmd":"create_session","id":1})")
                .find("\"ok\":true"),
            std::string::npos);
  ASSERT_NE(cluster.handle(
                    R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})")
                .find("\"ok\":true"),
            std::string::npos);
  // Ship a snapshot... nowhere: single backend, so the replica never
  // left. Kill the only backend: the session is unrecoverable and the
  // router must say so with the typed connection-lost code — never hang,
  // never fabricate.
  cluster.killed[0]->store(true);
  const std::string response = cluster.handle(
      R"({"cmd":"add_node","id":3,"session":1,"x":1.0,"y":0.0})");
  EXPECT_NE(response.find("\"code\":\"connection_lost\""), std::string::npos);
  EXPECT_NE(response.find("unrecoverable"), std::string::npos);
  EXPECT_EQ(cluster.router->counters().lost_sessions.value(), 1u);
  // The loss is sticky and idempotent: the session stays lost, the
  // counter does not double-count.
  const std::string again = cluster.handle(
      R"({"cmd":"query_interference","id":4,"session":1})");
  EXPECT_NE(again.find("\"code\":\"connection_lost\""), std::string::npos);
  EXPECT_NE(again.find("was lost in a failover"), std::string::npos);
  EXPECT_EQ(cluster.router->counters().lost_sessions.value(), 1u);
}

TEST(ShardFailover, NeverShippedSessionRebuildsFromFullJournal) {
  // ship_every large enough that nothing ships before the kill: failover
  // must rebuild the session on a fresh backend by replaying the entire
  // journal from create.
  Cluster clean(2, /*ship_every=*/100);
  Cluster killed(2, /*ship_every=*/100);
  for (Cluster* cluster : {&clean, &killed}) {
    ASSERT_NE(cluster->handle(R"({"cmd":"create_session","id":1})")
                  .find("\"ok\":true"),
              std::string::npos);
  }
  const std::vector<std::string> script = session_script();
  for (const std::string& payload : script) {
    ASSERT_EQ(clean.handle(payload), killed.handle(payload));
  }
  const std::size_t owner = killed.owner_index(1);
  killed.killed[owner]->store(true);
  EXPECT_EQ(clean.handle(kFinalQuery), killed.handle(kFinalQuery));
  const shard::ReplicatorCounters& counters =
      killed.router->replicator().counters();
  EXPECT_EQ(counters.adoptions.value(), 1u);
  EXPECT_EQ(counters.replays.value(), script.size());
  EXPECT_EQ(killed.router->counters().lost_sessions.value(), 0u);
}

TEST(ShardFailover, TornReplicateResponseDoesNotWedgeReplication) {
  // The peer stores a shipped snapshot but the response is torn: the
  // router must not wedge retrying the same "stale" seq forever — the
  // next ship uses a fresh attempt seq and replication converges.
  Cluster clean(2, /*ship_every=*/1);
  Cluster torn(2, /*ship_every=*/1);
  for (Cluster* cluster : {&clean, &torn}) {
    ASSERT_NE(cluster->handle(R"({"cmd":"create_session","id":1})")
                  .find("\"ok\":true"),
              std::string::npos);
  }
  const char* m1 = R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})";
  EXPECT_EQ(clean.handle(m1), torn.handle(m1));
  const std::size_t owner = torn.owner_index(1);
  const std::size_t peer = 1 - owner;
  torn.drop_responses[peer]->store(1);
  const char* m2 = R"({"cmd":"add_node","id":3,"session":1,"x":1.0,"y":0.0})";
  // The client response is unaffected (the mutation was acked by the
  // owner); only the background replicate exchange tears.
  EXPECT_EQ(clean.handle(m2), torn.handle(m2));
  const shard::ReplicatorCounters& counters = torn.router->replicator().counters();
  EXPECT_EQ(counters.ship_failures.value(), 1u);
  EXPECT_EQ(counters.shipped.value(), 1u);
  // ...but the snapshot DID land at the peer.
  EXPECT_EQ(torn.services[peer]->replicas().size(), 1u);

  // The torn exchange marked the peer down; a probe revives it.
  torn.router->health_sweep(obs::now_ns());
  EXPECT_EQ(torn.router->backend_state("shard-" + std::to_string(peer)),
            shard::BackendState::kUp);

  // Next mutation re-ships at a fresh seq: accepted, not "stale".
  const char* m3 = R"({"cmd":"add_node","id":4,"session":1,"x":0.5,"y":0.9})";
  EXPECT_EQ(clean.handle(m3), torn.handle(m3));
  EXPECT_EQ(counters.shipped.value(), 2u);
  EXPECT_EQ(counters.ship_failures.value(), 1u);

  // And the replicated state is the real one: kill the owner, answers
  // stay checksum-identical to the clean twin.
  torn.killed[owner]->store(true);
  EXPECT_EQ(clean.handle(kFinalQuery), torn.handle(kFinalQuery));
  EXPECT_EQ(torn.router->counters().lost_sessions.value(), 0u);
}

TEST(ShardFailover, TornReplicateThenFailoverAppliesJournalOnce) {
  // A torn-but-landed replicate followed by owner death: the adopted
  // replica already contains the journaled mutation, so the restore must
  // reconcile on the adopted seq and skip the replay — not apply it
  // twice.
  Cluster clean(2, /*ship_every=*/1);
  Cluster torn(2, /*ship_every=*/1);
  for (Cluster* cluster : {&clean, &torn}) {
    ASSERT_NE(cluster->handle(R"({"cmd":"create_session","id":1})")
                  .find("\"ok\":true"),
              std::string::npos);
  }
  const char* m1 = R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})";
  EXPECT_EQ(clean.handle(m1), torn.handle(m1));
  const std::size_t owner = torn.owner_index(1);
  const std::size_t peer = 1 - owner;
  torn.drop_responses[peer]->store(1);
  const char* m2 = R"({"cmd":"add_node","id":3,"session":1,"x":0.7,"y":0.0})";
  EXPECT_EQ(clean.handle(m2), torn.handle(m2));
  torn.router->health_sweep(obs::now_ns());
  torn.killed[owner]->store(true);
  EXPECT_EQ(clean.handle(kFinalQuery), torn.handle(kFinalQuery));
  const std::string clean_stats = clean.handle(kFinalStats);
  const std::string torn_stats = torn.handle(kFinalStats);
  EXPECT_EQ(topology_view(clean_stats), topology_view(torn_stats));
  // The journaled copy of m2 was covered by the adopted snapshot.
  EXPECT_EQ(torn.router->replicator().counters().replays.value(), 0u);
  EXPECT_EQ(torn.router->counters().lost_sessions.value(), 0u);
  EXPECT_EQ(torn.router->counters().sessions_moved.value(), 1u);
}

TEST(ShardFailover, TruncatedJournalIsAnHonestLoss) {
  // Nothing ever ships (huge cadence) and the journal overruns
  // max_journal: replay would reconstruct partial state, so failover
  // must report the session lost with the typed error — never restore
  // silently wrong state.
  Cluster cluster(2, /*ship_every=*/100, /*max_journal=*/4);
  ASSERT_NE(cluster.handle(R"({"cmd":"create_session","id":1})")
                .find("\"ok\":true"),
            std::string::npos);
  for (int i = 0; i < 6; ++i) {
    const std::string payload =
        R"({"cmd":"add_node","id":)" + std::to_string(10 + i) +
        R"(,"session":1,"x":)" + std::to_string(0.1 * i) + R"(,"y":0.2})";
    ASSERT_NE(cluster.handle(payload).find("\"ok\":true"), std::string::npos);
  }
  EXPECT_GE(cluster.router->replicator().counters().journal_truncated.value(),
            1u);
  const std::size_t owner = cluster.owner_index(1);
  cluster.killed[owner]->store(true);
  const std::string response = cluster.handle(kFinalQuery);
  EXPECT_NE(response.find("\"code\":\"connection_lost\""), std::string::npos);
  EXPECT_NE(response.find("truncated"), std::string::npos);
  EXPECT_EQ(cluster.router->counters().lost_sessions.value(), 1u);
}

TEST(ShardFailover, TruncationHealsOnNextSuccessfulShip) {
  // The journal overruns max_journal before the cadence ships, but the
  // eventual ship's snapshot is full state: the truncation is healed and
  // a later failover restores checksum-identical state.
  Cluster clean(2, /*ship_every=*/6, /*max_journal=*/4);
  Cluster killed(2, /*ship_every=*/6, /*max_journal=*/4);
  for (Cluster* cluster : {&clean, &killed}) {
    ASSERT_NE(cluster->handle(R"({"cmd":"create_session","id":1})")
                  .find("\"ok\":true"),
              std::string::npos);
  }
  for (const std::string& payload : session_script()) {
    ASSERT_EQ(clean.handle(payload), killed.handle(payload));
  }
  EXPECT_GE(killed.router->replicator().counters().journal_truncated.value(),
            1u);
  EXPECT_EQ(killed.router->replicator().counters().shipped.value(), 1u);
  const std::size_t owner = killed.owner_index(1);
  killed.killed[owner]->store(true);
  EXPECT_EQ(clean.handle(kFinalQuery), killed.handle(kFinalQuery));
  EXPECT_EQ(killed.router->counters().lost_sessions.value(), 0u);
  EXPECT_EQ(killed.router->counters().sessions_moved.value(), 1u);
}

TEST(ShardFailover, HealthMonitorRestartsAfterStop) {
  // start → stop → start must yield a live monitor again (stop() leaves
  // its stop flag set; a restarted thread that exits immediately would
  // freeze every backend in its last observed state forever).
  Cluster cluster(2, /*ship_every=*/1, /*max_journal=*/4096,
                  /*health_interval_ms=*/5);
  cluster.router->start_health_monitor();
  cluster.router->stop();
  cluster.router->start_health_monitor();
  cluster.killed[0]->store(true);
  bool observed_failure = false;
  for (int i = 0; i < 1000 && !observed_failure; ++i) {
    observed_failure = cluster.router->backend_state("shard-0") !=
                       shard::BackendState::kUp;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(observed_failure) << "restarted monitor never probed";
  cluster.killed[0]->store(false);
  bool rejoined = false;
  for (int i = 0; i < 2500 && !rejoined; ++i) {
    rejoined = cluster.router->backend_state("shard-0") ==
               shard::BackendState::kUp;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(rejoined) << "restarted monitor never revived the backend";
  cluster.router->stop();
}

TEST(ShardFailover, CloseOfOrphanedSessionStillCloses) {
  Cluster cluster(2);
  ASSERT_NE(cluster.handle(R"({"cmd":"create_session","id":1})")
                .find("\"ok\":true"),
            std::string::npos);
  ASSERT_NE(cluster.handle(
                    R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})")
                .find("\"ok\":true"),
            std::string::npos);
  const std::size_t owner = cluster.owner_index(1);
  cluster.killed[owner]->store(true);
  // Closing a session whose owner is dead discards the routing entry and
  // answers exactly what a direct service would.
  const std::string response =
      cluster.handle(R"({"cmd":"close_session","id":3,"session":1})");
  EXPECT_NE(response.find("\"closed\":true"), std::string::npos);
  EXPECT_EQ(cluster.router->session_count(), 0u);
  const std::string gone =
      cluster.handle(R"({"cmd":"query_interference","id":4,"session":1})");
  EXPECT_NE(gone.find("no session 1"), std::string::npos);
}

}  // namespace
