#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rim/analysis/experiment.hpp"
#include "rim/analysis/fit.hpp"
#include "rim/analysis/stats.hpp"

#include <sstream>

namespace rim::analysis {
namespace {

TEST(Stats, SummaryOfKnownSamples) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(samples);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary one = summarize(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> samples{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.25), 2.5);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateSeries) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Fit, LinearRecovery) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Fit, LinearWithNoise) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Fit, PowerLawRecoversExponent) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(4.0 * std::pow(static_cast<double>(i), 0.5));
  }
  const LinearFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 4.0, 1e-9);
}

TEST(Fit, DegenerateInputs) {
  const LinearFit empty = fit_linear({}, {});
  EXPECT_DOUBLE_EQ(empty.slope, 0.0);
  const std::vector<double> same_x{2.0, 2.0};
  const std::vector<double> ys{1.0, 3.0};
  EXPECT_DOUBLE_EQ(fit_linear(same_x, ys).slope, 0.0);
}

TEST(Experiment, BannerContainsMetadataAndBodyOutput) {
  std::ostringstream out;
  run_experiment({"E0", "Test experiment", "Figure 0", "nothing"}, out,
                 [](std::ostream& os) { os << "BODY-MARKER\n"; });
  const std::string text = out.str();
  EXPECT_NE(text.find("[E0] Test experiment"), std::string::npos);
  EXPECT_NE(text.find("Figure 0"), std::string::npos);
  EXPECT_NE(text.find("BODY-MARKER"), std::string::npos);
  EXPECT_NE(text.find("[E0] done in"), std::string::npos);
}

}  // namespace
}  // namespace rim::analysis
