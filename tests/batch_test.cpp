#include <gtest/gtest.h>

#include <vector>

#include "rim/core/assessor.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/scenario.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/workload.hpp"

/// Tests for the parallel batch pipeline (Scenario::apply_batch) and the
/// unified impact assessor (core::Assessor). The contract under test is
/// bit-identity: a batch must leave the scenario in exactly the state that
/// applying its mutations one at a time would, which in turn must match the
/// kBrute from-scratch oracle.

namespace rim::core {
namespace {

std::vector<std::uint32_t> brute_reference(Scenario& scenario) {
  const graph::Graph topo = scenario.topology();
  const geom::PointSet points = scenario.points();
  const std::vector<double> radii2 = transmission_radii_squared(topo, points);
  return interference_vector_squared(points, radii2, Strategy::kBrute);
}

void expect_scenarios_identical(Scenario& a, Scenario& b, const char* context) {
  ASSERT_EQ(a.node_count(), b.node_count()) << context;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << context;
  const auto ia = a.interference();
  const auto ib = b.interference();
  ASSERT_EQ(ia.size(), ib.size()) << context;
  for (std::size_t v = 0; v < ia.size(); ++v) {
    ASSERT_EQ(ia[v], ib[v]) << context << ", node " << v;
    ASSERT_EQ(a.position(v), b.position(v)) << context << ", node " << v;
    ASSERT_EQ(a.radius_squared(v), b.radius_squared(v))
        << context << ", node " << v;
  }
}

void expect_matches_brute(Scenario& scenario, const char* context) {
  const std::vector<std::uint32_t> expected = brute_reference(scenario);
  const auto actual = scenario.interference();
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(actual[v], expected[v]) << context << ", node " << v;
  }
}

sim::WorkloadConfig small_config(std::uint64_t seed) {
  sim::WorkloadConfig config;
  config.initial_nodes = 70;
  config.batch_size = 48;
  config.side = 2.0;
  config.seed = seed;
  return config;
}

/// The headline property: randomized batches, applied through the pipeline
/// (both inline and on the shared pool), stay bit-identical to serial
/// application and to the kBrute oracle after every batch.
class BatchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchProperty, RandomizedBatchesMatchSerialAndBrute) {
  const sim::WorkloadConfig config = small_config(GetParam());
  Scenario serial = sim::make_tenant_scenario(config, 0);
  Scenario inline_batch = serial;
  Scenario pooled_batch = serial;
  (void)serial.interference();
  (void)inline_batch.interference();
  (void)pooled_batch.interference();

  sim::Rng rng(GetParam() ^ 0xbadc0deu);
  for (int round = 0; round < 12; ++round) {
    const std::vector<Mutation> batch =
        sim::make_churn_batch(rng, serial.node_count(), config);
    for (const Mutation& m : batch) serial.apply(m);
    inline_batch.apply_batch(batch, nullptr);
    pooled_batch.apply_batch(batch, &parallel::ThreadPool::shared());

    expect_scenarios_identical(serial, inline_batch, "inline vs serial");
    expect_scenarios_identical(serial, pooled_batch, "pooled vs serial");
    expect_matches_brute(inline_batch, "inline vs brute");
  }
  EXPECT_GT(inline_batch.stats().batches, 0u);
  EXPECT_GT(inline_batch.stats().batch_mutations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(ApplyBatch, EmptyBatchIsNoOp) {
  const auto points = sim::uniform_square(30, 1.5, 5);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario scenario(points, topo);
  (void)scenario.interference();
  const std::vector<std::uint32_t> before(scenario.interference().begin(),
                                          scenario.interference().end());
  const BatchResult result = scenario.apply_batch({});
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.waves, 0u);
  EXPECT_FALSE(result.deferred);
  const auto after = scenario.interference();
  EXPECT_EQ(before, std::vector<std::uint32_t>(after.begin(), after.end()));
}

TEST(ApplyBatch, SingleMutationBatchMatchesApply) {
  const auto points = sim::uniform_square(40, 1.5, 7);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario serial(points, topo);
  Scenario batched = serial;
  (void)serial.interference();
  (void)batched.interference();
  const Mutation m = Mutation::move_node(7, {0.33, 0.77});
  serial.apply(m);
  batched.apply_batch(std::span<const Mutation>(&m, 1), nullptr);
  expect_scenarios_identical(serial, batched, "single-mutation batch");
}

TEST(ApplyBatch, InvalidIdsAreSkipped) {
  const auto points = sim::uniform_square(25, 1.5, 9);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario scenario(points, topo);
  (void)scenario.interference();
  const std::vector<std::uint32_t> before(scenario.interference().begin(),
                                          scenario.interference().end());
  const std::vector<Mutation> batch{
      Mutation::remove_node(999),
      Mutation::add_edge(0, 999),
      Mutation::remove_edge(999, 1),
      Mutation::move_node(999, {0.0, 0.0}),
      Mutation::add_edge(3, 3),  // self-loop: also a no-op
  };
  const BatchResult result = scenario.apply_batch(batch, nullptr);
  EXPECT_EQ(result.applied, 0u);
  const auto after = scenario.interference();
  EXPECT_EQ(before, std::vector<std::uint32_t>(after.begin(), after.end()));
  expect_matches_brute(scenario, "after invalid batch");
}

TEST(ApplyBatch, MoveToCurrentPositionInBatchIsNoOp) {
  const auto points = sim::uniform_square(25, 1.5, 13);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario scenario(points, topo);
  (void)scenario.interference();
  const std::vector<Mutation> batch{
      Mutation::move_node(4, scenario.position(4))};
  const BatchResult result = scenario.apply_batch(batch, nullptr);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.disk_tasks, 0u);
  EXPECT_EQ(result.recounts, 0u);
  expect_matches_brute(scenario, "after same-position move batch");
}

TEST(ApplyBatch, AddThenRemoveSameNodeWithinBatch) {
  const auto points = sim::uniform_square(30, 1.5, 21);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario serial(points, topo);
  Scenario batched = serial;
  (void)serial.interference();
  (void)batched.interference();
  const auto newcomer = static_cast<NodeId>(points.size());
  const std::vector<Mutation> batch{
      Mutation::add_node({0.7, 0.7}),
      Mutation::add_edge(newcomer, 0),
      Mutation::remove_node(newcomer),
  };
  for (const Mutation& m : batch) serial.apply(m);
  batched.apply_batch(batch, nullptr);
  EXPECT_EQ(batched.node_count(), points.size());
  expect_scenarios_identical(serial, batched, "add+remove same batch");
  expect_matches_brute(batched, "add+remove same batch vs brute");
}

TEST(ApplyBatch, RemovalChurnWithRenamesMatchesSerial) {
  // Heavy removal mix: every removal triggers a swap-with-last rename, so
  // later mutations in the same batch target renamed ids.
  const auto points = sim::uniform_square(60, 2.0, 31);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario serial(points, topo);
  Scenario batched = serial;
  (void)serial.interference();
  (void)batched.interference();
  sim::Rng rng(31);
  std::vector<Mutation> batch;
  std::size_t n = points.size();
  for (int i = 0; i < 20; ++i) {
    batch.push_back(Mutation::remove_node(
        static_cast<NodeId>(rng.next_below(n--))));
  }
  for (int i = 0; i < 10; ++i) {
    batch.push_back(Mutation::move_node(
        static_cast<NodeId>(rng.next_below(n)),
        {rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)}));
  }
  for (const Mutation& m : batch) serial.apply(m);
  batched.apply_batch(batch, nullptr);
  expect_scenarios_identical(serial, batched, "removal churn");
  expect_matches_brute(batched, "removal churn vs brute");
}

TEST(ApplyBatch, GiantDiskBatchDefersAndStaysExact) {
  // A hub wired to everyone: moving it drags a deployment-spanning disk, so
  // the pipeline must fall back to a deferred full evaluation — and still
  // agree with the oracle.
  const auto points = sim::uniform_square(400, 2.0, 37);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(0, v);
  Scenario scenario(points, topo);
  (void)scenario.interference();
  const std::vector<Mutation> batch{Mutation::move_node(0, {1.1, 0.9})};
  const BatchResult result = scenario.apply_batch(batch, nullptr);
  EXPECT_TRUE(result.deferred);
  EXPECT_GT(scenario.stats().batch_deferred, 0u);
  expect_matches_brute(scenario, "after deferred batch");
}

TEST(ApplyBatch, StatsJsonExposesBatchCounters) {
  const auto points = sim::uniform_square(40, 1.5, 41);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario scenario(points, topo);
  (void)scenario.interference();
  const std::vector<Mutation> batch{Mutation::move_node(3, {0.5, 0.5}),
                                    Mutation::add_node({1.0, 1.0})};
  scenario.apply_batch(batch, nullptr);
  const std::string json = scenario.stats_json().dump();
  EXPECT_NE(json.find("\"batches\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("batch_disk_tasks"), std::string::npos);
  EXPECT_NE(json.find("batch_wave_tasks"), std::string::npos);
  EXPECT_NE(json.find("\"grid\""), std::string::npos);
}

// --- Assessor::assess ----------------------------------------------------

TEST(Assess, DoesNotMutateTheScenario) {
  const auto points = sim::uniform_square(50, 2.0, 51);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario scenario(points, topo);
  const std::vector<std::uint32_t> before(scenario.interference().begin(),
                                          scenario.interference().end());
  const std::size_t edges_before = scenario.edge_count();

  (void)Assessor{}.assess(scenario, Mutation::remove_node(7));
  (void)Assessor{}.assess(scenario, Mutation::add_node({0.4, 0.6}));

  EXPECT_EQ(scenario.node_count(), points.size());
  EXPECT_EQ(scenario.edge_count(), edges_before);
  const auto after = scenario.interference();
  EXPECT_EQ(before, std::vector<std::uint32_t>(after.begin(), after.end()));
}

TEST(Assess, AdditionSequenceMatchesApplication) {
  const auto points = sim::uniform_square(50, 2.0, 61);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario scenario(points, topo);
  const geom::Vec2 p{0.8, 1.2};
  const auto newcomer = static_cast<NodeId>(points.size());
  const NodeId partner = scenario.nearest_node(p);
  const std::vector<Mutation> sequence{Mutation::add_node(p),
                                       Mutation::add_edge(newcomer, partner)};
  const Assessment assessment = Assessor{}.assess(scenario, sequence);

  Scenario applied = scenario;
  for (const Mutation& m : sequence) applied.apply(m);
  EXPECT_EQ(assessment.max_before, scenario.max_interference());
  EXPECT_EQ(assessment.max_after, applied.max_interference());
  EXPECT_EQ(assessment.newcomer_interference,
            applied.interference_of(newcomer));
  ASSERT_EQ(assessment.delta_per_node.size(), points.size());
  for (NodeId v = 0; v < points.size(); ++v) {
    EXPECT_EQ(assessment.delta_per_node[v],
              static_cast<std::int64_t>(applied.interference_of(v)) -
                  static_cast<std::int64_t>(scenario.interference_of(v)))
        << "node " << v;
  }
}

TEST(Assess, RemovalReportsVictimAndRenames) {
  const auto points = sim::uniform_square(40, 2.0, 71);
  graph::Graph topo(points.size());
  for (NodeId v = 1; v < points.size(); ++v) topo.add_edge(v - 1, v);
  Scenario scenario(points, topo);
  const NodeId victim = 5;
  const auto victim_before = scenario.interference_of(victim);
  const Assessment assessment = Assessor{}.assess(scenario, Mutation::remove_node(victim));

  // The victim's slot disappeared: its delta is minus its old value.
  EXPECT_EQ(assessment.delta_per_node[victim],
            -static_cast<std::int64_t>(victim_before));
  // affected_ids is ascending and exactly the non-zero deltas.
  for (std::size_t i = 1; i < assessment.affected_ids.size(); ++i) {
    EXPECT_LT(assessment.affected_ids[i - 1], assessment.affected_ids[i]);
  }
  for (const NodeId id : assessment.affected_ids) {
    EXPECT_NE(assessment.delta_per_node[id], 0);
  }
  // Cross-check against real application with the rename resolved.
  Scenario applied = scenario;
  const NodeId renamed = applied.remove_node(victim);
  for (NodeId v = 0; v < points.size(); ++v) {
    if (v == victim) continue;
    const NodeId where = v == renamed ? victim : v;
    EXPECT_EQ(assessment.delta_per_node[v],
              static_cast<std::int64_t>(applied.interference_of(where)) -
                  static_cast<std::int64_t>(scenario.interference_of(v)))
        << "node " << v;
  }
}

}  // namespace
}  // namespace rim::core
