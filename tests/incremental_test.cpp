#include <gtest/gtest.h>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::core {
namespace {

graph::Graph mst_of(const geom::PointSet& points) {
  return topology::mst_topology(points, graph::build_udg(points, 1.0));
}

TEST(NodeAddition, IsolatedNewcomerAddsAtMostOne) {
  // Pure receiver-centric robustness: a node that transmits nothing and is
  // attached to nobody changes nothing at all.
  const auto points = sim::uniform_square(40, 1.5, 5);
  const graph::Graph topo = mst_of(points);
  const auto impact =
      Assessor{}.assess_addition(points, topo, {0.7, 0.7}, AttachPolicy::kIsolated);
  EXPECT_EQ(impact.receiver_max_node_increase, 0u);
  EXPECT_EQ(impact.receiver_after, impact.receiver_before);
}

class NodeAdditionRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NodeAdditionRobustness, ReceiverIncreaseBoundedByTwo) {
  // The newcomer's own disk adds at most 1 to any node, and its attachment
  // partner's enlarged disk at most 1 more: total <= 2 per node, in stark
  // contrast to the sender-centric measure (see Figure1 test below).
  const auto points = sim::uniform_square(50, 2.0, GetParam());
  const graph::Graph topo = mst_of(points);
  sim::Rng rng(GetParam() ^ 0xabcdu);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Vec2 newcomer{rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
    const auto impact = Assessor{}.assess_addition(points, topo, newcomer,
                                             AttachPolicy::kNearestNeighbor);
    EXPECT_LE(impact.receiver_max_node_increase, 2u)
        << "newcomer at (" << newcomer.x << ", " << newcomer.y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeAdditionRobustness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(NodeAddition, Figure1SenderCentricExplodes) {
  // The paper's Figure 1: adding the outlier pushes the sender-centric
  // measure to ~n while the receiver-centric one moves by a small constant.
  const std::size_t n = 60;
  const geom::PointSet all = sim::figure1_instance(n, 11);
  const geom::PointSet cluster(all.begin(), all.end() - 1);
  const graph::Graph topo = mst_of(cluster);

  const auto impact = Assessor{}.assess_addition(cluster, topo, all.back(),
                                           AttachPolicy::kNearestNeighbor);
  // Sender-centric: the bridge edge covers essentially the whole cluster.
  EXPECT_GE(impact.sender_after, static_cast<std::uint32_t>(n) - 10);
  // Receiver-centric: any node gains at most 2.
  EXPECT_LE(impact.receiver_max_node_increase, 2u);
  EXPECT_LE(impact.receiver_after, impact.receiver_before + 2);
}

TEST(NodeAddition, NewcomerInterferenceIsCounted) {
  const geom::PointSet points{{0, 0}, {0.5, 0}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const auto impact =
      Assessor{}.assess_addition(points, topo, {0.25, 0.1}, AttachPolicy::kIsolated);
  // Both existing disks (radius 0.5) cover the newcomer.
  EXPECT_EQ(impact.newcomer_interference, 2u);
}

TEST(NodeRemoval, NeverIncreasesInterferenceWithoutRepair) {
  const auto points = sim::uniform_square(40, 1.5, 21);
  const graph::Graph topo = mst_of(points);
  for (NodeId victim = 0; victim < points.size(); victim += 7) {
    const auto impact = Assessor{}.assess_removal(points, topo, victim);
    EXPECT_EQ(impact.receiver_max_node_increase, 0u) << "victim " << victim;
    EXPECT_LE(impact.receiver_after, impact.receiver_before);
  }
}

TEST(NodeRemoval, RemovingCovererDropsInterference) {
  // Chain 0-1-2: removing the middle node leaves nothing transmitting.
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}};
  graph::Graph topo(3);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  const auto impact = Assessor{}.assess_removal(points, topo, 1);
  EXPECT_EQ(impact.receiver_after, 0u);
  EXPECT_GT(impact.receiver_before, 0u);
}

}  // namespace
}  // namespace rim::core
