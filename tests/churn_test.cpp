#include <gtest/gtest.h>

#include "rim/sim/churn.hpp"
#include "rim/topology/mst_topology.hpp"
#include "rim/topology/registry.hpp"

namespace rim::sim {
namespace {

topology::Builder mst_builder() {
  return [](std::span<const geom::Vec2> p, const graph::Graph& g) {
    return topology::mst_topology(p, g);
  };
}

TEST(Churn, TraceLengthAndCounts) {
  ChurnConfig config;
  config.initial_nodes = 30;
  config.events = 40;
  config.seed = 1;
  const ChurnTrace trace = run_churn(config, mst_builder());
  ASSERT_EQ(trace.steps.size(), 41u);  // initial snapshot + events
  EXPECT_EQ(trace.steps.front().node_count, 30u);
  for (std::size_t i = 1; i < trace.steps.size(); ++i) {
    const auto& prev = trace.steps[i - 1];
    const auto& step = trace.steps[i];
    if (step.added) {
      EXPECT_EQ(step.node_count, prev.node_count + 1);
    } else {
      EXPECT_EQ(step.node_count, prev.node_count - 1);
    }
  }
}

TEST(Churn, Deterministic) {
  ChurnConfig config;
  config.initial_nodes = 25;
  config.events = 30;
  config.seed = 7;
  const ChurnTrace a = run_churn(config, mst_builder());
  const ChurnTrace b = run_churn(config, mst_builder());
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].receiver_max, b.steps[i].receiver_max);
    EXPECT_EQ(a.steps[i].sender_max, b.steps[i].sender_max);
  }
}

TEST(Churn, NeverShrinksBelowTwoNodes) {
  ChurnConfig config;
  config.initial_nodes = 3;
  config.events = 60;
  config.add_probability = 0.1;  // departure-heavy
  config.seed = 3;
  const ChurnTrace trace = run_churn(config, mst_builder());
  for (const ChurnStep& step : trace.steps) {
    EXPECT_GE(step.node_count, 2u);
  }
}

class ChurnRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnRobustness, ReceiverJumpsSmallSenderJumpsCanBeLarge) {
  // The longitudinal version of the Figure 1 claim: on clustered dynamic
  // networks the receiver measure moves in small steps. (Each arrival can
  // reshape the MST globally, so the bound here is a small constant, not
  // the per-topology-fixed "+2".)
  ChurnConfig config;
  config.initial_nodes = 60;
  config.events = 60;
  config.side = 2.0;
  config.seed = GetParam();
  const ChurnTrace trace = run_churn(config, mst_builder());
  EXPECT_LE(trace.max_receiver_jump(), 4u);
  // No assertion that sender jumps ARE large on uniform instances — that
  // needs the adversarial geometry (covered by E1/E11); only the ordering:
  EXPECT_GE(trace.max_sender_jump(), trace.max_receiver_jump());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnRobustness,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(Churn, WorksWithEveryRegisteredConnectivityPreservingAlgorithm) {
  ChurnConfig config;
  config.initial_nodes = 20;
  config.events = 10;
  config.seed = 5;
  for (const auto& algorithm : topology::all_algorithms()) {
    const ChurnTrace trace = run_churn(config, algorithm.build);
    EXPECT_EQ(trace.steps.size(), 11u) << algorithm.name;
  }
}

}  // namespace
}  // namespace rim::sim
