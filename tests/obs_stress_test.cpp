#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "rim/obs/metrics.hpp"
#include "rim/obs/registry.hpp"
#include "rim/parallel/parallel_for.hpp"
#include "rim/parallel/thread_pool.hpp"

// TSan-targeted stress tests for the obs layer (ISSUE 4): N threads x M
// increments against Counter/Histogram/Registry, with exact final totals.
// The Debug+TSan CI leg runs these to exercise the metrics path under real
// contention, not just the batch pipeline. Totals must be exact — the
// relaxed atomics guarantee no lost updates, only unordered ones.

namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kIncrements = 20000;

TEST(ObsStress, CounterExactUnderConcurrentWriters) {
  rim::obs::Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(ObsStress, CounterMixedOperatorsExact) {
  rim::obs::Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kIncrements; ++i) {
        if (i % 2 == 0) {
          ++counter;
        } else {
          counter += 3;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Per thread: kIncrements/2 times +1 and kIncrements/2 times +3.
  EXPECT_EQ(counter.value(), kThreads * (kIncrements / 2) * 4);
}

TEST(ObsStress, HistogramExactCountAndSumUnderConcurrentWriters) {
  rim::obs::Histogram histogram;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::size_t i = 0; i < kIncrements; ++i) {
        histogram.record(t * kIncrements + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::uint64_t n = kThreads * kIncrements;
  EXPECT_EQ(histogram.count(), n);
  EXPECT_EQ(histogram.sum(), n * (n - 1) / 2);  // sum of 0..n-1, each once
  EXPECT_EQ(histogram.max(), n - 1);
}

TEST(ObsStress, CountersRecordedFromPoolTasksAreExact) {
  rim::parallel::ThreadPool pool(4);
  rim::obs::Counter counter;
  rim::obs::Histogram histogram;
  rim::parallel::parallel_for(
      0, kThreads * kIncrements,
      [&](std::size_t i) {
        counter.add(1);
        histogram.record(i % 1024);
      },
      pool, /*grain=*/128);
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
  EXPECT_EQ(histogram.count(), kThreads * kIncrements);
}

TEST(ObsStress, RegistryConcurrentMutationAndSnapshot) {
  rim::obs::Registry registry;
  rim::obs::Counter counter;
  registry.add_source("stable",
                      [&counter] { return rim::io::Json(counter.value()); });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &counter, t] {
      const std::string name = "source_" + std::to_string(t);
      for (std::size_t i = 0; i < 500; ++i) {
        counter.add(1);
        registry.add_source(name, [] { return rim::io::Json(1.5); });
        // Producers run under the registry lock; snapshotting while other
        // threads add/remove sources must stay race-free.
        const rim::io::Json snapshot = registry.snapshot();
        EXPECT_FALSE(snapshot.dump().empty());
        registry.remove_source(name);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.size(), 1u);  // only "stable" survives
  EXPECT_EQ(counter.value(), kThreads * 500);
}

}  // namespace
