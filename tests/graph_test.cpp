#include <gtest/gtest.h>

#include <limits>

#include "rim/graph/connectivity.hpp"
#include "rim/graph/graph.hpp"
#include "rim/graph/mst.hpp"
#include "rim/graph/shortest_path.hpp"
#include "rim/graph/stretch.hpp"
#include "rim/graph/udg.hpp"
#include "rim/graph/union_find.hpp"
#include "rim/sim/generators.hpp"

namespace rim::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(2, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate (reversed)
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, EdgesAreCanonical) {
  Graph g(3);
  g.add_edge(2, 0);
  ASSERT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edges()[0], (Edge{0, 2}));
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, ConstructFromEdgeList) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const Graph g(3, edges);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, AddNode) {
  Graph g(2);
  g.add_edge(0, 1);
  const NodeId fresh = g.add_node();
  EXPECT_EQ(fresh, 2u);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.degree(fresh), 0u);
  EXPECT_TRUE(g.add_edge(fresh, 0));
}

TEST(Graph, UnionWith) {
  Graph a(4);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  Graph b(4);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph u = a.union_with(b);
  EXPECT_EQ(u.edge_count(), 3u);
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(1, 2));
  EXPECT_TRUE(u.has_edge(2, 3));
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.component_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.component_size(3), 4u);
}

TEST(Connectivity, ComponentLabels) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(4, 5);
  const auto labels = component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_EQ(component_count(g), 3u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Connectivity, SingleNodeIsConnected) {
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_FALSE(is_connected(Graph(2)));
}

TEST(Connectivity, PreservesConnectivity) {
  Graph udg(4);
  udg.add_edge(0, 1);
  udg.add_edge(1, 2);
  udg.add_edge(0, 2);
  // node 3 isolated
  Graph tree(4);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  EXPECT_TRUE(preserves_connectivity(udg, tree));
  tree.remove_edge(1, 2);
  EXPECT_FALSE(preserves_connectivity(udg, tree));
  // Connecting MORE than the reference also fails the equivalence.
  Graph over(4);
  over.add_edge(0, 1);
  over.add_edge(1, 2);
  over.add_edge(2, 3);
  EXPECT_FALSE(preserves_connectivity(udg, over));
}

TEST(Connectivity, IsForest) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(is_forest(g));
  g.add_edge(0, 2);
  EXPECT_FALSE(is_forest(g));
}

TEST(Connectivity, BfsHops) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[3], 3u);
  EXPECT_EQ(hops[4], kUnreachableHops);
}

TEST(Udg, GridMatchesBruteForce) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto points = sim::uniform_square(150, 4.0, seed);
    const Graph fast = build_udg(points, 1.0);
    const Graph brute = build_udg_brute(points, 1.0);
    ASSERT_EQ(fast.edge_count(), brute.edge_count()) << "seed " << seed;
    for (Edge e : brute.edges()) EXPECT_TRUE(fast.has_edge(e.u, e.v));
  }
}

TEST(Udg, RadiusBoundaryIsClosed) {
  const geom::PointSet points{{0, 0}, {1, 0}, {2.0001, 0}};
  const Graph g = build_udg(points, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));    // exactly at radius
  EXPECT_FALSE(g.has_edge(1, 2));   // just beyond
}

TEST(Udg, ZeroRadiusHasNoEdges) {
  const geom::PointSet points{{0, 0}, {0, 0}};
  EXPECT_EQ(build_udg(points, 0.0).edge_count(), 0u);
}

TEST(Mst, KruskalProducesSpanningForest) {
  const auto points = sim::uniform_square(80, 3.0, 77);
  const Graph udg = build_udg(points, 1.0);
  const Graph forest = euclidean_mst(udg, points);
  EXPECT_TRUE(is_forest(forest));
  EXPECT_TRUE(preserves_connectivity(udg, forest));
}

TEST(Mst, MatchesCompleteGraphPrimOnConnectedInstance) {
  const auto points = sim::uniform_square(40, 1.0, 5);  // dense: UDG complete
  const Graph udg = build_udg(points, 2.0);
  ASSERT_EQ(udg.edge_count(), 40u * 39u / 2u);
  const Graph kruskal_tree = euclidean_mst(udg, points);
  const Graph prim_tree = euclidean_mst_complete(points);
  EXPECT_NEAR(total_length(kruskal_tree, points), total_length(prim_tree, points),
              1e-9);
}

TEST(Mst, TotalLengthOfKnownTree) {
  const geom::PointSet points{{0, 0}, {1, 0}, {1, 1}};
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(total_length(g, points), 2.0);
}

TEST(Mst, CustomWeightKruskal) {
  // Weight that inverts lengths: picks the two LONGEST edges of a triangle.
  const geom::PointSet points{{0, 0}, {1, 0}, {0, 3}};
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const Graph t = kruskal(
      g, [&](Edge e) { return -geom::dist(points[e.u], points[e.v]); });
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_TRUE(t.has_edge(1, 2));
  EXPECT_TRUE(t.has_edge(0, 2));
}

TEST(ShortestPath, DijkstraKnownDistances) {
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}, {0, 5}};
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto d = euclidean_dijkstra(g, 0, points);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(ShortestPath, TriangleInequalityOnRandomUdg) {
  const auto points = sim::uniform_square(60, 2.0, 21);
  const Graph udg = build_udg(points, 1.0);
  const auto d0 = euclidean_dijkstra(udg, 0, points);
  for (NodeId v = 0; v < points.size(); ++v) {
    if (d0[v] == kUnreachable) continue;
    // Graph distance is at least the Euclidean distance.
    EXPECT_GE(d0[v] + 1e-12, geom::dist(points[0], points[v]));
  }
}

TEST(ShortestPath, ApspSymmetric) {
  const auto points = sim::uniform_square(25, 1.5, 33);
  const Graph udg = build_udg(points, 1.0);
  const auto m = euclidean_apsp(udg, points);
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(m[i * n + i], 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(m[i * n + j], m[j * n + i]);
    }
  }
}

TEST(Stretch, IdenticalGraphHasUnitStretch) {
  const auto points = sim::uniform_square(40, 2.0, 9);
  const Graph udg = build_udg(points, 1.0);
  const auto report = measure_stretch(udg, udg, points);
  EXPECT_DOUBLE_EQ(report.max_euclidean_stretch, 1.0);
  EXPECT_DOUBLE_EQ(report.max_hop_stretch, 1.0);
}

TEST(Stretch, SubgraphStretchAtLeastOne) {
  const auto points = sim::uniform_square(50, 2.0, 10);
  const Graph udg = build_udg(points, 1.0);
  const Graph mst = euclidean_mst(udg, points);
  const auto report = measure_stretch(udg, mst, points);
  EXPECT_GE(report.max_euclidean_stretch, 1.0);
  EXPECT_GE(report.mean_euclidean_stretch, 1.0);
  EXPECT_LE(report.mean_euclidean_stretch, report.max_euclidean_stretch);
  EXPECT_LT(report.max_euclidean_stretch,
            std::numeric_limits<double>::infinity());
}

TEST(Stretch, DisconnectionYieldsInfiniteStretch) {
  const geom::PointSet points{{0, 0}, {0.5, 0}, {1.0, 0}};
  Graph reference(3);
  reference.add_edge(0, 1);
  reference.add_edge(1, 2);
  Graph broken(3);
  broken.add_edge(0, 1);
  const auto report = measure_stretch(reference, broken, points);
  EXPECT_EQ(report.max_euclidean_stretch, std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace rim::graph
