#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/geom/convex_hull.hpp"
#include "rim/geom/grid_index.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/mst.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/critical.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/registry.hpp"

/// Edge cases and cross-module invariants not covered by the per-module
/// suites: degenerate geometry (duplicates, collinearity), non-unit radii,
/// and relations between the two interference models.

namespace rim {
namespace {

TEST(DuplicatePoints, UdgAndInterferenceSurvive) {
  // Three coincident nodes plus one distinct: distance 0 edges are valid
  // UDG edges; radii can be 0 while others transmit.
  const geom::PointSet points{{1, 1}, {1, 1}, {1, 1}, {1.5, 1}};
  const graph::Graph udg = graph::build_udg(points, 1.0);
  EXPECT_EQ(udg.edge_count(), 6u);  // complete on 4 nodes
  const core::InterferenceSummary s = core::Assessor{}.assess(udg, points);
  // Every node's radius is 0.5 (farthest neighbor): all disks cover all.
  for (std::uint32_t i : s.per_node) EXPECT_EQ(i, 3u);
}

TEST(DuplicatePoints, ZeroLengthEdgeGivesZeroRadius) {
  const geom::PointSet points{{2, 2}, {2, 2}};
  graph::Graph topo(2);
  topo.add_edge(0, 1);
  const auto radii = core::transmission_radii(topo, points);
  EXPECT_DOUBLE_EQ(radii[0], 0.0);
  // Zero radius transmits nothing in the model: no interference.
  EXPECT_EQ(core::graph_interference(topo, points), 0u);
}

TEST(NonUnitRadius, UdgAndHighwayAgreeAtRadiusTwo) {
  const auto inst = sim::uniform_highway(80, 20.0, 5);
  const graph::Graph via_highway = inst.udg(2.0);
  const graph::Graph via_generic = graph::build_udg_brute(inst.to_points(), 2.0);
  EXPECT_EQ(via_highway.edge_count(), via_generic.edge_count());
  EXPECT_EQ(inst.max_degree(2.0), via_highway.max_degree());
}

TEST(NonUnitRadius, AGenRespectsSegmentLength) {
  const auto inst = sim::uniform_highway(200, 10.0, 6);
  for (double radius : {0.5, 2.0}) {
    const auto result = highway::a_gen(inst, radius);
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg(radius), result.topology))
        << radius;
    // Every edge of the result must be a UDG edge at this radius.
    const auto& xs = inst.positions();
    for (graph::Edge e : result.topology.edges()) {
      EXPECT_LE(std::abs(xs[e.u] - xs[e.v]), radius) << radius;
    }
  }
}

TEST(NonUnitRadius, AApxBranchesConsistently) {
  const auto inst = sim::uniform_highway(150, 6.0, 7);
  for (double radius : {0.5, 1.0, 3.0}) {
    const auto result = highway::a_apx(inst, radius);
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg(radius), result.topology))
        << radius;
    EXPECT_EQ(result.gamma, highway::gamma(inst, radius)) << radius;
  }
}

TEST(ModelsRelation, SenderMaxAtLeastReceiverishOnTrees) {
  // For any tree: the sender-centric coverage of the longest edge at a node
  // counts at least the nodes its endpoint disks cover; empirically the
  // sender measure dominates the receiver measure on MSTs. We assert the
  // weaker, always-true fact that both are bounded by n-1 and positive on
  // non-trivial trees.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto points = sim::uniform_square(80, 2.0, seed);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const graph::Graph mst = graph::euclidean_mst(udg, points);
    const std::uint32_t recv = core::graph_interference(mst, points);
    const std::uint32_t send = core::evaluate_sender_centric(mst, points).max;
    EXPECT_GT(recv, 0u);
    EXPECT_LT(recv, points.size());
    EXPECT_LT(send, points.size());
  }
}

TEST(CoveringSets, SizesMatchInterferenceVector) {
  const auto points = sim::uniform_square(100, 2.0, 8);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = graph::euclidean_mst(udg, points);
  const auto sets = core::covering_sets(mst, points);
  const core::InterferenceSummary s = core::Assessor{}.assess(mst, points);
  ASSERT_EQ(sets.size(), points.size());
  for (NodeId v = 0; v < points.size(); ++v) {
    EXPECT_EQ(sets[v].size(), s.per_node[v]) << v;
    EXPECT_TRUE(std::is_sorted(sets[v].begin(), sets[v].end()));
    // Each listed coverer really covers v, and v never lists itself.
    const auto radii2 = core::transmission_radii_squared(mst, points);
    for (NodeId u : sets[v]) {
      EXPECT_NE(u, v);
      EXPECT_LE(geom::dist2(points[u], points[v]), radii2[u]);
    }
  }
}

TEST(CoveringSets, TopologyNeighborsAlwaysListed) {
  const auto points = sim::uniform_square(60, 1.8, 9);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph mst = graph::euclidean_mst(udg, points);
  const auto sets = core::covering_sets(mst, points);
  for (graph::Edge e : mst.edges()) {
    EXPECT_TRUE(std::binary_search(sets[e.v].begin(), sets[e.v].end(), e.u));
    EXPECT_TRUE(std::binary_search(sets[e.u].begin(), sets[e.u].end(), e.v));
  }
}

TEST(ScaleInvariance, InterferenceUnchangedUnderUniformScaling) {
  // Scaling positions and the UDG radius together leaves the combinatorics
  // untouched.
  const auto points = sim::uniform_square(70, 2.0, 10);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  geom::PointSet scaled = points;
  for (auto& p : scaled) p = p * 7.5;
  const graph::Graph udg_scaled = graph::build_udg(scaled, 7.5);
  ASSERT_EQ(udg.edge_count(), udg_scaled.edge_count());
  const graph::Graph mst = graph::euclidean_mst(udg, points);
  graph::Graph mst_scaled(scaled.size());
  for (graph::Edge e : mst.edges()) mst_scaled.add_edge(e.u, e.v);
  EXPECT_EQ(core::Assessor{}.assess(mst, points).per_node,
            core::Assessor{}.assess(mst_scaled, scaled).per_node);
}

TEST(MirrorSymmetry, HighwayReflectionPreservesInterference) {
  // Reflecting a 1-D instance (x -> -x) reverses node order but preserves
  // all interference values of the mirrored topology.
  const auto inst = sim::uniform_highway(90, 7.0, 11);
  const graph::Graph chain = highway::linear_chain(inst, 1.0);
  const std::uint32_t original = highway::graph_interference_1d(inst, chain);

  std::vector<double> mirrored;
  for (double x : inst.positions()) mirrored.push_back(-x);
  const auto inst_m = highway::HighwayInstance::from_positions(std::move(mirrored));
  const graph::Graph chain_m = highway::linear_chain(inst_m, 1.0);
  EXPECT_EQ(highway::graph_interference_1d(inst_m, chain_m), original);
}

TEST(RegistryInterferenceOrdering, NnfNeverAboveMst) {
  // NNF ⊆ MST edge-wise, and interference is edge-monotone, so I(NNF) <=
  // I(MST) on every instance.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto points = sim::uniform_square(90, 2.2, seed);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const auto* nnf = topology::find_algorithm("nnf");
    const auto* mst = topology::find_algorithm("mst");
    EXPECT_LE(core::graph_interference(nnf->build(points, udg), points),
              core::graph_interference(mst->build(points, udg), points))
        << seed;
  }
}

TEST(RegistryInterferenceOrdering, RngNeverAboveGabriel) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto points = sim::uniform_square(90, 2.2, seed + 50);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const auto* rng = topology::find_algorithm("rng");
    const auto* gabriel = topology::find_algorithm("gabriel");
    EXPECT_LE(core::graph_interference(rng->build(points, udg), points),
              core::graph_interference(gabriel->build(points, udg), points))
        << seed;
  }
}

TEST(ConvexHull, HullOfHullIsIdempotent) {
  const auto points = sim::uniform_square(150, 3.0, 12);
  const auto hull = geom::convex_hull(points);
  geom::PointSet hull_points;
  for (NodeId id : hull) hull_points.push_back(points[id]);
  const auto hull2 = geom::convex_hull(hull_points);
  EXPECT_EQ(hull2.size(), hull.size());
}

TEST(GridIndexSquared, MatchesLinearRadiusQueries) {
  const auto points = sim::uniform_square(200, 3.0, 13);
  const geom::GridIndex index(points, 0.5);
  sim::Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Vec2 c{rng.uniform(0.0, 3.0), rng.uniform(0.0, 3.0)};
    const double r = rng.uniform(0.0, 1.5);
    std::vector<NodeId> linear;
    index.for_each_in_disk(c, r, [&](NodeId id) { linear.push_back(id); });
    std::vector<NodeId> squared;
    index.for_each_in_disk_squared(c, r * r,
                                   [&](NodeId id) { squared.push_back(id); });
    std::sort(linear.begin(), linear.end());
    std::sort(squared.begin(), squared.end());
    EXPECT_EQ(linear, squared);
  }
}

TEST(AExp, SpanSmallerThanRadiusStillWorks) {
  // A chain squeezed into a tenth of the radius: A_exp must behave the
  // same (interference is scale-free).
  const auto full = highway::exponential_chain(64, 1.0);
  const auto tiny = highway::exponential_chain(64, 0.1);
  EXPECT_EQ(highway::a_exp(full).interference, highway::a_exp(tiny).interference);
}

TEST(CriticalSets, RadiusLimitsCriticalReach) {
  // With a small radius, distant linear-chain transmitters have no edges,
  // so gamma collapses.
  const auto chain = highway::exponential_chain(32);
  const std::uint32_t full = highway::gamma(chain, 1.0);
  // Radius covering only the first few gaps: most nodes have no linear
  // edges at all.
  const std::uint32_t tiny = highway::gamma(chain, 1e-6);
  EXPECT_GT(full, tiny);
}

TEST(NodeAddition, CoincidentNewcomerCountsExistingDisks) {
  // A newcomer dropped exactly onto an existing transmitter is covered by
  // everything covering that spot.
  const geom::PointSet points{{0, 0}, {0.5, 0}, {1.0, 0}};
  graph::Graph topo(3);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  const auto impact = core::Assessor{}.assess_addition(points, topo, {0.5, 0.0},
                                                 core::AttachPolicy::kIsolated);
  // Node 1's position is covered by disks of 0, 1 (self excluded for node 1
  // but not for the newcomer) and 2.
  EXPECT_EQ(impact.newcomer_interference, 3u);
}

TEST(Determinism, FullPipelineReproducible) {
  // Same seeds => byte-identical pipeline outputs across repetitions.
  const auto run = [] {
    const auto points = sim::uniform_square(120, 2.5, 99);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    std::vector<std::uint32_t> values;
    for (const auto& algorithm : topology::all_algorithms()) {
      values.push_back(core::graph_interference(algorithm.build(points, udg),
                                                points));
    }
    return values;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rim
