#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rim/graph/connectivity.hpp"
#include "rim/graph/tree_enum.hpp"

namespace rim::graph {
namespace {

TEST(Cayley, KnownCounts) {
  EXPECT_EQ(cayley_count(1), 1u);
  EXPECT_EQ(cayley_count(2), 1u);
  EXPECT_EQ(cayley_count(3), 3u);
  EXPECT_EQ(cayley_count(4), 16u);
  EXPECT_EQ(cayley_count(5), 125u);
  EXPECT_EQ(cayley_count(8), 262144u);
}

TEST(Prufer, DecodeKnownSequence) {
  // Sequence (3,3,3,4) on n=6 is the classic textbook example.
  const std::vector<NodeId> seq{3, 3, 3, 4};
  const auto edges = prufer_decode(seq, 6);
  ASSERT_EQ(edges.size(), 5u);
  const Graph g(6, edges);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_forest(g));
  EXPECT_EQ(g.degree(3), 4u);  // appears 3 times in seq => degree 4
  EXPECT_EQ(g.degree(4), 2u);
}

TEST(Prufer, DecodeStarAndPath) {
  // All-same sequence => star centered at that node.
  const auto star = prufer_decode(std::vector<NodeId>{2, 2, 2}, 5);
  const Graph gs(5, star);
  EXPECT_EQ(gs.degree(2), 4u);
  // n=2: empty sequence => single edge.
  const auto pair = prufer_decode(std::vector<NodeId>{}, 2);
  ASSERT_EQ(pair.size(), 1u);
  EXPECT_EQ(pair[0], (Edge{0, 1}));
}

class PruferRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PruferRoundTrip, EncodeInvertsDecode) {
  const std::size_t n = GetParam();
  std::vector<NodeId> seq(n - 2, 0);
  std::size_t checked = 0;
  while (true) {
    const auto edges = prufer_decode(seq, n);
    const Graph tree(n, edges);
    EXPECT_EQ(prufer_encode(tree), seq);
    ++checked;
    std::size_t i = 0;
    while (i < seq.size() && ++seq[i] == n) seq[i++] = 0;
    if (i == seq.size()) break;
  }
  EXPECT_EQ(checked, cayley_count(n));
}

INSTANTIATE_TEST_SUITE_P(SmallN, PruferRoundTrip, ::testing::Values(3u, 4u, 5u, 6u));

class TreeEnumeration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeEnumeration, VisitsExactlyCayleyManyDistinctTrees) {
  const std::size_t n = GetParam();
  std::set<std::vector<Edge>> seen;
  std::uint64_t count = 0;
  for_each_labeled_tree(n, [&](std::span<const Edge> edges) {
    std::vector<Edge> sorted(edges.begin(), edges.end());
    std::sort(sorted.begin(), sorted.end());
    seen.insert(sorted);
    ++count;
    // Every visited edge set must be a spanning tree.
    const Graph g(n, edges);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(is_forest(g));
    return true;
  });
  EXPECT_EQ(count, cayley_count(n));
  EXPECT_EQ(seen.size(), cayley_count(n));  // all distinct
}

INSTANTIATE_TEST_SUITE_P(SmallN, TreeEnumeration,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

TEST(TreeEnumeration, EarlyStopRespected) {
  std::uint64_t count = 0;
  for_each_labeled_tree(6, [&](std::span<const Edge>) {
    ++count;
    return count < 10;
  });
  EXPECT_EQ(count, 10u);
}

TEST(TreeEnumeration, NoTreesBelowTwoNodes) {
  std::uint64_t count = 0;
  for_each_labeled_tree(1, [&](std::span<const Edge>) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace rim::graph
