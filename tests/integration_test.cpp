#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rim/analysis/fit.hpp"
#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/stretch.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/exact_optimum.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/mac/simulation.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/registry.hpp"

namespace rim {
namespace {

/// End-to-end reproduction of the paper's headline asymptotics: the same
/// instance family processed through generators -> algorithms -> the
/// interference core -> the fitting code, exactly as the bench binaries do.
TEST(EndToEnd, AexpScalesLikeSqrtNAndLinearChainLikeN) {
  std::vector<double> ns;
  std::vector<double> aexp_values;
  std::vector<double> linear_values;
  for (std::size_t n = 16; n <= 1024; n *= 2) {
    const auto chain = highway::exponential_chain(n);
    ns.push_back(static_cast<double>(n));
    aexp_values.push_back(static_cast<double>(highway::a_exp(chain).interference));
    linear_values.push_back(static_cast<double>(
        highway::graph_interference_1d(chain, highway::linear_chain(chain, 1.0))));
  }
  const auto aexp_fit = analysis::fit_power_law(ns, aexp_values);
  const auto linear_fit = analysis::fit_power_law(ns, linear_values);
  EXPECT_NEAR(aexp_fit.slope, 0.5, 0.08);    // Theorem 5.1: O(sqrt n)
  EXPECT_NEAR(linear_fit.slope, 1.0, 0.05);  // Figure 7: Θ(n), I = n - 2
  EXPECT_GT(aexp_fit.r_squared, 0.98);
  EXPECT_GT(linear_fit.r_squared, 0.999);
}

TEST(EndToEnd, EveryRegisteredTopologyEvaluatesOnCommonInstance) {
  const auto points = sim::uniform_square(150, 3.0, 2024);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const std::uint32_t udg_interference = core::graph_interference(udg, points);
  for (const auto& algorithm : topology::all_algorithms()) {
    const graph::Graph result = algorithm.build(points, udg);
    const core::InterferenceSummary s = core::Assessor{}.assess(result, points);
    // Any subgraph's interference is bounded by Δ(UDG) (Section 3) and its
    // per-node values by its degrees from below.
    EXPECT_LE(s.max, udg.max_degree()) << algorithm.name;
    for (NodeId v = 0; v < points.size(); ++v) {
      EXPECT_GE(s.per_node[v], result.degree(v)) << algorithm.name;
    }
    // Sparser-than-UDG constructions cannot exceed the UDG's interference.
    EXPECT_LE(s.max, udg_interference) << algorithm.name;
  }
}

TEST(EndToEnd, ApproximationPipelineOnSmallChains) {
  // gamma / Lemma 5.5 / exact optimum / A_apx agree on the ordering the
  // theory requires: lb <= OPT <= A_apx <= c * Δ^{1/4} * OPT.
  for (std::size_t n = 4; n <= 8; ++n) {
    const auto chain = highway::exponential_chain(n);
    const auto points = chain.to_points();
    const auto exact =
        highway::exact_minimum_interference_tree(points, chain.udg(1.0));
    ASSERT_TRUE(exact.has_value());
    const auto apx = highway::a_apx(chain, 1.0);
    const std::uint32_t apx_value =
        highway::graph_interference_1d(chain, apx.topology);
    EXPECT_GE(static_cast<double>(exact->interference),
              highway::lemma55_lower_bound(apx.gamma))
        << n;
    EXPECT_LE(exact->interference, apx_value) << n;
    const double ratio_cap =
        12.0 * std::pow(static_cast<double>(apx.delta), 0.25);
    EXPECT_LE(static_cast<double>(apx_value),
              ratio_cap * static_cast<double>(exact->interference))
        << n;
  }
}

TEST(EndToEnd, SenderAndReceiverModelsDivergeOnFigure1Family) {
  // As the cluster grows, sender-centric interference of the MST bridge
  // grows linearly while the receiver-centric measure stays near-constant.
  std::vector<double> ns;
  std::vector<double> sender;
  std::vector<double> receiver;
  for (std::size_t n = 25; n <= 400; n *= 2) {
    const auto points = sim::figure1_instance(n, 9);
    const graph::Graph udg = graph::build_udg(points, 1.0);
    const auto* mst = topology::find_algorithm("mst");
    ASSERT_NE(mst, nullptr);
    const graph::Graph topo = mst->build(points, udg);
    ns.push_back(static_cast<double>(n));
    sender.push_back(
        static_cast<double>(core::evaluate_sender_centric(topo, points).max));
    receiver.push_back(
        static_cast<double>(core::graph_interference(topo, points)));
  }
  const auto sender_fit = analysis::fit_power_law(ns, sender);
  EXPECT_GT(sender_fit.slope, 0.9);  // ~linear in n
  // Receiver-centric stays bounded: the largest value across the sweep is
  // within a small constant of the smallest.
  const double max_recv = *std::max_element(receiver.begin(), receiver.end());
  const double min_recv = *std::min_element(receiver.begin(), receiver.end());
  EXPECT_LE(max_recv, min_recv + 4.0);
}

TEST(EndToEnd, MacSimulationTracksInterferenceAcrossTopologies) {
  // Over several topologies of one random instance, delivery ratio should
  // be weakly decreasing in measured interference (rank agreement on the
  // extremes rather than strict monotonicity, to stay robust).
  const auto points = sim::uniform_square(60, 2.0, 31);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  mac::SimulationConfig config;
  config.slots = 1500;
  config.arrival_rate = 0.04;
  config.seed = 13;

  double best_ratio = -1.0;
  std::uint32_t best_interference = 0;
  double worst_ratio = 2.0;
  std::uint32_t worst_interference = 0;
  for (const char* name : {"mst", "gabriel", "rng", "xtc"}) {
    const auto* algorithm = topology::find_algorithm(name);
    ASSERT_NE(algorithm, nullptr) << name;
    const auto report =
        mac::simulate_traffic(algorithm->build(points, udg), points, config);
    if (report.mac.delivery_ratio() > best_ratio) {
      best_ratio = report.mac.delivery_ratio();
      best_interference = report.interference;
    }
    if (report.mac.delivery_ratio() < worst_ratio) {
      worst_ratio = report.mac.delivery_ratio();
      worst_interference = report.interference;
    }
  }
  // The UDG itself (max interference) must not beat the best sparse
  // topology in delivery ratio under contention.
  const auto udg_report = mac::simulate_traffic(udg, points, config);
  EXPECT_GE(best_ratio, udg_report.mac.delivery_ratio());
  EXPECT_GE(udg_report.interference, best_interference);
  (void)worst_interference;
  (void)worst_ratio;
}

TEST(EndToEnd, AGenAblationDefaultSpacingIsNearBest) {
  // The ⌈sqrt Δ⌉ spacing of A_gen should be within a small factor of the
  // best spacing in {1, ..., Δ} on uniform highway instances.
  const auto inst = sim::uniform_highway(400, 8.0, 17);
  const auto def = highway::a_gen(inst, 1.0);
  const std::uint32_t def_i = highway::graph_interference_1d(inst, def.topology);
  std::uint32_t best_i = def_i;
  for (std::size_t spacing = 1; spacing <= def.delta; spacing *= 2) {
    const auto alt = highway::a_gen(inst, 1.0, spacing);
    best_i = std::min(best_i,
                      highway::graph_interference_1d(inst, alt.topology));
  }
  EXPECT_LE(def_i, best_i * 3);
}

}  // namespace
}  // namespace rim
