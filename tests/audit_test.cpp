#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rim/core/audit.hpp"
#include "rim/core/scenario.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/trace.hpp"
#include "rim/sim/workload.hpp"

/// Tests for core::InvariantAuditor: a healthy engine passes every check,
/// deliberately corrupted caches (a silently skipped batch task — the
/// poison fault model) are detected, and the Definition 3.2 robustness
/// bound holds at randomized probe positions.

namespace rim::core {
namespace {

Scenario make_scenario(std::uint64_t seed, std::size_t nodes = 40) {
  sim::WorkloadConfig config;
  config.initial_nodes = nodes;
  config.seed = seed;
  return sim::make_tenant_scenario(config, 0);
}

/// Locally-wired instance (unit-distance dumbbells): small disks, so
/// batches run the coalesce/wave path instead of deferring — which is what
/// the poison-detection tests need.
Scenario make_pairs(std::size_t nodes) {
  sim::WorkloadConfig config;
  config.initial_nodes = nodes;
  return sim::make_pairs_scenario(config);
}

TEST(AuditTest, CleanScenarioPasses) {
  Scenario scenario = make_scenario(1);
  const InvariantAuditor auditor;
  const AuditReport report = auditor.audit(scenario);
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.checks, 0u);
}

TEST(AuditTest, PassesAfterChurn) {
  Scenario scenario = make_scenario(2);
  sim::Rng rng(7);
  sim::WorkloadConfig config;
  config.initial_nodes = 40;
  const InvariantAuditor auditor;
  for (int epoch = 0; epoch < 5; ++epoch) {
    const std::vector<Mutation> batch =
        sim::make_churn_batch(rng, scenario.node_count(), config);
    (void)scenario.apply_batch(batch, nullptr);
    const AuditReport report = auditor.audit(scenario);
    EXPECT_TRUE(report.ok()) << "epoch " << epoch << ": "
                             << report.violations.front();
  }
}

TEST(AuditTest, DetectsPoisonedDiskTask) {
  // The poison fault model: a wave task silently skipped mid-batch leaves
  // the interference cache stale. The auditor must notice.
  struct SkipAllDiskTasks final : BatchHooks {
    bool before_disk_task(std::size_t, std::size_t) override { return false; }
  };

  Scenario scenario = make_pairs(64);
  (void)scenario.interference();  // warm the cache so staleness can exist

  // Removing dumbbell edges shrinks both endpoint disks — guaranteed
  // disk tasks, all of which the hook swallows.
  std::vector<Mutation> batch;
  batch.push_back(Mutation::remove_edge(0, 1));
  batch.push_back(Mutation::remove_edge(2, 3));
  SkipAllDiskTasks hooks;
  const BatchResult result = scenario.apply_batch(batch, nullptr, &hooks);
  ASSERT_EQ(result.applied, 2u);
  ASSERT_FALSE(result.deferred);
  ASSERT_GT(scenario.stats().hook_skipped_tasks.value(), 0u);

  const InvariantAuditor auditor;
  const AuditReport report = auditor.audit(scenario);
  EXPECT_FALSE(report.ok())
      << "auditor missed a corrupted interference cache";
}

TEST(AuditTest, MaxViolationsCapsTheReport) {
  struct SkipAllDiskTasks final : BatchHooks {
    bool before_disk_task(std::size_t, std::size_t) override { return false; }
  };
  Scenario scenario = make_pairs(64);
  (void)scenario.interference();
  std::vector<Mutation> batch;
  for (NodeId u = 0; u < 6; u += 2) {
    batch.push_back(Mutation::remove_edge(u, u + 1));
  }
  SkipAllDiskTasks hooks;
  (void)scenario.apply_batch(batch, nullptr, &hooks);

  AuditOptions options;
  options.max_violations = 2;
  const InvariantAuditor auditor(options);
  const AuditReport report = auditor.audit(scenario);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.violations.size(), 2u);
}

TEST(AuditTest, RobustnessBoundHoldsAtRandomProbes) {
  Scenario scenario = make_scenario(5, 60);
  sim::Rng rng(11);
  std::vector<geom::Vec2> probes(24);
  for (auto& p : probes) {
    p = {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
  }
  const InvariantAuditor auditor;
  const AuditReport report = auditor.audit_robustness(scenario, probes);
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.checks, 0u);
}

TEST(AuditTest, StatsAccumulate) {
  Scenario scenario = make_scenario(6);
  const InvariantAuditor auditor;
  (void)auditor.audit(scenario);
  (void)auditor.audit(scenario);
  const io::Json stats = auditor.stats_json();
  const io::Json* audits = stats.find("audits");
  ASSERT_NE(audits, nullptr);
}

}  // namespace
}  // namespace rim::core
