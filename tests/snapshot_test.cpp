#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/workload.hpp"

/// Tests for core::Snapshot: bit-identical round-trips through both the
/// binary and JSON encodings, restore-equivalence under continued mutation,
/// and clean rejection (never UB) of truncated, corrupted, or tampered
/// snapshots.

namespace rim::core {
namespace {

sim::WorkloadConfig small_config(std::uint64_t seed) {
  sim::WorkloadConfig config;
  config.initial_nodes = 48;
  config.batch_size = 24;
  config.seed = seed;
  return config;
}

Scenario make_scenario(std::uint64_t seed) {
  return sim::make_tenant_scenario(small_config(seed), 0);
}

void expect_scenarios_identical(Scenario& a, Scenario& b, const char* context) {
  ASSERT_EQ(a.node_count(), b.node_count()) << context;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << context;
  const auto ia = a.interference();
  const auto ib = b.interference();
  ASSERT_EQ(ia.size(), ib.size()) << context;
  for (std::size_t v = 0; v < ia.size(); ++v) {
    ASSERT_EQ(ia[v], ib[v]) << context << ", node " << v;
    ASSERT_EQ(a.position(v), b.position(v)) << context << ", node " << v;
    ASSERT_EQ(a.radius_squared(v), b.radius_squared(v))
        << context << ", node " << v;
  }
}

TEST(SnapshotTest, BinaryRoundTripIsBitIdentical) {
  Scenario scenario = make_scenario(3);
  (void)scenario.interference();  // warm the cache so it is captured
  const Snapshot original = scenario.snapshot();
  EXPECT_TRUE(original.cache_valid);

  const std::vector<std::uint8_t> bytes = original.to_bytes();
  Snapshot decoded;
  std::string error;
  ASSERT_TRUE(Snapshot::from_bytes(bytes, decoded, error)) << error;
  EXPECT_EQ(decoded.to_bytes(), bytes);
  EXPECT_EQ(decoded.payload_checksum(), original.payload_checksum());
  EXPECT_EQ(decoded.interference, original.interference);
  EXPECT_EQ(decoded.adjacency, original.adjacency);
}

TEST(SnapshotTest, JsonRoundTripIsBitIdentical) {
  Scenario scenario = make_scenario(4);
  (void)scenario.interference();
  const Snapshot original = scenario.snapshot();

  const std::string text = original.to_json().dump();
  io::Json doc;
  std::string error;
  ASSERT_TRUE(io::Json::parse(text, doc, error)) << error;
  Snapshot decoded;
  ASSERT_TRUE(Snapshot::from_json(doc, decoded, error)) << error;
  EXPECT_EQ(decoded.to_bytes(), original.to_bytes());
}

TEST(SnapshotTest, RestoreReproducesDonorExactly) {
  Scenario donor = make_scenario(5);
  (void)donor.interference();
  const Snapshot snap = donor.snapshot();

  Scenario copy{EvalOptions{}};
  std::string error;
  ASSERT_TRUE(copy.restore(snap, &error)) << error;
  expect_scenarios_identical(donor, copy, "after restore");

  // Re-snapshotting the restored engine reproduces the original bytes
  // (adjacency order preserved; grid bucket order is not captured).
  Snapshot again = copy.snapshot();
  EXPECT_EQ(again.to_bytes(), snap.to_bytes());
}

TEST(SnapshotTest, RestoredScenarioEvolvesIdentically) {
  Scenario original = make_scenario(6);
  (void)original.interference();
  const Snapshot snap = original.snapshot();
  Scenario restored{EvalOptions{}};
  ASSERT_TRUE(restored.restore(snap, nullptr));

  // Property: under an identical randomized mutation stream, the restored
  // engine tracks the original bit-for-bit, epoch after epoch.
  sim::Rng rng(99);
  const sim::WorkloadConfig config = small_config(6);
  for (int epoch = 0; epoch < 6; ++epoch) {
    const std::vector<Mutation> batch =
        sim::make_churn_batch(rng, original.node_count(), config);
    (void)original.apply_batch(batch, nullptr);
    (void)restored.apply_batch(batch, nullptr);
    expect_scenarios_identical(original, restored, "post-epoch");
  }
  EXPECT_EQ(original.snapshot().to_bytes(), restored.snapshot().to_bytes());
}

TEST(SnapshotTest, DirtyCacheSnapshotRestores) {
  Scenario scenario = make_scenario(7);
  // No interference() call: the cache was never built, so the snapshot
  // carries cache_valid = false and no interference vector.
  Snapshot snap = scenario.snapshot();
  EXPECT_FALSE(snap.cache_valid);
  EXPECT_TRUE(snap.interference.empty());
  EXPECT_EQ(snap.interference_checksum(), 0u);

  Scenario copy{EvalOptions{}};
  ASSERT_TRUE(copy.restore(snap, nullptr));
  expect_scenarios_identical(scenario, copy, "dirty restore");
}

TEST(SnapshotTest, EveryTruncationIsRejected) {
  Scenario scenario = make_scenario(8);
  (void)scenario.interference();
  const std::vector<std::uint8_t> bytes = scenario.snapshot().to_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Snapshot out;
    std::string error;
    EXPECT_FALSE(Snapshot::from_bytes(
        std::span<const std::uint8_t>(bytes.data(), len), out, error))
        << "prefix of length " << len << " accepted";
    EXPECT_FALSE(error.empty()) << "no error message at length " << len;
  }
}

TEST(SnapshotTest, EveryByteFlipIsRejected) {
  Scenario scenario = make_scenario(9);
  (void)scenario.interference();
  const std::vector<std::uint8_t> bytes = scenario.snapshot().to_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> corrupted = bytes;
    corrupted[i] ^= 0xFF;
    Snapshot out;
    std::string error;
    EXPECT_FALSE(Snapshot::from_bytes(corrupted, out, error))
        << "flip at byte " << i << " accepted";
  }
}

TEST(SnapshotTest, TrailingGarbageIsRejected) {
  Scenario scenario = make_scenario(10);
  std::vector<std::uint8_t> bytes = scenario.snapshot().to_bytes();
  bytes.push_back(0);
  Snapshot out;
  std::string error;
  EXPECT_FALSE(Snapshot::from_bytes(bytes, out, error));
}

TEST(SnapshotTest, JsonTamperIsRejected) {
  Scenario scenario = make_scenario(11);
  (void)scenario.interference();
  std::string text = scenario.snapshot().to_json().dump();

  // Bump the version: rejected as unsupported, not migrated.
  {
    std::string tampered = text;
    const std::size_t at = tampered.find("\"version\":2");
    ASSERT_NE(at, std::string::npos);
    tampered.replace(at, 11, "\"version\":3");
    io::Json doc;
    std::string error;
    ASSERT_TRUE(io::Json::parse(tampered, doc, error)) << error;
    Snapshot out;
    EXPECT_FALSE(Snapshot::from_json(doc, out, error));
    EXPECT_FALSE(error.empty());
  }
  // Perturb the edge count: the re-derived payload checksum mismatches.
  {
    std::string tampered = text;
    const std::size_t at = tampered.find("\"edge_count\":");
    ASSERT_NE(at, std::string::npos);
    // Prepend a digit to the value. (Rebuilt by concatenation rather than
    // insert(): gcc 12's -Wrestrict false-positives on in-place insert
    // after find(), and the gate builds with -Werror.)
    tampered = tampered.substr(0, at + 13) + "1" + tampered.substr(at + 13);
    io::Json doc;
    std::string error;
    ASSERT_TRUE(io::Json::parse(tampered, doc, error)) << error;
    Snapshot out;
    EXPECT_FALSE(Snapshot::from_json(doc, out, error));
  }
}

TEST(SnapshotTest, ValidateCatchesStructuralLies) {
  Scenario scenario = make_scenario(12);
  (void)scenario.interference();
  std::string error;

  // Asymmetric adjacency.
  {
    Snapshot snap = scenario.snapshot();
    ASSERT_FALSE(snap.adjacency.empty());
    ASSERT_FALSE(snap.adjacency[0].empty());
    snap.adjacency[0].pop_back();
    EXPECT_FALSE(snap.validate(error));
  }
  // Edge count that disagrees with the lists.
  {
    Snapshot snap = scenario.snapshot();
    snap.edge_count += 1;
    EXPECT_FALSE(snap.validate(error));
  }
  // Out-of-range neighbor id.
  {
    Snapshot snap = scenario.snapshot();
    snap.adjacency[0][0] = static_cast<NodeId>(snap.node_count() + 7);
    EXPECT_FALSE(snap.validate(error));
  }
  // Restore must refuse and leave the target untouched.
  {
    Snapshot snap = scenario.snapshot();
    snap.edge_count += 1;
    Scenario target = make_scenario(13);
    (void)target.interference();
    const std::vector<std::uint8_t> before = target.snapshot().to_bytes();
    EXPECT_FALSE(target.restore(snap, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(target.snapshot().to_bytes(), before);
  }
}

TEST(SnapshotTest, HexBitsRoundTripExactly) {
  const double values[] = {0.0, -0.0, 1.0, -1.5, 1e-308, 3.141592653589793};
  for (const double v : values) {
    double back = 99.0;
    ASSERT_TRUE(double_from_hex_bits(double_to_hex_bits(v), back));
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0);
  }
  double out = 0.0;
  EXPECT_FALSE(double_from_hex_bits("zzzz", out));
  EXPECT_FALSE(double_from_hex_bits("0123456789abcde", out));  // 15 digits
}

}  // namespace
}  // namespace rim::core
