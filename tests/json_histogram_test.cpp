#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "rim/analysis/histogram.hpp"
#include "rim/io/json.hpp"

namespace rim {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(io::Json(nullptr).dump(), "null");
  EXPECT_EQ(io::Json(true).dump(), "true");
  EXPECT_EQ(io::Json(false).dump(), "false");
  EXPECT_EQ(io::Json(42).dump(), "42");
  EXPECT_EQ(io::Json(3.5).dump(), "3.5");
  EXPECT_EQ(io::Json(-7).dump(), "-7");
  EXPECT_EQ(io::Json("hello").dump(), "\"hello\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(io::Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(io::Json(std::nan("")).dump(), "null");
}

TEST(Json, Escaping) {
  EXPECT_EQ(io::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(io::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(io::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(io::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ArraysAndObjects) {
  io::JsonArray arr{io::Json(1), io::Json("two"), io::Json(true)};
  EXPECT_EQ(io::Json(arr).dump(), "[1,\"two\",true]");
  io::JsonObject obj;
  obj["beta"] = io::Json(2);
  obj["alpha"] = io::Json(1);
  // Keys serialise in map (sorted) order: deterministic output.
  EXPECT_EQ(io::Json(obj).dump(), "{\"alpha\":1,\"beta\":2}");
}

TEST(Json, Nested) {
  io::JsonObject inner;
  inner["values"] = io::Json(io::JsonArray{io::Json(1), io::Json(2)});
  io::JsonObject outer;
  outer["experiment"] = io::Json("E5");
  outer["data"] = io::Json(inner);
  EXPECT_EQ(io::Json(outer).dump(),
            "{\"data\":{\"values\":[1,2]},\"experiment\":\"E5\"}");
}

TEST(Json, LargeIntegralDoublesStayIntegral) {
  EXPECT_EQ(io::Json(1e6).dump(), "1000000");
  EXPECT_EQ(io::Json(123456789.0).dump(), "123456789");
}

TEST(Histogram, CountsAndMode) {
  const std::vector<std::uint32_t> samples{1, 2, 2, 3, 3, 3, 7};
  const analysis::Histogram h = analysis::Histogram::of_values(samples);
  ASSERT_EQ(h.buckets().size(), 8u);
  EXPECT_EQ(h.buckets()[0], 0u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 3u);
  EXPECT_EQ(h.buckets()[7], 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.mode(), 3u);
}

TEST(Histogram, RenderSkipsEmptyBucketsAndScalesBars) {
  const std::vector<std::uint32_t> samples{0, 0, 0, 0, 5};
  const analysis::Histogram h = analysis::Histogram::of_values(samples);
  std::ostringstream out;
  h.render(out, 8);
  const std::string text = out.str();
  EXPECT_NE(text.find("0 | ########  (4)"), std::string::npos);
  EXPECT_NE(text.find("5 | ##  (1)"), std::string::npos);
  EXPECT_EQ(text.find(" 3 |"), std::string::npos);  // empty bucket hidden
}

TEST(Histogram, EmptyInput) {
  const analysis::Histogram h = analysis::Histogram::of_values({});
  EXPECT_EQ(h.total(), 0u);
  std::ostringstream out;
  h.render(out);
  EXPECT_EQ(out.str(), "(empty histogram)\n");
}

}  // namespace
}  // namespace rim
