#include "rim/sim/random_deployment.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "rim/sim/generators.hpp"

// sim::RandomDeployment (DESIGN.md §12, E23): a deployment is a value —
// (Params, seed) determine the point set bit-for-bit, on every platform.
// The golden checksums below pin that contract: they were produced by this
// test and must never change for a fixed (Params, seed); a mismatch means
// the underlying generator streams (sim::Rng) changed shape, which silently
// invalidates every logged experiment seed.

namespace {

using rim::geom::PointSet;
using rim::sim::RandomDeployment;

std::uint64_t fnv1a_points(const PointSet& points) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto fold = [&hash](double value) {
    auto bits = std::bit_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      hash ^= bits & 0xffu;
      hash *= 1099511628211ull;
      bits >>= 8;
    }
  };
  for (const auto& p : points) {
    fold(p.x);
    fold(p.y);
  }
  return hash;
}

TEST(RandomDeployment, SameSeedSamePointsBitForBit) {
  const RandomDeployment::Params params =
      RandomDeployment::Params{}.with_nodes(1000).with_side(20.0);
  const RandomDeployment a(params, 12345);
  const RandomDeployment b(params, 12345);
  const PointSet pa = a.generate();
  const PointSet pb = b.generate();
  ASSERT_EQ(pa.size(), 1000u);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].x, pb[i].x);
    EXPECT_EQ(pa[i].y, pb[i].y);
  }
  // generate() is const and repeatable on one instance too.
  EXPECT_EQ(fnv1a_points(a.generate()), fnv1a_points(pa));
}

TEST(RandomDeployment, DifferentSeedsDifferentPoints) {
  const RandomDeployment::Params params =
      RandomDeployment::Params{}.with_nodes(100).with_side(10.0);
  EXPECT_NE(fnv1a_points(RandomDeployment(params, 1).generate()),
            fnv1a_points(RandomDeployment(params, 2).generate()));
}

TEST(RandomDeployment, UniformMatchesFreeFunctionStream) {
  // The header promise: a deployment's points are identical to the
  // corresponding sim/generators call with the same seed.
  const RandomDeployment deployment(
      RandomDeployment::Params{}.with_nodes(256).with_side(8.0), 77);
  const PointSet direct = rim::sim::uniform_square(256, 8.0, 77);
  EXPECT_EQ(fnv1a_points(deployment.generate()), fnv1a_points(direct));
}

TEST(RandomDeployment, ClustersMatchFreeFunctionStream) {
  const RandomDeployment deployment(
      RandomDeployment::Params{}
          .with_kind(RandomDeployment::Kind::kClusters)
          .with_nodes(256)
          .with_side(8.0)
          .with_clusters(4)
          .with_cluster_stddev(0.5),
      77);
  const PointSet direct = rim::sim::gaussian_clusters(256, 4, 8.0, 0.5, 77);
  EXPECT_EQ(fnv1a_points(deployment.generate()), fnv1a_points(direct));
}

TEST(RandomDeployment, UniformPointsStayInsideTheSquare) {
  const double side = 5.0;
  const PointSet points =
      RandomDeployment(
          RandomDeployment::Params{}.with_nodes(2000).with_side(side), 9)
          .generate();
  for (const auto& p : points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, side);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, side);
  }
}

// Cross-platform determinism pins: golden FNV-1a checksums of the raw
// coordinate bit patterns. E23's seed-97 deployments are replayable only
// while these hold.
TEST(RandomDeployment, GoldenChecksumUniform) {
  const RandomDeployment deployment(
      RandomDeployment::Params{}.with_nodes(512).with_side(6.4), 97);
  EXPECT_EQ(fnv1a_points(deployment.generate()), 0x0bcfc648059cd832ull);
}

TEST(RandomDeployment, GoldenChecksumClusters) {
  const RandomDeployment deployment(
      RandomDeployment::Params{}
          .with_kind(RandomDeployment::Kind::kClusters)
          .with_nodes(512)
          .with_side(6.4)
          .with_clusters(8)
          .with_cluster_stddev(0.7),
      97);
  EXPECT_EQ(fnv1a_points(deployment.generate()), 0x9a3341f1c5f7a2c6ull);
}

TEST(RandomDeployment, EntropySeedDrawsDistinctValues) {
  // Two draws colliding has probability ~2^-64; a failure here means the
  // audited door is returning a constant, not that we got unlucky.
  EXPECT_NE(RandomDeployment::entropy_seed(), RandomDeployment::entropy_seed());
}

TEST(RandomDeployment, AccessorsEchoConstruction) {
  const RandomDeployment::Params params =
      RandomDeployment::Params{}
          .with_kind(RandomDeployment::Kind::kClusters)
          .with_nodes(10)
          .with_side(2.0)
          .with_clusters(3)
          .with_cluster_stddev(0.25);
  const RandomDeployment deployment(params, 42);
  EXPECT_EQ(deployment.seed(), 42u);
  EXPECT_EQ(deployment.params().kind, RandomDeployment::Kind::kClusters);
  EXPECT_EQ(deployment.params().nodes, 10u);
  EXPECT_EQ(deployment.params().side, 2.0);
  EXPECT_EQ(deployment.params().clusters, 3u);
  EXPECT_EQ(deployment.params().cluster_stddev, 0.25);
}

}  // namespace
