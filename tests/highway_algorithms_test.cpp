#include <gtest/gtest.h>

#include <cmath>

#include "rim/graph/connectivity.hpp"
#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/critical.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/sim/generators.hpp"

namespace rim::highway {
namespace {

class AExpOnChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AExpOnChain, ConnectedAndWithinTheorem51Bound) {
  const std::size_t n = GetParam();
  const auto chain = exponential_chain(n);
  const AExpResult result = a_exp(chain);
  EXPECT_TRUE(graph::is_connected(result.topology));
  EXPECT_TRUE(graph::is_forest(result.topology));
  // Reported interference matches a from-scratch evaluation.
  EXPECT_EQ(result.interference, graph_interference_1d(chain, result.topology));
  // Theorem 5.1: I(G_exp) in O(sqrt n); the proof's exact counting gives
  // I <= (1 + sqrt(8n-15))/2.
  EXPECT_LE(result.interference, aexp_upper_bound(n)) << "n=" << n;
  // ... and the Theorem 5.2 lower bound holds for any topology.
  EXPECT_GE(result.interference, exponential_chain_lower_bound(n)) << "n=" << n;
}

TEST_P(AExpOnChain, HubStructureMatchesTheorem51Proof) {
  // "Each hub, not taking into account the first two, is connected to one
  // more node to its right than its predecessor hub": hub-to-hub gaps grow
  // (essentially) by one — 1, 1, 2, 3, 4, ... Boundary effects occasionally
  // hold a gap for one extra step or stretch the final gap, so we assert
  // the proof-relevant structure: gaps are non-decreasing past the first
  // two and grow by at most 2, which forces #hubs = O(sqrt n).
  const std::size_t n = GetParam();
  const AExpResult result = a_exp(exponential_chain(n));
  const auto& hubs = result.hubs;
  ASSERT_GE(hubs.size(), 1u);
  EXPECT_EQ(hubs[0], 0u);
  for (std::size_t k = 2; k + 1 < hubs.size(); ++k) {
    const std::uint32_t prev = hubs[k] - hubs[k - 1];
    const std::uint32_t next = hubs[k + 1] - hubs[k];
    EXPECT_GE(next, prev) << "hub " << k << " of n=" << n;
    EXPECT_LE(next, prev + 2) << "hub " << k << " of n=" << n;
  }
  // Hub count is what drives I(G_exp): it must obey the O(sqrt n) budget.
  EXPECT_LE(hubs.size(), static_cast<std::size_t>(aexp_upper_bound(n)) + 1)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, AExpOnChain,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u, 32u, 64u, 128u,
                                           256u, 512u, 1024u));

TEST(AExp, BeatsLinearChainAsymptotically) {
  const auto chain = exponential_chain(256);
  const AExpResult aexp = a_exp(chain);
  const std::uint32_t linear =
      graph_interference_1d(chain, linear_chain(chain, 1.0));
  EXPECT_EQ(linear, 254u);
  EXPECT_LT(aexp.interference, linear / 5);
}

TEST(AExp, TinyInstances) {
  const auto two = exponential_chain(2);
  const AExpResult r2 = a_exp(two);
  EXPECT_EQ(r2.topology.edge_count(), 1u);
  EXPECT_EQ(r2.interference, 1u);
}

TEST(AExp, WorksOnPerturbedChains) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto inst = sim::perturbed_exponential_chain(64, 0.3, seed);
    const AExpResult result = a_exp(inst);
    EXPECT_TRUE(graph::is_connected(result.topology)) << seed;
    // Shape check: still O(sqrt n)-ish, generously bounded.
    EXPECT_LE(result.interference, 4u * aexp_upper_bound(64)) << seed;
  }
}

class AGenOnRandomHighway
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, std::uint64_t>> {
};

TEST_P(AGenOnRandomHighway, PreservesConnectivityAndMeetsTheorem54) {
  const auto [n, length, seed] = GetParam();
  const auto inst = sim::uniform_highway(n, length, seed);
  const AGenResult result = a_gen(inst, 1.0);
  EXPECT_TRUE(graph::preserves_connectivity(inst.udg(1.0), result.topology));
  const std::uint32_t interference =
      graph_interference_1d(inst, result.topology);
  // Theorem 5.4: O(sqrt Δ); the proof's constants give <= ~3 * (regular
  // nodes per interval + hubs per segment) per segment and three adjacent
  // segments. 12 * (sqrt Δ + 2) is a comfortably safe concrete ceiling.
  const double bound = 12.0 * (std::sqrt(static_cast<double>(result.delta)) + 2.0);
  EXPECT_LE(static_cast<double>(interference), bound)
      << "n=" << n << " len=" << length << " seed=" << seed
      << " delta=" << result.delta;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AGenOnRandomHighway,
    ::testing::Combine(::testing::Values(std::size_t{50}, std::size_t{200},
                                         std::size_t{800}),
                       ::testing::Values(5.0, 20.0),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AGen, HubSpacingDefaultsToCeilSqrtDelta) {
  const auto inst = sim::uniform_highway(300, 6.0, 9);
  const AGenResult result = a_gen(inst, 1.0);
  EXPECT_EQ(result.hub_spacing,
            static_cast<std::size_t>(
                std::ceil(std::sqrt(static_cast<double>(result.delta)))));
}

TEST(AGen, SpacingOverrideRespected) {
  const auto inst = sim::uniform_highway(100, 4.0, 10);
  const AGenResult result = a_gen(inst, 1.0, 5);
  EXPECT_EQ(result.hub_spacing, 5u);
}

TEST(AGen, SegmentsOfUnitLength) {
  // 3 well-separated unit segments, still within radius of each other.
  const auto inst = HighwayInstance::from_positions(
      {0.0, 0.2, 0.4, 1.1, 1.3, 2.2, 2.4, 2.6});
  const AGenResult result = a_gen(inst, 1.0);
  EXPECT_EQ(result.segment_count, 3u);
  EXPECT_TRUE(graph::is_connected(result.topology));
  // Boundary stitches exist.
  EXPECT_TRUE(result.topology.has_edge(2, 3));
  EXPECT_TRUE(result.topology.has_edge(4, 5));
}

TEST(AGen, DisconnectedUdgStaysDisconnected) {
  const auto inst = HighwayInstance::from_positions({0.0, 0.5, 5.0, 5.5});
  const AGenResult result = a_gen(inst, 1.0);
  EXPECT_TRUE(graph::preserves_connectivity(inst.udg(1.0), result.topology));
  EXPECT_FALSE(graph::is_connected(result.topology));
}

TEST(AGen, RegularNodesConnectToNearestHubOnly) {
  // Regular node degree is exactly 1 (its hub); hubs can be busier.
  const auto inst = sim::uniform_highway(200, 3.0, 11);
  const AGenResult result = a_gen(inst, 1.0);
  std::vector<bool> is_hub(inst.size(), false);
  for (NodeId h : result.hubs) is_hub[h] = true;
  for (NodeId v = 0; v < inst.size(); ++v) {
    if (!is_hub[v]) {
      EXPECT_EQ(result.topology.degree(v), 1u) << "regular node " << v;
      const NodeId hub = result.topology.neighbors(v)[0];
      EXPECT_TRUE(is_hub[hub]);
    }
  }
}

TEST(AGen, EmptyAndSingleton) {
  const AGenResult empty = a_gen(HighwayInstance::from_positions({}), 1.0);
  EXPECT_EQ(empty.topology.node_count(), 0u);
  const AGenResult one = a_gen(HighwayInstance::from_positions({3.0}), 1.0);
  EXPECT_EQ(one.topology.node_count(), 1u);
  EXPECT_EQ(one.topology.edge_count(), 0u);
}

TEST(AApx, PicksLinearForUniformInstances) {
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(0.01 * i);
  const auto inst = HighwayInstance::from_positions(std::move(xs));
  const AApxResult result = a_apx(inst, 1.0);
  EXPECT_FALSE(result.used_agen);
  // Uniform: gamma is tiny, delta is large.
  EXPECT_LE(result.gamma, 4u);
  EXPECT_GT(result.delta, 100u);
  EXPECT_TRUE(graph::preserves_connectivity(inst.udg(1.0), result.topology));
}

TEST(AApx, PicksAGenForExponentialChain) {
  const auto chain = exponential_chain(64);
  const AApxResult result = a_apx(chain, 1.0);
  EXPECT_TRUE(result.used_agen);
  EXPECT_EQ(result.gamma, 62u);
  EXPECT_EQ(result.delta, 63u);
}

class AApxApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AApxApproximation, WithinTheorem56RatioOfLemma55Bound) {
  // Measured interference must stay within O(Δ^{1/4}) of the Lemma 5.5
  // lower bound; constant chosen generously but finitely (12).
  for (std::size_t n : {50u, 150u, 400u}) {
    const auto inst = sim::uniform_highway(n, 8.0, GetParam());
    const AApxResult result = a_apx(inst, 1.0);
    EXPECT_TRUE(graph::preserves_connectivity(inst.udg(1.0), result.topology));
    const double measured =
        static_cast<double>(graph_interference_1d(inst, result.topology));
    const double opt_lb = std::max(1.0, lemma55_lower_bound(result.gamma));
    const double ratio_bound =
        12.0 * std::pow(static_cast<double>(std::max<std::size_t>(result.delta, 2)),
                        0.25);
    EXPECT_LE(measured / opt_lb, ratio_bound)
        << "n=" << n << " seed=" << GetParam() << " gamma=" << result.gamma
        << " delta=" << result.delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AApxApproximation,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(AApx, BlockedHighwayUsesLinearBranch) {
  // Dense uniform blocks: high Δ, low gamma — the instance class where
  // A_gen alone would be a sqrt(Δ) mistake (Section 5.3's motivation).
  const auto inst = sim::blocked_highway(10, 40, 0.5, 1.0, 31);
  const AApxResult result = a_apx(inst, 1.0);
  EXPECT_FALSE(result.used_agen);
  const std::uint32_t apx = graph_interference_1d(inst, result.topology);
  const std::uint32_t agen =
      graph_interference_1d(inst, a_gen(inst, 1.0).topology);
  EXPECT_LT(apx, agen);
}

}  // namespace
}  // namespace rim::highway
