#include <gtest/gtest.h>

#include <sstream>

#include "rim/io/csv.hpp"
#include "rim/io/dot.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"
#include "rim/graph/udg.hpp"

namespace rim::io {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("beta").cell(3.14159, 2);
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_EQ(text.rfind("| ", 0), 0u);  // rows start with the separator
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("|-"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, AlignsColumns) {
  Table t({"x"});
  t.row().cell("short");
  t.row().cell("a-much-longer-cell");
  std::ostringstream out;
  t.print(out);
  std::istringstream lines(out.str());
  std::string first;
  std::getline(lines, first);
  std::string rule;
  std::getline(lines, rule);
  std::string row1;
  std::getline(lines, row1);
  std::string row2;
  std::getline(lines, row2);
  EXPECT_EQ(first.size(), row1.size());
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(Table, BooleanCells) {
  Table t({"flag"});
  t.row().cell(true);
  t.row().cell(false);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("yes"), std::string::npos);
  EXPECT_NE(out.str().find("no"), std::string::npos);
}

TEST(Csv, PointsRoundTrip) {
  const auto points = sim::uniform_square(25, 2.0, 3);
  std::stringstream buffer;
  write_points_csv(buffer, points);
  const auto parsed = read_points_csv(buffer);
  ASSERT_EQ(parsed.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].x, points[i].x);
    EXPECT_DOUBLE_EQ(parsed[i].y, points[i].y);
  }
}

TEST(Csv, EdgesRoundTrip) {
  const auto points = sim::uniform_square(30, 1.5, 4);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  std::stringstream buffer;
  write_edges_csv(buffer, udg);
  const graph::Graph parsed = read_edges_csv(buffer, points.size());
  ASSERT_EQ(parsed.edge_count(), udg.edge_count());
  for (graph::Edge e : udg.edges()) EXPECT_TRUE(parsed.has_edge(e.u, e.v));
}

TEST(Csv, RejectsMissingHeader) {
  std::istringstream in("1.0,2.0\n");
  EXPECT_THROW((void)read_points_csv(in), std::runtime_error);
}

TEST(Csv, RejectsMalformedRow) {
  std::istringstream in("x,y\n1.0;2.0\n");
  EXPECT_THROW((void)read_points_csv(in), std::runtime_error);
}

TEST(Csv, RejectsOutOfRangeEdge) {
  std::istringstream in("u,v\n0,9\n");
  EXPECT_THROW((void)read_edges_csv(in, 3), std::runtime_error);
}

TEST(Dot, ContainsNodesEdgesAndPositions) {
  const geom::PointSet points{{0, 0}, {1, 0}, {0, 1}};
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::ostringstream out;
  write_dot(out, g, points);
  const std::string text = out.str();
  EXPECT_NE(text.find("graph topology {"), std::string::npos);
  EXPECT_NE(text.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(text.find("n1 -- n2"), std::string::npos);
  EXPECT_NE(text.find("pos=\"10,0!\""), std::string::npos);
}

TEST(Dot, LabelsCanBeDisabled) {
  const geom::PointSet points{{0, 0}};
  const graph::Graph g(1);
  DotOptions options;
  options.include_labels = false;
  std::ostringstream out;
  write_dot(out, g, points, options);
  EXPECT_EQ(out.str().find("xlabel"), std::string::npos);
}

}  // namespace
}  // namespace rim::io
