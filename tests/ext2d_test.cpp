#include <gtest/gtest.h>

#include <cmath>

#include "rim/core/interference.hpp"
#include "rim/ext2d/grid_hub.hpp"
#include "rim/ext2d/min_interference.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::ext2d {
namespace {

class GridHub2D : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridHub2D, PreservesConnectivityOnUniformAndClustered) {
  const auto uniform = sim::uniform_square(200, 3.0, GetParam());
  const graph::Graph udg_u = graph::build_udg(uniform, 1.0);
  EXPECT_TRUE(graph::preserves_connectivity(
      udg_u, grid_hub_2d(uniform, udg_u).topology));

  const auto clustered = sim::gaussian_clusters(200, 4, 3.0, 0.2, GetParam());
  const graph::Graph udg_c = graph::build_udg(clustered, 1.0);
  EXPECT_TRUE(graph::preserves_connectivity(
      udg_c, grid_hub_2d(clustered, udg_c).topology));
}

TEST_P(GridHub2D, EdgesAreUdgEdges) {
  const auto points = sim::uniform_square(150, 2.5, GetParam());
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const GridHubResult result = grid_hub_2d(points, udg);
  for (graph::Edge e : result.topology.edges()) {
    EXPECT_TRUE(udg.has_edge(e.u, e.v)) << e.u << "-" << e.v;
  }
}

TEST_P(GridHub2D, InterferenceScalesLikeSqrtDelta) {
  // Empirical O(sqrt Δ) shape with a generous constant: interference at
  // most 16 * (sqrt Δ + 2) on dense deployments.
  const auto points = sim::uniform_square(600, 3.0, GetParam());
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const GridHubResult result = grid_hub_2d(points, udg);
  const std::uint32_t interference =
      core::graph_interference(result.topology, points);
  const double bound =
      16.0 * (std::sqrt(static_cast<double>(result.delta)) + 2.0);
  EXPECT_LE(static_cast<double>(interference), bound)
      << "delta = " << result.delta;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridHub2D, ::testing::Values(1u, 2u, 3u, 4u));

TEST(GridHub2D, BeatsMstOnTheTwoChainsInstance) {
  // The Theorem 4.1 instance in the plane: the MST contains the NNF and
  // pays Θ(n); the hub construction pays O(sqrt Δ) — a genuine 2-D win for
  // the paper's future-work direction.
  const auto measure = [](std::size_t m) {
    const sim::TwoChainInstance inst = sim::two_exponential_chains(m);
    const graph::Graph udg = graph::build_udg(inst.points, 1.0);
    const double hub = core::graph_interference(
        grid_hub_2d(inst.points, udg).topology, inst.points);
    const double mst = core::graph_interference(
        topology::mst_topology(inst.points, udg), inst.points);
    return std::pair{hub, mst};
  };
  const auto [hub40, mst40] = measure(40);
  EXPECT_GE(mst40, 38.0);
  EXPECT_LT(hub40, mst40);
  // The gap widens with size: Θ(n) vs O(sqrt Δ).
  const auto [hub120, mst120] = measure(120);
  EXPECT_LT(hub120 / mst120, 0.75 * hub40 / mst40);
}

TEST(GridHub2D, SpacingOverrideAndMetadata) {
  const auto points = sim::uniform_square(100, 2.0, 5);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const GridHubResult result = grid_hub_2d(points, udg, 1.0, 7);
  EXPECT_EQ(result.hub_spacing, 7u);
  EXPECT_GT(result.occupied_cells, 0u);
  EXPECT_FALSE(result.hubs.empty());
  const GridHubResult def = grid_hub_2d(points, udg);
  EXPECT_EQ(def.hub_spacing,
            static_cast<std::size_t>(
                std::ceil(std::sqrt(static_cast<double>(def.delta)))));
}

TEST(GridHub2D, EmptyAndSingleton) {
  const geom::PointSet empty;
  const graph::Graph udg0 = graph::build_udg(empty, 1.0);
  EXPECT_EQ(grid_hub_2d(empty, udg0).topology.node_count(), 0u);
  const geom::PointSet one{{0.5, 0.5}};
  const graph::Graph udg1 = graph::build_udg(one, 1.0);
  const GridHubResult r = grid_hub_2d(one, udg1);
  EXPECT_EQ(r.topology.edge_count(), 0u);
  EXPECT_EQ(r.hubs.size(), 1u);
}

TEST(GridHub2D, DisconnectedComponentsStayDisconnected) {
  geom::PointSet points = sim::uniform_square(40, 1.0, 6);
  for (const geom::Vec2& p : sim::uniform_square(40, 1.0, 7)) {
    points.push_back({p.x + 20.0, p.y});
  }
  const graph::Graph udg = graph::build_udg(points, 1.0);
  ASSERT_GT(graph::component_count(udg), 1u);
  EXPECT_TRUE(
      graph::preserves_connectivity(udg, grid_hub_2d(points, udg).topology));
}

TEST(MinInterference2D, ImprovesOrMatchesBothSeeds) {
  const auto points = sim::uniform_square(60, 1.5, 8);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const MinInterferenceResult result = min_interference_2d(points, udg, 2);
  EXPECT_TRUE(graph::preserves_connectivity(udg, result.tree));
  EXPECT_TRUE(graph::is_forest(result.tree));
  const std::uint32_t mst_i = core::graph_interference(
      topology::mst_topology(points, udg), points);
  EXPECT_LE(result.interference, mst_i);
  EXPECT_EQ(core::graph_interference(result.tree, points), result.interference);
}

TEST(MinInterference2D, ReportsWinningSeed) {
  const auto points = sim::uniform_square(40, 1.2, 9);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const MinInterferenceResult result = min_interference_2d(points, udg, 1);
  EXPECT_TRUE(std::string(result.seed_name) == "mst" ||
              std::string(result.seed_name) == "grid_hub");
}

}  // namespace
}  // namespace rim::ext2d
