#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/critical.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/registry.hpp"

/// Property-based suites: model invariants checked over randomized families
/// of instances (seed-parameterized rather than example-based).

namespace rim {
namespace {

class ModelProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  geom::PointSet points_ = sim::uniform_square(90, 2.5, GetParam());
  graph::Graph udg_ = graph::build_udg(points_, 1.0);
};

TEST_P(ModelProperties, InterferenceSandwichedBetweenDegreeAndDelta) {
  for (const auto& algorithm : topology::all_algorithms()) {
    const graph::Graph topo = algorithm.build(points_, udg_);
    const core::InterferenceSummary s = core::Assessor{}.assess(topo, points_);
    EXPECT_LE(s.max, udg_.max_degree()) << algorithm.name;
    std::size_t max_degree = topo.max_degree();
    EXPECT_GE(s.max, max_degree) << algorithm.name;
  }
}

TEST_P(ModelProperties, TotalInterferenceEqualsTotalCoverage) {
  // Sum of I(v) == sum over transmitters of (covered nodes - 1): counting
  // the same bipartite incidences from both sides.
  const graph::Graph topo =
      topology::find_algorithm("mst")->build(points_, udg_);
  const core::InterferenceSummary s = core::Assessor{}.assess(topo, points_);
  const auto radii2 = core::transmission_radii_squared(topo, points_);
  std::uint64_t coverage = 0;
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (radii2[u] <= 0.0) continue;
    for (NodeId v = 0; v < points_.size(); ++v) {
      if (v != u && geom::dist2(points_[u], points_[v]) <= radii2[u]) {
        ++coverage;
      }
    }
  }
  EXPECT_EQ(s.total, coverage);
}

TEST_P(ModelProperties, InterferenceInvariantUnderTranslation) {
  const graph::Graph topo =
      topology::find_algorithm("gabriel")->build(points_, udg_);
  const auto base = core::Assessor{}.assess(topo, points_);
  geom::PointSet shifted = points_;
  for (auto& p : shifted) p = p + geom::Vec2{13.7, -4.2};
  const auto moved = core::Assessor{}.assess(topo, shifted);
  EXPECT_EQ(base.per_node, moved.per_node);
}

TEST_P(ModelProperties, InterferenceInvariantUnderNodeRelabeling) {
  // Reverse the node order: interference values must permute accordingly.
  const std::size_t n = points_.size();
  geom::PointSet reversed(points_.rbegin(), points_.rend());
  const graph::Graph udg_rev = graph::build_udg(reversed, 1.0);
  const auto topo = topology::find_algorithm("mst")->build(points_, udg_);
  graph::Graph topo_rev(n);
  for (graph::Edge e : topo.edges()) {
    topo_rev.add_edge(static_cast<NodeId>(n - 1 - e.u),
                      static_cast<NodeId>(n - 1 - e.v));
  }
  const auto a = core::Assessor{}.assess(topo, points_);
  const auto b = core::Assessor{}.assess(topo_rev, reversed);
  EXPECT_EQ(a.max, b.max);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(a.per_node[v], b.per_node[n - 1 - v]);
  }
}

TEST_P(ModelProperties, RemovalThenSameAdditionRestoresInterference) {
  const graph::Graph topo =
      topology::find_algorithm("mst")->build(points_, udg_);
  const auto base = core::Assessor{}.assess(topo, points_);
  // Remove the last node, then conceptually re-add it: the removal impact
  // must be consistent with the addition impact measured on the reduced
  // network (bookkeeping-only check, kIsolated policy both ways).
  const NodeId victim = static_cast<NodeId>(points_.size() - 1);
  const auto removal = core::Assessor{}.assess_removal(points_, topo, victim);
  EXPECT_EQ(removal.receiver_before, base.max);
  EXPECT_LE(removal.receiver_after, removal.receiver_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperties,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u, 106u));

class HighwayProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HighwayProperties, AllHighwayAlgorithmsPreserveConnectivity) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 20 + rng.next_below(200);
    const double length = 1.0 + rng.uniform(0.0, 15.0);
    const auto inst =
        sim::uniform_highway(n, length, GetParam() * 1000 + trial);
    const graph::Graph udg = inst.udg(1.0);
    EXPECT_TRUE(graph::preserves_connectivity(udg, highway::linear_chain(inst, 1.0)));
    EXPECT_TRUE(graph::preserves_connectivity(
        udg, highway::a_gen(inst, 1.0).topology));
    EXPECT_TRUE(graph::preserves_connectivity(
        udg, highway::a_apx(inst, 1.0).topology));
  }
}

TEST_P(HighwayProperties, GammaLowerBoundsLinearChainInterference) {
  const auto inst = sim::uniform_highway(150, 9.0, GetParam());
  const std::uint32_t g = highway::gamma(inst, 1.0);
  const std::uint32_t linear =
      highway::graph_interference_1d(inst, highway::linear_chain(inst, 1.0));
  EXPECT_EQ(g, linear);  // by Definition 5.2 they are the same quantity
}

TEST_P(HighwayProperties, OneDimensionalFastPathMatchesGenericForAGen) {
  const auto inst = sim::uniform_highway(120, 6.0, GetParam());
  const auto result = highway::a_gen(inst, 1.0);
  const auto points = inst.to_points();
  EXPECT_EQ(highway::graph_interference_1d(inst, result.topology),
            core::graph_interference(result.topology, points));
}

TEST_P(HighwayProperties, AExpInterferenceMonotoneInN) {
  // Along the exponential chain family, A_exp interference never decreases
  // with n (hub counting argument).
  std::uint32_t last = 0;
  for (std::size_t n = 2; n <= 128; n += 7) {
    const auto result = highway::a_exp(highway::exponential_chain(n));
    EXPECT_GE(result.interference + 1u, last) << n;  // allow equal, never -2
    last = std::max(last, result.interference);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HighwayProperties,
                         ::testing::Values(7u, 8u, 9u, 10u));

class RobustnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RobustnessSweep, ReceiverModelAdditionBoundHoldsOnAdversarialSpots) {
  // Try adding nodes at adversarial locations (far corners, on top of
  // existing nodes, dead center): the +2 bound must hold everywhere.
  const auto points = sim::uniform_square(60, 2.0, GetParam());
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph topo = topology::find_algorithm("mst")->build(points, udg);
  const geom::PointSet spots{
      {0.0, 0.0},  {2.0, 2.0},   {1.0, 1.0},       points[0],
      {2.9, 1.0},  {-0.9, -0.9}, {points[5].x, points[5].y + 1e-9},
  };
  for (const geom::Vec2& spot : spots) {
    const auto impact = core::Assessor{}.assess_addition(
        points, topo, spot, core::AttachPolicy::kNearestNeighbor);
    EXPECT_LE(impact.receiver_max_node_increase, 2u)
        << "(" << spot.x << "," << spot.y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessSweep,
                         ::testing::Values(201u, 202u, 203u, 204u));

}  // namespace
}  // namespace rim
