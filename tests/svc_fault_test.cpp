#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/sim/fault.hpp"
#include "rim/sim/rng.hpp"
#include "rim/sim/workload.hpp"
#include "rim/svc/client.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

#include "svc_test_util.hpp"

// Fault injection over the wire: a batch is killed mid-application inside
// a session (sim::FaultInjector via apply_batch_with_faults) and recovered
// by snapshot-restore-replay — the session's end state must be
// bit-identical to a never-faulted twin. Reuses the same fault kinds the
// robustness suite (fault_test.cpp) exercises engine-side.

namespace rim::svc {
namespace {

using core::Mutation;

ServiceConfig fault_config() {
  ServiceConfig config;
  config.batch_pool_threads = 2;
  config.enable_fault_injection = true;
  return config;
}

std::vector<Mutation> seed_batch() {
  return {
      Mutation::add_node({0.0, 0.0}), Mutation::add_node({1.0, 0.0}),
      Mutation::add_node({0.5, 0.8}), Mutation::add_node({2.25, 0.5}),
      Mutation::add_edge(0, 1),       Mutation::add_edge(1, 2),
      Mutation::add_edge(0, 2),       Mutation::add_edge(1, 3),
  };
}

/// Send apply_batch with a fault field; returns the parsed result document.
bool apply_batch_with_wire_fault(Client& client, std::uint64_t session,
                                 const std::vector<Mutation>& batch,
                                 const char* kind, std::size_t index,
                                 bool recover, io::Json& result) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  io::JsonArray mutations;
  for (const Mutation& m : batch) mutations.push_back(mutation_to_json(m));
  params["batch"] = io::Json(std::move(mutations));
  io::JsonObject fault;
  fault["kind"] = io::Json(kind);
  fault["index"] = io::Json(index);
  params["fault"] = io::Json(std::move(fault));
  params["recover"] = io::Json(recover);
  return ok(client.try_call(cmd::kApplyBatch, std::move(params)), result);
}

TEST(SvcFault, CrashMidBatchRecoversToFaultFreeState) {
  Service service(fault_config());
  LoopbackTransport transport(service);
  Client client(transport);

  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  core::BatchResult seeded;
  ASSERT_TRUE(ok(client.try_apply_batch(session, seed_batch()), seeded));

  core::Scenario twin;
  (void)twin.apply_batch(seed_batch(), nullptr);

  sim::Rng rng(11);
  sim::WorkloadConfig workload;
  workload.batch_size = 32;
  for (std::size_t round = 0; round < 4; ++round) {
    const std::vector<Mutation> batch =
        sim::make_churn_batch(rng, twin.node_count(), workload);
    io::Json result;
    ASSERT_TRUE(apply_batch_with_wire_fault(
        client, session, batch, "crash_mid_batch",
        round % batch.size(), /*recover=*/true, result))
        << client.error();
    EXPECT_TRUE(result.find("fault_fired")->as_bool(false)) << round;
    EXPECT_TRUE(result.find("restored")->as_bool(false)) << round;

    (void)twin.apply_batch(batch, nullptr);

    // End state bit-identical to the never-faulted twin. Refresh both
    // interference caches first so the snapshots capture the same state.
    io::Json refresh;
    ASSERT_TRUE(ok(client.try_query_interference(session), refresh));
    (void)twin.interference();
    io::Json wire_doc;
    ASSERT_TRUE(ok(client.try_snapshot(session), wire_doc));
    EXPECT_EQ(wire_doc.dump(), twin.snapshot().to_json().dump())
        << "round " << round;
  }
}

TEST(SvcFault, PoisonFaultsRecoverToo) {
  Service service(fault_config());
  LoopbackTransport transport(service);
  Client client(transport);

  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  core::BatchResult seeded;
  ASSERT_TRUE(ok(client.try_apply_batch(session, seed_batch()), seeded));
  core::Scenario twin;
  (void)twin.apply_batch(seed_batch(), nullptr);

  sim::Rng rng(29);
  sim::WorkloadConfig workload;
  workload.batch_size = 24;
  for (const char* kind : {"poison_disk_task", "poison_recount"}) {
    const std::vector<Mutation> batch =
        sim::make_churn_batch(rng, twin.node_count(), workload);
    io::Json result;
    ASSERT_TRUE(apply_batch_with_wire_fault(client, session, batch, kind, 1,
                                            /*recover=*/true, result))
        << client.error();
    (void)twin.apply_batch(batch, nullptr);
    io::Json refresh;
    ASSERT_TRUE(ok(client.try_query_interference(session), refresh));
    (void)twin.interference();
    io::Json wire_doc;
    ASSERT_TRUE(ok(client.try_snapshot(session), wire_doc));
    EXPECT_EQ(wire_doc.dump(), twin.snapshot().to_json().dump()) << kind;
  }
}

TEST(SvcFault, UnrecoveredCrashReportsAbort) {
  Service service(fault_config());
  LoopbackTransport transport(service);
  Client client(transport);

  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  core::BatchResult seeded;
  ASSERT_TRUE(ok(client.try_apply_batch(session, seed_batch()), seeded));

  const std::vector<Mutation> batch = {
      Mutation::add_node({3.0, 3.0}),
      Mutation::add_edge(3, 4),
      Mutation::add_edge(2, 4),
  };
  io::Json result;
  ASSERT_TRUE(apply_batch_with_wire_fault(client, session, batch,
                                          "crash_mid_batch", 1,
                                          /*recover=*/false, result))
      << client.error();
  EXPECT_TRUE(result.find("fault_fired")->as_bool(false));
  EXPECT_FALSE(result.find("restored")->as_bool(true));
  EXPECT_TRUE(result.find("aborted")->as_bool(false));
  EXPECT_EQ(result.find("abort_index")->as_number(), 1.0);
}

TEST(SvcFault, TraceFaultsRewriteTheBatch) {
  Service service(fault_config());
  LoopbackTransport transport(service);
  Client client(transport);

  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));
  core::BatchResult seeded;
  ASSERT_TRUE(ok(client.try_apply_batch(session, seed_batch()), seeded));

  // Dropping mutation 0 of a one-element batch applies nothing.
  const std::vector<Mutation> batch = {Mutation::add_node({4.0, 4.0})};
  io::Json result;
  ASSERT_TRUE(apply_batch_with_wire_fault(client, session, batch,
                                          "drop_mutation", 0,
                                          /*recover=*/true, result))
      << client.error();
  EXPECT_TRUE(result.find("fault_fired")->as_bool(false));
  EXPECT_FALSE(result.find("restored")->as_bool(true));
  EXPECT_EQ(result.find("applied")->as_number(1.0), 0.0);
  io::Json stats;
  ASSERT_TRUE(ok(client.try_session_stats(session), stats));
  EXPECT_EQ(stats.find("nodes")->as_number(), 4.0);
}

TEST(SvcFault, BadFaultFieldsAreBadRequests) {
  Service service(fault_config());
  LoopbackTransport transport(service);
  Client client(transport);
  std::uint64_t session = 0;
  ASSERT_TRUE(ok(client.try_create_session(), session));

  io::JsonObject params;
  params["session"] = io::Json(session);
  params["batch"] = io::Json(io::JsonArray{});
  io::JsonObject fault;
  fault["kind"] = io::Json("segfault");  // no such fault kind
  fault["index"] = io::Json(0);
  params["fault"] = io::Json(std::move(fault));
  io::Json result;
  EXPECT_FALSE(ok(client.try_call(cmd::kApplyBatch, std::move(params)), result));
  EXPECT_EQ(client.error_code(), code::kBadRequest);
}

}  // namespace
}  // namespace rim::svc
