#include "rim/core/sinr.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/node_soa.hpp"
#include "rim/core/radii.hpp"
#include "rim/graph/graph.hpp"
#include "rim/sim/random_deployment.hpp"
#include "rim/simd/simd.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"

// The SINR comparator (DESIGN.md §12). The load-bearing contracts:
//  * SIMD and scalar twins are bit-identical within a strategy — same
//    power bit patterns, same checksum, same significant counts;
//  * the significant-interferer counts are strategy-invariant integers
//    (brute gather and grid scatter see identical per-pair contributions);
//  * eligibility edges behave: coincident nodes drop out, radius-0 nodes
//    do not transmit, the cutoff boundary is inclusive, and denormal
//    distances stay deterministic (both twins agree even when the
//    contribution overflows).

namespace {

using rim::NodeId;
using rim::core::EvalOptions;
using rim::core::Model;
using rim::core::NodeSoA;
using rim::core::SinrAssessor;
using rim::core::SinrOptions;
using rim::core::SinrSummary;
using rim::core::Strategy;

NodeSoA deployment_store(std::size_t n, std::uint64_t seed) {
  // A seeded uniform deployment with NNF-derived radii — the same node
  // family E23 runs, scaled down.
  const rim::geom::PointSet points =
      rim::sim::RandomDeployment(
          rim::sim::RandomDeployment::Params{}.with_nodes(n).with_side(
              std::sqrt(static_cast<double>(n) / 12.5)),
          seed)
          .generate();
  const rim::graph::Graph forest = rim::topology::nearest_neighbor_forest(points);
  const std::vector<double> radii2 =
      rim::core::transmission_radii_squared(forest, points);
  NodeSoA nodes;
  nodes.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    nodes.insert(static_cast<NodeId>(v), points[v], radii2[v]);
  }
  return nodes;
}

void expect_bit_identical(const SinrSummary& a, const SinrSummary& b) {
  ASSERT_EQ(a.power.size(), b.power.size());
  for (std::size_t i = 0; i < a.power.size(); ++i) {
    EXPECT_EQ(a.power[i], b.power[i]) << "power diverged at node " << i;
  }
  EXPECT_EQ(a.power_checksum, b.power_checksum);
  EXPECT_EQ(a.per_node, b.per_node);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.total, b.total);
}

// --- The property pair: SIMD vs scalar twins on randomized deployments. ---

TEST(SinrAssessor, SimdScalarBitIdenticalAcrossSeedsBrute) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 97ull}) {
    const NodeSoA nodes = deployment_store(257, seed);  // odd n => SIMD tail
    const EvalOptions options = EvalOptions{}.with_strategy(Strategy::kBrute);
    const SinrAssessor assessor(options);
    expect_bit_identical(assessor.assess(nodes), assessor.assess_scalar(nodes));
  }
}

TEST(SinrAssessor, SimdScalarBitIdenticalAcrossSeedsGrid) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 97ull}) {
    const NodeSoA nodes = deployment_store(257, seed);
    const EvalOptions options = EvalOptions{}.with_strategy(Strategy::kGrid);
    const SinrAssessor assessor(options);
    expect_bit_identical(assessor.assess(nodes), assessor.assess_scalar(nodes));
  }
}

TEST(SinrAssessor, SimdScalarBitIdenticalUnderHigherAlpha) {
  // alpha = 6 (half_alpha = 3): the ipow ladder beyond the squaring case.
  const NodeSoA nodes = deployment_store(128, 5);
  const EvalOptions options =
      EvalOptions{}.with_strategy(Strategy::kBrute).with_sinr(
          SinrOptions{}.with_half_alpha(3));
  const SinrAssessor assessor(options);
  expect_bit_identical(assessor.assess(nodes), assessor.assess_scalar(nodes));
}

// --- Strategy invariance of the integer measure. ---

TEST(SinrAssessor, SignificantCountsIdenticalBruteVsGrid) {
  // Per-pair contributions are bit-identical across strategies (the grid
  // scatter emits kappa*w^h with the same single rounding the gather
  // uses), so the >= sig comparisons agree pair by pair even though the
  // power sums accumulate in different orders.
  for (const std::uint64_t seed : {7ull, 42ull}) {
    const NodeSoA nodes = deployment_store(300, seed);
    const SinrAssessor assessor;
    const SinrSummary brute =
        assessor.assess(nodes, EvalOptions{}.with_strategy(Strategy::kBrute));
    const SinrSummary grid =
        assessor.assess(nodes, EvalOptions{}.with_strategy(Strategy::kGrid));
    EXPECT_EQ(brute.per_node, grid.per_node);
    EXPECT_EQ(brute.max, grid.max);
    EXPECT_EQ(brute.total, grid.total);
    // The real-valued power agrees up to accumulation order.
    ASSERT_EQ(brute.power.size(), grid.power.size());
    for (std::size_t i = 0; i < brute.power.size(); ++i) {
      EXPECT_NEAR(brute.power[i], grid.power[i],
                  1e-9 * std::abs(brute.power[i]) +
                      std::numeric_limits<double>::min());
    }
  }
}

TEST(SinrAssessor, ParallelStrategyMatchesGrid) {
  // kParallel resolves to the same serial grid scatter (determinism over
  // parallelism — the accumulation order into each receiver is the
  // transmitter id order either way).
  const NodeSoA nodes = deployment_store(200, 11);
  const SinrAssessor assessor;
  expect_bit_identical(
      assessor.assess(nodes, EvalOptions{}.with_strategy(Strategy::kGrid)),
      assessor.assess(nodes, EvalOptions{}.with_strategy(Strategy::kParallel)));
}

// --- Model plumbing through the Assessor facade. ---

TEST(SinrAssessor, AssessorModelSinrProjectsSignificantCounts) {
  const NodeSoA nodes = deployment_store(150, 13);
  const rim::core::InterferenceSummary via_assessor = rim::core::Assessor{}.assess(
      nodes, Strategy::kGrid, EvalOptions{}.with_model(Model::kSinr));
  const SinrSummary direct = SinrAssessor{}.assess(nodes);
  EXPECT_EQ(via_assessor.per_node, direct.per_node);
  EXPECT_EQ(via_assessor.max, direct.max);
}

TEST(SinrAssessor, TopologyOverloadMatchesNodeSoAPath) {
  const rim::geom::PointSet points =
      rim::sim::RandomDeployment(
          rim::sim::RandomDeployment::Params{}.with_nodes(120).with_side(3.0),
          21)
          .generate();
  const rim::graph::Graph forest = rim::topology::nearest_neighbor_forest(points);
  const std::vector<double> radii2 =
      rim::core::transmission_radii_squared(forest, points);
  NodeSoA nodes;
  for (std::size_t v = 0; v < points.size(); ++v) {
    nodes.insert(static_cast<NodeId>(v), points[v], radii2[v]);
  }
  const SinrAssessor assessor;
  expect_bit_identical(assessor.assess(forest, points), assessor.assess(nodes));
}

// --- Kernel edge cases (simd:: layer, scalar twin as the oracle). ---

struct KernelCase {
  std::vector<double> xs, ys, ws;
};

void expect_kernels_agree(const KernelCase& c, double cx, double cy,
                          double cutoff_factor, double kappa, int half_alpha,
                          double sig) {
  const auto simd = rim::simd::sinr_gather(c.xs.data(), c.ys.data(),
                                           c.ws.data(), c.xs.size(), cx, cy,
                                           cutoff_factor, kappa, half_alpha, sig);
  const auto scalar = rim::simd::sinr_gather_scalar(
      c.xs.data(), c.ys.data(), c.ws.data(), c.xs.size(), cx, cy,
      cutoff_factor, kappa, half_alpha, sig);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(simd.power),
            std::bit_cast<std::uint64_t>(scalar.power));
  EXPECT_EQ(simd.significant, scalar.significant);
}

TEST(SinrKernels, CoincidentNodesAreExcluded) {
  // Three transmitters exactly on the receiver (d2 == 0) and one real one:
  // the coincident lanes must contribute nothing, not inf/NaN.
  const KernelCase c{{5.0, 5.0, 5.0, 6.0}, {5.0, 5.0, 5.0, 5.0},
                     {1.0, 1.0, 1.0, 1.0}};
  const auto acc = rim::simd::sinr_gather_scalar(
      c.xs.data(), c.ys.data(), c.ws.data(), 4, 5.0, 5.0,
      /*cutoff_factor=*/100.0, /*kappa=*/1.0, /*half_alpha=*/2, /*sig=*/0.0);
  EXPECT_TRUE(std::isfinite(acc.power));
  EXPECT_EQ(acc.power, 1.0);  // kappa * 1^2 / 1^2 from the node at distance 1
  EXPECT_EQ(acc.significant, 1u);
  expect_kernels_agree(c, 5.0, 5.0, 100.0, 1.0, 2, 0.0);
}

TEST(SinrKernels, RadiusZeroNodesDoNotTransmit) {
  const KernelCase c{{1.0, 2.0}, {0.0, 0.0}, {0.0, 1.0}};
  const auto acc = rim::simd::sinr_gather_scalar(
      c.xs.data(), c.ys.data(), c.ws.data(), 2, 0.0, 0.0, 100.0, 1.0, 2, 0.0);
  // Only the w=1 node at distance 2 contributes: 1 * 1^2 / (4^2).
  EXPECT_EQ(acc.power, 1.0 / 16.0);
  EXPECT_EQ(acc.significant, 1u);
  expect_kernels_agree(c, 0.0, 0.0, 100.0, 1.0, 2, 0.0);
}

TEST(SinrKernels, CutoffBoundaryIsInclusive) {
  // w = 1, cutoff_factor = 4 => eligible iff d2 <= 4. One node exactly on
  // the boundary (d2 == 4), one just past it.
  const double beyond = std::nextafter(2.0, 3.0);
  const KernelCase c{{2.0, beyond}, {0.0, 0.0}, {1.0, 1.0}};
  const auto acc = rim::simd::sinr_gather_scalar(
      c.xs.data(), c.ys.data(), c.ws.data(), 2, 0.0, 0.0,
      /*cutoff_factor=*/4.0, 1.0, /*half_alpha=*/1, 0.0);
  EXPECT_EQ(acc.power, 1.0 / 4.0);  // boundary node only
  EXPECT_EQ(acc.significant, 1u);
  expect_kernels_agree(c, 0.0, 0.0, 4.0, 1.0, 1, 0.0);
}

TEST(SinrKernels, DenormalDistancesStayDeterministic) {
  // d = 1e-160 => d2 ~ 1e-320 (denormal); d2^2 underflows to zero and the
  // contribution overflows to +inf. Both twins must agree bit-for-bit on
  // that outcome — determinism, not finiteness, is the contract here.
  const KernelCase c{{1e-160, 0.25, -0.25}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  const auto scalar = rim::simd::sinr_gather_scalar(
      c.xs.data(), c.ys.data(), c.ws.data(), 3, 0.0, 0.0, 1e300, 1.0, 2, 0.0);
  EXPECT_TRUE(std::isinf(scalar.power));
  EXPECT_EQ(scalar.significant, 3u);
  expect_kernels_agree(c, 0.0, 0.0, 1e300, 1.0, 2, 0.0);
}

TEST(SinrKernels, ScatterMatchesScalarOnBoundaryAndDenormals) {
  const std::vector<double> xs{2.0, std::nextafter(2.0, 3.0), 1e-160, 0.0, 3.0};
  const std::vector<double> ys{0.0, 0.0, 0.0, 0.0, 4.0};
  std::vector<double> out_simd(xs.size(), -1.0);
  std::vector<double> out_scalar(xs.size(), -1.0);
  rim::simd::sinr_scatter(xs.data(), ys.data(), xs.size(), 0.0, 0.0,
                          /*cutoff2=*/25.0, /*power=*/3.0, /*half_alpha=*/2,
                          out_simd.data());
  rim::simd::sinr_scatter_scalar(xs.data(), ys.data(), xs.size(), 0.0, 0.0,
                                 25.0, 3.0, 2, out_scalar.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out_simd[i]),
              std::bit_cast<std::uint64_t>(out_scalar[i]))
        << "lane " << i;
  }
  EXPECT_EQ(out_scalar[3], 0.0);  // the receiver's own lane (d2 == 0)
  EXPECT_EQ(out_scalar[0], 3.0 / 16.0);
  EXPECT_EQ(out_scalar[4], 3.0 / 625.0);  // d2 = 25 exactly: inclusive
}

// --- Degenerate stores through the assessor. ---

TEST(SinrAssessor, EmptyAndSingletonStores) {
  const SinrAssessor assessor;
  const SinrSummary empty = assessor.assess(NodeSoA{});
  EXPECT_EQ(empty.max, 0u);
  EXPECT_EQ(empty.total, 0u);
  EXPECT_EQ(empty.power.size(), 0u);

  NodeSoA one;
  one.insert(0, {1.0, 1.0}, 4.0);
  const SinrSummary single = assessor.assess(one);
  EXPECT_EQ(single.max, 0u);
  EXPECT_EQ(single.power[0], 0.0);
  expect_bit_identical(single, assessor.assess_scalar(one));
}

TEST(SinrAssessor, AllCoincidentNodes) {
  // Every pair has d2 == 0: nothing is eligible under either strategy.
  NodeSoA nodes;
  for (NodeId v = 0; v < 8; ++v) nodes.insert(v, {2.0, 3.0}, 1.0);
  const SinrAssessor assessor;
  for (const Strategy strategy : {Strategy::kBrute, Strategy::kGrid}) {
    const SinrSummary s =
        assessor.assess(nodes, EvalOptions{}.with_strategy(strategy));
    EXPECT_EQ(s.max, 0u);
    EXPECT_EQ(s.max_power, 0.0);
    EXPECT_EQ(s.total, 0u);
  }
}

}  // namespace
