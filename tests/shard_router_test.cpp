#include <atomic>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rim/shard/hash_ring.hpp"
#include "rim/shard/router.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/transport.hpp"

namespace {

using namespace rim;

/// Loopback transport with a kill switch: when tripped, exchanges fail
/// exactly like a SIGKILLed peer (kConnectionLost), without the backend
/// Service object going away — which is precisely the router's view of a
/// dead shard. `drop_response_once` delivers the request but loses the
/// response, modelling a backend that dies *mid-request* (the torn-command
/// case the exactly-once failover contract is about).
class KillableTransport final : public svc::Transport {
 public:
  KillableTransport(svc::RequestHandler& handler,
                    std::shared_ptr<std::atomic<bool>> killed,
                    std::shared_ptr<std::atomic<int>> drop_responses)
      : inner_(handler),
        killed_(std::move(killed)),
        drop_responses_(std::move(drop_responses)) {}

  [[nodiscard]] svc::TransportStatus roundtrip(
      std::string_view frame, std::string& response_frame,
      std::string& error) override {
    if (killed_->load()) {
      error = "backend killed";
      return svc::TransportStatus::kConnectionLost;
    }
    const svc::TransportStatus status =
        inner_.roundtrip(frame, response_frame, error);
    if (status == svc::TransportStatus::kOk && drop_responses_->load() > 0) {
      drop_responses_->fetch_sub(1);
      response_frame.clear();
      error = "connection reset mid-request";
      return svc::TransportStatus::kConnectionLost;
    }
    return status;
  }

 private:
  svc::LoopbackTransport inner_;
  std::shared_ptr<std::atomic<bool>> killed_;
  std::shared_ptr<std::atomic<int>> drop_responses_;
};

/// N in-process backend Services fronted by one Router over killable
/// loopback transports.
struct Cluster {
  std::vector<std::unique_ptr<svc::Service>> services;
  std::vector<std::shared_ptr<std::atomic<bool>>> killed;
  std::vector<std::shared_ptr<std::atomic<int>>> drop_responses;
  std::unique_ptr<shard::Router> router;

  explicit Cluster(std::size_t backends, std::size_t ship_every = 1) {
    shard::RouterConfig config;
    for (std::size_t i = 0; i < backends; ++i) {
      svc::ServiceConfig service_config;
      service_config.batch_pool_threads = 1;
      services.push_back(std::make_unique<svc::Service>(service_config));
      killed.push_back(std::make_shared<std::atomic<bool>>(false));
      drop_responses.push_back(std::make_shared<std::atomic<int>>(0));
      svc::Service* service = services.back().get();
      auto killed_flag = killed.back();
      auto drop = drop_responses.back();
      config.backends.push_back(
          {"shard-" + std::to_string(i),
           [service, killed_flag, drop]() -> std::unique_ptr<svc::Transport> {
             if (killed_flag->load()) return nullptr;
             return std::make_unique<KillableTransport>(*service, killed_flag,
                                                        drop);
           }});
    }
    config.replication.ship_every = ship_every;
    router = std::make_unique<shard::Router>(std::move(config));
  }

  /// Index of the backend owning wire session \p sid (the ring is a pure
  /// function of the member names, so tests can predict placement).
  [[nodiscard]] std::size_t owner_index(std::uint64_t sid) const {
    shard::HashRing ring(router->config().vnodes);
    for (std::size_t i = 0; i < services.size(); ++i) {
      ring.add("shard-" + std::to_string(i));
    }
    const std::string owner =
        ring.owner(shard::fnv1a_bytes("session:" + std::to_string(sid)));
    return static_cast<std::size_t>(std::stoul(owner.substr(6)));
  }
};

/// Zero the wall-clock timing counters (`*_ns`) before comparing: they are
/// the one part of a response that is a function of the clock, not of the
/// command history, so no two engine instances can agree on them.
std::string scrub_timings(std::string text) {
  static const std::regex kNs("_ns\":[0-9]+");
  return std::regex_replace(text, kNs, "_ns\":0");
}

TEST(ShardRouter, EveryWireCommandIsByteIdenticalToDirectService) {
  svc::ServiceConfig config;
  config.batch_pool_threads = 1;
  svc::Service direct(config);
  Cluster cluster(1);

  // One conversation, replayed verbatim against both surfaces. The two
  // sides allocate the same session ids (both start at 1), so every
  // response — results, error envelopes, echoed ids — must match byte
  // for byte modulo scrubbed timing counters (the ISSUE's
  // routing-transparency contract).
  const std::vector<std::string> conversation = {
      R"({"cmd":"ping","id":7})",
      R"({"cmd":"create_session","id":8})",
      R"({"cmd":"add_node","id":9,"session":1,"x":0.0,"y":0.0})",
      R"({"cmd":"add_node","id":10,"session":1,"x":1.0,"y":0.25})",
      R"({"cmd":"add_node","id":11,"session":1,"x":0.5,"y":0.9})",
      R"({"cmd":"add_edge","id":12,"session":1,"u":0,"v":1})",
      R"({"cmd":"add_edge","id":13,"session":1,"u":1,"v":2})",
      R"({"cmd":"move","id":14,"session":1,"v":2,"x":0.4,"y":0.7})",
      R"({"cmd":"apply_batch","id":15,"session":1,"batch":[)"
      R"({"kind":"add_node","x":2.0,"y":0.1},{"kind":"add_edge","u":2,"v":3}]})",
      R"({"cmd":"assess","id":16,"session":1,"mutations":[)"
      R"({"kind":"add_node","x":0.9,"y":0.9}]})",
      R"({"cmd":"query_interference","id":17,"session":1})",
      R"({"cmd":"query_interference","id":18,"session":1,"v":1})",
      R"({"cmd":"session_stats","id":19,"session":1})",
      R"({"cmd":"snapshot","id":20,"session":1})",
      R"({"cmd":"remove_edge","id":21,"session":1,"u":0,"v":1})",
      R"({"cmd":"remove_node","id":22,"session":1,"v":3})",
      // Error surfaces must match too.
      R"({"cmd":"remove_node","id":23,"session":1,"v":999})",
      R"({"cmd":"move","id":24,"session":1,"v":0})",
      R"({"cmd":"frobnicate","id":25,"session":1})",
      R"({"cmd":"add_node","id":26,"x":3.0,"y":3.0})",
      R"({"cmd":"add_node","id":27,"session":"one","x":3.0,"y":3.0})",
      R"({"cmd":"add_node","id":28,"session":444,"x":3.0,"y":3.0})",
      R"({"id":29})",
      R"([1,2,3])",
      R"({"cmd":"close_session","id":30})",
      R"({"cmd":"close_session","id":31,"session":444})",
      R"({"cmd":"close_session","id":32,"session":1})",
      R"({"cmd":"query_interference","id":33,"session":1})",
  };
  for (const std::string& payload : conversation) {
    EXPECT_EQ(scrub_timings(direct.handle(payload)),
              scrub_timings(cluster.router->handle(payload)))
        << "diverged on: " << payload;
  }
  // Unparseable payloads too (bad_frame).
  EXPECT_EQ(direct.handle("{nope"), cluster.router->handle("{nope"));
}

TEST(ShardRouter, SnapshotRoundtripsThroughRouterByteExact) {
  svc::ServiceConfig config;
  config.batch_pool_threads = 1;
  svc::Service direct(config);
  Cluster cluster(1);
  const std::vector<std::string> setup = {
      R"({"cmd":"create_session","id":1})",
      R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})",
      R"({"cmd":"add_node","id":3,"session":1,"x":0.6,"y":0.0})",
      R"({"cmd":"add_edge","id":4,"session":1,"u":0,"v":1})",
  };
  for (const std::string& payload : setup) {
    ASSERT_EQ(direct.handle(payload), cluster.router->handle(payload));
  }
  const std::string snapshot_response =
      cluster.router->handle(R"({"cmd":"snapshot","id":5,"session":1})");
  // Restore the captured snapshot through the router and re-read it: the
  // document must survive the route bit-identically (checksummed).
  io::Json document;
  std::string error;
  ASSERT_TRUE(io::Json::parse(snapshot_response, document, error)) << error;
  io::JsonObject restore;
  restore["cmd"] = io::Json("restore");
  restore["id"] = io::Json(std::uint64_t{6});
  restore["session"] = io::Json(std::uint64_t{1});
  restore["snapshot"] = *document.find("result")->find("snapshot");
  const std::string restore_payload = io::Json(std::move(restore)).dump();
  EXPECT_EQ(direct.handle(restore_payload),
            cluster.router->handle(restore_payload));
  EXPECT_EQ(direct.handle(R"({"cmd":"snapshot","id":7,"session":1})"),
            cluster.router->handle(R"({"cmd":"snapshot","id":7,"session":1})"));
}

TEST(ShardRouter, ReplicationShipsAtCadenceAndAccountsLag) {
  Cluster cluster(2, /*ship_every=*/2);
  ASSERT_NE(cluster.router->handle(R"({"cmd":"create_session","id":1})")
                .find("\"ok\":true"),
            std::string::npos);
  const std::size_t owner = cluster.owner_index(1);
  const std::size_t peer = 1 - owner;

  // First mutating command: journaled, below the cadence — nothing ships.
  ASSERT_NE(cluster.router
                ->handle(R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_EQ(cluster.router->replicator().counters().shipped.value(), 0u);
  EXPECT_EQ(cluster.services[peer]->replicas().size(), 0u);

  // Second: cadence reached — snapshot ships to the peer shard.
  ASSERT_NE(cluster.router
                ->handle(R"({"cmd":"add_node","id":3,"session":1,"x":1.0,"y":0.0})")
                .find("\"ok\":true"),
            std::string::npos);
  const shard::ReplicatorCounters& counters =
      cluster.router->replicator().counters();
  EXPECT_EQ(counters.shipped.value(), 1u);
  EXPECT_EQ(counters.lag_ns.count(), 1u);
  EXPECT_GT(counters.lag_ns.sum(), 0u);
  EXPECT_EQ(cluster.services[peer]->replicas().size(), 1u);
  EXPECT_EQ(cluster.services[owner]->replicas().size(), 0u);

  // Non-mutating commands never journal or ship.
  ASSERT_NE(cluster.router
                ->handle(R"({"cmd":"query_interference","id":4,"session":1})")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_EQ(counters.shipped.value(), 1u);

  // Close drops the replica at the peer.
  ASSERT_NE(cluster.router->handle(R"({"cmd":"close_session","id":5,"session":1})")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_EQ(cluster.services[peer]->replicas().size(), 0u);
}

TEST(ShardRouter, ReplicationCommandsAreRejectedAtTheFrontDoor) {
  Cluster cluster(2);
  for (const char* cmd : {"replicate_session", "adopt_session",
                          "drop_replica"}) {
    const std::string response = cluster.router->handle(
        std::string(R"({"cmd":")") + cmd + R"(","id":1,"origin":1})");
    EXPECT_NE(response.find("\"code\":\"bad_request\""), std::string::npos)
        << cmd;
  }
}

TEST(ShardRouter, HealthProbesWalkTheBackoffScheduleDeterministically) {
  Cluster cluster(2);
  const shard::BackoffPolicy& policy =
      cluster.router->config().health_backoff;
  ASSERT_EQ(policy.max_attempts, 4u);

  // Healthy sweep keeps both backends up.
  cluster.router->health_sweep(1000);
  EXPECT_EQ(cluster.router->backend_state("shard-0"),
            shard::BackendState::kUp);
  EXPECT_EQ(cluster.router->backend_state("shard-1"),
            shard::BackendState::kUp);

  // Kill shard-0 and probe along the injected clock: each due probe fails
  // and pushes the next deadline out by the deterministic schedule until
  // max_attempts declares the backend down.
  cluster.killed[0]->store(true);
  std::uint64_t now = 2000;
  cluster.router->health_sweep(now);  // failure 1 -> suspect
  EXPECT_EQ(cluster.router->backend_state("shard-0"),
            shard::BackendState::kSuspect);
  EXPECT_EQ(cluster.router->backend_state("shard-1"),
            shard::BackendState::kUp);
  for (std::size_t failure = 1; failure < policy.max_attempts; ++failure) {
    const std::uint64_t deadline = now + policy.delay_ns(failure);
    // Probing before the deadline is a no-op: the schedule gates retries.
    cluster.router->health_sweep(deadline - 1);
    EXPECT_EQ(cluster.router->backend_state("shard-0"),
              shard::BackendState::kSuspect)
        << failure;
    cluster.router->health_sweep(deadline);
    now = deadline;
  }
  EXPECT_EQ(cluster.router->backend_state("shard-0"),
            shard::BackendState::kDown);

  // A restarted backend rejoins on its next due probe.
  cluster.killed[0]->store(false);
  cluster.router->health_sweep(now + policy.delay_ns(policy.max_attempts));
  EXPECT_EQ(cluster.router->backend_state("shard-0"),
            shard::BackendState::kUp);
}

TEST(ShardRouter, CountersAndRegistrySurfaceRouting) {
  Cluster cluster(2);
  ASSERT_NE(cluster.router->handle(R"({"cmd":"create_session","id":1})")
                .find("\"ok\":true"),
            std::string::npos);
  ASSERT_NE(cluster.router
                ->handle(R"({"cmd":"add_node","id":2,"session":1,"x":0.0,"y":0.0})")
                .find("\"ok\":true"),
            std::string::npos);
  const shard::RouterCounters& counters = cluster.router->counters();
  EXPECT_GE(counters.requests.value(), 2u);
  EXPECT_GE(counters.routed.value(), 2u);
  EXPECT_EQ(counters.lost_sessions.value(), 0u);
  EXPECT_EQ(cluster.router->session_count(), 1u);

  const std::string metrics =
      cluster.router->handle(R"({"cmd":"metrics","id":3})");
  EXPECT_NE(metrics.find("\"shard.router\""), std::string::npos);
  EXPECT_NE(metrics.find("\"shard.backend.shard-0\""), std::string::npos);
  EXPECT_NE(metrics.find("\"shard.backend.shard-1\""), std::string::npos);

  const std::string status =
      cluster.router->handle(R"({"cmd":"shard_status","id":4})");
  EXPECT_NE(status.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(status.find("\"state\":\"up\""), std::string::npos);
  EXPECT_NE(status.find("\"sessions\":1"), std::string::npos);
}

}  // namespace
