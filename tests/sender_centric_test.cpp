#include <gtest/gtest.h>

#include "rim/core/sender_centric.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/generators.hpp"

namespace rim::core {
namespace {

TEST(EdgeCoverage, IsolatedPairCoversNothing) {
  const geom::PointSet points{{0, 0}, {1, 0}};
  EXPECT_EQ(edge_coverage(points, {0, 1}), 0u);
}

TEST(EdgeCoverage, ThirdNodeInsideEitherDisk) {
  // w within |uv| of u -> covered.
  const geom::PointSet points{{0, 0}, {1, 0}, {-0.5, 0}};
  EXPECT_EQ(edge_coverage(points, {0, 1}), 1u);
}

TEST(EdgeCoverage, NodeOutsideBothDisks) {
  const geom::PointSet points{{0, 0}, {1, 0}, {3, 0}};
  EXPECT_EQ(edge_coverage(points, {0, 1}), 0u);
}

TEST(EdgeCoverage, BoundaryCounts) {
  // w exactly at distance |uv| from v.
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}};
  EXPECT_EQ(edge_coverage(points, {0, 1}), 1u);
}

TEST(EdgeCoverage, LongEdgeOverClusterCoversEveryone) {
  // The Figure 1 pathology: bridging edge covers the whole cluster.
  geom::PointSet points;
  for (int i = 0; i < 20; ++i) {
    points.push_back({0.01 * i, 0.0});
  }
  points.push_back({1.1, 0.0});  // outlier
  // Edge from the cluster's right edge (node 19 at x=0.19) to the outlier.
  EXPECT_EQ(edge_coverage(points, {19, 20}), 19u);
}

TEST(SenderCentric, SummaryAggregates) {
  const geom::PointSet points{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const SenderCentricSummary s = evaluate_sender_centric(g, points);
  ASSERT_EQ(s.per_edge.size(), 3u);
  // Edge {0,1}: covers node 2 (distance 1 from node 1). Edge {1,2}: covers
  // nodes 0 and 3. Edge {2,3}: covers node 1.
  EXPECT_EQ(s.per_edge[0], 1u);
  EXPECT_EQ(s.per_edge[1], 2u);
  EXPECT_EQ(s.per_edge[2], 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0 / 3.0);
}

TEST(SenderCentric, EmptyTopology) {
  const geom::PointSet points{{0, 0}, {1, 1}};
  const graph::Graph g(2);
  const SenderCentricSummary s = evaluate_sender_centric(g, points);
  EXPECT_EQ(s.max, 0u);
  EXPECT_TRUE(s.per_edge.empty());
}

TEST(SenderCentric, CoverageBoundedByNMinusTwo) {
  const auto points = sim::uniform_square(60, 1.5, 17);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const SenderCentricSummary s = evaluate_sender_centric(udg, points);
  for (std::uint32_t c : s.per_edge) {
    EXPECT_LE(c, points.size() - 2);
  }
}

}  // namespace
}  // namespace rim::core
