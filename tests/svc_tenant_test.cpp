#include <gtest/gtest.h>

#include <cstdint>

#include "rim/svc/client.hpp"
#include "rim/svc/errors.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/token_bucket.hpp"
#include "rim/svc/transport.hpp"

// Per-tenant fair admission: the TokenBucket itself under a synthetic
// clock, and the service-level behavior — a tenant exceeding its rate is
// shed with an explicit "overloaded" envelope while other tenants'
// buckets (and throughput) are untouched.

namespace rim::svc {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

TEST(TokenBucket, BurstThenShedThenRefill) {
  TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/3.0);
  ASSERT_TRUE(bucket.enabled());
  std::uint64_t now = 10 * kSecond;
  // The bucket starts full: the first `burst` acquisitions succeed.
  EXPECT_TRUE(bucket.try_acquire(now));
  EXPECT_TRUE(bucket.try_acquire(now));
  EXPECT_TRUE(bucket.try_acquire(now));
  EXPECT_FALSE(bucket.try_acquire(now));
  // Half a second at 2/s refills one token — exactly one more admit.
  now += kSecond / 2;
  EXPECT_TRUE(bucket.try_acquire(now));
  EXPECT_FALSE(bucket.try_acquire(now));
  // A long idle period refills to the cap, not beyond it.
  now += 1000 * kSecond;
  EXPECT_NEAR(bucket.tokens(now), 3.0, 1e-9);
}

TEST(TokenBucket, StaleClockRefillsNothing) {
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(5 * kSecond));
  // Time moving backwards (cross-thread clock skew) must not mint tokens.
  EXPECT_FALSE(bucket.try_acquire(4 * kSecond));
  EXPECT_FALSE(bucket.try_acquire(5 * kSecond));
  EXPECT_TRUE(bucket.try_acquire(6 * kSecond + kSecond / 100));
}

TEST(TokenBucket, NonPositiveRateDisables) {
  TokenBucket bucket(0.0, 1.0);
  EXPECT_FALSE(bucket.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_acquire(0));
}

TEST(TokenBucket, BurstClampsToAtLeastOne) {
  TokenBucket bucket(1.0, 0.0);
  EXPECT_EQ(bucket.burst(), 1.0);
  EXPECT_TRUE(bucket.try_acquire(kSecond));
  EXPECT_FALSE(bucket.try_acquire(kSecond));
}

TEST(SvcTenant, HogIsShedFairTenantIsNot) {
  ServiceConfig config;
  // A practically-zero refill rate makes the test deterministic: each
  // session gets exactly `burst` admissions, no wall-clock dependence.
  config.limits.tenant_rate_per_s = 1e-9;
  config.limits.tenant_burst = 3.0;
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);

  const SvcResult<std::uint64_t> hog = client.try_create_session();
  const SvcResult<std::uint64_t> fair = client.try_create_session();
  ASSERT_TRUE(hog.has_value());
  ASSERT_TRUE(fair.has_value());

  // The hog burns its whole burst...
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(client.try_add_node(*hog, 0.1 * i, 0.0).has_value());
  }
  // ...then every further command is shed with the typed overloaded code.
  for (int i = 0; i < 5; ++i) {
    const SvcResult<NodeId> shed = client.try_add_node(*hog, 1.0, 1.0);
    ASSERT_FALSE(shed.has_value());
    EXPECT_EQ(shed.error().code, SvcErrorCode::kOverloaded);
    EXPECT_TRUE(shed.error().retryable());
  }
  // The fair tenant's bucket is untouched: its full burst still admits.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(client.try_add_node(*fair, 0.1 * i, 0.5).has_value());
  }

  EXPECT_EQ(service.counters().rejected_tenant.value(), 5u);
  // Global-gate sheds are counted separately from tenant sheds.
  EXPECT_EQ(service.counters().rejected_overloaded.value(), 0u);
}

TEST(SvcTenant, DisabledByDefault) {
  ServiceConfig config;
  Service service(config);
  LoopbackTransport transport(service);
  Client client(transport);
  const SvcResult<std::uint64_t> session = client.try_create_session();
  ASSERT_TRUE(session.has_value());
  // Way past any default burst: nothing is shed when the rate is unset.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(client.try_add_node(*session, 0.01 * i, 0.0).has_value());
  }
  EXPECT_EQ(service.counters().rejected_tenant.value(), 0u);
}

}  // namespace
}  // namespace rim::svc
