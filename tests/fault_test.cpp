#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rim/core/audit.hpp"
#include "rim/core/scenario.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/sim/fault.hpp"
#include "rim/sim/trace.hpp"
#include "rim/sim/workload.hpp"

/// Tests for the fault-injection subsystem: deterministic FaultPlans,
/// crash-abort semantics, and the headline acceptance property —
/// crash-restore-replay equivalence at EVERY fault point of a ~1k-step
/// seeded trace (the recovered end state is bit-identical to the
/// uninjected run's).

namespace rim::sim {
namespace {

using core::Mutation;
using core::Scenario;
using core::Snapshot;

WorkloadConfig trace_config() {
  WorkloadConfig config;
  config.initial_nodes = 64;
  config.batch_size = 32;
  config.seed = 17;
  return config;
}

TEST(FaultPlanTest, GenerationIsDeterministic) {
  const FaultPlan a = FaultPlan::generate(42, 200, 0.3);
  const FaultPlan b = FaultPlan::generate(42, 200, 0.3);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_GT(a.events().size(), 20u);  // ~60 expected at rate 0.3
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].batch, b.events()[i].batch);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].index, b.events()[i].index);
  }
  EXPECT_TRUE(FaultPlan::generate(42, 200, 0.0).empty());
  const FaultPlan c = FaultPlan::generate(43, 200, 0.3);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].batch != c.events()[i].batch ||
              a.events()[i].kind != c.events()[i].kind;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same plan";
}

TEST(FaultPlanTest, JsonRoundTrip) {
  const FaultPlan plan = FaultPlan::generate(7, 64, 0.4);
  ASSERT_FALSE(plan.empty());
  const std::string text = plan.to_json().dump();
  io::Json doc;
  std::string error;
  ASSERT_TRUE(io::Json::parse(text, doc, error)) << error;
  FaultPlan back;
  ASSERT_TRUE(FaultPlan::from_json(doc, back, error)) << error;
  EXPECT_EQ(back.to_json().dump(), text);
}

TEST(FaultTest, CrashAbortLeavesConsistentPrefix) {
  const WorkloadConfig config = trace_config();
  Scenario scenario = make_tenant_scenario(config, 0);
  (void)scenario.interference();
  Rng rng(5);
  const std::vector<Mutation> batch =
      make_churn_batch(rng, scenario.node_count(), config);

  const FaultEvent event{0, FaultKind::kCrashMidBatch, batch.size() / 2};
  FaultInjector injector(event, batch.size());
  const core::BatchResult result =
      scenario.apply_batch(batch, nullptr, &injector);
  EXPECT_TRUE(injector.fired());
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_index, batch.size() / 2);
  // `applied` counts state-changing mutations only; no-ops in the prefix
  // (e.g. an add_edge that already existed) keep it below the crash index.
  EXPECT_LE(result.applied, batch.size() / 2);

  // The surviving prefix must equal a serial application of the same
  // prefix, and must satisfy every invariant (crash != corruption).
  Scenario reference = make_tenant_scenario(config, 0);
  for (std::size_t i = 0; i < event.index; ++i) {
    (void)reference.apply(batch[i]);
  }
  (void)scenario.interference();
  (void)reference.interference();
  EXPECT_EQ(scenario.snapshot().to_bytes(), reference.snapshot().to_bytes());
  const core::InvariantAuditor auditor;
  const core::AuditReport report = auditor.audit(scenario);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(FaultTest, CrashRestoreReplayEquivalenceEveryFaultPoint) {
  // The acceptance property: a ~1k-step seeded trace, and for every epoch
  // and every crash index inside it (plus poison points), snapshot-restore-
  // replay recovery lands on a state bit-identical to the clean run.
  const WorkloadConfig config = trace_config();
  const FuzzTrace trace = make_fuzz_trace(config, 1024, 0.0, 0);
  ASSERT_EQ(trace.epochs.size(), 32u);

  // Clean pass: record the pre-batch snapshot and post-batch bytes of
  // every epoch.
  std::vector<Snapshot> pre;
  std::vector<std::vector<std::uint8_t>> post;
  {
    Scenario scenario = make_tenant_scenario(config, 0);
    for (const std::vector<Mutation>& batch : trace.epochs) {
      (void)scenario.interference();
      pre.push_back(scenario.snapshot());
      (void)scenario.apply_batch(batch, nullptr);
      (void)scenario.interference();
      post.push_back(scenario.snapshot().to_bytes());
    }
  }

  Scenario worker{core::EvalOptions{}};
  std::size_t fault_points = 0;
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    const std::vector<Mutation>& batch = trace.epochs[e];
    std::vector<FaultEvent> events;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      events.push_back({e, FaultKind::kCrashMidBatch, k});
    }
    for (std::size_t k = 0; k < 3; ++k) {
      events.push_back({e, FaultKind::kPoisonDiskTask, k});
      events.push_back({e, FaultKind::kPoisonRecount, k});
    }
    for (const FaultEvent& event : events) {
      std::string error;
      ASSERT_TRUE(worker.restore(pre[e], &error)) << error;
      const FaultedBatchOutcome outcome =
          apply_batch_with_faults(worker, batch, &event, nullptr, true);
      if (outcome.fault_fired) {
        EXPECT_TRUE(outcome.restored);
        ++fault_points;
      }
      (void)worker.interference();
      ASSERT_EQ(worker.snapshot().to_bytes(), post[e])
          << "epoch " << e << ", fault " << to_string(event.kind) << " @ "
          << event.index;
    }
  }
  // Every crash fires; many poisons land too.
  EXPECT_GE(fault_points, trace.epochs.size() * config.batch_size);
}

TEST(FaultTest, TraceFaultsKeepTheEngineValid) {
  // Drop/duplicate/reorder rewrite the input stream; the engine must apply
  // the adversarial batch safely and stay internally consistent.
  const WorkloadConfig config = trace_config();
  const core::InvariantAuditor auditor;
  for (const FaultKind kind :
       {FaultKind::kDropMutation, FaultKind::kDuplicateMutation,
        FaultKind::kReorderMutations}) {
    Scenario scenario = make_tenant_scenario(config, 0);
    Rng rng(23);
    for (std::size_t b = 0; b < 6; ++b) {
      const std::vector<Mutation> batch =
          make_churn_batch(rng, scenario.node_count(), config);
      const FaultEvent event{b, kind, b * 3};
      const FaultedBatchOutcome outcome =
          apply_batch_with_faults(scenario, batch, &event, nullptr, true);
      EXPECT_TRUE(outcome.fault_fired);
      EXPECT_FALSE(outcome.restored);  // trace faults are input, not crashes
    }
    const core::AuditReport report = auditor.audit(scenario);
    EXPECT_TRUE(report.ok())
        << to_string(kind) << ": " << report.violations.front();
  }
}

TEST(FaultTest, WorkloadReportsAreModeIdenticalUnderFaults) {
  WorkloadConfig config = trace_config();
  config.tenants = 3;
  config.batches = 8;
  config.fault_rate = 0.5;
  config.fault_seed = 31;

  WorkloadDriver serial(config);
  WorkloadDriver parallel_batches(config);
  WorkloadDriver concurrent(config);
  const WorkloadReport a = serial.run(ReplayMode::kSerial);
  const WorkloadReport b = parallel_batches.run(ReplayMode::kParallelBatches);
  const WorkloadReport c = concurrent.run(ReplayMode::kConcurrentTenants);

  std::size_t faults = 0;
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  ASSERT_EQ(a.tenants.size(), c.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    for (const WorkloadReport* r : {&b, &c}) {
      EXPECT_EQ(a.tenants[t].final_nodes, r->tenants[t].final_nodes);
      EXPECT_EQ(a.tenants[t].final_edges, r->tenants[t].final_edges);
      EXPECT_EQ(a.tenants[t].interference_checksum,
                r->tenants[t].interference_checksum);
      EXPECT_EQ(a.tenants[t].faults_injected, r->tenants[t].faults_injected);
      EXPECT_EQ(a.tenants[t].restores, r->tenants[t].restores);
    }
    faults += a.tenants[t].faults_injected;
  }
  EXPECT_GT(faults, 0u) << "fault_rate 0.5 never struck — plan broken?";
}

TEST(FaultTest, RecoveredEngineFaultsDoNotChangeWorkloadResults) {
  // A plan of engine faults only (crash/poison), fully recovered, must be
  // invisible in the final report. Trace faults are excluded by checking
  // against a fault-free run batch by batch.
  const WorkloadConfig config = trace_config();
  Scenario clean = make_tenant_scenario(config, 0);
  Scenario faulted = make_tenant_scenario(config, 0);
  Rng rng_clean(29), rng_faulted(29);
  for (std::size_t b = 0; b < 8; ++b) {
    const std::vector<Mutation> batch =
        make_churn_batch(rng_clean, clean.node_count(), config);
    const std::vector<Mutation> same =
        make_churn_batch(rng_faulted, faulted.node_count(), config);
    (void)clean.apply_batch(batch, nullptr);
    const FaultEvent event{
        b, b % 2 == 0 ? FaultKind::kCrashMidBatch : FaultKind::kPoisonDiskTask,
        b};
    (void)apply_batch_with_faults(faulted, same, &event, nullptr, true);
    (void)clean.interference();
    (void)faulted.interference();
    ASSERT_EQ(clean.snapshot().to_bytes(), faulted.snapshot().to_bytes())
        << "batch " << b;
  }
}

TEST(FuzzTraceTest, JsonRoundTrip) {
  WorkloadConfig config = trace_config();
  config.initial_nodes = 24;
  config.batch_size = 12;
  FuzzTrace trace = make_fuzz_trace(config, 60, 0.5, 3);
  trace.violation = "example";
  const std::string text = trace.to_json().dump();
  io::Json doc;
  std::string error;
  ASSERT_TRUE(io::Json::parse(text, doc, error)) << error;
  FuzzTrace back;
  ASSERT_TRUE(FuzzTrace::from_json(doc, back, error)) << error;
  EXPECT_EQ(back.to_json().dump(), text);
  // Replays of the two traces agree completely.
  const FuzzOutcome a = run_trace(trace);
  const FuzzOutcome b = run_trace(back);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.violation, b.violation);
}

TEST(FuzzTraceTest, RecoveredTraceIsViolationFree) {
  WorkloadConfig config = trace_config();
  config.initial_nodes = 48;
  FuzzTrace trace = make_fuzz_trace(config, 640, 0.4, 9);
  trace.audit_every = 2;
  const FuzzOutcome outcome = run_trace(trace);
  EXPECT_TRUE(outcome.ok) << outcome.violation;
  EXPECT_GT(outcome.faults_fired, 0u);
}

TEST(FuzzTraceTest, UnrecoveredPoisonIsCaughtAndMinimized) {
  // A hand-built trace: one batch whose only mutation shrinks two real
  // disks, with the disk task poisoned and recovery off. The auditor must
  // flag it, and minimization must return a still-failing trace.
  WorkloadConfig config = trace_config();
  config.initial_nodes = 64;
  FuzzTrace trace;
  trace.config = config;
  trace.init = "pairs";  // local disks: the wave pipeline actually runs
  trace.recover = false;
  trace.audit_every = 1;
  trace.robustness_probes = 0;
  trace.epochs.push_back({Mutation::remove_edge(0, 1)});
  trace.faults.add({0, FaultKind::kPoisonDiskTask, 0});

  const FuzzOutcome outcome = run_trace(trace);
  ASSERT_FALSE(outcome.ok) << "poisoned task went unnoticed";
  EXPECT_EQ(outcome.failed_epoch, 0u);
  EXPECT_EQ(outcome.faults_fired, 1u);
  EXPECT_EQ(outcome.restores, 0u);

  const FuzzTrace minimized = minimize_trace(trace, 64);
  EXPECT_FALSE(minimized.violation.empty());
  const FuzzOutcome again = run_trace(minimized);
  EXPECT_FALSE(again.ok);
  EXPECT_LE(minimized.epochs.size(), trace.epochs.size());
}

}  // namespace
}  // namespace rim::sim
