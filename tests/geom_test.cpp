#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "rim/geom/aabb.hpp"
#include "rim/geom/closest_pair.hpp"
#include "rim/geom/disk.hpp"
#include "rim/geom/grid_index.hpp"
#include "rim/geom/kdtree.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/sim/generators.hpp"

namespace rim::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(cross({2, 3}, {4, 6}), 0.0);  // collinear
}

TEST(Vec2, DistanceIsSymmetricAndNonNegative) {
  const Vec2 a{0.3, 0.7};
  const Vec2 b{-1.2, 4.5};
  EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a));
  EXPECT_GE(dist(a, b), 0.0);
  EXPECT_DOUBLE_EQ(dist(a, a), 0.0);
}

TEST(Vec2, Dist2MatchesDistSquared) {
  const Vec2 a{1.0, 1.0};
  const Vec2 b{4.0, 5.0};
  EXPECT_DOUBLE_EQ(dist2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(dist(a, b), 5.0);
}

TEST(Vec2, LexicographicOrder) {
  EXPECT_LT((Vec2{0, 5}), (Vec2{1, 0}));
  EXPECT_LT((Vec2{1, 0}), (Vec2{1, 1}));
  EXPECT_FALSE((Vec2{1, 1}) < (Vec2{1, 1}));
}

TEST(Vec2, Midpoint) {
  EXPECT_EQ(midpoint({0, 0}, {2, 4}), (Vec2{1, 2}));
}

TEST(Vec2, IsOneDimensional) {
  EXPECT_TRUE(is_one_dimensional({{0, 0}, {1, 0}, {-3, 0}}));
  EXPECT_FALSE(is_one_dimensional({{0, 0}, {1, 1e-9}}));
  EXPECT_TRUE(is_one_dimensional({}));
}

TEST(Disk, ContainsIsClosed) {
  const Disk d{{0, 0}, 1.0};
  EXPECT_TRUE(d.contains({1.0, 0.0}));  // boundary counts
  EXPECT_TRUE(d.contains({0.0, 0.0}));
  EXPECT_FALSE(d.contains({1.0 + 1e-12, 0.0}));
}

TEST(Disk, Intersects) {
  const Disk a{{0, 0}, 1.0};
  EXPECT_TRUE(a.intersects(Disk{{2, 0}, 1.0}));   // tangent
  EXPECT_FALSE(a.intersects(Disk{{2.1, 0}, 1.0}));
  EXPECT_TRUE(a.intersects(Disk{{0.1, 0}, 0.1}));  // nested
}

TEST(Disk, DiametralDisk) {
  const Disk d = diametral_disk({0, 0}, {2, 0});
  EXPECT_EQ(d.center, (Vec2{1, 0}));
  EXPECT_DOUBLE_EQ(d.radius, 1.0);
  EXPECT_TRUE(d.contains({1, 1}));   // top of the circle
  EXPECT_FALSE(d.contains({1, 1.001}));
}

TEST(Aabb, ExpandAndContains) {
  Aabb box{{0, 0}, {0, 0}};
  box.expand({2, -1});
  box.expand({-1, 3});
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_TRUE(box.contains({2, 3}));
  EXPECT_FALSE(box.contains({2.1, 0}));
  EXPECT_DOUBLE_EQ(box.width(), 3.0);
  EXPECT_DOUBLE_EQ(box.height(), 4.0);
}

TEST(Aabb, Dist2ToOutsidePoint) {
  const Aabb box{{0, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(box.dist2_to({0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(box.dist2_to({2.0, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(box.dist2_to({2.0, 2.0}), 2.0);
}

TEST(Aabb, BoundingBoxOfPoints) {
  const PointSet points{{1, 2}, {-1, 5}, {3, 0}};
  const Aabb box = bounding_box(points);
  EXPECT_EQ(box.lo, (Vec2{-1, 0}));
  EXPECT_EQ(box.hi, (Vec2{3, 5}));
}

class GridIndexTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexTest, DiskQueryMatchesBruteForce) {
  const PointSet points = sim::uniform_square(200, 5.0, GetParam());
  const GridIndex index(points, 0.7);
  for (double radius : {0.0, 0.3, 1.0, 2.5}) {
    for (NodeId probe = 0; probe < 10; ++probe) {
      const auto got = index.query_disk(points[probe], radius);
      std::vector<NodeId> expected;
      for (NodeId v = 0; v < points.size(); ++v) {
        if (dist2(points[v], points[probe]) <= radius * radius) {
          expected.push_back(v);
        }
      }
      EXPECT_EQ(got, expected) << "radius " << radius << " probe " << probe;
    }
  }
}

TEST_P(GridIndexTest, CountMatchesQuerySize) {
  const PointSet points = sim::uniform_square(150, 3.0, GetParam());
  const GridIndex index(points, 0.5);
  for (NodeId probe = 0; probe < 8; ++probe) {
    EXPECT_EQ(index.count_in_disk(points[probe], 0.8),
              index.query_disk(points[probe], 0.8).size());
  }
}

TEST_P(GridIndexTest, NearestMatchesBruteForce) {
  const PointSet points = sim::uniform_square(120, 4.0, GetParam());
  const GridIndex index(points, 0.6);
  for (NodeId probe = 0; probe < points.size(); probe += 7) {
    const NodeId got = index.nearest(points[probe], probe);
    NodeId expected = kInvalidNode;
    double best = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < points.size(); ++v) {
      if (v == probe) continue;
      const double d2 = dist2(points[v], points[probe]);
      if (d2 < best || (d2 == best && v < expected)) {
        best = d2;
        expected = v;
      }
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(GridIndex, EmptyIndex) {
  const PointSet points;
  const GridIndex index(points, 1.0);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.nearest({0, 0}), kInvalidNode);
  EXPECT_TRUE(index.query_disk({0, 0}, 10.0).empty());
}

TEST(GridIndex, SinglePoint) {
  const PointSet points{{1, 1}};
  const GridIndex index(points, 1.0);
  EXPECT_EQ(index.nearest({0, 0}), 0u);
  EXPECT_EQ(index.nearest({0, 0}, 0), kInvalidNode);  // excluded
}

TEST(GridIndex, NegativeRadiusFindsNothing) {
  const PointSet points{{0, 0}};
  const GridIndex index(points, 1.0);
  EXPECT_TRUE(index.query_disk({0, 0}, -1.0).empty());
}

TEST(GridIndex, HandlesExtremeAspectRatios) {
  // Exponential-chain-like spread: the cell cap must kick in, not OOM.
  PointSet points;
  double x = 0.0;
  for (int i = 0; i < 40; ++i) {
    points.push_back({x, 0.0});
    x = x * 2.0 + 1.0;
  }
  const GridIndex index(points, 1e-6);
  EXPECT_EQ(index.query_disk({0.0, 0.0}, 1.5).size(), 2u);  // x=0 and x=1
  EXPECT_EQ(index.nearest({0.4, 0.0}), 0u);
}

class KdTreeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KdTreeTest, NearestMatchesBruteForce) {
  const PointSet points = sim::uniform_square(300, 2.0, GetParam());
  const KdTree tree(points);
  for (NodeId probe = 0; probe < points.size(); probe += 11) {
    NodeId expected = kInvalidNode;
    double best = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < points.size(); ++v) {
      if (v == probe) continue;
      const double d2 = dist2(points[v], points[probe]);
      if (d2 < best || (d2 == best && v < expected)) {
        best = d2;
        expected = v;
      }
    }
    EXPECT_EQ(tree.nearest(points[probe], probe), expected);
  }
}

TEST_P(KdTreeTest, KNearestSortedAndCorrect) {
  const PointSet points = sim::uniform_square(100, 2.0, GetParam());
  const KdTree tree(points);
  const Vec2 q{1.0, 1.0};
  const auto got = tree.k_nearest(q, 7);
  ASSERT_EQ(got.size(), 7u);
  // Ascending by distance.
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(dist2(points[got[i - 1]], q), dist2(points[got[i]], q));
  }
  // Matches a brute-force top-7.
  std::vector<NodeId> all(points.size());
  std::iota(all.begin(), all.end(), NodeId{0});
  std::sort(all.begin(), all.end(), [&](NodeId a, NodeId b) {
    const double da = dist2(points[a], q);
    const double db = dist2(points[b], q);
    return da < db || (da == db && a < b);
  });
  EXPECT_EQ(got, std::vector<NodeId>(all.begin(), all.begin() + 7));
}

TEST_P(KdTreeTest, DiskQueryMatchesGrid) {
  const PointSet points = sim::uniform_square(200, 3.0, GetParam());
  const KdTree tree(points);
  const GridIndex grid(points, 0.5);
  for (NodeId probe = 0; probe < 10; ++probe) {
    std::vector<NodeId> kd;
    tree.for_each_in_disk(points[probe], 0.9,
                          [&](NodeId id) { kd.push_back(id); });
    std::sort(kd.begin(), kd.end());
    EXPECT_EQ(kd, grid.query_disk(points[probe], 0.9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreeTest, ::testing::Values(5u, 6u, 7u));

TEST(KdTree, EmptyAndTiny) {
  const PointSet empty;
  const KdTree t0(empty);
  EXPECT_EQ(t0.nearest({0, 0}), kInvalidNode);
  EXPECT_TRUE(t0.k_nearest({0, 0}, 3).empty());

  const PointSet one{{2, 2}};
  const KdTree t1(one);
  EXPECT_EQ(t1.nearest({0, 0}), 0u);
  EXPECT_EQ(t1.k_nearest({0, 0}, 5).size(), 1u);
}

TEST(KdTree, KZeroReturnsEmpty) {
  const PointSet points{{0, 0}, {1, 1}};
  const KdTree tree(points);
  EXPECT_TRUE(tree.k_nearest({0, 0}, 0).empty());
}

class ClosestPairTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosestPairTest, MatchesBruteForce) {
  for (std::size_t n : {2u, 3u, 10u, 57u, 200u}) {
    const PointSet points = sim::uniform_square(n, 3.0, GetParam() * 1000 + n);
    const auto fast = closest_pair(points);
    const auto brute = closest_pair_brute(points);
    EXPECT_DOUBLE_EQ(fast.distance, brute.distance) << "n=" << n;
    EXPECT_EQ(fast.a, brute.a) << "n=" << n;
    EXPECT_EQ(fast.b, brute.b) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosestPairTest,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(ClosestPair, KnownAnswer) {
  const PointSet points{{0, 0}, {5, 5}, {0.1, 0}, {9, 9}};
  const auto result = closest_pair(points);
  EXPECT_EQ(result.a, 0u);
  EXPECT_EQ(result.b, 2u);
  EXPECT_NEAR(result.distance, 0.1, 1e-12);
}

TEST(ClosestPair, DuplicatePointsGiveZero) {
  const PointSet points{{1, 1}, {2, 2}, {1, 1}};
  const auto result = closest_pair(points);
  EXPECT_DOUBLE_EQ(result.distance, 0.0);
  EXPECT_EQ(result.a, 0u);
  EXPECT_EQ(result.b, 2u);
}

}  // namespace
}  // namespace rim::geom
