#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/svc/client.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/tcp.hpp"
#include "rim/svc/transport.hpp"

#include "svc_test_util.hpp"

// TCP transport tests: an ephemeral-port server must answer byte-for-byte
// what loopback answers, serve concurrent client connections correctly,
// and shut down cleanly (joining every thread; ASan/TSan legs verify).

namespace rim::svc {
namespace {

using core::Mutation;

std::vector<Mutation> seed_batch() {
  return {
      Mutation::add_node({0.0, 0.0}), Mutation::add_node({1.0, 0.0}),
      Mutation::add_node({0.5, 0.8}), Mutation::add_edge(0, 1),
      Mutation::add_edge(1, 2),
  };
}

TEST(SvcTcp, ResponsesMatchLoopbackByteForByte) {
  ServiceConfig config;
  config.batch_pool_threads = 2;
  Service tcp_service(config);
  Service loopback_service(config);

  TcpServer server(tcp_service, {.port = 0, .dispatch_threads = 2});
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  ASSERT_NE(server.port(), 0);

  TcpClientTransport tcp_transport;
  ASSERT_TRUE(tcp_transport.connect_to("127.0.0.1", server.port(), error))
      << error;
  LoopbackTransport loopback_transport(loopback_service);

  Client tcp_client(tcp_transport);
  Client loopback_client(loopback_transport);

  // Drive both through the same command sequence; every response payload
  // must be byte-identical.
  const auto compare = [&](const char* what) {
    EXPECT_EQ(tcp_client.last_response_payload(),
              loopback_client.last_response_payload())
        << what;
  };

  ASSERT_TRUE(ok(tcp_client.try_ping()));
  ASSERT_TRUE(ok(loopback_client.try_ping()));
  compare("ping");

  std::uint64_t tcp_session = 0;
  std::uint64_t loopback_session = 0;
  ASSERT_TRUE(ok(tcp_client.try_create_session(), tcp_session));
  ASSERT_TRUE(ok(loopback_client.try_create_session(), loopback_session));
  compare("create_session");

  core::BatchResult tcp_result;
  core::BatchResult loopback_result;
  ASSERT_TRUE(ok(tcp_client.try_apply_batch(tcp_session, seed_batch()), tcp_result));
  ASSERT_TRUE(ok(loopback_client.try_apply_batch(loopback_session, seed_batch()), loopback_result));
  compare("apply_batch");

  io::Json tcp_doc;
  io::Json loopback_doc;
  ASSERT_TRUE(ok(tcp_client.try_query_interference(tcp_session), tcp_doc));
  ASSERT_TRUE(
      ok(loopback_client.try_query_interference(loopback_session), loopback_doc));
  compare("query_interference");

  ASSERT_TRUE(ok(tcp_client.try_snapshot(tcp_session), tcp_doc));
  ASSERT_TRUE(ok(loopback_client.try_snapshot(loopback_session), loopback_doc));
  compare("snapshot");

  NodeId renamed = kInvalidNode;
  EXPECT_FALSE(ok(tcp_client.try_remove_node(tcp_session, 99), renamed));
  EXPECT_FALSE(ok(loopback_client.try_remove_node(loopback_session, 99), renamed));
  compare("error responses");

  server.stop();
}

TEST(SvcTcp, ConcurrentClientsKeepSessionsIsolated) {
  ServiceConfig config;
  config.batch_pool_threads = 2;
  config.limits.max_in_flight = 64;
  Service service(config);
  TcpServer server(service, {.port = 0, .dispatch_threads = 4});
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  constexpr std::size_t kClients = 8;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([c, &failures, &server] {
      TcpClientTransport transport;
      std::string connect_error;
      if (!transport.connect_to("127.0.0.1", server.port(), connect_error)) {
        failures[c] = "connect: " + connect_error;
        return;
      }
      Client client(transport);
      std::uint64_t session = 0;
      if (!ok(client.try_create_session(), session)) {
        failures[c] = "create: " + client.error();
        return;
      }
      // Each client grows its own chain; interference stays isolated.
      NodeId previous = kInvalidNode;
      const std::size_t nodes = 4 + c;
      for (std::size_t i = 0; i < nodes; ++i) {
        NodeId node = kInvalidNode;
        if (!ok(client.try_add_node(session, double(i), double(c)), node)) {
          failures[c] = "add_node: " + client.error();
          return;
        }
        bool added = false;
        if (previous != kInvalidNode &&
            !ok(client.try_add_edge(session, previous, node), added)) {
          failures[c] = "add_edge: " + client.error();
          return;
        }
        previous = node;
      }
      io::Json stats;
      if (!ok(client.try_session_stats(session), stats)) {
        failures[c] = "stats: " + client.error();
        return;
      }
      if (stats.find("nodes")->as_number() != double(nodes)) {
        failures[c] = "expected " + std::to_string(nodes) + " nodes, got " +
                      std::to_string(stats.find("nodes")->as_number());
        return;
      }
      if (!ok(client.try_close_session(session))) {
        failures[c] = "close: " + client.error();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  EXPECT_EQ(service.sessions().session_count(), 0u);
  server.stop();
}

TEST(SvcTcp, OversizedFrameAnswersBadFrameAndDrops) {
  ServiceConfig config;
  config.batch_pool_threads = 1;
  config.limits.max_frame_bytes = 64;
  Service service(config);
  TcpServer server(service, {.port = 0, .dispatch_threads = 1});
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  TcpClientTransport transport;
  ASSERT_TRUE(transport.connect_to("127.0.0.1", server.port(), error))
      << error;
  std::string response_frame;
  ASSERT_EQ(transport.roundtrip(encode_frame(std::string(128, ' ')),
                                response_frame, error),
            TransportStatus::kOk)
      << error;
  std::size_t consumed = 0;
  std::string payload;
  ASSERT_EQ(try_decode_frame(response_frame, kDefaultMaxFrameBytes, consumed,
                             payload),
            FrameStatus::kFrame);
  EXPECT_NE(payload.find("\"code\":\"bad_frame\""), std::string::npos);
  // The connection is dropped afterwards: the next exchange reports the
  // lost peer as exactly that (the router's failover trigger).
  EXPECT_EQ(transport.roundtrip(encode_frame("{}"), response_frame, error),
            TransportStatus::kConnectionLost);
  server.stop();
}

TEST(SvcTcp, StopWithConnectedClientsIsClean) {
  ServiceConfig config;
  config.batch_pool_threads = 1;
  Service service(config);
  auto server = std::make_unique<TcpServer>(
      service, TcpServerConfig{.port = 0, .dispatch_threads = 2});
  std::string error;
  ASSERT_TRUE(server->start(error)) << error;

  TcpClientTransport transport;
  ASSERT_TRUE(transport.connect_to("127.0.0.1", server->port(), error))
      << error;
  Client client(transport);
  ASSERT_TRUE(ok(client.try_ping()));

  // Destruction implies stop(); a stopped server leaves the client with a
  // closed socket, not a hang — surfaced as the typed connection-lost
  // code (the shard router's failover trigger), not a generic transport
  // failure.
  server.reset();
  EXPECT_FALSE(ok(client.try_ping()));
  EXPECT_EQ(client.error_code(), "connection_lost");
}

TEST(SvcTcp, PortZeroPicksDistinctEphemeralPorts) {
  ServiceConfig config;
  config.batch_pool_threads = 1;
  Service service(config);
  TcpServer first(service, {.port = 0, .dispatch_threads = 1});
  TcpServer second(service, {.port = 0, .dispatch_threads = 1});
  std::string error;
  ASSERT_TRUE(first.start(error)) << error;
  ASSERT_TRUE(second.start(error)) << error;
  EXPECT_NE(first.port(), 0);
  EXPECT_NE(second.port(), 0);
  EXPECT_NE(first.port(), second.port());
  first.stop();
  second.stop();
}

}  // namespace
}  // namespace rim::svc
