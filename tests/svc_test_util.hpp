#pragma once

#include <utility>

#include "rim/svc/client.hpp"

// Shared glue for driving svc::Client's typed try_* API from the gtest
// suites: `ok` collapses an SvcResult into the pass/fail bool that
// ASSERT_TRUE/EXPECT_TRUE chains want, landing value results in an
// out-parameter so call sites stay one line. Failure details remain
// available through client.error()/error_code() as before.

namespace rim::svc {

inline bool ok(const SvcResult<void>& result) { return result.has_value(); }

template <typename T>
bool ok(SvcResult<T> result, T& out) {
  if (!result.has_value()) return false;
  out = std::move(result).value();
  return true;
}

}  // namespace rim::svc
