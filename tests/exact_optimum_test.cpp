#include <gtest/gtest.h>

#include "rim/core/interference.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/tree_enum.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/exact_optimum.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/local_search.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::highway {
namespace {

TEST(ExactOptimum, TwoNodes) {
  const geom::PointSet points{{0, 0}, {0.5, 0}};
  const auto result =
      exact_minimum_interference_tree(points, graph::build_udg(points, 1.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->interference, 1u);
  EXPECT_EQ(result->tree.edge_count(), 1u);
  EXPECT_EQ(result->trees_considered, 1u);
}

TEST(ExactOptimum, DisconnectedUdgYieldsNullopt) {
  const geom::PointSet points{{0, 0}, {5, 0}};
  EXPECT_FALSE(
      exact_minimum_interference_tree(points, graph::build_udg(points, 1.0))
          .has_value());
}

TEST(ExactOptimum, ResultIsASpanningTree) {
  const auto points = sim::uniform_square(7, 1.2, 42);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  if (!graph::is_connected(udg)) GTEST_SKIP() << "instance disconnected";
  const auto result = exact_minimum_interference_tree(points, udg);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(graph::is_connected(result->tree));
  EXPECT_TRUE(graph::is_forest(result->tree));
  EXPECT_EQ(result->tree.edge_count(), points.size() - 1);
  EXPECT_EQ(core::graph_interference(result->tree, points), result->interference);
}

class ExactVsEverything : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsEverything, NoTreeBeatsTheOptimum) {
  const auto points = sim::uniform_square(6, 1.0, GetParam());
  const graph::Graph udg = graph::build_udg(points, 2.0);  // complete
  const auto result = exact_minimum_interference_tree(points, udg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->trees_considered, graph::cayley_count(6));
  // Re-verify optimality independently over the same enumeration.
  graph::for_each_labeled_tree(6, [&](std::span<const graph::Edge> edges) {
    const graph::Graph tree(6, edges);
    EXPECT_GE(core::graph_interference(tree, points), result->interference);
    return true;
  });
  // The MST is a feasible tree, so it upper-bounds the optimum.
  const graph::Graph mst = topology::mst_topology(points, udg);
  EXPECT_LE(result->interference, core::graph_interference(mst, points));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsEverything, ::testing::Values(1u, 2u, 3u));

class ExactOnExponentialChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExactOnExponentialChain, Theorem52LowerBoundHolds) {
  const std::size_t n = GetParam();
  const auto chain = exponential_chain(n);
  const auto points = chain.to_points();
  const auto result =
      exact_minimum_interference_tree(points, chain.udg(1.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->interference, exponential_chain_lower_bound(n)) << n;
  // And of course no worse than what A_exp achieves.
  EXPECT_LE(result->interference, a_exp(chain).interference) << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExactOnExponentialChain,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(LocalSearch, NeverWorseThanSeed) {
  const auto inst = sim::uniform_highway(24, 4.0, 77);
  const graph::Graph udg = inst.udg(1.0);
  const auto points = inst.to_points();
  const graph::Graph seed = topology::mst_topology(points, udg);
  const std::uint32_t before = core::graph_interference(seed, points);
  const auto result = local_search_min_interference(points, udg, seed);
  EXPECT_LE(result.interference, before);
  EXPECT_TRUE(graph::preserves_connectivity(udg, result.tree));
  EXPECT_TRUE(graph::is_forest(result.tree));
}

TEST(LocalSearch, FindsOptimumOnTinyInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto points = sim::uniform_square(7, 1.0, seed);
    const graph::Graph udg = graph::build_udg(points, 2.0);
    const auto exact = exact_minimum_interference_tree(points, udg);
    ASSERT_TRUE(exact.has_value());
    const graph::Graph mst = topology::mst_topology(points, udg);
    const auto ls = local_search_min_interference(points, udg, mst);
    // Local search reaches within 1 of the optimum on these tiny instances
    // (it often matches it; a gap of 1 is accepted to avoid flakiness).
    EXPECT_LE(ls.interference, exact->interference + 1) << seed;
    EXPECT_GE(ls.interference, exact->interference) << seed;
  }
}

TEST(LocalSearch, ImprovesLinearExponentialChain) {
  const auto chain = exponential_chain(16);
  const graph::Graph udg = chain.udg(1.0);
  const auto points = chain.to_points();
  const graph::Graph seed = linear_chain(chain, 1.0);
  const auto result = local_search_min_interference(points, udg, seed);
  EXPECT_LT(result.interference, 14u);  // strictly better than n-2 = 14
  EXPECT_GT(result.swaps_applied, 0u);
}

TEST(LocalSearch, RespectsRoundBudget) {
  const auto chain = exponential_chain(24);
  const graph::Graph udg = chain.udg(1.0);
  const auto points = chain.to_points();
  LocalSearchParams params;
  params.max_rounds = 1;
  const auto result =
      local_search_min_interference(points, udg, linear_chain(chain, 1.0), params);
  // One round may or may not reach a local optimum, but must terminate and
  // stay valid.
  EXPECT_TRUE(graph::preserves_connectivity(udg, result.tree));
}

}  // namespace
}  // namespace rim::highway
