#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "rim/parallel/parallel_for.hpp"
#include "rim/parallel/thread_pool.hpp"

namespace rim::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::shared().submit([&counter] { counter.fetch_add(1); });
  ThreadPool::shared().wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  parallel_for(0, touched.size(),
               [&](std::size_t i) { touched[i].fetch_add(1); }, pool, 64);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; }, pool);
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) { EXPECT_EQ(i, 7u); ++count; }, pool);
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, OffsetRange) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(i); }, pool, 8);
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const auto sum = parallel_reduce<std::uint64_t>(
      0, n, 0ull, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, pool, 128);
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(3);
  std::vector<double> values(5000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 7919) % 4999);
  }
  const double expected = *std::max_element(values.begin(), values.end());
  const double got = parallel_reduce<double>(
      0, values.size(), 0.0, [&](std::size_t i) { return values[i]; },
      [](double a, double b) { return a > b ? a : b; }, pool, 100);
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  ThreadPool pool(8);
  const auto run = [&] {
    return parallel_reduce<double>(
        0, 50000, 0.0,
        [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; }, pool, 64);
  };
  const double first = run();
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_EQ(run(), first);  // bitwise equal: block-ordered combine
  }
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int result = parallel_reduce<int>(
      3, 3, 42, [](std::size_t) { return 0; },
      [](int a, int b) { return a + b; }, pool);
  EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace rim::parallel
