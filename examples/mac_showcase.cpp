/// Packet-level showcase: why interference matters. Runs the slotted-ALOHA
/// MAC over two topologies of the same network — the input UDG (no topology
/// control) and the Gabriel graph — and prints throughput, collision, and
/// energy statistics while sweeping the offered load.
///
///   $ ./mac_showcase            # n=120, seed 1
///   $ ./mac_showcase 200 9      # n, seed

#include <cstdlib>
#include <iostream>

#include "rim/core/interference.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/mac/simulation.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/gabriel.hpp"
#include "rim/topology/mst_topology.hpp"

int main(int argc, char** argv) {
  using namespace rim;

  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                                 : 120;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  const double side = std::sqrt(static_cast<double>(n) / 16.0);
  const geom::PointSet points = sim::uniform_square(n, side, seed);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  const graph::Graph gabriel = topology::gabriel_graph(points, udg);
  const graph::Graph mst = topology::mst_topology(points, udg);

  std::cout << "n = " << n << ", I(UDG) = " << core::graph_interference(udg, points)
            << ", I(Gabriel) = " << core::graph_interference(gabriel, points)
            << ", I(MST) = " << core::graph_interference(mst, points) << "\n\n";

  io::Table table({"topology", "arrival", "delivered", "ratio",
                   "collision rate", "delay", "energy/frame"});
  for (const double arrival : {0.01, 0.05, 0.2, 1.0}) {
    for (const auto& [name, topo] :
         {std::pair<const char*, const graph::Graph*>{"udg", &udg},
          {"gabriel", &gabriel},
          {"mst", &mst}}) {
      mac::SimulationConfig config;
      config.slots = 3000;
      config.arrival_rate = arrival;
      config.mac.transmit_probability = 0.1;
      config.seed = seed;
      const auto report = mac::simulate_traffic(*topo, points, config);
      const double collision_rate =
          report.mac.transmissions == 0
              ? 0.0
              : static_cast<double>(report.mac.collisions) /
                    static_cast<double>(report.mac.transmissions);
      table.row()
          .cell(name)
          .cell(arrival, 2)
          .cell(report.mac.delivered)
          .cell(report.mac.delivery_ratio(), 3)
          .cell(collision_rate, 3)
          .cell(report.mac.mean_delay(), 1)
          .cell(report.mac.energy_per_delivery(), 4);
    }
  }
  table.print(std::cout);
  std::cout << "\nLower-interference topologies keep the collision rate and\n"
               "energy per delivered frame down as load rises — the paper's\n"
               "introductory motivation, reproduced end to end.\n";
  return 0;
}
