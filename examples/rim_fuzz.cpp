/// Invariant fuzzer: seeded churn + fault injection against the incremental
/// engine, with the InvariantAuditor checking every receiver-centric
/// invariant as the trace replays. A violation produces a minimized,
/// replayable trace JSON — feed it back with --replay to reproduce.
///
///   $ ./rim_fuzz --steps 10000 --seed 1          # fuzz; exit 0 iff clean
///   $ ./rim_fuzz --steps 2000 --fault-rate 0.5   # heavier fault schedule
///   $ ./rim_fuzz --replay trace.json             # re-run a saved trace
///
/// Exit codes: 0 no violations, 1 violation found (trace written to --out),
/// 2 usage or I/O error.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "rim/sim/trace.hpp"

namespace {

struct Options {
  std::size_t steps = 10000;
  std::uint64_t seed = 1;
  std::size_t nodes = 96;
  std::size_t batch = 48;
  double side = 10.0;
  double fault_rate = 0.25;
  std::size_t audit_every = 4;
  std::string init = "tenant";
  std::string out = "rim_fuzz_trace.json";
  std::string replay;
  bool minimize = true;
  bool recover = true;
};

void usage(std::ostream& os) {
  os << "usage: rim_fuzz [options]\n"
        "  --steps N        total mutations to generate (default 10000)\n"
        "  --seed N         churn seed (default 1)\n"
        "  --nodes N        initial node count (default 96)\n"
        "  --batch N        mutations per batch (default 48)\n"
        "  --side F         deployment square side (default 10.0)\n"
        "  --fault-rate F   per-batch fault probability (default 0.25)\n"
        "  --audit-every N  audit cadence in batches (default 4)\n"
        "  --init NAME      initial topology: tenant | pairs (default "
        "tenant)\n"
        "  --out PATH       failing-trace JSON path (default "
        "rim_fuzz_trace.json)\n"
        "  --replay PATH    replay a saved trace instead of fuzzing\n"
        "  --no-minimize    keep a failing trace at full length\n"
        "  --no-recover     leave engine faults unrecovered (expect "
        "violations)\n";
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--steps" && (v = value())) {
      opt.steps = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed" && (v = value())) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--nodes" && (v = value())) {
      opt.nodes = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--batch" && (v = value())) {
      opt.batch = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--side" && (v = value())) {
      opt.side = std::atof(v);
    } else if (arg == "--fault-rate" && (v = value())) {
      opt.fault_rate = std::atof(v);
    } else if (arg == "--audit-every" && (v = value())) {
      opt.audit_every = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--init" && (v = value())) {
      opt.init = v;
    } else if (arg == "--out" && (v = value())) {
      opt.out = v;
    } else if (arg == "--replay" && (v = value())) {
      opt.replay = v;
    } else if (arg == "--minimize") {
      opt.minimize = true;
    } else if (arg == "--no-minimize") {
      opt.minimize = false;
    } else if (arg == "--no-recover") {
      opt.recover = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "rim_fuzz: bad argument '" << arg << "'\n";
      usage(std::cerr);
      return false;
    }
  }
  if (opt.batch == 0 || opt.nodes < 2 || opt.side <= 0.0) {
    std::cerr << "rim_fuzz: need --batch >= 1, --nodes >= 2, --side > 0\n";
    return false;
  }
  if (opt.init != "tenant" && opt.init != "pairs") {
    std::cerr << "rim_fuzz: --init must be 'tenant' or 'pairs'\n";
    return false;
  }
  return true;
}

bool load_trace(const std::string& path, rim::sim::FuzzTrace& trace) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "rim_fuzz: cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  rim::io::Json doc;
  std::string error;
  if (!rim::io::Json::parse(buffer.str(), doc, error) ||
      !rim::sim::FuzzTrace::from_json(doc, trace, error)) {
    std::cerr << "rim_fuzz: bad trace '" << path << "': " << error << '\n';
    return false;
  }
  return true;
}

bool save_trace(const std::string& path, const rim::sim::FuzzTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "rim_fuzz: cannot write '" << path << "'\n";
    return false;
  }
  trace.to_json().write(out);
  out << '\n';
  return bool(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rim;

  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  sim::FuzzTrace trace;
  if (!opt.replay.empty()) {
    if (!load_trace(opt.replay, trace)) return 2;
    std::cout << "rim_fuzz: replaying '" << opt.replay << "' ("
              << trace.epochs.size() << " epochs, "
              << trace.faults.events().size() << " faults)\n";
  } else {
    sim::WorkloadConfig config;
    config.seed = opt.seed;
    config.initial_nodes = opt.nodes;
    config.batch_size = opt.batch;
    config.side = opt.side;
    trace = sim::make_fuzz_trace(config, opt.steps, opt.fault_rate,
                                 opt.seed ^ 0xFA017FA017FA017FULL);
    trace.init = opt.init;
    trace.recover = opt.recover;
    trace.audit_every = opt.audit_every;
    std::cout << "rim_fuzz: seed " << opt.seed << ", " << trace.epochs.size()
              << " epochs of " << opt.batch << " mutations, "
              << trace.faults.events().size() << " scheduled faults"
              << (opt.recover ? "" : " (recovery disabled)") << '\n';
  }

  const sim::FuzzOutcome outcome = sim::run_trace(trace);
  std::cout << "rim_fuzz: " << outcome.faults_fired << " faults fired, "
            << outcome.restores << " snapshot restores\n";
  if (outcome.ok) {
    std::cout << "rim_fuzz: OK — zero invariant violations\n";
    return 0;
  }

  std::cout << "rim_fuzz: VIOLATION at epoch " << outcome.failed_epoch << ": "
            << outcome.violation << '\n';
  trace.violation = outcome.violation;
  if (opt.minimize) {
    trace = sim::minimize_trace(std::move(trace));
    std::size_t mutations = 0;
    for (const auto& epoch : trace.epochs) mutations += epoch.size();
    std::cout << "rim_fuzz: minimized to " << trace.epochs.size()
              << " epochs / " << mutations << " mutations\n";
  }
  if (!save_trace(opt.out, trace)) return 2;
  std::cout << "rim_fuzz: replayable trace written to " << opt.out << '\n';
  return 1;
}
