/// Survey a random 2-D deployment with the full topology-control zoo:
/// receiver-centric interference, the MobiHoc'04 sender-centric measure,
/// degree, spanner stretch, and power cost for every algorithm.
/// Optionally export each topology as Graphviz DOT.
///
///   $ ./topology_survey                 # n=150, seed 1
///   $ ./topology_survey 300 7           # n, seed
///   $ ./topology_survey 150 1 out_dir   # also write out_dir/<name>.dot

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/stretch.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/dot.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/registry.hpp"

int main(int argc, char** argv) {
  using namespace rim;

  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                                 : 150;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;
  const std::string dot_dir = argc > 3 ? argv[3] : "";

  const double side = std::sqrt(static_cast<double>(n) / 16.0);
  const geom::PointSet points = sim::uniform_square(n, side, seed);
  const graph::Graph udg = graph::build_udg(points, 1.0);
  std::cout << "deployment: n = " << n << " in " << side << " x " << side
            << " (seed " << seed << "), UDG: " << udg.edge_count()
            << " edges, Δ = " << udg.max_degree() << ", I(UDG) = "
            << core::graph_interference(udg, points) << "\n\n";

  io::Table table({"algorithm", "I recv", "I send", "deg", "edges",
                   "stretch", "power", "connected"});
  for (const auto& algorithm : topology::all_algorithms()) {
    const graph::Graph topo = algorithm.build(points, udg);
    const core::InterferenceSummary recv =
        core::Assessor{}.assess(topo, points);
    const auto stretch = graph::measure_stretch(udg, topo, points);
    table.row()
        .cell(algorithm.name)
        .cell(recv.max)
        .cell(core::evaluate_sender_centric(topo, points).max)
        .cell(static_cast<std::uint64_t>(topo.max_degree()))
        .cell(static_cast<std::uint64_t>(topo.edge_count()))
        .cell(stretch.max_euclidean_stretch, 2)
        .cell(core::total_power(core::transmission_radii(topo, points), 2.0), 2)
        .cell(graph::preserves_connectivity(udg, topo));

    if (!dot_dir.empty()) {
      std::filesystem::create_directories(dot_dir);
      std::ofstream file(dot_dir + "/" + algorithm.name + ".dot");
      io::DotOptions options;
      options.graph_name = algorithm.name;
      io::write_dot(file, topo, points, options);
    }
  }
  table.print(std::cout);
  if (!dot_dir.empty()) {
    std::cout << "\nDOT files written to " << dot_dir
              << "/ — render with: neato -n2 -Tpng <file>.dot > <file>.png\n";
  }
  return 0;
}
