/// Churn walkthrough: watch both interference measures as nodes join and
/// leave a live network, with the topology recomputed after every event.
///
///   $ ./churn_demo            # MST, 50 nodes, 40 events
///   $ ./churn_demo gabriel 80 100 7   # algorithm, nodes, events, seed

#include <cstdlib>
#include <iostream>

#include "rim/core/scenario.hpp"
#include "rim/graph/udg.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/churn.hpp"
#include "rim/sim/generators.hpp"
#include "rim/sim/rng.hpp"
#include "rim/topology/registry.hpp"

int main(int argc, char** argv) {
  using namespace rim;

  const std::string name = argc > 1 ? argv[1] : "mst";
  const auto* algorithm = topology::find_algorithm(name);
  if (algorithm == nullptr) {
    std::cerr << "unknown algorithm '" << name << "'; available:";
    for (const auto& a : topology::all_algorithms()) std::cerr << ' ' << a.name;
    std::cerr << '\n';
    return 1;
  }

  sim::ChurnConfig config;
  config.initial_nodes =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 50;
  config.events = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 40;
  config.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  const sim::ChurnTrace trace = sim::run_churn(config, algorithm->build);

  io::Table table({"event", "change", "nodes", "I recv", "I send"});
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    const sim::ChurnStep& step = trace.steps[i];
    table.row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(i == 0 ? "start" : (step.added ? "+node" : "-node"))
        .cell(static_cast<std::uint64_t>(step.node_count))
        .cell(step.receiver_max)
        .cell(step.sender_max);
  }
  table.print(std::cout);
  std::cout << "\nlargest single-event jump: receiver-centric "
            << trace.max_receiver_jump() << ", sender-centric "
            << trace.max_sender_jump()
            << "\n(the receiver-centric measure is the calm one — the "
               "paper's robustness claim)\n";

  // Epilogue: the same kind of churn on a live core::Scenario. Here the
  // topology is NOT rebuilt per event — arrivals attach to their nearest
  // neighbor and the engine patches only the affected disks, which is
  // exactly what the robustness result licenses.
  const geom::PointSet points =
      sim::uniform_square(config.initial_nodes, 2.0, config.seed);
  core::Scenario net(points,
                     algorithm->build(points, graph::build_udg(points, 1.0)));
  std::uint32_t live_max = net.max_interference();
  sim::Rng rng(config.seed ^ 0xc0ffee);
  for (std::size_t e = 0; e < config.events; ++e) {
    if (rng.next_double() < 0.5 || net.node_count() < 3) {
      const geom::Vec2 p{rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0)};
      const NodeId id = net.add_node(p);
      const NodeId partner = net.nearest_node(p, id);
      if (partner != kInvalidNode) net.add_edge(id, partner);
    } else {
      net.remove_node(static_cast<NodeId>(rng.next_below(net.node_count())));
    }
    live_max = net.max_interference();
  }
  std::cout << "\nlive Scenario after " << config.events
            << " incremental events: " << net.node_count()
            << " nodes, I(G') = " << live_max
            << "\nengine stats: " << net.stats_json().dump() << '\n';
  return 0;
}
