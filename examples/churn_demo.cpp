/// Churn walkthrough: watch both interference measures as nodes join and
/// leave a live network, with the topology recomputed after every event.
///
///   $ ./churn_demo            # MST, 50 nodes, 40 events
///   $ ./churn_demo gabriel 80 100 7   # algorithm, nodes, events, seed

#include <cstdlib>
#include <iostream>

#include "rim/io/table.hpp"
#include "rim/sim/churn.hpp"
#include "rim/topology/registry.hpp"

int main(int argc, char** argv) {
  using namespace rim;

  const std::string name = argc > 1 ? argv[1] : "mst";
  const auto* algorithm = topology::find_algorithm(name);
  if (algorithm == nullptr) {
    std::cerr << "unknown algorithm '" << name << "'; available:";
    for (const auto& a : topology::all_algorithms()) std::cerr << ' ' << a.name;
    std::cerr << '\n';
    return 1;
  }

  sim::ChurnConfig config;
  config.initial_nodes =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 50;
  config.events = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 40;
  config.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  const sim::ChurnTrace trace = sim::run_churn(config, algorithm->build);

  io::Table table({"event", "change", "nodes", "I recv", "I send"});
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    const sim::ChurnStep& step = trace.steps[i];
    table.row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(i == 0 ? "start" : (step.added ? "+node" : "-node"))
        .cell(static_cast<std::uint64_t>(step.node_count))
        .cell(step.receiver_max)
        .cell(step.sender_max);
  }
  table.print(std::cout);
  std::cout << "\nlargest single-event jump: receiver-centric "
            << trace.max_receiver_jump() << ", sender-centric "
            << trace.max_sender_jump()
            << "\n(the receiver-centric measure is the calm one — the "
               "paper's robustness claim)\n";
  return 0;
}
