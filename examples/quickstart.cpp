/// Quickstart: the paper's Figure 2 in a dozen lines of librim.
///
/// Build a small topology, compute each node's receiver-centric
/// interference (Definition 3.1) and the graph interference
/// (Definition 3.2), and export the topology for plotting.
///
///   $ ./quickstart
///   $ ./quickstart --dot | neato -n2 -Tpng > figure2.png
///
/// Linking against librim is one way in; the same engine also serves
/// multi-tenant sessions over a wire protocol (rim::svc, DESIGN.md §9):
///
///   $ ./rim_cli serve --port 7421 &
///   $ ./rim_cli client --port 7421 --demo --shutdown

#include <cstring>
#include <iostream>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/io/dot.hpp"

int main(int argc, char** argv) {
  using namespace rim;

  // Five nodes mirroring Figure 2: u with a close neighbor, and a remote
  // node v whose long link makes its disk reach u.
  const geom::PointSet points{
      {0.0, 0.0},  // node 0: "u"
      {0.4, 0.0},  // node 1: u's direct neighbor
      {1.0, 0.3},  // node 2: "v"
      {2.1, 0.3},  // node 3: v's partner (long link)
      {2.4, 0.3},  // node 4
  };
  graph::Graph topology(points.size());
  topology.add_edge(0, 1);
  topology.add_edge(2, 3);
  topology.add_edge(3, 4);

  if (argc > 1 && std::strcmp(argv[1], "--dot") == 0) {
    io::write_dot(std::cout, topology, points);
    return 0;
  }

  // Each node's transmission radius is the distance to its farthest
  // neighbor; its interference is the number of other disks covering it.
  const auto radii = core::transmission_radii(topology, points);
  const core::InterferenceSummary summary =
      core::Assessor{}.assess(topology, points);

  std::cout << "node  radius  I(v)\n";
  for (NodeId v = 0; v < points.size(); ++v) {
    std::cout << "  " << v << "    " << radii[v] << "    " << summary.per_node[v]
              << '\n';
  }
  std::cout << "\nI(G) = " << summary.max
            << "   (node 0 is covered by its neighbor AND by remote node 2,\n"
            << "    exactly the situation of the paper's Figure 2)\n";
  return 0;
}
