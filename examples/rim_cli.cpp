/// rim_cli — command-line front end to librim, for pipeline use.
///
///   rim_cli generate  --kind uniform --n 200 --side 4 --seed 1 > points.csv
///   rim_cli topology  --algorithm mst --points points.csv > edges.csv
///   rim_cli interference --points points.csv --edges edges.csv
///                        [--strategy brute|grid|parallel|auto] [--json]
///   rim_cli survey    --points points.csv
///   rim_cli schedule  --points points.csv --edges edges.csv --model disk
///   rim_cli route     --points points.csv --edges edges.csv --from 0 --to 7
///   rim_cli serve     --port 7421 --max-sessions 64
///   rim_cli client    --port 7421 --demo --shutdown
///   rim_cli router    --port 7420 --backends 127.0.0.1:7421,127.0.0.1:7422
///   rim_cli shard-status --port 7420
///
/// All data flows through the CSV formats of rim/io/csv.hpp, so results can
/// be piped to external plotting tools. `serve`/`client` speak the rim::svc
/// wire protocol (DESIGN.md §9) over localhost TCP; `router` fronts N
/// `serve` backends with the consistent-hash shard tier (DESIGN.md §14) —
/// clients talk to it with the exact same protocol.

#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "rim/core/assessor.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/node_soa.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/stretch.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/io/csv.hpp"
#include "rim/io/json.hpp"
#include "rim/io/table.hpp"
#include "rim/phy/scheduling.hpp"
#include "rim/routing/geographic.hpp"
#include "rim/shard/router.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/svc/client.hpp"
#include "rim/svc/service.hpp"
#include "rim/svc/tcp.hpp"
#include "rim/topology/registry.hpp"

namespace {

using namespace rim;

/// Simple --key value argument map.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      // `--key value` pair unless the next token is another option (or
      // missing) — then a bare flag like --json or --shutdown. Negative
      // numbers ("-0.2") are values: only "--" marks an option.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[i + 1];
        ++i;
      } else {
        values_[key] = "true";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

geom::PointSet load_points(const Args& args) {
  const std::string path = args.get("points");
  if (path.empty()) throw std::runtime_error("--points <file> is required");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return io::read_points_csv(in);
}

graph::Graph load_edges(const Args& args, std::size_t n) {
  const std::string path = args.get("edges");
  if (path.empty()) throw std::runtime_error("--edges <file> is required");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return io::read_edges_csv(in, n);
}

int cmd_generate(const Args& args) {
  const std::string kind = args.get("kind", "uniform");
  const auto n = static_cast<std::size_t>(args.num("n", 100));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  geom::PointSet points;
  if (kind == "uniform") {
    points = sim::uniform_square(n, args.num("side", 3.0), seed);
  } else if (kind == "clustered") {
    points = sim::gaussian_clusters(
        n, static_cast<std::size_t>(args.num("clusters", 4)),
        args.num("side", 3.0), args.num("stddev", 0.2), seed);
  } else if (kind == "highway") {
    points = sim::uniform_highway(n, args.num("length", 10.0), seed).to_points();
  } else if (kind == "expchain") {
    points = highway::exponential_chain(n).to_points();
  } else if (kind == "figure1") {
    points = sim::figure1_instance(n, seed);
  } else if (kind == "twochains") {
    points = sim::two_exponential_chains(n).points;
  } else {
    std::cerr << "unknown --kind '" << kind
              << "' (uniform|clustered|highway|expchain|figure1|twochains)\n";
    return 1;
  }
  io::write_points_csv(std::cout, points);
  return 0;
}

int cmd_topology(const Args& args) {
  const geom::PointSet points = load_points(args);
  const std::string name = args.get("algorithm", "mst");
  const auto* algorithm = topology::find_algorithm(name);
  if (algorithm == nullptr) {
    std::cerr << "unknown --algorithm '" << name << "'; available:";
    for (const auto& a : topology::all_algorithms()) std::cerr << ' ' << a.name;
    std::cerr << '\n';
    return 1;
  }
  const graph::Graph udg = graph::build_udg(points, args.num("radius", 1.0));
  io::write_edges_csv(std::cout, algorithm->build(points, udg));
  return 0;
}

/// --strategy brute|grid|parallel|auto (default auto), assembled through
/// the EvalOptions builder so the CLI shares the core defaults verbatim.
core::EvalOptions parse_eval_options(const Args& args) {
  const std::string name = args.get("strategy", "auto");
  core::Strategy strategy = core::Strategy::kAuto;
  if (name == "brute") {
    strategy = core::Strategy::kBrute;
  } else if (name == "grid") {
    strategy = core::Strategy::kGrid;
  } else if (name == "parallel") {
    strategy = core::Strategy::kParallel;
  } else if (name != "auto") {
    throw std::runtime_error("unknown --strategy '" + name +
                             "' (brute|grid|parallel|auto)");
  }
  return core::EvalOptions{}.with_strategy(strategy);
}

int cmd_interference(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph topo = load_edges(args, points.size());
  // The redesigned assessment surface: radii from the topology, nodes in
  // SoA layout, one Assessor call (core/assessor.hpp).
  const std::vector<double> radii2 =
      core::transmission_radii_squared(topo, points);
  core::NodeSoA nodes;
  for (NodeId v = 0; v < points.size(); ++v) {
    nodes.insert(v, points[v], radii2[v]);
  }
  const core::InterferenceSummary recv =
      core::Assessor(parse_eval_options(args)).assess(nodes);
  const core::SenderCentricSummary send = core::evaluate_sender_centric(topo, points);
  if (args.flag("json")) {
    io::JsonObject object;
    object["nodes"] = io::Json(points.size());
    object["edges"] = io::Json(topo.edge_count());
    object["receiver_max"] = io::Json(recv.max);
    object["receiver_mean"] = io::Json(recv.mean);
    object["sender_max"] = io::Json(send.max);
    io::JsonArray per_node;
    for (std::uint32_t i : recv.per_node) per_node.emplace_back(i);
    object["receiver_per_node"] = io::Json(per_node);
    io::Json(object).write(std::cout);
    std::cout << '\n';
  } else {
    std::cout << "nodes " << points.size() << ", edges " << topo.edge_count()
              << "\nreceiver-centric I(G') = " << recv.max
              << " (mean " << recv.mean << ")\nsender-centric max coverage = "
              << send.max << '\n';
  }
  return 0;
}

int cmd_survey(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph udg = graph::build_udg(points, args.num("radius", 1.0));
  io::Table table({"algorithm", "I recv", "I send", "deg", "edges", "connected"});
  for (const auto& algorithm : topology::all_algorithms()) {
    const graph::Graph topo = algorithm.build(points, udg);
    table.row()
        .cell(algorithm.name)
        .cell(core::graph_interference(topo, points))
        .cell(core::evaluate_sender_centric(topo, points).max)
        .cell(static_cast<std::uint64_t>(topo.max_degree()))
        .cell(static_cast<std::uint64_t>(topo.edge_count()))
        .cell(graph::preserves_connectivity(udg, topo));
  }
  table.print(std::cout);
  return 0;
}

int cmd_schedule(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph topo = load_edges(args, points.size());
  const std::string model = args.get("model", "disk");
  const phy::Schedule schedule =
      model == "sinr" ? phy::schedule_links_sinr(topo, points)
                      : phy::schedule_links_disk(topo, points);
  std::cout << "model " << model << ": " << schedule.scheduled_links()
            << " links in " << schedule.length() << " slots\n";
  for (std::size_t k = 0; k < schedule.slots.size(); ++k) {
    std::cout << "slot " << k << ":";
    for (graph::Edge e : schedule.slots[k]) {
      std::cout << ' ' << e.u << "->" << e.v;
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_route(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph topo = load_edges(args, points.size());
  const auto from = static_cast<NodeId>(args.num("from", 0));
  const auto to = static_cast<NodeId>(
      args.num("to", static_cast<double>(points.size() - 1)));
  const routing::RouteResult r = routing::gfg_route(points, topo, from, to);
  std::cout << (r.delivered ? "delivered" : "FAILED") << " in " << r.hops()
            << " hops (" << r.greedy_hops << " greedy + " << r.perimeter_hops
            << " perimeter)\npath:";
  for (NodeId v : r.path) std::cout << ' ' << v;
  std::cout << '\n';
  return r.delivered ? 0 : 2;
}

// ---------------------------------------------------------------------------
// serve / client: the rim::svc wire protocol over localhost TCP.

svc::Service* g_serving = nullptr;

void handle_stop_signal(int) {
  if (g_serving != nullptr) g_serving->request_shutdown();
}

/// `rim_cli serve --port N --max-sessions K [--max-live L] [--threads T]
///  [--spill-dir DIR]` — serve sessions until SIGINT/SIGTERM or a wire
/// `shutdown` command, then stop cleanly (joining every thread).
int cmd_serve(const Args& args) {
  svc::ServiceConfig config;
  config.limits.max_sessions =
      static_cast<std::size_t>(args.num("max-sessions", 64));
  config.limits.max_live_sessions = static_cast<std::size_t>(
      args.num("max-live", double(config.limits.max_live_sessions)));
  config.limits.max_in_flight = static_cast<std::size_t>(
      args.num("max-in-flight", double(config.limits.max_in_flight)));
  config.limits.spill_dir = args.get("spill-dir");
  config.batch_pool_threads = static_cast<std::size_t>(args.num("threads", 0));
  config.allow_shutdown = true;

  svc::Service service(config);
  svc::TcpServerConfig tcp;
  tcp.port = static_cast<std::uint16_t>(args.num("port", 7421));
  tcp.dispatch_threads = static_cast<std::size_t>(args.num("threads", 0));
  svc::TcpServer server(service, tcp);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "serve: " << error << '\n';
    return 1;
  }
  g_serving = &service;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::cout << "rim_cli serve: listening on 127.0.0.1:" << server.port()
            << " (max " << config.limits.max_sessions << " sessions, "
            << config.limits.max_live_sessions << " live)" << std::endl;
  service.wait_shutdown();
  server.stop();
  g_serving = nullptr;
  const svc::ServiceCounters& c = service.counters();
  std::cout << "rim_cli serve: clean shutdown after " << c.requests.value()
            << " requests (" << c.ok.value() << " ok, " << c.errors.value()
            << " errors, " << c.rejected_overloaded.value() << " shed)\n";
  return 0;
}

shard::Router* g_routing = nullptr;

void handle_router_stop_signal(int) {
  if (g_routing != nullptr) g_routing->request_shutdown();
}

/// `rim_cli router --port N --backends host:port[,host:port...]
///  [--vnodes V] [--ship-every K] [--health-interval-ms M]
///  [--exchange-deadline-ms D] [--probe-deadline-ms P] [--threads T]` —
/// front the listed `serve` backends with the consistent-hash shard tier
/// (DESIGN.md §14): clients speak the unchanged wire protocol to this
/// port; sessions are placed on the ring, replicated to their peer shard
/// every K mutating commands, and transparently failed over when a
/// backend dies. Health probes run on a dedicated connection with a short
/// deadline (--probe-deadline-ms, default 2000) so a wedged backend is
/// detected; forwards block with no deadline by default
/// (--exchange-deadline-ms 0) — a slow million-node apply_batch is not a
/// dead backend.
int cmd_router(const Args& args) {
  const std::string backends = args.get("backends");
  if (backends.empty()) {
    std::cerr << "router: --backends host:port[,host:port...] is required\n";
    return 1;
  }
  shard::RouterConfig config;
  const auto forward_deadline =
      static_cast<std::uint32_t>(args.num("exchange-deadline-ms", 0));
  const auto probe_deadline =
      static_cast<std::uint32_t>(args.num("probe-deadline-ms", 2000));
  const auto make_connect = [](const std::string& host, std::uint16_t port,
                               std::uint32_t deadline_ms) {
    return [host, port, deadline_ms]() -> std::unique_ptr<svc::Transport> {
      auto transport = std::make_unique<svc::TcpClientTransport>();
      transport->exchange_deadline_ms = deadline_ms;
      std::string error;
      if (!transport->connect_to(host, port, error)) return nullptr;
      return transport;
    };
  };
  std::stringstream list(backends);
  std::string endpoint;
  while (std::getline(list, endpoint, ',')) {
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "router: backend '" << endpoint << "' is not host:port\n";
      return 1;
    }
    const std::string host = endpoint.substr(0, colon);
    const auto port =
        static_cast<std::uint16_t>(std::stoul(endpoint.substr(colon + 1)));
    config.backends.push_back({endpoint,
                               make_connect(host, port, forward_deadline),
                               make_connect(host, port, probe_deadline)});
  }
  config.vnodes = static_cast<std::size_t>(args.num("vnodes", 64));
  config.replication.ship_every =
      static_cast<std::size_t>(args.num("ship-every", 1));
  config.health_interval_ms =
      static_cast<std::uint64_t>(args.num("health-interval-ms", 200));
  config.allow_shutdown = true;

  shard::Router router(std::move(config));
  svc::TcpServerConfig tcp;
  tcp.port = static_cast<std::uint16_t>(args.num("port", 7420));
  tcp.dispatch_threads = static_cast<std::size_t>(args.num("threads", 0));
  svc::TcpServer server(router, tcp);
  std::string error;
  if (!server.start(error)) {
    std::cerr << "router: " << error << '\n';
    return 1;
  }
  router.start_health_monitor();
  g_routing = &router;
  std::signal(SIGINT, handle_router_stop_signal);
  std::signal(SIGTERM, handle_router_stop_signal);
  std::cout << "rim_cli router: listening on 127.0.0.1:" << server.port()
            << " over " << router.config().backends.size() << " backends"
            << std::endl;
  router.wait_shutdown();
  server.stop();
  router.stop();
  g_routing = nullptr;
  const shard::RouterCounters& c = router.counters();
  std::cout << "rim_cli router: clean shutdown after " << c.requests.value()
            << " requests (" << c.ok.value() << " ok, " << c.errors.value()
            << " errors, " << c.failovers.value() << " failovers, "
            << c.sessions_moved.value() << " sessions moved, "
            << c.lost_sessions.value() << " lost)\n";
  return 0;
}

/// `rim_cli shard-status --port N [--host H]` — asks a router for its
/// shard_status document and prints it plus a grep-friendly summary.
int cmd_shard_status(const Args& args) {
  svc::TcpClientTransport transport;
  std::string error;
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.num("port", 7420));
  if (!transport.connect_to(host, port, error)) {
    std::cerr << "shard-status: " << error << '\n';
    return 1;
  }
  io::JsonObject request;
  request["cmd"] = io::Json("shard_status");
  request["id"] = io::Json(std::uint64_t{1});
  std::string response_frame;
  if (transport.roundtrip(svc::encode_frame(io::Json(std::move(request)).dump()),
                          response_frame, error) != svc::TransportStatus::kOk) {
    std::cerr << "shard-status: " << error << '\n';
    return 1;
  }
  std::size_t consumed = 0;
  std::string payload;
  if (svc::try_decode_frame(response_frame, 1u << 26, consumed, payload) !=
      svc::FrameStatus::kFrame) {
    std::cerr << "shard-status: bad response frame\n";
    return 1;
  }
  io::Json document;
  if (!io::Json::parse(payload, document, error)) {
    std::cerr << "shard-status: " << error << '\n';
    return 1;
  }
  std::cout << payload << '\n';
  const io::Json* result = document.find("result");
  if (result != nullptr) {
    const auto field = [&](const char* key) -> std::uint64_t {
      const io::Json* value = result->find(key);
      return value != nullptr
                 ? static_cast<std::uint64_t>(value->as_number(0.0))
                 : 0;
    };
    std::cout << "shard-status: sessions=" << field("sessions")
              << " moved=" << field("sessions_moved")
              << " lost=" << field("lost_sessions")
              << " failovers=" << field("failovers") << '\n';
  }
  return 0;
}

/// `rim_cli client --port N [--host H] [--demo [--keep]] [--touch K]
///  [--shutdown]` — pings the server; with --demo drives one session of
/// topology churn through the wire and prints the interference answer
/// (--keep leaves the session open for later --touch probes); --touch K
/// re-queries sessions 1..K — after a backend kill this is the
/// transparent-restore check; with --shutdown stops the server
/// afterwards.
int cmd_client(const Args& args) {
  svc::TcpClientTransport transport;
  std::string error;
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.num("port", 7421));
  if (!transport.connect_to(host, port, error)) {
    std::cerr << "client: " << error << '\n';
    return 1;
  }
  svc::Client client(transport);
  if (const svc::SvcResult<void> pong = client.try_ping(); !pong.has_value()) {
    std::cerr << "client: ping failed: " << pong.error().message << '\n';
    return 1;
  }
  std::cout << "client: ping ok (" << host << ':' << port << ")\n";

  if (args.flag("demo")) {
    const svc::SvcResult<std::uint64_t> opened = client.try_create_session();
    if (!opened.has_value()) {
      std::cerr << "client: create_session: " << opened.error().message << '\n';
      return 1;
    }
    const std::uint64_t session = opened.value();
    const std::vector<core::Mutation> batch = {
        core::Mutation::add_node({0.0, 0.0}),
        core::Mutation::add_node({1.0, 0.0}),
        core::Mutation::add_node({0.5, 0.8}),
        core::Mutation::add_node({2.25, 0.5}),
        core::Mutation::add_edge(0, 1),
        core::Mutation::add_edge(1, 2),
        core::Mutation::add_edge(0, 2),
        core::Mutation::add_edge(1, 3),
    };
    const svc::SvcResult<core::BatchResult> applied =
        client.try_apply_batch(session, batch);
    if (!applied.has_value()) {
      std::cerr << "client: apply_batch: " << applied.error().message << '\n';
      return 1;
    }
    const svc::SvcResult<io::Json> interference =
        client.try_query_interference(session);
    if (!interference.has_value()) {
      std::cerr << "client: query_interference: " << interference.error().message
                << '\n';
      return 1;
    }
    std::cout << "client: session " << session << " applied "
              << applied.value().applied << " mutations; interference ";
    interference.value().write(std::cout);
    std::cout << '\n';
    if (args.flag("keep")) {
      std::cout << "client: session " << session << " kept open\n";
    } else if (const svc::SvcResult<void> closed =
                   client.try_close_session(session);
               !closed.has_value()) {
      std::cerr << "client: close_session: " << closed.error().message << '\n';
      return 1;
    }
  }
  if (const auto touch = static_cast<std::uint64_t>(args.num("touch", 0));
      touch > 0) {
    // Re-query sessions 1..K (wire ids are allocated from 1): each answer
    // proves the session's state survived — when a backend was killed in
    // between, that its replica was adopted and replayed transparently.
    std::uint64_t answered = 0;
    for (std::uint64_t session = 1; session <= touch; ++session) {
      const svc::SvcResult<io::Json> interference =
          client.try_query_interference(session);
      if (!interference.has_value()) {
        std::cerr << "client: touch session " << session << ": "
                  << interference.error().message << '\n';
        continue;
      }
      const io::Json* total = interference.value().find("total");
      std::cout << "client: session " << session << " interference total="
                << (total != nullptr
                        ? static_cast<std::uint64_t>(total->as_number(0.0))
                        : 0)
                << '\n';
      ++answered;
    }
    std::cout << "client: transparent restore check: " << answered << "/"
              << touch << " sessions answered\n";
    if (answered != touch) return 1;
  }
  if (args.flag("shutdown")) {
    if (const svc::SvcResult<void> down = client.try_shutdown();
        !down.has_value()) {
      std::cerr << "client: shutdown: " << down.error().message << '\n';
      return 1;
    }
    std::cout << "client: server shutdown acknowledged\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: rim_cli "
                 "<generate|topology|interference|survey|schedule|route"
                 "|serve|client|router|shard-status> [--key value ...]\n";
    return 1;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "topology") return cmd_topology(args);
    if (command == "interference") return cmd_interference(args);
    if (command == "survey") return cmd_survey(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "route") return cmd_route(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "client") return cmd_client(args);
    if (command == "router") return cmd_router(args);
    if (command == "shard-status") return cmd_shard_status(args);
    std::cerr << "unknown command '" << command << "'\n";
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
