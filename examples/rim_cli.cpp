/// rim_cli — command-line front end to librim, for pipeline use.
///
///   rim_cli generate  --kind uniform --n 200 --side 4 --seed 1 > points.csv
///   rim_cli topology  --algorithm mst --points points.csv > edges.csv
///   rim_cli interference --points points.csv --edges edges.csv [--json]
///   rim_cli survey    --points points.csv
///   rim_cli schedule  --points points.csv --edges edges.csv --model disk
///   rim_cli route     --points points.csv --edges edges.csv --from 0 --to 7
///
/// All data flows through the CSV formats of rim/io/csv.hpp, so results can
/// be piped to external plotting tools.

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "rim/core/interference.hpp"
#include "rim/core/radii.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/stretch.hpp"
#include "rim/graph/udg.hpp"
#include "rim/highway/highway_instance.hpp"
#include "rim/io/csv.hpp"
#include "rim/io/json.hpp"
#include "rim/io/table.hpp"
#include "rim/phy/scheduling.hpp"
#include "rim/routing/geographic.hpp"
#include "rim/sim/adversarial.hpp"
#include "rim/sim/generators.hpp"
#include "rim/topology/registry.hpp"

namespace {

using namespace rim;

/// Simple --key value argument map.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      values_[key] = argv[i + 1];
    }
    if (argc % 2 == 1 && argc > 2) {
      // Trailing flag without value (e.g. --json) — store as "true".
      std::string key = argv[argc - 1];
      if (key.rfind("--", 0) == 0) values_[key.substr(2)] = "true";
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

geom::PointSet load_points(const Args& args) {
  const std::string path = args.get("points");
  if (path.empty()) throw std::runtime_error("--points <file> is required");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return io::read_points_csv(in);
}

graph::Graph load_edges(const Args& args, std::size_t n) {
  const std::string path = args.get("edges");
  if (path.empty()) throw std::runtime_error("--edges <file> is required");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return io::read_edges_csv(in, n);
}

int cmd_generate(const Args& args) {
  const std::string kind = args.get("kind", "uniform");
  const auto n = static_cast<std::size_t>(args.num("n", 100));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  geom::PointSet points;
  if (kind == "uniform") {
    points = sim::uniform_square(n, args.num("side", 3.0), seed);
  } else if (kind == "clustered") {
    points = sim::gaussian_clusters(
        n, static_cast<std::size_t>(args.num("clusters", 4)),
        args.num("side", 3.0), args.num("stddev", 0.2), seed);
  } else if (kind == "highway") {
    points = sim::uniform_highway(n, args.num("length", 10.0), seed).to_points();
  } else if (kind == "expchain") {
    points = highway::exponential_chain(n).to_points();
  } else if (kind == "figure1") {
    points = sim::figure1_instance(n, seed);
  } else if (kind == "twochains") {
    points = sim::two_exponential_chains(n).points;
  } else {
    std::cerr << "unknown --kind '" << kind
              << "' (uniform|clustered|highway|expchain|figure1|twochains)\n";
    return 1;
  }
  io::write_points_csv(std::cout, points);
  return 0;
}

int cmd_topology(const Args& args) {
  const geom::PointSet points = load_points(args);
  const std::string name = args.get("algorithm", "mst");
  const auto* algorithm = topology::find_algorithm(name);
  if (algorithm == nullptr) {
    std::cerr << "unknown --algorithm '" << name << "'; available:";
    for (const auto& a : topology::all_algorithms()) std::cerr << ' ' << a.name;
    std::cerr << '\n';
    return 1;
  }
  const graph::Graph udg = graph::build_udg(points, args.num("radius", 1.0));
  io::write_edges_csv(std::cout, algorithm->build(points, udg));
  return 0;
}

int cmd_interference(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph topo = load_edges(args, points.size());
  const core::InterferenceSummary recv = core::evaluate_interference(topo, points);
  const core::SenderCentricSummary send = core::evaluate_sender_centric(topo, points);
  if (args.flag("json")) {
    io::JsonObject object;
    object["nodes"] = io::Json(points.size());
    object["edges"] = io::Json(topo.edge_count());
    object["receiver_max"] = io::Json(recv.max);
    object["receiver_mean"] = io::Json(recv.mean);
    object["sender_max"] = io::Json(send.max);
    io::JsonArray per_node;
    for (std::uint32_t i : recv.per_node) per_node.emplace_back(i);
    object["receiver_per_node"] = io::Json(per_node);
    io::Json(object).write(std::cout);
    std::cout << '\n';
  } else {
    std::cout << "nodes " << points.size() << ", edges " << topo.edge_count()
              << "\nreceiver-centric I(G') = " << recv.max
              << " (mean " << recv.mean << ")\nsender-centric max coverage = "
              << send.max << '\n';
  }
  return 0;
}

int cmd_survey(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph udg = graph::build_udg(points, args.num("radius", 1.0));
  io::Table table({"algorithm", "I recv", "I send", "deg", "edges", "connected"});
  for (const auto& algorithm : topology::all_algorithms()) {
    const graph::Graph topo = algorithm.build(points, udg);
    table.row()
        .cell(algorithm.name)
        .cell(core::graph_interference(topo, points))
        .cell(core::evaluate_sender_centric(topo, points).max)
        .cell(static_cast<std::uint64_t>(topo.max_degree()))
        .cell(static_cast<std::uint64_t>(topo.edge_count()))
        .cell(graph::preserves_connectivity(udg, topo));
  }
  table.print(std::cout);
  return 0;
}

int cmd_schedule(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph topo = load_edges(args, points.size());
  const std::string model = args.get("model", "disk");
  const phy::Schedule schedule =
      model == "sinr" ? phy::schedule_links_sinr(topo, points)
                      : phy::schedule_links_disk(topo, points);
  std::cout << "model " << model << ": " << schedule.scheduled_links()
            << " links in " << schedule.length() << " slots\n";
  for (std::size_t k = 0; k < schedule.slots.size(); ++k) {
    std::cout << "slot " << k << ":";
    for (graph::Edge e : schedule.slots[k]) {
      std::cout << ' ' << e.u << "->" << e.v;
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_route(const Args& args) {
  const geom::PointSet points = load_points(args);
  const graph::Graph topo = load_edges(args, points.size());
  const auto from = static_cast<NodeId>(args.num("from", 0));
  const auto to = static_cast<NodeId>(
      args.num("to", static_cast<double>(points.size() - 1)));
  const routing::RouteResult r = routing::gfg_route(points, topo, from, to);
  std::cout << (r.delivered ? "delivered" : "FAILED") << " in " << r.hops()
            << " hops (" << r.greedy_hops << " greedy + " << r.perimeter_hops
            << " perimeter)\npath:";
  for (NodeId v : r.path) std::cout << ' ' << v;
  std::cout << '\n';
  return r.delivered ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: rim_cli "
                 "<generate|topology|interference|survey|schedule|route> "
                 "[--key value ...]\n";
    return 1;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "topology") return cmd_topology(args);
    if (command == "interference") return cmd_interference(args);
    if (command == "survey") return cmd_survey(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "route") return cmd_route(args);
    std::cerr << "unknown command '" << command << "'\n";
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
