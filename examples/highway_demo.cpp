/// Highway model walkthrough (paper Section 5): build an exponential node
/// chain (or a user-chosen 1-D instance), run all four ways of connecting
/// it — linear chain, A_exp, A_gen, A_apx — and report interference next to
/// the theoretical bounds.
///
///   $ ./highway_demo            # exponential chain, n = 64
///   $ ./highway_demo 256        # exponential chain, n = 256
///   $ ./highway_demo 500 25.0 7 # uniform highway: n, length, seed

#include <cstdlib>
#include <iostream>

#include "rim/highway/a_apx.hpp"
#include "rim/highway/a_exp.hpp"
#include "rim/highway/a_gen.hpp"
#include "rim/highway/bounds.hpp"
#include "rim/highway/critical.hpp"
#include "rim/highway/interference_1d.hpp"
#include "rim/highway/linear_chain.hpp"
#include "rim/io/table.hpp"
#include "rim/sim/generators.hpp"

int main(int argc, char** argv) {
  using namespace rim;

  std::size_t n = 64;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));

  highway::HighwayInstance instance;
  bool is_exponential = argc <= 2;
  if (is_exponential) {
    instance = highway::exponential_chain(n);
    std::cout << "instance: exponential node chain, n = " << n << "\n";
  } else {
    const double length = std::atof(argv[2]);
    const std::uint64_t seed = argc > 3
                                   ? static_cast<std::uint64_t>(std::atoll(argv[3]))
                                   : 1;
    instance = sim::uniform_highway(n, length, seed);
    std::cout << "instance: uniform highway, n = " << n << ", length = "
              << length << ", seed = " << seed << "\n";
  }

  const std::size_t delta = instance.max_degree(1.0);
  const std::uint32_t g = highway::gamma(instance, 1.0);
  std::cout << "Δ (max UDG degree) = " << delta << ", γ (critical number) = "
            << g << "\n\n";

  io::Table table({"topology", "I(G')", "edges", "note"});

  const graph::Graph linear = highway::linear_chain(instance, 1.0);
  table.row()
      .cell("linear chain")
      .cell(highway::graph_interference_1d(instance, linear))
      .cell(static_cast<std::uint64_t>(linear.edge_count()))
      .cell("= γ by Definition 5.2");

  if (instance.span() <= 1.0) {
    const highway::AExpResult aexp = highway::a_exp(instance);
    table.row()
        .cell("A_exp")
        .cell(aexp.interference)
        .cell(static_cast<std::uint64_t>(aexp.topology.edge_count()))
        .cell("scan-line hubs (Sec. 5.1)");
  }

  const highway::AGenResult agen = highway::a_gen(instance, 1.0);
  table.row()
      .cell("A_gen")
      .cell(highway::graph_interference_1d(instance, agen.topology))
      .cell(static_cast<std::uint64_t>(agen.topology.edge_count()))
      .cell("O(sqrt Δ) worst case (Thm 5.4)");

  const highway::AApxResult apx = highway::a_apx(instance, 1.0);
  table.row()
      .cell("A_apx")
      .cell(highway::graph_interference_1d(instance, apx.topology))
      .cell(static_cast<std::uint64_t>(apx.topology.edge_count()))
      .cell(apx.used_agen ? "chose A_gen branch" : "chose linear branch");

  table.print(std::cout);

  if (is_exponential) {
    std::cout << "\nbounds for the exponential chain: lower (Thm 5.2) = "
              << highway::exponential_chain_lower_bound(n)
              << ", A_exp upper (Thm 5.1) = " << highway::aexp_upper_bound(n)
              << "\n";
  } else {
    std::cout << "\nLemma 5.5 lower bound for ANY topology of this instance: "
              << highway::lemma55_lower_bound(g) << "\n";
  }
  return 0;
}
