#include "rim/core/assessor.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

#include "rim/core/sender_centric.hpp"
#include "rim/core/sinr.hpp"
#include "rim/simd/simd.hpp"

namespace rim::core {

InterferenceSummary Assessor::assess(const NodeSoA& nodes, Strategy strategy,
                                     const EvalOptions& options) const {
  assert(nodes.dense());
  // The sender-centric model attributes interference to *links*; a bare
  // store has none to attribute it to — use the topology overload.
  assert(options.model != Model::kSenderCentric);
  const std::size_t n = nodes.size();
  EvalOptions local = options;
  if (strategy != Strategy::kAuto) local.strategy = strategy;
  if (local.model == Model::kSinr) {
    return SinrAssessor{}.assess(nodes, local).to_interference();
  }
  if (local.resolve(n) == Strategy::kBrute) {
    // The SoA fast path: one vectorised coverage pass per receiver over the
    // store's contiguous columns, no index construction at all. An infinite
    // query radius turns the kernel's visited filter off; the receiver's
    // own disk (which always covers it when positive) is subtracted.
    const double* xs = nodes.xs().data();
    const double* ys = nodes.ys().data();
    const double* ws = nodes.radii2().data();
    constexpr double kUnbounded = std::numeric_limits<double>::infinity();
    std::vector<std::uint32_t> per_node(n);
    for (std::size_t v = 0; v < n; ++v) {
      const simd::CoverageCounts counts =
          simd::count_coverage(xs, ys, ws, n, xs[v], ys[v], kUnbounded);
      auto covered = static_cast<std::uint32_t>(counts.covered);
      if (ws[v] > 0.0) --covered;  // self-coverage
      per_node[v] = covered;
    }
    return InterferenceSummary::from_per_node(std::move(per_node));
  }
  const geom::PointSet points = nodes.positions();
  return InterferenceSummary::from_per_node(
      interference_vector_squared(points, nodes.radii2(), local));
}

InterferenceSummary Assessor::assess(const graph::Graph& topology,
                                     std::span<const geom::Vec2> points,
                                     const EvalOptions& options) const {
  if (options.model == Model::kSinr) {
    return SinrAssessor{}.assess(topology, points, options).to_interference();
  }
  if (options.model == Model::kSenderCentric) {
    // Project the per-edge coverage onto nodes so the three models share
    // one result type: a node carries the worst coverage among its
    // incident links. max over nodes == max over edges (every edge has
    // endpoints), so `max` is exactly the MobiHoc'04 I(G'); mean/total are
    // the node-projected aggregates, not the per-edge ones.
    const SenderCentricSummary sc =
        evaluate_sender_centric(topology, points, options);
    std::vector<std::uint32_t> per_node(points.size(), 0);
    std::size_t i = 0;
    for (const graph::Edge e : topology.edges()) {
      const std::uint32_t cov = sc.per_edge[i++];
      per_node[e.u] = std::max(per_node[e.u], cov);
      per_node[e.v] = std::max(per_node[e.v], cov);
    }
    return InterferenceSummary::from_per_node(std::move(per_node));
  }
  Scenario scenario(points, topology, options);
  return scenario.summary();
}

Assessment Assessor::assess(Scenario& scenario,
                            std::span<const Mutation> mutations) const {
  const std::span<const std::uint32_t> current = scenario.interference();
  const std::size_t n0 = scenario.node_count();
  const std::vector<std::uint32_t> before(current.begin(), current.end());

  Assessment result;
  for (std::uint32_t i : before) {
    result.max_before = std::max(result.max_before, i);
  }

  // Run the sequence on a probe copy; `tag[cur]` names each current probe
  // id in the pre-mutation space (pre ids 0..n0-1, added nodes n0, n0+1,
  // ...), maintained across swap-with-last renames from removals.
  Scenario probe(scenario);
  std::vector<std::size_t> tag(n0);
  std::iota(tag.begin(), tag.end(), std::size_t{0});
  std::size_t next_added = n0;
  for (const Mutation& m : mutations) {
    if (m.kind == Mutation::Kind::kAddNode) {
      probe.apply(m);
      tag.push_back(next_added++);
    } else if (m.kind == Mutation::Kind::kRemoveNode) {
      if (m.v >= probe.node_count()) continue;
      const auto last = static_cast<NodeId>(probe.node_count() - 1);
      probe.apply(m);
      if (last != m.v) tag[m.v] = tag[last];
      tag.pop_back();
    } else {
      probe.apply(m);
    }
  }
  const std::span<const std::uint32_t> after = probe.interference();

  // Resolve where every pre-existing node ended up (kInvalidNode: removed)
  // and find the newest surviving addition.
  std::vector<NodeId> current_of(n0, kInvalidNode);
  std::size_t newest_tag = 0;
  NodeId newest_id = kInvalidNode;
  for (NodeId cur = 0; cur < tag.size(); ++cur) {
    if (tag[cur] < n0) {
      current_of[tag[cur]] = cur;
    } else if (tag[cur] >= newest_tag) {
      newest_tag = tag[cur];
      newest_id = cur;
    }
  }

  result.delta_per_node.resize(n0, 0);
  for (NodeId pre = 0; pre < n0; ++pre) {
    const NodeId cur = current_of[pre];
    const std::int64_t delta =
        cur == kInvalidNode
            ? -static_cast<std::int64_t>(before[pre])
            : static_cast<std::int64_t>(after[cur]) -
                  static_cast<std::int64_t>(before[pre]);
    result.delta_per_node[pre] = delta;
    if (delta != 0) result.affected_ids.push_back(pre);
  }
  result.max_after = probe.max_interference();
  if (newest_id != kInvalidNode) {
    result.newcomer_interference = after[newest_id];
  }
  return result;
}

NodeAdditionImpact Assessor::assess_addition(std::span<const geom::Vec2> points,
                                             const graph::Graph& topology,
                                             geom::Vec2 new_point,
                                             AttachPolicy policy) const {
  assert(points.size() == topology.node_count());
  NodeAdditionImpact impact;

  Scenario scenario(points, topology, options_);
  impact.sender_before = evaluate_sender_centric(topology, points).max;

  // The arrival as a mutation sequence: the node itself, plus (policy
  // permitting) the attachment edge to its nearest pre-existing neighbor.
  // The sequence is measured on a probe copy of the scenario.
  const auto newcomer = static_cast<NodeId>(points.size());
  std::array<Mutation, 2> sequence{Mutation::add_node(new_point), {}};
  std::size_t length = 1;
  if (policy == AttachPolicy::kNearestNeighbor && !points.empty()) {
    sequence[length++] =
        Mutation::add_edge(newcomer, scenario.nearest_node(new_point));
  }
  const Assessment assessment =
      assess(scenario, std::span<const Mutation>(sequence.data(), length));

  impact.receiver_before = assessment.max_before;
  impact.receiver_after = assessment.max_after;
  impact.newcomer_interference = assessment.newcomer_interference;
  for (const std::int64_t delta : assessment.delta_per_node) {
    if (delta > 0) {
      impact.receiver_max_node_increase =
          std::max(impact.receiver_max_node_increase,
                   static_cast<std::uint32_t>(delta));
    }
  }

  // The sender-centric comparison needs the mutated topology for real.
  for (std::size_t i = 0; i < length; ++i) scenario.apply(sequence[i]);
  const geom::PointSet mutated_points = scenario.points();
  impact.sender_after =
      evaluate_sender_centric(scenario.topology(), mutated_points).max;
  return impact;
}

NodeRemovalImpact Assessor::assess_removal(std::span<const geom::Vec2> points,
                                           const graph::Graph& topology,
                                           NodeId victim) const {
  assert(victim < topology.node_count());
  NodeRemovalImpact impact;

  Scenario scenario(points, topology, options_);
  const Assessment assessment =
      assess(scenario, Mutation::remove_node(victim));

  impact.receiver_before = assessment.max_before;
  impact.receiver_after = assessment.max_after;
  // The victim's own delta is -I(victim); only survivors can increase.
  for (const std::int64_t delta : assessment.delta_per_node) {
    if (delta > 0) {
      impact.receiver_max_node_increase =
          std::max(impact.receiver_max_node_increase,
                   static_cast<std::uint32_t>(delta));
    }
  }
  return impact;
}

}  // namespace rim::core
