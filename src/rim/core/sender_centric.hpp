#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/core/interference.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file sender_centric.hpp
/// The sender-centric interference model of Burkhart, von Rickenbach,
/// Wattenhofer, Zollinger (MobiHoc 2004) — the comparator our paper argues
/// against.
///
/// There, interference is attributed to *links*: communication over edge
/// e = {u, v} is assumed to happen at power just reaching the partner, so it
/// disturbs every node inside D(u, |uv|) ∪ D(v, |uv|). The coverage of the
/// edge is the number of such nodes (the endpoints themselves excluded,
/// following the original definition's "affected by other nodes" reading),
/// and the interference of a topology is the maximum edge coverage.
///
/// The Figure 1 experiment contrasts this measure's fragility (one extra
/// node can push it from O(1) to n) with the receiver-centric model's +1
/// robustness.

namespace rim::core {

/// Number of nodes (other than u and v themselves) covered by
/// D(u,|uv|) ∪ D(v,|uv|).
[[nodiscard]] std::uint32_t edge_coverage(std::span<const geom::Vec2> points,
                                          graph::Edge e);

/// Coverage of every edge of \p topology, in edge order.
[[nodiscard]] std::vector<std::uint32_t> coverage_vector(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

struct SenderCentricSummary {
  std::vector<std::uint32_t> per_edge;  ///< Cov(e) per edge.
  std::uint32_t max = 0;                ///< I(G') in the MobiHoc'04 model.
  double mean = 0.0;
};

[[nodiscard]] SenderCentricSummary evaluate_sender_centric(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

/// Strategy-aware evaluation: options.resolve(n) == kBrute runs the O(E*n)
/// pairwise loops above; any grid resolution queries a DynamicGrid keyed by
/// the median edge length instead — two disk queries per edge with an
/// epoch-stamp union dedup, O(E * disk-occupancy) total, which is what
/// makes the sender-centric comparator feasible on million-node
/// deployments (E23). Both paths count the identical exact predicate.
[[nodiscard]] SenderCentricSummary evaluate_sender_centric(
    const graph::Graph& topology, std::span<const geom::Vec2> points,
    const EvalOptions& options);

}  // namespace rim::core
