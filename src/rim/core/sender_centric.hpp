#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file sender_centric.hpp
/// The sender-centric interference model of Burkhart, von Rickenbach,
/// Wattenhofer, Zollinger (MobiHoc 2004) — the comparator our paper argues
/// against.
///
/// There, interference is attributed to *links*: communication over edge
/// e = {u, v} is assumed to happen at power just reaching the partner, so it
/// disturbs every node inside D(u, |uv|) ∪ D(v, |uv|). The coverage of the
/// edge is the number of such nodes (the endpoints themselves excluded,
/// following the original definition's "affected by other nodes" reading),
/// and the interference of a topology is the maximum edge coverage.
///
/// The Figure 1 experiment contrasts this measure's fragility (one extra
/// node can push it from O(1) to n) with the receiver-centric model's +1
/// robustness.

namespace rim::core {

/// Number of nodes (other than u and v themselves) covered by
/// D(u,|uv|) ∪ D(v,|uv|).
[[nodiscard]] std::uint32_t edge_coverage(std::span<const geom::Vec2> points,
                                          graph::Edge e);

/// Coverage of every edge of \p topology, in edge order.
[[nodiscard]] std::vector<std::uint32_t> coverage_vector(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

struct SenderCentricSummary {
  std::vector<std::uint32_t> per_edge;  ///< Cov(e) per edge.
  std::uint32_t max = 0;                ///< I(G') in the MobiHoc'04 model.
  double mean = 0.0;
};

[[nodiscard]] SenderCentricSummary evaluate_sender_centric(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

}  // namespace rim::core
