#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/geom/vec2.hpp"

/// \file node_soa.hpp
/// Structure-of-arrays node store with a stable-id ↔ dense-slot mapping.
///
/// The engine's per-node state used to be an array-of-structs scatter
/// (PointSet of interleaved Vec2 plus a separate radii vector). NodeSoA
/// keeps the same state as four contiguous columns — x, y, squared radius,
/// id — packed densely by *slot*, with an id → slot index on the side.
/// Removal compacts by swap-with-last: the last slot's node moves into the
/// vacated slot and only the mapping changes; ids stay stable.
///
/// core::Scenario layers its dense-id contract on top: it inserts id n at
/// slot n and renames the last id into a removed one (relabel), so its
/// id == slot invariant holds and the columns double as id-indexed arrays.
/// The mapping machinery is exercised directly by the NodeSoA property
/// tests (randomized op sequences, byte-identical serialize round-trips).

namespace rim::core {

class NodeSoA {
 public:
  NodeSoA() = default;

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] bool contains(NodeId id) const {
    return id < slot_of_.size() && slot_of_[id] != kNoSlot;
  }

  /// Pre-size every column (and the id map) for \p n nodes — one
  /// allocation per column instead of a doubling cascade when bulk-loading
  /// million-node deployments.
  void reserve(std::size_t n) {
    xs_.reserve(n);
    ys_.reserve(n);
    radii2_.reserve(n);
    ids_.reserve(n);
    slot_of_.reserve(n);
  }

  /// Insert node \p id (must not be present) at the next dense slot.
  void insert(NodeId id, geom::Vec2 p, double radius2 = 0.0);

  /// Remove \p id (must be present): the node in the last slot is swapped
  /// into its slot. Returns the id that moved (kInvalidNode when \p id
  /// occupied the last slot).
  NodeId remove(NodeId id);

  /// Rename \p from to \p to (must not be present) without touching any
  /// column; only the id ↔ slot mapping changes.
  void relabel(NodeId from, NodeId to);

  // --- by-id accessors ----------------------------------------------------

  [[nodiscard]] std::uint32_t slot_of(NodeId id) const {
    return slot_of_[id];
  }
  [[nodiscard]] NodeId id_at(std::uint32_t slot) const { return ids_[slot]; }

  [[nodiscard]] geom::Vec2 position(NodeId id) const {
    const std::uint32_t s = slot_of_[id];
    return {xs_[s], ys_[s]};
  }
  [[nodiscard]] double radius2(NodeId id) const {
    return radii2_[slot_of_[id]];
  }
  void set_position(NodeId id, geom::Vec2 p) {
    const std::uint32_t s = slot_of_[id];
    xs_[s] = p.x;
    ys_[s] = p.y;
  }
  void set_radius2(NodeId id, double radius2) {
    radii2_[slot_of_[id]] = radius2;
  }

  // --- dense column views (slot-indexed) ----------------------------------

  [[nodiscard]] std::span<const double> xs() const { return xs_; }
  [[nodiscard]] std::span<const double> ys() const { return ys_; }
  [[nodiscard]] std::span<const double> radii2() const { return radii2_; }
  [[nodiscard]] std::span<const NodeId> ids() const { return ids_; }

  /// True when id == slot for every node (Scenario's dense-id invariant).
  [[nodiscard]] bool dense() const;

  /// Positions materialised as interleaved Vec2, in slot order (the
  /// snapshot/serialization surface and the stateless-kernel adapter).
  [[nodiscard]] geom::PointSet positions() const;

  // --- canonical serialization --------------------------------------------

  /// Canonical byte serialization: node records in ascending id order,
  /// little-endian (id, x bits, y bits, radius2 bits). Independent of slot
  /// history, so two stores with equal logical content serialize
  /// identically, and serialize ∘ deserialize ∘ serialize is a fixpoint.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Rebuild from serialize() output; nullopt on malformed input.
  [[nodiscard]] static std::optional<NodeSoA> deserialize(
      std::span<const std::uint8_t> bytes);

  /// FNV-1a over the canonical serialization.
  [[nodiscard]] std::uint64_t checksum() const;

  friend bool operator==(const NodeSoA& a, const NodeSoA& b);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> radii2_;
  std::vector<NodeId> ids_;            ///< slot -> id
  std::vector<std::uint32_t> slot_of_; ///< id -> slot (kNoSlot when absent)
};

}  // namespace rim::core
