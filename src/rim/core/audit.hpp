#pragma once

#include <span>
#include <string>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/obs/metrics.hpp"

/// \file audit.hpp
/// Receiver-centric invariant auditing for the incremental engine.
///
/// The engine's whole value proposition is that its cached state always
/// equals what a from-scratch evaluation would produce. The auditor makes
/// that checkable at runtime, after any epoch of mutations or faults:
///
///  - structure: adjacency lists are symmetric, self-loop- and
///    duplicate-free, and the edge count matches; every cached r_v^2
///    equals the exact farthest-neighbor squared distance (Section 2's
///    induced radius assignment).
///  - interference: the cached I(v) vector is bit-identical to the
///    Strategy::kBrute oracle over the current points and radii
///    (Definition 3.1/3.2).
///  - robustness (Definition 3.2 / Figure 1): adding one node attached to
///    its nearest neighbor perturbs every pre-existing I(v) by at most 1
///    when the partner's disk already covers the newcomer (only the
///    newcomer's own disk appears), at most 2 otherwise (the partner's
///    disk may also grow); and no delta is ever negative.
///
/// rim_fuzz drives randomized mutation/fault schedules against these
/// checks; sim::run_trace audits every epoch and reports the first
/// violation as a replayable trace.

namespace rim::core {

struct AuditOptions {
  bool check_structure = true;
  bool check_interference = true;
  /// Stop collecting after this many violations (the first one is what a
  /// minimized trace reproduces; the rest are diagnostics).
  std::size_t max_violations = 16;
};

struct AuditReport {
  std::size_t checks = 0;  ///< individual assertions evaluated
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] io::Json to_json() const;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditOptions options = {}) : options_(options) {}

  /// Verify structural and interference invariants of the scenario's
  /// current state (refreshes the evaluation cache if dirty).
  [[nodiscard]] AuditReport audit(Scenario& scenario) const;

  /// Verify the single-addition robustness bound at each probe position
  /// via core::Assessor (the scenario itself is not mutated).
  [[nodiscard]] AuditReport audit_robustness(
      Scenario& scenario, std::span<const geom::Vec2> probes) const;

  /// Lifetime counters (obs layer): audits run, checks evaluated,
  /// violations found.
  [[nodiscard]] io::Json stats_json() const;

 private:
  void record(AuditReport& report, std::string message) const;

  AuditOptions options_;
  mutable obs::Counter audits_;
  mutable obs::Counter checks_;
  mutable obs::Counter violations_;
};

}  // namespace rim::core
