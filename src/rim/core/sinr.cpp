#include "rim/core/sinr.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "rim/core/radii.hpp"
#include "rim/geom/dynamic_grid.hpp"
#include "rim/geom/grid_kernels.hpp"
#include "rim/simd/simd.hpp"

namespace rim::core {

namespace {

/// FNV-1a over the bit patterns of a double column, in index (= id) order —
/// the SINR analogue of fnv1a_words, byte order little-endian-of-the-bits
/// so the digest is platform-independent.
std::uint64_t fnv1a_doubles(std::span<const double> values) {
  constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t h = kOffset;
  for (const double v : values) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xFFU;
      h *= kPrime;
    }
  }
  return h;
}

/// Cell size for the SINR scatter grid: the median positive *cutoff*
/// radius (the scatter disks are cutoff disks, not transmission disks —
/// same heuristic as the receiver-centric engine, different disk family).
double pick_cell_size(std::span<const double> radii2, double cutoff_factor) {
  std::vector<double> positive;
  positive.reserve(radii2.size());
  for (const double r2 : radii2) {
    if (r2 > 0.0) positive.push_back(r2 * cutoff_factor);
  }
  if (positive.empty()) return 1.0;
  const auto mid =
      positive.begin() + static_cast<std::ptrdiff_t>(positive.size() / 2);
  std::nth_element(positive.begin(), mid, positive.end());
  return std::max(std::sqrt(*mid), 1e-12);
}

SinrSummary assess_impl(const NodeSoA& nodes, const EvalOptions& options,
                        bool use_scalar) {
  assert(nodes.dense());
  const SinrOptions& sinr = options.sinr;
  assert(sinr.half_alpha >= 1);
  const std::size_t n = nodes.size();
  const double cf = sinr.cutoff_factor();
  const double kappa = sinr.kappa();
  const double sig = sinr.significant_threshold();
  const int h = sinr.half_alpha;
  const double* xs = nodes.xs().data();
  const double* ys = nodes.ys().data();
  const double* ws = nodes.radii2().data();

  std::vector<double> power(n, 0.0);
  std::vector<std::uint32_t> counts(n, 0);

  if (options.resolve(n) == Strategy::kBrute) {
    // Gather: one vectorised pass per receiver over the whole columns —
    // the SINR shape of the receiver-centric SoA fast path.
    for (std::size_t v = 0; v < n; ++v) {
      const simd::SinrAccum acc =
          use_scalar ? simd::sinr_gather_scalar(xs, ys, ws, n, xs[v], ys[v],
                                                cf, kappa, h, sig)
                     : simd::sinr_gather(xs, ys, ws, n, xs[v], ys[v], cf,
                                         kappa, h, sig);
      power[v] = acc.power;
      counts[v] = static_cast<std::uint32_t>(acc.significant);
    }
  } else {
    // Scatter: serial pass over transmitters in ascending id order through
    // a grid keyed by the cutoff disks (kGrid and kParallel both land
    // here — determinism over parallelism, see the header). Emitted power
    // kappa * w^h is rounded once here, exactly as the gather kernel
    // rounds kappa * ipow(w, h) before its divide, so per-pair
    // contributions are bit-identical across strategies; only the
    // per-receiver accumulation order differs.
    geom::DynamicGrid grid(pick_cell_size(nodes.radii2(), cf));
    grid.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      grid.insert(static_cast<NodeId>(v), {xs[v], ys[v]}, ws[v]);
    }
    for (std::size_t t = 0; t < n; ++t) {
      const double w = ws[t];
      if (!(w > 0.0)) continue;
      const double p = kappa * simd::detail::ipow(w, h);
      const geom::Vec2 center{xs[t], ys[t]};
      if (use_scalar) {
        geom::accumulate_path_loss_scalar(grid, center, w * cf, p, h, sig,
                                          power.data(), counts.data());
      } else {
        geom::accumulate_path_loss(grid, center, w * cf, p, h, sig,
                                   power.data(), counts.data());
      }
    }
  }
  return SinrSummary::from_columns(std::move(power), std::move(counts));
}

}  // namespace

double SinrOptions::cutoff_factor() const {
  // x^(1/h) with x = beta * margin / far_field_rel: repeated IEEE sqrt
  // while h stays even (correctly rounded, hence deterministic across
  // platforms); an odd residual exponent falls back to std::pow, which is
  // only as deterministic as the host libm — the default h = 2 and every
  // power-of-two h avoid it.
  double x = beta * margin / far_field_rel;
  int h = half_alpha;
  while (h > 1 && (h & 1) == 0) {
    x = std::sqrt(x);
    h >>= 1;
  }
  if (h > 1) x = std::pow(x, 1.0 / static_cast<double>(h));
  return x;
}

SinrSummary SinrSummary::from_columns(std::vector<double> power,
                                      std::vector<std::uint32_t> per_node) {
  assert(power.size() == per_node.size());
  SinrSummary s;
  s.power = std::move(power);
  s.per_node = std::move(per_node);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < s.per_node.size(); ++i) {
    s.max = std::max(s.max, s.per_node[i]);
    total += s.per_node[i];
    s.max_power = std::max(s.max_power, s.power[i]);
  }
  s.total = total;
  s.mean = s.per_node.empty() ? 0.0
                              : static_cast<double>(total) /
                                    static_cast<double>(s.per_node.size());
  s.power_checksum = fnv1a_doubles(s.power);
  return s;
}

InterferenceSummary SinrSummary::to_interference() const {
  return InterferenceSummary::from_per_node(per_node);
}

SinrSummary SinrAssessor::assess(const NodeSoA& nodes,
                                 const EvalOptions& options) const {
  return assess_impl(nodes, options, /*use_scalar=*/false);
}

SinrSummary SinrAssessor::assess_scalar(const NodeSoA& nodes,
                                        const EvalOptions& options) const {
  return assess_impl(nodes, options, /*use_scalar=*/true);
}

SinrSummary SinrAssessor::assess(const graph::Graph& topology,
                                 std::span<const geom::Vec2> points,
                                 const EvalOptions& options) const {
  assert(topology.node_count() == points.size());
  const std::vector<double> radii2 =
      transmission_radii_squared(topology, points);
  NodeSoA nodes;
  nodes.reserve(points.size());
  for (std::size_t v = 0; v < points.size(); ++v) {
    nodes.insert(static_cast<NodeId>(v), points[v], radii2[v]);
  }
  return assess(nodes, options);
}

}  // namespace rim::core
