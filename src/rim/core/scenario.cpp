#include "rim/core/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "rim/core/snapshot.hpp"
#include "rim/core/speculative.hpp"
#include "rim/geom/grid_kernels.hpp"
#include "rim/parallel/parallel_for.hpp"

namespace rim::core {

namespace {

/// Same heuristic as the stateless grid evaluator: square cells keyed by
/// the median positive transmission radius.
double pick_cell_size(std::span<const double> radii2) {
  std::vector<double> positive;
  positive.reserve(radii2.size());
  for (double r2 : radii2) {
    if (r2 > 0.0) positive.push_back(r2);
  }
  if (positive.empty()) return 1.0;
  const auto mid =
      positive.begin() + static_cast<std::ptrdiff_t>(positive.size() / 2);
  std::nth_element(positive.begin(), mid, positive.end());
  return std::max(std::sqrt(*mid), 1e-12);
}

}  // namespace

io::Json ScenarioStats::to_json() const {
  io::JsonObject o;
  o["incremental_updates"] = incremental_updates.to_json();
  o["deferred_mutations"] = deferred_mutations.to_json();
  o["full_evaluations"] = full_evaluations.to_json();
  o["nodes_touched"] = nodes_touched.to_json();
  o["cells_touched"] = cells_touched.to_json();
  o["incremental_ns"] = incremental_ns.to_json();
  o["full_ns"] = full_ns.to_json();
  o["batches"] = batches.to_json();
  o["batch_mutations"] = batch_mutations.to_json();
  o["batch_disk_tasks"] = batch_disk_tasks.to_json();
  o["batch_recounts"] = batch_recounts.to_json();
  o["batch_waves"] = batch_waves.to_json();
  o["batch_deferred"] = batch_deferred.to_json();
  o["batch_ns"] = batch_ns.to_json();
  o["batch_wave_tasks"] = batch_wave_tasks.to_json();
  o["snapshots"] = snapshots.to_json();
  o["restores"] = restores.to_json();
  o["batch_aborts"] = batch_aborts.to_json();
  o["hook_skipped_tasks"] = hook_skipped_tasks.to_json();
  o["spec_batches"] = spec_batches.to_json();
  o["spec_committed"] = spec_committed.to_json();
  o["spec_rolled_back"] = spec_rolled_back.to_json();
  o["spec_replay_rounds"] = spec_replay_rounds.to_json();
  o["spec_serial_tasks"] = spec_serial_tasks.to_json();
  o["spec_chain_length"] = spec_chain_length.to_json();
  return io::Json(std::move(o));
}

Scenario::Scenario(EvalOptions options) : options_(options) {}

Scenario::Scenario(std::span<const geom::Vec2> points,
                   const graph::Graph& topology, EvalOptions options)
    : adjacency_(topology.node_count()),
      edge_count_(topology.edge_count()),
      options_(options) {
  assert(topology.node_count() == points.size());
  nodes_.reserve(points.size());
  for (NodeId u = 0; u < points.size(); ++u) nodes_.insert(u, points[u], 0.0);
  for (NodeId u = 0; u < topology.node_count(); ++u) {
    const auto neighbors = topology.neighbors(u);
    adjacency_[u].assign(neighbors.begin(), neighbors.end());
    const double r2 = farthest_neighbor_squared(u);
    nodes_.set_radius2(u, r2);
    max_radius2_ = std::max(max_radius2_, r2);
  }
}

Scenario::Scenario(const Scenario& other)
    : nodes_(other.nodes_),
      adjacency_(other.adjacency_),
      edge_count_(other.edge_count_),
      max_radius2_(other.max_radius2_),
      interference_(other.interference_),
      dirty_(other.dirty_),
      grid_(other.grid_),
      grid_built_(other.grid_built_),
      options_(other.options_),
      stats_(other.stats_) {
  // batch_arena_ is deliberately fresh: scratch never travels with copies.
}

Scenario& Scenario::operator=(const Scenario& other) {
  if (this == &other) return *this;
  nodes_ = other.nodes_;
  adjacency_ = other.adjacency_;
  edge_count_ = other.edge_count_;
  max_radius2_ = other.max_radius2_;
  interference_ = other.interference_;
  dirty_ = other.dirty_;
  grid_ = other.grid_;
  grid_built_ = other.grid_built_;
  options_ = other.options_;
  stats_ = other.stats_;
  batch_arena_.reset();
  return *this;
}

// Out of line so unique_ptr<SpeculativeExecutor> sees the complete type.
Scenario::Scenario(Scenario&&) noexcept = default;
Scenario& Scenario::operator=(Scenario&&) noexcept = default;
Scenario::~Scenario() = default;

void Scenario::ensure_grid() {
  if (grid_built_) return;
  grid_.clear(pick_cell_size(nodes_.radii2()));
  grid_.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    grid_.insert(v, nodes_.position(v), nodes_.radius2(v));
  }
  grid_built_ = true;
}

void Scenario::set_node_radius2(NodeId u, double new_r2) {
  nodes_.set_radius2(u, new_r2);
  if (grid_built_) grid_.set_weight(u, new_r2);
}

std::vector<std::uint32_t> Scenario::full_evaluate() {
  // When the persistent index already exists and the instance resolves to
  // the parallel strategy, shard the counting pass over the live grid
  // instead of rebuilding an immutable GridIndex — same exact integer
  // counts, one less O(n) rebuild per deferred delta. The per-transmitter
  // scatter runs the vectorised distance kernel per cell.
  if (grid_built_ && options_.resolve(nodes_.size()) == Strategy::kParallel) {
    std::vector<std::atomic<std::uint32_t>> covered(nodes_.size());
    parallel::parallel_for(0, nodes_.size(), [&](std::size_t ui) {
      const auto u = static_cast<NodeId>(ui);
      geom::accumulate_covered(grid_, nodes_.position(u), nodes_.radius2(u),
                               u, covered.data());
    });
    std::vector<std::uint32_t> out(nodes_.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = covered[i].load(std::memory_order_relaxed);
    }
    return out;
  }
  const geom::PointSet points = nodes_.positions();
  return interference_vector_squared(points, nodes_.radii2(), options_);
}

void Scenario::ensure_cache() {
  if (!dirty_) return;
  const obs::ScopedTimer timer(stats_.full_ns);
  interference_ = full_evaluate();
  max_radius2_ = 0.0;
  for (double r2 : nodes_.radii2()) max_radius2_ = std::max(max_radius2_, r2);
  dirty_ = false;
  ++stats_.full_evaluations;
}

bool Scenario::delta_deferred(geom::Vec2 center, double radius2) {
  if (grid_.estimate_in_disk(center, std::sqrt(std::max(radius2, 0.0))) >
      options_.touched_threshold(nodes_.size())) {
    dirty_ = true;
    ++stats_.deferred_mutations;
    return true;
  }
  return false;
}

void Scenario::apply_disk_delta(NodeId u, geom::Vec2 center, double old_r2,
                                double new_r2) {
  if (dirty_) return;
  if (old_r2 <= 0.0 && new_r2 <= 0.0) return;
  if (delta_deferred(center, std::max(old_r2, new_r2))) return;
  run_disk_delta(u, center, old_r2, new_r2);
}

void Scenario::run_disk_delta(NodeId exclude, geom::Vec2 center, double old_r2,
                              double new_r2) {
  // Un-deferred kernel: also runs on pool workers during apply_batch.
  // Region-disjoint waves guarantee the interference_ writes never overlap;
  // the stats counters are relaxed atomics.
  const geom::DeltaResult r = geom::apply_disk_delta(
      grid_, center, old_r2, new_r2, exclude, interference_.data());
  stats_.cells_touched += r.cells;
  stats_.nodes_touched += r.visited;
}

void Scenario::set_radius(NodeId u, double new_r2) {
  const double old_r2 = nodes_.radius2(u);
  if (old_r2 == new_r2) return;
  apply_disk_delta(u, nodes_.position(u), old_r2, new_r2);
  set_node_radius2(u, new_r2);
  if (new_r2 > max_radius2_) {
    max_radius2_ = new_r2;
  } else if (old_r2 == max_radius2_ && new_r2 < old_r2) {
    // The argmax node shrank: rescan. Rare (once per removal of the
    // widest-reaching node), so the O(n) pass amortises away.
    max_radius2_ = 0.0;
    for (double r2 : nodes_.radii2()) max_radius2_ = std::max(max_radius2_, r2);
  }
}

double Scenario::farthest_neighbor_squared(NodeId u) const {
  double best = 0.0;
  const geom::Vec2 p = nodes_.position(u);
  for (NodeId w : adjacency_[u]) {
    best = std::max(best, geom::dist2(p, nodes_.position(w)));
  }
  return best;
}

std::uint32_t Scenario::recount_coverage(NodeId v) {
  if (delta_deferred(nodes_.position(v), max_radius2_)) return 0;
  return run_recount(v);
}

std::uint32_t Scenario::run_recount(NodeId v) {
  // Un-deferred kernel: also runs on pool workers during apply_batch (pure
  // reads of the frozen store; the caller owns interference_[v]). The grid
  // weights mirror the radius column, so the coverage kernel needs no
  // side lookups.
  const geom::CoverageResult r =
      geom::count_covering(grid_, nodes_.position(v), max_radius2_, v);
  stats_.cells_touched += r.cells;
  stats_.nodes_touched += r.visited;
  return r.covered;
}

NodeId Scenario::add_node(geom::Vec2 position) {
  ensure_grid();
  const obs::ScopedTimer timer(stats_.incremental_ns);
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.insert(id, position, 0.0);
  adjacency_.emplace_back();
  grid_.insert(id, position, 0.0);
  if (!dirty_) {
    const std::uint32_t covered = recount_coverage(id);
    interference_.push_back(dirty_ ? 0u : covered);
    if (!dirty_) ++stats_.incremental_updates;
  } else {
    interference_.push_back(0u);
  }
  return id;
}

NodeId Scenario::remove_node(NodeId v) {
  assert(v < nodes_.size());
  ensure_grid();
  const obs::ScopedTimer timer(stats_.incremental_ns);
  const std::size_t count_before = nodes_.size();
  // Retire incident edges: each neighbor's disk shrinks to its new
  // farthest neighbor, and v's own disk shrinks to nothing — after this,
  // v no longer transmits and nobody's radius depends on it.
  for (const NodeId w : adjacency_[v]) {
    auto& aw = adjacency_[w];
    aw.erase(std::find(aw.begin(), aw.end(), v));
    --edge_count_;
  }
  const std::vector<NodeId> former_neighbors = std::move(adjacency_[v]);
  adjacency_[v].clear();
  set_radius(v, 0.0);
  for (const NodeId w : former_neighbors) {
    set_radius(w, farthest_neighbor_squared(w));
  }
  // Swap-with-last keeps ids dense: the last node takes over id v (columns
  // compact in the store, the grid renames in place).
  const auto last = static_cast<NodeId>(count_before - 1);
  grid_.erase(v);
  nodes_.remove(v);
  NodeId renamed = kInvalidNode;
  if (v != last) {
    nodes_.relabel(last, v);
    adjacency_[v] = std::move(adjacency_[last]);
    for (NodeId w : adjacency_[v]) {
      std::replace(adjacency_[w].begin(), adjacency_[w].end(), last, v);
    }
    grid_.relabel(last, v);
    renamed = last;
  }
  if (interference_.size() == count_before) {
    if (v != last) interference_[v] = interference_[last];
    interference_.pop_back();
  }
  adjacency_.pop_back();
  if (!dirty_) ++stats_.incremental_updates;
  return renamed;
}

bool Scenario::add_edge(NodeId u, NodeId v) {
  assert(u < nodes_.size() && v < nodes_.size());
  if (u == v || has_edge(u, v)) return false;
  ensure_grid();
  const obs::ScopedTimer timer(stats_.incremental_ns);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++edge_count_;
  const double d2 = geom::dist2(nodes_.position(u), nodes_.position(v));
  if (d2 > nodes_.radius2(u)) set_radius(u, d2);
  if (d2 > nodes_.radius2(v)) set_radius(v, d2);
  if (!dirty_) ++stats_.incremental_updates;
  return true;
}

bool Scenario::remove_edge(NodeId u, NodeId v) {
  assert(u < nodes_.size() && v < nodes_.size());
  auto& au = adjacency_[u];
  const auto it = std::find(au.begin(), au.end(), v);
  if (it == au.end()) return false;
  ensure_grid();
  const obs::ScopedTimer timer(stats_.incremental_ns);
  au.erase(it);
  auto& av = adjacency_[v];
  av.erase(std::find(av.begin(), av.end(), u));
  --edge_count_;
  set_radius(u, farthest_neighbor_squared(u));
  set_radius(v, farthest_neighbor_squared(v));
  if (!dirty_) ++stats_.incremental_updates;
  return true;
}

void Scenario::move_node(NodeId v, geom::Vec2 position) {
  assert(v < nodes_.size());
  if (nodes_.position(v) == position) return;
  ensure_grid();
  const obs::ScopedTimer timer(stats_.incremental_ns);
  // Retire the disk at the old position...
  const double old_r2 = nodes_.radius2(v);
  apply_disk_delta(v, nodes_.position(v), old_r2, 0.0);
  set_node_radius2(v, 0.0);
  if (old_r2 > 0.0 && old_r2 == max_radius2_) {
    max_radius2_ = 0.0;
    for (double r2 : nodes_.radii2()) max_radius2_ = std::max(max_radius2_, r2);
  }
  nodes_.set_position(v, position);
  grid_.move(v, position);
  // ...re-apply it at the new one, and re-derive every affected radius.
  set_radius(v, farthest_neighbor_squared(v));
  for (NodeId w : adjacency_[v]) set_radius(w, farthest_neighbor_squared(w));
  // The node now sits inside a different set of disks.
  if (!dirty_) {
    const std::uint32_t covered = recount_coverage(v);
    if (!dirty_) {
      interference_[v] = covered;
      ++stats_.incremental_updates;
    }
  }
}

NodeId Scenario::apply(const Mutation& mutation) {
  const std::size_t n = nodes_.size();
  switch (mutation.kind) {
    case Mutation::Kind::kAddNode:
      return add_node(mutation.position);
    case Mutation::Kind::kRemoveNode:
      if (mutation.v >= n) return kInvalidNode;
      return remove_node(mutation.v);
    case Mutation::Kind::kAddEdge:
      if (mutation.u >= n || mutation.v >= n) return kInvalidNode;
      add_edge(mutation.u, mutation.v);
      return kInvalidNode;
    case Mutation::Kind::kRemoveEdge:
      if (mutation.u >= n || mutation.v >= n) return kInvalidNode;
      remove_edge(mutation.u, mutation.v);
      return kInvalidNode;
    case Mutation::Kind::kMoveNode:
      if (mutation.v >= n) return kInvalidNode;
      move_node(mutation.v, mutation.position);
      return kInvalidNode;
  }
  return kInvalidNode;
}

bool Scenario::has_edge(NodeId u, NodeId v) const {
  const auto& a = adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                               : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

graph::Graph Scenario::topology() const {
  graph::Graph g(nodes_.size());
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    for (NodeId w : adjacency_[u]) {
      if (u < w) g.add_edge(u, w);
    }
  }
  return g;
}

NodeId Scenario::nearest_node(geom::Vec2 p, NodeId exclude) {
  ensure_grid();
  return grid_.nearest(p, exclude);
}

std::span<const std::uint32_t> Scenario::interference() {
  ensure_cache();
  return interference_;
}

std::uint32_t Scenario::interference_of(NodeId v) {
  assert(v < nodes_.size());
  ensure_cache();
  return interference_[v];
}

std::uint32_t Scenario::max_interference() {
  ensure_cache();
  std::uint32_t max = 0;
  for (std::uint32_t i : interference_) max = std::max(max, i);
  return max;
}

std::uint64_t Scenario::total_interference() {
  ensure_cache();
  std::uint64_t total = 0;
  for (std::uint32_t i : interference_) total += i;
  return total;
}

InterferenceSummary Scenario::summary() {
  ensure_cache();
  return InterferenceSummary::from_per_node(interference_);
}

Snapshot Scenario::snapshot() {
  Snapshot s;
  s.cache_valid = !dirty_;
  s.grid_built = grid_built_;
  s.cell_size = grid_built_ ? grid_.cell_size() : 0.0;
  s.options = options_;
  s.edge_count = edge_count_;
  s.points = nodes_.positions();
  s.adjacency = adjacency_;
  s.radii2.assign(nodes_.radii2().begin(), nodes_.radii2().end());
  if (!dirty_) s.interference = interference_;
  ++stats_.snapshots;
  return s;
}

bool Scenario::restore(const Snapshot& snapshot, std::string* error) {
  std::string local_error;
  if (!snapshot.validate(local_error)) {
    if (error != nullptr) *error = local_error;
    return false;
  }
  nodes_ = NodeSoA();
  max_radius2_ = 0.0;
  for (NodeId v = 0; v < snapshot.points.size(); ++v) {
    nodes_.insert(v, snapshot.points[v], snapshot.radii2[v]);
    max_radius2_ = std::max(max_radius2_, snapshot.radii2[v]);
  }
  adjacency_ = snapshot.adjacency;
  edge_count_ = snapshot.edge_count;
  interference_ = snapshot.interference;
  dirty_ = !snapshot.cache_valid;
  options_ = snapshot.options;
  grid_built_ = false;
  if (snapshot.grid_built) {
    grid_.clear(snapshot.cell_size);
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      grid_.insert(v, nodes_.position(v), nodes_.radius2(v));
    }
    grid_built_ = true;
  } else {
    grid_.clear(1.0);
  }
  ++stats_.restores;
  return true;
}

io::Json Scenario::stats_json() const {
  io::JsonObject o;
  o["nodes"] = io::Json(nodes_.size());
  o["edges"] = io::Json(edge_count_);
  o["grid_cell_size"] = io::Json(grid_built_ ? grid_.cell_size() : 0.0);
  o["counters"] = stats_.to_json();
  o["grid"] = grid_.stats().to_json();
  return io::Json(std::move(o));
}

}  // namespace rim::core
