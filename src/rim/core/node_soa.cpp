#include "rim/core/node_soa.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rim::core {

void NodeSoA::insert(NodeId id, geom::Vec2 p, double radius2) {
  assert(!contains(id));
  if (id >= slot_of_.size()) slot_of_.resize(id + 1, kNoSlot);
  slot_of_[id] = static_cast<std::uint32_t>(ids_.size());
  xs_.push_back(p.x);
  ys_.push_back(p.y);
  radii2_.push_back(radius2);
  ids_.push_back(id);
}

NodeId NodeSoA::remove(NodeId id) {
  assert(contains(id));
  const std::uint32_t s = slot_of_[id];
  const std::uint32_t last = static_cast<std::uint32_t>(ids_.size()) - 1;
  NodeId moved = kInvalidNode;
  if (s != last) {
    xs_[s] = xs_[last];
    ys_[s] = ys_[last];
    radii2_[s] = radii2_[last];
    ids_[s] = ids_[last];
    slot_of_[ids_[s]] = s;
    moved = ids_[s];
  }
  xs_.pop_back();
  ys_.pop_back();
  radii2_.pop_back();
  ids_.pop_back();
  slot_of_[id] = kNoSlot;
  return moved;
}

void NodeSoA::relabel(NodeId from, NodeId to) {
  assert(contains(from) && !contains(to));
  const std::uint32_t s = slot_of_[from];
  if (to >= slot_of_.size()) slot_of_.resize(to + 1, kNoSlot);
  slot_of_[to] = s;
  slot_of_[from] = kNoSlot;
  ids_[s] = to;
}

bool NodeSoA::dense() const {
  for (std::uint32_t s = 0; s < ids_.size(); ++s) {
    if (ids_[s] != s) return false;
  }
  return true;
}

geom::PointSet NodeSoA::positions() const {
  geom::PointSet out;
  out.reserve(ids_.size());
  for (std::size_t s = 0; s < ids_.size(); ++s) {
    out.push_back({xs_[s], ys_[s]});
  }
  return out;
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFFu));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((bits >> shift) & 0xFFu));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

double get_f64(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

constexpr std::size_t kRecordBytes = 4 + 8 + 8 + 8;

}  // namespace

std::vector<std::uint8_t> NodeSoA::serialize() const {
  // Canonical order: ascending id, regardless of slot history.
  std::vector<NodeId> order(ids_.begin(), ids_.end());
  std::sort(order.begin(), order.end());
  std::vector<std::uint8_t> out;
  out.reserve(8 + order.size() * kRecordBytes);
  put_u32(out, static_cast<std::uint32_t>(order.size()));
  put_u32(out, 0);  // reserved / alignment of the 8-byte header
  for (const NodeId id : order) {
    const std::uint32_t s = slot_of_[id];
    put_u32(out, id);
    put_f64(out, xs_[s]);
    put_f64(out, ys_[s]);
    put_f64(out, radii2_[s]);
  }
  return out;
}

std::optional<NodeSoA> NodeSoA::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) return std::nullopt;
  const std::uint32_t n = get_u32(bytes.data());
  if (bytes.size() != 8 + static_cast<std::size_t>(n) * kRecordBytes) {
    return std::nullopt;
  }
  NodeSoA out;
  const std::uint8_t* p = bytes.data() + 8;
  for (std::uint32_t i = 0; i < n; ++i, p += kRecordBytes) {
    const NodeId id = get_u32(p);
    if (out.contains(id)) return std::nullopt;  // duplicate id
    out.insert(id, {get_f64(p + 4), get_f64(p + 12)}, get_f64(p + 20));
  }
  return out;
}

std::uint64_t NodeSoA::checksum() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t byte : serialize()) {
    h ^= byte;
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool operator==(const NodeSoA& a, const NodeSoA& b) {
  if (a.size() != b.size()) return false;
  for (const NodeId id : a.ids_) {
    if (!b.contains(id)) return false;
    const std::uint32_t sa = a.slot_of_[id];
    const std::uint32_t sb = b.slot_of_[id];
    // Bit-exact comparison (signed zeros and NaN payloads included): the
    // store is a container, not arithmetic — contents round-trip exactly.
    if (std::memcmp(&a.xs_[sa], &b.xs_[sb], sizeof(double)) != 0) return false;
    if (std::memcmp(&a.ys_[sa], &b.ys_[sb], sizeof(double)) != 0) return false;
    if (std::memcmp(&a.radii2_[sa], &b.radii2_[sb], sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace rim::core
