#pragma once

#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file radii.hpp
/// Per-node transmission radii induced by a topology.
///
/// Section 3 of the paper: in a resulting topology G' every node u sets its
/// transmission power so as to just reach its farthest neighbor,
///   r_u = max_{v in N_u} |u, v|,
/// and consequently affects exactly the nodes inside the disk D(u, r_u).
/// Isolated nodes have r_u = 0 (they transmit nothing).

namespace rim::core {

/// r_u for every node of \p topology with positions \p points.
[[nodiscard]] std::vector<double> transmission_radii(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

/// r_u^2 for every node, computed exactly as max over neighbors of the
/// squared distance — no sqrt/square roundtrip. The interference evaluators
/// use this form so that a node's farthest neighbor is always counted as
/// covered (comparing dist2 <= sqrt(dist2)^2 can fail by one ulp).
[[nodiscard]] std::vector<double> transmission_radii_squared(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

/// Energy proxy: sum over nodes of r_u^alpha (alpha = path-loss exponent,
/// conventionally 2..4). Topology control papers use this as the power cost
/// of a topology; reported alongside interference by the experiment harness.
[[nodiscard]] double total_power(std::span<const double> radii, double alpha = 2.0);

}  // namespace rim::core
