#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rim/core/interference.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/io/json.hpp"

/// \file snapshot.hpp
/// Versioned, checksummed serialization of full core::Scenario state.
///
/// A snapshot captures everything the incremental engine owns — points,
/// adjacency lists (in list order), cached radii, the per-node interference
/// cache, grid configuration, and the EvalOptions — such that
/// Scenario::restore() yields an engine observationally indistinguishable
/// from one that replayed the original mutation trace: every query answer,
/// every subsequent mutation result, and every re-snapshot is bit-identical.
/// This is the foundation of the crash-restore-replay fault model
/// (sim::FaultPlan): snapshot before a batch, crash anywhere inside it,
/// restore, replay, and the end state must equal the uninjected run's.
///
/// Two encodings share one logical payload:
///  - to_bytes()/from_bytes(): compact native binary. Doubles are bit-cast
///    to uint64 so round-trips are exact, including -0.0 and subnormals.
///  - to_json()/from_json(): an io::Json document with doubles as 16-digit
///    hex bit patterns (human-inspectable structure, machine-exact values).
///
/// Both end with an FNV-1a checksum over the canonical binary payload;
/// decoding verifies magic, version, checksum, and structural consistency
/// (array sizes, id ranges, adjacency symmetry) and fails with a clear
/// error message on any mismatch — truncated or corrupted snapshots are
/// rejected, never undefined behavior.

namespace rim::core {

struct Snapshot {
  /// Bumped on any incompatible layout change; from_bytes/from_json reject
  /// other versions (no silent migrations — the compatibility policy is
  /// "same version restores, anything else errors", DESIGN.md §7).
  /// Version 2: EvalOptions grew the batch execution mode.
  static constexpr std::uint32_t kVersion = 2;

  bool cache_valid = false;  ///< interference[] present (engine not dirty)
  bool grid_built = false;   ///< persistent index existed (cell_size valid)
  double cell_size = 0.0;
  EvalOptions options{};
  std::size_t edge_count = 0;
  geom::PointSet points;
  /// Full adjacency lists in stored order. Order does not change query
  /// results, but preserving it makes re-snapshotting a restored scenario
  /// reproduce these bytes exactly.
  std::vector<std::vector<NodeId>> adjacency;
  std::vector<double> radii2;
  /// Cached I(v) per node; present iff cache_valid.
  std::vector<std::uint32_t> interference;

  [[nodiscard]] std::size_t node_count() const { return points.size(); }

  /// Canonical binary encoding (magic, version, payload, FNV-1a checksum).
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// Decode and fully validate \p bytes. On failure returns false and sets
  /// \p error; \p out is left unspecified but destructible.
  [[nodiscard]] static bool from_bytes(std::span<const std::uint8_t> bytes,
                                       Snapshot& out, std::string& error);

  /// JSON document form (doubles as hex bit patterns; includes the binary
  /// payload checksum, so tampering with either form is detected).
  [[nodiscard]] io::Json to_json() const;

  /// Parse the to_json() form back. Validates structure and re-derives the
  /// binary checksum against the embedded one.
  [[nodiscard]] static bool from_json(const io::Json& json, Snapshot& out,
                                      std::string& error);

  /// FNV-1a over the canonical binary payload (excluding the trailing
  /// checksum field itself) — the value embedded by both encoders.
  [[nodiscard]] std::uint64_t payload_checksum() const;

  /// FNV-1a over the cached interference vector (0 when cache_valid is
  /// false); matches sim::TenantStats::interference_checksum for the same
  /// state, so snapshots and workload reports cross-check directly.
  [[nodiscard]] std::uint64_t interference_checksum() const;

  /// Structural consistency shared by both decoders: size agreement, id
  /// ranges, adjacency symmetry, edge count, no self-loops or duplicates.
  [[nodiscard]] bool validate(std::string& error) const;
};

/// FNV-1a over a 32-bit word sequence (the library's one checksum kernel,
/// shared by Snapshot and sim::WorkloadDriver).
[[nodiscard]] std::uint64_t fnv1a_words(std::span<const std::uint32_t> words);

/// Bit-exact double <-> 16-hex-digit text (used by the JSON encodings of
/// snapshots and fuzz traces).
[[nodiscard]] std::string double_to_hex_bits(double value);
[[nodiscard]] bool double_from_hex_bits(const std::string& hex, double& value);

}  // namespace rim::core
