#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rim/common/arena.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/node_soa.hpp"
#include "rim/geom/dynamic_grid.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"
#include "rim/io/json.hpp"
#include "rim/obs/metrics.hpp"

/// \file scenario.hpp
/// The incremental interference engine: a stateful network scenario.
///
/// Every stateless evaluation of Definition 3.1/3.2 costs at least one pass
/// over the whole instance. The paper's own robustness result (Section 1,
/// Figure 1) guarantees the opposite locality: one arriving node perturbs
/// any I(v) by at most 1, because all it adds is its own disk (plus its
/// attachment partner's enlarged disk). Scenario exploits exactly that:
/// it owns the points, the topology, the cached per-node radii and
/// interference vector, and a persistent mutable spatial index
/// (geom::DynamicGrid), and re-evaluates only the O(affected-disk) region
/// around each mutation:
///
///  - add_edge/remove_edge: the endpoint radii change; nodes entering or
///    leaving the two disks gain/lose one unit of interference.
///  - add_node: the newcomer transmits nothing yet; only its own I(v) is
///    counted (one coverage query).
///  - remove_node: incident edges are retired one by one, then the id of
///    the last node is swapped into the vacated slot (dense ids, O(degree)).
///  - move_node: the node's disk is retired at the old position and
///    re-applied at the new one; neighbor radii and its own coverage are
///    re-derived locally.
///
/// Mutations also come reified as core::Mutation values, applied one at a
/// time via apply() or — the batch pipeline — many at once via
/// apply_batch(): one structural pass coalesces per-node disk changes, the
/// surviving region deltas are grouped by grid-region conflict (disjoint
/// affected-disk regions run concurrently on parallel::ThreadPool,
/// conflicting ones serialize deterministically by batch index), and the
/// result is bit-identical to applying the same mutations serially. The
/// robustness property is what makes this sound: each delta is a commuting
/// integer +-1 over its own disk region.
///
/// When a single delta would touch more than
/// EvalOptions::max_touched_fraction of the instance (estimated from grid
/// occupancy), the engine marks the cache dirty instead and the next query
/// performs one batched full evaluation — sharded over the live grid with
/// parallel_for for large n — so adversarial giant disks degrade to the
/// stateless cost, never worse.
///
/// Counters for full vs. incremental evaluations, batch pipeline activity,
/// nodes/cells touched, and nanoseconds per phase are kept in ScenarioStats
/// (obs::Counter/obs::Histogram), dumpable via io::Json.

namespace rim::parallel {
class ThreadPool;
}

namespace rim::core {

struct Snapshot;  // snapshot.hpp — full-state serialization of a Scenario
class SpeculativeExecutor;  // speculative.hpp — optimistic batch execution

/// One reified network mutation — the unit of apply(), apply_batch(), and
/// assess(). Node ids refer to the id space at the moment the mutation is
/// applied (batch semantics are identical to applying the batch serially,
/// including swap-with-last renames from earlier removals in the batch).
struct Mutation {
  enum class Kind : std::uint8_t {
    kAddNode,     ///< append an isolated node at `position`
    kRemoveNode,  ///< remove node `v` and its incident edges
    kAddEdge,     ///< add the undirected edge {u, v}
    kRemoveEdge,  ///< remove the undirected edge {u, v}
    kMoveNode,    ///< move node `v` to `position`
  };

  Kind kind = Kind::kAddNode;
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  geom::Vec2 position{};

  [[nodiscard]] static Mutation add_node(geom::Vec2 p) {
    return {Kind::kAddNode, kInvalidNode, kInvalidNode, p};
  }
  [[nodiscard]] static Mutation remove_node(NodeId v) {
    return {Kind::kRemoveNode, kInvalidNode, v, {}};
  }
  [[nodiscard]] static Mutation add_edge(NodeId u, NodeId v) {
    return {Kind::kAddEdge, u, v, {}};
  }
  [[nodiscard]] static Mutation remove_edge(NodeId u, NodeId v) {
    return {Kind::kRemoveEdge, u, v, {}};
  }
  [[nodiscard]] static Mutation move_node(NodeId v, geom::Vec2 p) {
    return {Kind::kMoveNode, kInvalidNode, v, p};
  }
};

/// What one apply_batch() call did.
struct BatchResult {
  std::size_t applied = 0;     ///< mutations that changed state
  std::size_t disk_tasks = 0;  ///< coalesced region deltas executed
  std::size_t recounts = 0;    ///< receiver coverage recounts executed
  std::size_t waves = 0;       ///< conflict-free parallel waves run
  bool deferred = false;       ///< fell back to a full evaluation instead
  bool aborted = false;        ///< hooks aborted the structural pass
  /// Index of the first mutation NOT applied when aborted (the crash
  /// point); batch.size() otherwise.
  std::size_t abort_index = 0;

  // Execution::kSpeculative only (DESIGN.md §11); all zero otherwise.
  std::size_t spec_committed = 0;      ///< tasks whose effect survived
  std::size_t spec_rolled_back = 0;    ///< conflict aborts + validation undos
  std::size_t spec_replay_rounds = 0;  ///< parallel rounds after the first
  std::size_t spec_serial_tasks = 0;   ///< tasks finished on the serial tail
};

/// Fault-injection/test hooks consulted by apply_batch (sim::FaultInjector
/// is the production implementation). Default implementations are no-ops,
/// so subclasses override only the fault points they model. before_*
/// callbacks on the wave/recount phases run on thread-pool workers:
/// implementations must be thread-safe and decide from immutable state —
/// per the §8 contract, "thread-safe" here means lock-free (immutable
/// members plus relaxed atomics, as FaultInjector does); taking a
/// common::Mutex inside a hook would serialize the waves it observes.
class BatchHooks {
 public:
  virtual ~BatchHooks() = default;
  /// Before batch[index] is structurally applied. Returning false aborts
  /// the batch at this point — a simulated crash: the already-applied
  /// prefix remains, the evaluation cache is invalidated (so queries stay
  /// correct), and BatchResult::aborted is set. Recovery is the caller's
  /// job (Scenario::restore + replay).
  virtual bool before_mutation(std::size_t index) {
    (void)index;
    return true;
  }
  /// Before disk task \p task (its index in the coalesced task list) of
  /// wave \p wave runs. Returning false silently skips the task — a
  /// poisoned wave task that corrupts the interference cache. The
  /// InvariantAuditor exists to catch exactly this.
  virtual bool before_disk_task(std::size_t wave, std::size_t task) {
    (void)wave;
    (void)task;
    return true;
  }
  /// Before the recount of recount-task \p index runs; false skips it
  /// (same corruption model as before_disk_task).
  virtual bool before_recount(std::size_t index) {
    (void)index;
    return true;
  }
  /// Before speculative task \p task (its index in the coalesced task
  /// list) executes, with its footprint cells already claimed. Returning
  /// false skips the task — the speculative twin of a poisoned wave task.
  /// Runs on pool workers; the §8 lock-free contract applies.
  virtual bool before_speculative_task(std::size_t task) {
    (void)task;
    return true;
  }
  /// After speculative task \p task executed, before its cells are
  /// released. Returning false rolls the task's effect back through the
  /// undo log and requeues it for a replay round — a transient validation
  /// failure, not a skip: the state stays exact.
  virtual bool after_speculative_task(std::size_t task) {
    (void)task;
    return true;
  }
};

/// Impact of a (sequence of) mutation(s), measured by core::Assessor
/// without disturbing the scenario. All per-node data is indexed by the
/// *pre-mutation* id space; renames from removals are resolved internally.
struct Assessment {
  /// I_after - I_before per pre-existing node; a removed node's entry is
  /// -I_before (its slot disappeared).
  std::vector<std::int64_t> delta_per_node;
  /// Pre-mutation ids with a non-zero delta, ascending.
  std::vector<NodeId> affected_ids;
  std::uint32_t max_before = 0;  ///< I(G') before
  std::uint32_t max_after = 0;   ///< I(G') after
  /// When the sequence net-added nodes: I(v) of the newest node after the
  /// sequence (the paper's "newcomer interference"); 0 otherwise.
  std::uint32_t newcomer_interference = 0;
};

/// Observability counters of the engine (obs layer; all monotone, relaxed
/// atomics — batch tasks on the thread pool record concurrently).
struct ScenarioStats {
  obs::Counter incremental_updates;  ///< mutations applied as local deltas
  obs::Counter deferred_mutations;   ///< deltas too large: cache invalidated
  obs::Counter full_evaluations;     ///< batched full recomputes
  obs::Counter nodes_touched;        ///< candidates visited by delta queries
  obs::Counter cells_touched;        ///< grid cells visited by delta queries
  obs::Counter incremental_ns;       ///< time spent in delta maintenance
  obs::Counter full_ns;              ///< time spent in full recomputes

  // Batch pipeline (apply_batch).
  obs::Counter batches;           ///< apply_batch calls
  obs::Counter batch_mutations;   ///< mutations applied through batches
  obs::Counter batch_disk_tasks;  ///< coalesced region deltas executed
  obs::Counter batch_recounts;    ///< receiver recounts executed
  obs::Counter batch_waves;       ///< conflict-free waves dispatched
  obs::Counter batch_deferred;    ///< batches that fell back to full eval
  obs::Counter batch_ns;          ///< time spent inside apply_batch
  obs::Histogram batch_wave_tasks;  ///< tasks per wave distribution

  // Robustness subsystem (snapshot/restore + fault injection).
  obs::Counter snapshots;        ///< Scenario::snapshot() calls
  obs::Counter restores;         ///< successful Scenario::restore() calls
  obs::Counter batch_aborts;     ///< batches aborted by hooks (crash faults)
  obs::Counter hook_skipped_tasks;  ///< disk/recount tasks vetoed by hooks

  // Speculative executor (Execution::kSpeculative batches, DESIGN.md §11).
  // The committed/serial counters are deterministic; rollbacks and replay
  // rounds depend on actual thread interleaving (the final state does not).
  obs::Counter spec_batches;        ///< batches run speculatively
  obs::Counter spec_committed;      ///< speculative tasks committed
  obs::Counter spec_rolled_back;    ///< conflict aborts + validation undos
  obs::Counter spec_replay_rounds;  ///< replay rounds dispatched
  obs::Counter spec_serial_tasks;   ///< tasks finished on the serial tail
  obs::Histogram spec_chain_length;  ///< attempts per committed task

  /// Machine-readable dump (io::Json) for experiment harnesses.
  [[nodiscard]] io::Json to_json() const;
};

/// Stateful interference engine over an evolving network. Node ids are kept
/// dense (0..n-1): remove_node moves the last id into the vacated slot and
/// reports the rename. All queries return exactly what a from-scratch
/// evaluation of the current topology would — the property tests assert
/// bit-identical agreement with Strategy::kBrute under randomized mutation
/// sequences and randomized batches.
class Scenario {
 public:
  /// An empty scenario; \p options configures strategy resolution and the
  /// incremental/batch thresholds (EvalOptions is the one shared surface).
  explicit Scenario(EvalOptions options);
  explicit Scenario(Strategy full_strategy = Strategy::kAuto)
      : Scenario(EvalOptions{}.with_strategy(full_strategy)) {}

  /// Adopt an existing instance. \p topology.node_count() must equal
  /// \p points.size(). The evaluation cache starts cold; the first query
  /// performs one full evaluation.
  Scenario(std::span<const geom::Vec2> points, const graph::Graph& topology,
           EvalOptions options);
  Scenario(std::span<const geom::Vec2> points, const graph::Graph& topology,
           Strategy full_strategy = Strategy::kAuto)
      : Scenario(points, topology, EvalOptions{}.with_strategy(full_strategy)) {}

  /// Copies duplicate the engine state (probe copies for assessment) but
  /// not the batch scratch arena — each Scenario owns a fresh one.
  Scenario(const Scenario& other);
  Scenario& operator=(const Scenario& other);
  // Out of line: the speculative executor is an incomplete type here.
  Scenario(Scenario&&) noexcept;
  Scenario& operator=(Scenario&&) noexcept;
  ~Scenario();

  // --- mutations ---------------------------------------------------------

  /// Append an isolated node at \p position, returning its id. The newcomer
  /// transmits nothing until an edge attaches it (radius 0), so existing
  /// interference values are untouched — the paper's robustness argument.
  NodeId add_node(geom::Vec2 position);

  /// Remove node \p v and its incident edges. To keep ids dense, the
  /// current last node is renamed to \p v; returns that node's former id
  /// (or kInvalidNode when \p v was the last node already).
  NodeId remove_node(NodeId v);

  /// Add the undirected edge {u, v}; returns false (no change) if it
  /// already exists or u == v. Endpoint radii only ever grow.
  bool add_edge(NodeId u, NodeId v);

  /// Remove the edge {u, v} if present; endpoint radii shrink to the new
  /// farthest neighbor. Returns whether the edge existed.
  bool remove_edge(NodeId u, NodeId v);

  /// Move node \p v to \p position: its disk is re-applied there, neighbor
  /// radii are re-derived, and its own coverage is recounted. Moving a node
  /// to its current position is a strict no-op (no cache invalidation, no
  /// stats increment).
  void move_node(NodeId v, geom::Vec2 position);

  /// Apply one reified mutation. Returns the new node's id for kAddNode,
  /// the renamed id for kRemoveNode (as remove_node), kInvalidNode
  /// otherwise. Mutations with out-of-range ids are skipped (returning
  /// kInvalidNode) rather than asserting, so recorded traces replay safely.
  NodeId apply(const Mutation& mutation);

  /// Apply a whole mutation batch, semantically identical to calling
  /// apply() on each element in order, but pipelined: one serial structural
  /// pass coalesces all radius/position changes per node, then the
  /// surviving disk deltas are grouped into conflict-free waves (disjoint
  /// affected regions, by bounding-box test) and executed concurrently on
  /// \p pool; conflicting deltas land in later waves in batch-index order.
  /// Falls back to one deferred full evaluation when the batch's region
  /// estimate exceeds the EvalOptions thresholds. Results are bit-identical
  /// to the serial path (and hence to the kBrute oracle) either way.
  /// \p hooks, when non-null, is consulted at every fault point
  /// (BatchHooks); production callers pass nullptr.
  BatchResult apply_batch(std::span<const Mutation> batch,
                          parallel::ThreadPool* pool,
                          BatchHooks* hooks = nullptr);
  /// Overload using the process-wide shared pool.
  BatchResult apply_batch(std::span<const Mutation> batch);

  // --- snapshot / restore -------------------------------------------------

  /// Capture full engine state (points, adjacency in list order, radii,
  /// interference cache when valid, grid configuration, options) as a
  /// core::Snapshot. Restoring it — in this or any other Scenario — yields
  /// an engine observationally indistinguishable from this one: identical
  /// query answers, identical behavior under subsequent mutations, and a
  /// bit-identical re-snapshot.
  [[nodiscard]] Snapshot snapshot();

  /// Replace this scenario's entire state with \p snapshot. The snapshot is
  /// validated first (validate()); on failure returns false, fills
  /// \p error when non-null, and leaves the scenario untouched. The grid is
  /// rebuilt from the stored cell size by inserting ids in order — cell
  /// bucket ordering may differ from the donor's, which is unobservable
  /// through any query. Stats counters are preserved (monotone
  /// observability), except restores which increments.
  [[nodiscard]] bool restore(const Snapshot& snapshot,
                             std::string* error = nullptr);

  // --- views -------------------------------------------------------------

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  /// The SoA node store (positions + squared radii as contiguous columns,
  /// id == slot by the dense-id invariant). The zero-copy view; feed it to
  /// core::Assessor for stateless evaluation.
  [[nodiscard]] const NodeSoA& nodes() const { return nodes_; }
  /// Positions materialised as interleaved Vec2 in id order (a copy — the
  /// engine stores columns, not Vec2s; prefer nodes() on hot paths).
  [[nodiscard]] geom::PointSet points() const { return nodes_.positions(); }
  [[nodiscard]] geom::Vec2 position(NodeId v) const {
    return nodes_.position(v);
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return adjacency_[v];
  }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;
  /// r_v^2 — the cached farthest-neighbor squared radius.
  [[nodiscard]] double radius_squared(NodeId v) const {
    return nodes_.radius2(v);
  }
  [[nodiscard]] const EvalOptions& options() const { return options_; }

  /// Export the current topology as a graph::Graph snapshot (O(n + m)).
  [[nodiscard]] graph::Graph topology() const;

  /// Nearest node to \p p other than \p exclude via the persistent index
  /// (ties toward the smaller id); kInvalidNode when none exists.
  [[nodiscard]] NodeId nearest_node(geom::Vec2 p,
                                    NodeId exclude = kInvalidNode);

  // --- evaluation (refreshes the cache when a deferred delta dirtied it) --

  /// Per-node interference I(v) of the current topology.
  [[nodiscard]] std::span<const std::uint32_t> interference();

  /// I(v) for a single node.
  [[nodiscard]] std::uint32_t interference_of(NodeId v);

  /// I(G') = max_v I(v), Definition 3.2.
  [[nodiscard]] std::uint32_t max_interference();

  /// Sum of I(v) — the lexicographic tiebreaker used by local search.
  [[nodiscard]] std::uint64_t total_interference();

  /// Full summary (per-node copy + aggregates via from_per_node).
  [[nodiscard]] InterferenceSummary summary();

  [[nodiscard]] const ScenarioStats& stats() const { return stats_; }
  /// Engine configuration + counters (incl. the grid's) as one io::Json
  /// object — the engine's obs surface, registerable with obs::Registry.
  [[nodiscard]] io::Json stats_json() const;

 private:
  void ensure_grid();
  void ensure_cache();
  /// Full recompute sharded over the live grid with parallel_for (used for
  /// large instances when the persistent index exists; small instances go
  /// through the stateless kernels).
  [[nodiscard]] std::vector<std::uint32_t> full_evaluate();
  [[nodiscard]] bool delta_deferred(geom::Vec2 center, double radius2);
  void apply_disk_delta(NodeId u, geom::Vec2 center, double old_r2,
                        double new_r2);
  /// The un-deferred kernel shared by the serial path and batch tasks:
  /// +-1 over the symmetric difference of the old and new disks.
  void run_disk_delta(NodeId exclude, geom::Vec2 center, double old_r2,
                      double new_r2);
  void set_radius(NodeId u, double new_r2);
  /// Write-through radius update: the store column and (when built) the
  /// grid's coverage weight stay in lockstep.
  void set_node_radius2(NodeId u, double new_r2);
  [[nodiscard]] double farthest_neighbor_squared(NodeId u) const;
  [[nodiscard]] std::uint32_t recount_coverage(NodeId v);
  /// The un-deferred recount shared by the serial path and batch tasks.
  [[nodiscard]] std::uint32_t run_recount(NodeId v);

  /// SoA node store: x/y/r^2/id columns with id == slot (dense ids).
  NodeSoA nodes_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
  /// Exact max of the radius column (coverage queries walk this disk).
  double max_radius2_ = 0.0;

  std::vector<std::uint32_t> interference_;
  bool dirty_ = true;  ///< cache must be rebuilt by a full evaluation

  geom::DynamicGrid grid_;
  bool grid_built_ = false;

  EvalOptions options_;
  ScenarioStats stats_;

  /// Batch-scoped scratch (apply_batch): reset at the start of every batch,
  /// reused across batches (allocation-free in steady state). Deliberately
  /// not copied — probe copies never carry scratch.
  common::Arena batch_arena_;

  /// Optimistic disk-task executor (Execution::kSpeculative), built lazily
  /// on first use and reused across batches. Like the arena, never copied:
  /// its footprint index and per-worker scratch are execution state, not
  /// engine state. SpeculativeExecutor is a friend — it drives the private
  /// run_disk_delta kernel and the stats counters directly.
  std::unique_ptr<SpeculativeExecutor> speculative_;

  friend class SpeculativeExecutor;
};

}  // namespace rim::core
