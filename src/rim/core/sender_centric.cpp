#include "rim/core/sender_centric.hpp"

#include <algorithm>

namespace rim::core {

std::uint32_t edge_coverage(std::span<const geom::Vec2> points, graph::Edge e) {
  const geom::Vec2 pu = points[e.u];
  const geom::Vec2 pv = points[e.v];
  const double r2 = geom::dist2(pu, pv);
  std::uint32_t count = 0;
  for (NodeId w = 0; w < points.size(); ++w) {
    if (w == e.u || w == e.v) continue;
    if (geom::dist2(points[w], pu) <= r2 || geom::dist2(points[w], pv) <= r2) {
      ++count;
    }
  }
  return count;
}

std::vector<std::uint32_t> coverage_vector(const graph::Graph& topology,
                                           std::span<const geom::Vec2> points) {
  std::vector<std::uint32_t> cov;
  cov.reserve(topology.edge_count());
  for (graph::Edge e : topology.edges()) cov.push_back(edge_coverage(points, e));
  return cov;
}

SenderCentricSummary evaluate_sender_centric(const graph::Graph& topology,
                                             std::span<const geom::Vec2> points) {
  SenderCentricSummary summary;
  summary.per_edge = coverage_vector(topology, points);
  std::uint64_t total = 0;
  for (std::uint32_t c : summary.per_edge) {
    summary.max = std::max(summary.max, c);
    total += c;
  }
  summary.mean = summary.per_edge.empty()
                     ? 0.0
                     : static_cast<double>(total) /
                           static_cast<double>(summary.per_edge.size());
  return summary;
}

}  // namespace rim::core
