#include "rim/core/sender_centric.hpp"

#include <algorithm>
#include <cmath>

#include "rim/geom/dynamic_grid.hpp"

namespace rim::core {

namespace {

SenderCentricSummary summarize(std::vector<std::uint32_t> per_edge) {
  SenderCentricSummary summary;
  summary.per_edge = std::move(per_edge);
  std::uint64_t total = 0;
  for (std::uint32_t c : summary.per_edge) {
    summary.max = std::max(summary.max, c);
    total += c;
  }
  summary.mean = summary.per_edge.empty()
                     ? 0.0
                     : static_cast<double>(total) /
                           static_cast<double>(summary.per_edge.size());
  return summary;
}

}  // namespace

std::uint32_t edge_coverage(std::span<const geom::Vec2> points, graph::Edge e) {
  const geom::Vec2 pu = points[e.u];
  const geom::Vec2 pv = points[e.v];
  const double r2 = geom::dist2(pu, pv);
  std::uint32_t count = 0;
  for (NodeId w = 0; w < points.size(); ++w) {
    if (w == e.u || w == e.v) continue;
    if (geom::dist2(points[w], pu) <= r2 || geom::dist2(points[w], pv) <= r2) {
      ++count;
    }
  }
  return count;
}

std::vector<std::uint32_t> coverage_vector(const graph::Graph& topology,
                                           std::span<const geom::Vec2> points) {
  std::vector<std::uint32_t> cov;
  cov.reserve(topology.edge_count());
  for (graph::Edge e : topology.edges()) cov.push_back(edge_coverage(points, e));
  return cov;
}

SenderCentricSummary evaluate_sender_centric(const graph::Graph& topology,
                                             std::span<const geom::Vec2> points) {
  return summarize(coverage_vector(topology, points));
}

SenderCentricSummary evaluate_sender_centric(const graph::Graph& topology,
                                             std::span<const geom::Vec2> points,
                                             const EvalOptions& options) {
  const std::size_t n = points.size();
  if (options.resolve(n) == Strategy::kBrute || topology.edge_count() == 0) {
    return evaluate_sender_centric(topology, points);
  }

  // Grid path: cells keyed by the median edge length (the query disks are
  // edge-length disks, so this is the same heuristic the receiver-centric
  // grid applies to transmission disks).
  std::vector<double> lengths2;
  lengths2.reserve(topology.edge_count());
  for (const graph::Edge e : topology.edges()) {
    lengths2.push_back(geom::dist2(points[e.u], points[e.v]));
  }
  const auto mid =
      lengths2.begin() + static_cast<std::ptrdiff_t>(lengths2.size() / 2);
  std::nth_element(lengths2.begin(), mid, lengths2.end());
  const double cell = std::max(std::sqrt(*mid), 1e-12);

  geom::DynamicGrid grid(cell);
  grid.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    grid.insert(static_cast<NodeId>(v), points[v], 0.0);
  }

  // Per-edge union count D(u,|uv|) ∪ D(v,|uv|) via an epoch stamp: a node
  // seen by either disk query of edge i carries stamp i+1 and counts once.
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<std::uint32_t> per_edge;
  per_edge.reserve(topology.edge_count());
  std::uint32_t epoch = 0;
  for (const graph::Edge e : topology.edges()) {
    ++epoch;
    const geom::Vec2 pu = points[e.u];
    const geom::Vec2 pv = points[e.v];
    const double r2 = geom::dist2(pu, pv);
    std::uint32_t count = 0;
    const auto visit = [&](NodeId w, geom::Vec2) {
      if (stamp[w] == epoch) return;
      stamp[w] = epoch;
      if (w != e.u && w != e.v) ++count;
    };
    grid.for_each_in_disk_squared(pu, r2, visit);
    grid.for_each_in_disk_squared(pv, r2, visit);
    per_edge.push_back(count);
  }
  return summarize(std::move(per_edge));
}

}  // namespace rim::core
