#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/core/interference.hpp"
#include "rim/core/node_soa.hpp"

/// \file sinr.hpp
/// The physical (SINR) interference model comparator (DESIGN.md §12).
///
/// The third model beside the paper's receiver-centric count and the
/// MobiHoc'04 sender-centric edge coverage: interference at a node v is the
/// *accumulated path-loss power* of every other transmitter,
///
///   P(v) = sum_{u != v, r_u > 0} P_u / d(u, v)^alpha,
///
/// with the power rule P_u = kappa * r_u^alpha (the weakest power that
/// still closes u's longest link alone — phy/sinr.hpp's rule) and an even
/// integer path-loss exponent alpha = 2h, so every contribution
///
///   (kappa * r2_u^h) / d2^h
///
/// is computed from *squared* quantities with h-1 multiplies per power and
/// one divide — all per-lane IEEE-exact, which is what lets the SIMD
/// kernels (simd::sinr_gather / sinr_scatter) stay bit-identical to their
/// scalar twins. Contributions below far_field_rel * noise truncate to
/// zero (the per-transmitter cutoff disk that makes the grid path
/// near-linear); coincident nodes (d2 == 0) are excluded by convention.
///
/// Alongside the real-valued power the assessor counts each node's
/// *significant interferers* — transmitters contributing at least
/// significant_rel * noise — an integer per-node measure directly
/// comparable with the disk models' covering-disk counts, and invariant
/// across evaluation strategies (the power itself is strategy-invariant
/// only up to accumulation order; each strategy's SIMD/scalar twins are
/// bit-identical, which the checksum tests pin).

namespace rim::core {

/// Result of one SINR assessment. `power` and `per_node` are indexed by
/// node id (the store's dense-id invariant).
struct SinrSummary {
  std::vector<double> power;            ///< accumulated interference power
  std::vector<std::uint32_t> per_node;  ///< significant-interferer counts
  std::uint32_t max = 0;                ///< max significant count
  double mean = 0.0;                    ///< mean significant count
  std::uint64_t total = 0;              ///< sum of significant counts
  double max_power = 0.0;               ///< max_v P(v)
  std::uint64_t power_checksum = 0;     ///< FNV-1a over power bit patterns

  /// Aggregate the two per-node columns into a summary (the single
  /// aggregation point of every strategy and twin).
  [[nodiscard]] static SinrSummary from_columns(
      std::vector<double> power, std::vector<std::uint32_t> per_node);

  /// The integer projection: significant-interferer counts as an
  /// InterferenceSummary, the form Assessor::assess returns so the three
  /// models share one result type.
  [[nodiscard]] InterferenceSummary to_interference() const;
};

/// The SINR comparator. Stateless like the Assessor NodeSoA path: every
/// call is a full evaluation of the store it is handed.
class SinrAssessor {
 public:
  explicit SinrAssessor(EvalOptions options = {}) : options_(options) {}

  /// Assess \p nodes (dense ids) under options.sinr. Strategy resolution:
  /// kBrute gathers per receiver over the whole SoA columns (exact O(n^2)
  /// shape of the receiver-centric fast path); kGrid and kParallel scatter
  /// per transmitter through a DynamicGrid keyed by the median cutoff
  /// radius — serial over transmitters in ascending id order, which fixes
  /// the accumulation order into every receiver (the SINR grid path takes
  /// no thread pool; determinism over parallelism).
  [[nodiscard]] SinrSummary assess(const NodeSoA& nodes,
                                   const EvalOptions& options) const;
  [[nodiscard]] SinrSummary assess(const NodeSoA& nodes) const {
    return assess(nodes, options_);
  }

  /// One-shot topology form: radii derived from farthest neighbors
  /// (core/radii.hpp), then the NodeSoA path.
  [[nodiscard]] SinrSummary assess(const graph::Graph& topology,
                                   std::span<const geom::Vec2> points,
                                   const EvalOptions& options) const;
  [[nodiscard]] SinrSummary assess(const graph::Graph& topology,
                                   std::span<const geom::Vec2> points) const {
    return assess(topology, points, options_);
  }

  /// Scalar-twin evaluation: identical strategy resolution, scalar kernels
  /// only. The bit-identity oracle for the checksum tests and the E23
  /// acceptance gate.
  [[nodiscard]] SinrSummary assess_scalar(const NodeSoA& nodes,
                                          const EvalOptions& options) const;
  [[nodiscard]] SinrSummary assess_scalar(const NodeSoA& nodes) const {
    return assess_scalar(nodes, options_);
  }

  [[nodiscard]] const EvalOptions& options() const { return options_; }

 private:
  EvalOptions options_;
};

}  // namespace rim::core
