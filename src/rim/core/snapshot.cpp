#include "rim/core/snapshot.hpp"

#include <algorithm>
#include <cstring>

namespace rim::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
constexpr char kMagic[8] = {'R', 'I', 'M', 'S', 'N', 'A', 'P', '1'};

std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) { u64(double_bits(v)); }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reader; every accessor reports truncation
/// instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = bytes_[pos_++];
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return true;
  }
  [[nodiscard]] bool u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return true;
  }
  [[nodiscard]] bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = bits_double(bits);
    return true;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Serialise everything except the trailing checksum.
std::vector<std::uint8_t> encode_payload(const Snapshot& s) {
  ByteWriter w;
  for (const char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(Snapshot::kVersion);
  w.u32((s.cache_valid ? 1u : 0u) | (s.grid_built ? 2u : 0u));
  w.u64(s.points.size());
  w.u64(s.edge_count);
  w.f64(s.cell_size);
  w.u8(static_cast<std::uint8_t>(s.options.strategy));
  w.u8(static_cast<std::uint8_t>(s.options.execution));
  w.u64(s.options.auto_brute_max_nodes);
  w.u64(s.options.auto_grid_max_nodes);
  w.f64(s.options.max_touched_fraction);
  w.u64(s.options.touched_floor);
  w.u64(s.options.batch_min_parallel_tasks);
  for (const geom::Vec2 p : s.points) {
    w.f64(p.x);
    w.f64(p.y);
  }
  for (const double r2 : s.radii2) w.f64(r2);
  for (const auto& neighbors : s.adjacency) {
    w.u32(static_cast<std::uint32_t>(neighbors.size()));
    for (const NodeId v : neighbors) w.u32(v);
  }
  if (s.cache_valid) {
    for (const std::uint32_t i : s.interference) w.u32(i);
  }
  return w.take();
}

bool decode_fail(std::string& error, const std::string& what) {
  error = "snapshot decode error: " + what;
  return false;
}

}  // namespace

std::uint64_t fnv1a_words(std::span<const std::uint32_t> words) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint32_t v : words) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xFFU;
      h *= kFnvPrime;
    }
  }
  return h;
}

std::string double_to_hex_bits(double value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::uint64_t bits = double_bits(value);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        kDigits[(bits >> (4 * (15 - i))) & 0xF];
  }
  return out;
}

bool double_from_hex_bits(const std::string& hex, double& value) {
  if (hex.size() != 16) return false;
  std::uint64_t bits = 0;
  for (const char c : hex) {
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      bits |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  value = bits_double(bits);
  return true;
}

std::uint64_t Snapshot::payload_checksum() const {
  return fnv1a_bytes(encode_payload(*this));
}

std::uint64_t Snapshot::interference_checksum() const {
  if (!cache_valid) return 0;
  return fnv1a_words(interference);
}

bool Snapshot::validate(std::string& error) const {
  const std::size_t n = points.size();
  if (radii2.size() != n) {
    return decode_fail(error, "radii2 size mismatch");
  }
  if (adjacency.size() != n) {
    return decode_fail(error, "adjacency size mismatch");
  }
  if (cache_valid ? interference.size() != n : !interference.empty()) {
    return decode_fail(error, "interference size mismatch");
  }
  if (grid_built && !(cell_size > 0.0)) {
    return decode_fail(error, "grid marked built but cell_size not positive");
  }
  std::size_t degree_sum = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto& neighbors = adjacency[u];
    degree_sum += neighbors.size();
    for (const NodeId v : neighbors) {
      if (v >= n) return decode_fail(error, "neighbor id out of range");
      if (v == u) return decode_fail(error, "self-loop in adjacency");
      if (std::count(neighbors.begin(), neighbors.end(), v) != 1) {
        return decode_fail(error, "duplicate neighbor entry");
      }
      const auto& back = adjacency[v];
      if (std::find(back.begin(), back.end(), u) == back.end()) {
        return decode_fail(error, "asymmetric adjacency");
      }
    }
  }
  if (degree_sum != 2 * edge_count) {
    return decode_fail(error, "edge count disagrees with adjacency");
  }
  return true;
}

std::vector<std::uint8_t> Snapshot::to_bytes() const {
  std::vector<std::uint8_t> payload = encode_payload(*this);
  const std::uint64_t checksum = fnv1a_bytes(payload);
  ByteWriter tail;
  tail.u64(checksum);
  const std::vector<std::uint8_t> checksum_bytes = tail.take();
  payload.insert(payload.end(), checksum_bytes.begin(), checksum_bytes.end());
  return payload;
}

bool Snapshot::from_bytes(std::span<const std::uint8_t> bytes, Snapshot& out,
                          std::string& error) {
  out = Snapshot{};
  if (bytes.size() < sizeof kMagic + 8) {
    return decode_fail(error, "truncated (shorter than header)");
  }
  // Checksum first: everything before the trailing u64 must hash to it.
  const std::span<const std::uint8_t> payload =
      bytes.subspan(0, bytes.size() - 8);
  {
    ByteReader tail(bytes.subspan(bytes.size() - 8));
    std::uint64_t stored = 0;
    (void)tail.u64(stored);
    if (fnv1a_bytes(payload) != stored) {
      return decode_fail(error, "checksum mismatch (corrupted or truncated)");
    }
  }
  ByteReader r(payload);
  for (const char c : kMagic) {
    std::uint8_t b = 0;
    if (!r.u8(b) || b != static_cast<std::uint8_t>(c)) {
      return decode_fail(error, "bad magic (not a rim snapshot)");
    }
  }
  std::uint32_t version = 0;
  if (!r.u32(version)) return decode_fail(error, "truncated version");
  if (version != kVersion) {
    return decode_fail(error,
                       "unsupported version " + std::to_string(version) +
                           " (this build reads version " +
                           std::to_string(kVersion) + ")");
  }
  std::uint32_t flags = 0;
  std::uint64_t node_count = 0;
  std::uint64_t edge_count = 0;
  if (!r.u32(flags) || !r.u64(node_count) || !r.u64(edge_count) ||
      !r.f64(out.cell_size)) {
    return decode_fail(error, "truncated header");
  }
  out.cache_valid = (flags & 1u) != 0;
  out.grid_built = (flags & 2u) != 0;
  out.edge_count = static_cast<std::size_t>(edge_count);
  std::uint8_t strategy = 0;
  std::uint8_t execution = 0;
  if (!r.u8(strategy) || !r.u8(execution) ||
      !r.u64(out.options.auto_brute_max_nodes) ||
      !r.u64(out.options.auto_grid_max_nodes) ||
      !r.f64(out.options.max_touched_fraction) ||
      !r.u64(out.options.touched_floor) ||
      !r.u64(out.options.batch_min_parallel_tasks)) {
    return decode_fail(error, "truncated options");
  }
  if (strategy > static_cast<std::uint8_t>(Strategy::kAuto)) {
    return decode_fail(error, "invalid strategy value");
  }
  if (execution > static_cast<std::uint8_t>(Execution::kSpeculative)) {
    return decode_fail(error, "invalid execution value");
  }
  out.options.with_strategy(static_cast<Strategy>(strategy));
  out.options.with_execution(static_cast<Execution>(execution));
  // Cheap sanity bound before reserving: every node needs at least
  // 24 payload bytes (point + radius), so a huge count is corruption.
  if (node_count > r.remaining() / 24 + 1) {
    return decode_fail(error, "node count exceeds payload size");
  }
  const auto n = static_cast<std::size_t>(node_count);
  out.points.resize(n);
  for (geom::Vec2& p : out.points) {
    if (!r.f64(p.x) || !r.f64(p.y)) {
      return decode_fail(error, "truncated points");
    }
  }
  out.radii2.resize(n);
  for (double& r2 : out.radii2) {
    if (!r.f64(r2)) return decode_fail(error, "truncated radii");
  }
  out.adjacency.resize(n);
  for (auto& neighbors : out.adjacency) {
    std::uint32_t degree = 0;
    if (!r.u32(degree)) return decode_fail(error, "truncated adjacency");
    if (degree > r.remaining() / 4) {
      return decode_fail(error, "degree exceeds payload size");
    }
    neighbors.resize(degree);
    for (NodeId& v : neighbors) {
      if (!r.u32(v)) return decode_fail(error, "truncated adjacency list");
    }
  }
  if (out.cache_valid) {
    out.interference.resize(n);
    for (std::uint32_t& i : out.interference) {
      if (!r.u32(i)) return decode_fail(error, "truncated interference");
    }
  }
  if (r.remaining() != 0) {
    return decode_fail(error, "trailing bytes after payload");
  }
  return out.validate(error);
}

io::Json Snapshot::to_json() const {
  io::JsonObject o;
  o["format"] = io::Json("rim-snapshot");
  o["version"] = io::Json(kVersion);
  o["cache_valid"] = io::Json(cache_valid);
  o["grid_built"] = io::Json(grid_built);
  o["cell_size_bits"] = io::Json(double_to_hex_bits(cell_size));
  o["node_count"] = io::Json(points.size());
  o["edge_count"] = io::Json(edge_count);
  {
    io::JsonObject opt;
    opt["strategy"] = io::Json(static_cast<unsigned>(options.strategy));
    opt["execution"] = io::Json(static_cast<unsigned>(options.execution));
    opt["auto_brute_max_nodes"] = io::Json(options.auto_brute_max_nodes);
    opt["auto_grid_max_nodes"] = io::Json(options.auto_grid_max_nodes);
    opt["max_touched_fraction_bits"] =
        io::Json(double_to_hex_bits(options.max_touched_fraction));
    opt["touched_floor"] = io::Json(options.touched_floor);
    opt["batch_min_parallel_tasks"] =
        io::Json(options.batch_min_parallel_tasks);
    o["options"] = io::Json(std::move(opt));
  }
  {
    io::JsonArray points_bits;
    points_bits.reserve(points.size());
    for (const geom::Vec2 p : points) {
      points_bits.emplace_back(double_to_hex_bits(p.x) +
                               double_to_hex_bits(p.y));
    }
    o["points_bits"] = io::Json(std::move(points_bits));
  }
  {
    io::JsonArray radii_bits;
    radii_bits.reserve(radii2.size());
    for (const double r2 : radii2) {
      radii_bits.emplace_back(double_to_hex_bits(r2));
    }
    o["radii2_bits"] = io::Json(std::move(radii_bits));
  }
  {
    io::JsonArray adjacency_rows;
    adjacency_rows.reserve(adjacency.size());
    for (const auto& neighbors : adjacency) {
      io::JsonArray row;
      row.reserve(neighbors.size());
      for (const NodeId v : neighbors) row.emplace_back(v);
      adjacency_rows.emplace_back(std::move(row));
    }
    o["adjacency"] = io::Json(std::move(adjacency_rows));
  }
  if (cache_valid) {
    io::JsonArray cache;
    cache.reserve(interference.size());
    for (const std::uint32_t i : interference) cache.emplace_back(i);
    o["interference"] = io::Json(std::move(cache));
  }
  o["payload_checksum"] = io::Json(double_to_hex_bits(
      bits_double(payload_checksum())));
  return io::Json(std::move(o));
}

bool Snapshot::from_json(const io::Json& json, Snapshot& out,
                         std::string& error) {
  out = Snapshot{};
  const auto* format = json.find("format");
  if (format == nullptr || format->as_string() == nullptr ||
      *format->as_string() != "rim-snapshot") {
    return decode_fail(error, "not a rim-snapshot document");
  }
  const auto* version = json.find("version");
  if (version == nullptr ||
      static_cast<std::uint32_t>(version->as_number(0)) != kVersion) {
    return decode_fail(error, "unsupported or missing version");
  }
  const auto read_hex_double = [&](const io::Json* node, double& value) {
    return node != nullptr && node->as_string() != nullptr &&
           double_from_hex_bits(*node->as_string(), value);
  };
  const auto* cache_valid = json.find("cache_valid");
  const auto* grid_built = json.find("grid_built");
  if (cache_valid == nullptr || !cache_valid->is_bool() ||
      grid_built == nullptr || !grid_built->is_bool()) {
    return decode_fail(error, "missing cache_valid/grid_built flags");
  }
  out.cache_valid = cache_valid->as_bool();
  out.grid_built = grid_built->as_bool();
  if (!read_hex_double(json.find("cell_size_bits"), out.cell_size)) {
    return decode_fail(error, "missing or malformed cell_size_bits");
  }
  const auto* edge_count = json.find("edge_count");
  if (edge_count == nullptr || !edge_count->is_number()) {
    return decode_fail(error, "missing edge_count");
  }
  out.edge_count = static_cast<std::size_t>(edge_count->as_number());
  const auto* opt = json.find("options");
  if (opt == nullptr || !opt->is_object()) {
    return decode_fail(error, "missing options object");
  }
  const double strategy = opt->find("strategy") != nullptr
                              ? opt->find("strategy")->as_number(-1)
                              : -1;
  if (strategy < 0 ||
      strategy > static_cast<double>(
                     static_cast<std::uint8_t>(Strategy::kAuto))) {
    return decode_fail(error, "invalid options.strategy");
  }
  out.options.with_strategy(
      static_cast<Strategy>(static_cast<std::uint8_t>(strategy)));
  const double execution = opt->find("execution") != nullptr
                               ? opt->find("execution")->as_number(-1)
                               : -1;
  if (execution < 0 ||
      execution > static_cast<double>(
                      static_cast<std::uint8_t>(Execution::kSpeculative))) {
    return decode_fail(error, "invalid options.execution");
  }
  out.options.with_execution(
      static_cast<Execution>(static_cast<std::uint8_t>(execution)));
  const auto read_size = [&](const char* key, std::size_t& value) {
    const io::Json* node = opt->find(key);
    if (node == nullptr || !node->is_number()) return false;
    value = static_cast<std::size_t>(node->as_number());
    return true;
  };
  if (!read_size("auto_brute_max_nodes", out.options.auto_brute_max_nodes) ||
      !read_size("auto_grid_max_nodes", out.options.auto_grid_max_nodes) ||
      !read_size("touched_floor", out.options.touched_floor) ||
      !read_size("batch_min_parallel_tasks",
                 out.options.batch_min_parallel_tasks) ||
      !read_hex_double(opt->find("max_touched_fraction_bits"),
                       out.options.max_touched_fraction)) {
    return decode_fail(error, "missing or malformed options fields");
  }
  const auto* points_bits = json.find("points_bits");
  if (points_bits == nullptr || !points_bits->is_array()) {
    return decode_fail(error, "missing points_bits");
  }
  out.points.reserve(points_bits->as_array()->size());
  for (const io::Json& entry : *points_bits->as_array()) {
    const std::string* s = entry.as_string();
    geom::Vec2 p;
    if (s == nullptr || s->size() != 32 ||
        !double_from_hex_bits(s->substr(0, 16), p.x) ||
        !double_from_hex_bits(s->substr(16, 16), p.y)) {
      return decode_fail(error, "malformed points_bits entry");
    }
    out.points.push_back(p);
  }
  const auto* node_count = json.find("node_count");
  if (node_count == nullptr ||
      static_cast<std::size_t>(node_count->as_number()) != out.points.size()) {
    return decode_fail(error, "node_count disagrees with points_bits");
  }
  const auto* radii_bits = json.find("radii2_bits");
  if (radii_bits == nullptr || !radii_bits->is_array()) {
    return decode_fail(error, "missing radii2_bits");
  }
  out.radii2.reserve(radii_bits->as_array()->size());
  for (const io::Json& entry : *radii_bits->as_array()) {
    double r2 = 0.0;
    if (!read_hex_double(&entry, r2)) {
      return decode_fail(error, "malformed radii2_bits entry");
    }
    out.radii2.push_back(r2);
  }
  const auto* adjacency = json.find("adjacency");
  if (adjacency == nullptr || !adjacency->is_array()) {
    return decode_fail(error, "missing adjacency");
  }
  out.adjacency.reserve(adjacency->as_array()->size());
  for (const io::Json& row : *adjacency->as_array()) {
    if (!row.is_array()) return decode_fail(error, "malformed adjacency row");
    std::vector<NodeId> neighbors;
    neighbors.reserve(row.as_array()->size());
    for (const io::Json& v : *row.as_array()) {
      if (!v.is_number()) {
        return decode_fail(error, "malformed adjacency entry");
      }
      neighbors.push_back(static_cast<NodeId>(v.as_number()));
    }
    out.adjacency.push_back(std::move(neighbors));
  }
  if (out.cache_valid) {
    const auto* interference = json.find("interference");
    if (interference == nullptr || !interference->is_array()) {
      return decode_fail(error, "missing interference (cache_valid set)");
    }
    out.interference.reserve(interference->as_array()->size());
    for (const io::Json& v : *interference->as_array()) {
      if (!v.is_number()) {
        return decode_fail(error, "malformed interference entry");
      }
      out.interference.push_back(static_cast<std::uint32_t>(v.as_number()));
    }
  }
  if (!out.validate(error)) return false;
  double stored_checksum = 0.0;
  if (!read_hex_double(json.find("payload_checksum"), stored_checksum) ||
      double_bits(stored_checksum) != out.payload_checksum()) {
    return decode_fail(error, "payload checksum mismatch (tampered document)");
  }
  return true;
}

}  // namespace rim::core
