#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file incremental.hpp
/// Robustness of the interference measure under node churn.
///
/// The paper's second headline property (Section 1): in the receiver-centric
/// model an additional node is just one more packet source, so the
/// interference experienced by any pre-existing node grows by at most one
/// from the newcomer's own disk — plus at most one more when its attachment
/// partner enlarges its range to reach it. The sender-centric model has no
/// such bound: a single added node can force an edge whose coverage is n
/// (Figure 1). These helpers quantify both effects for experiments E1/E11.
///
/// Both assessors are deprecated thin wrappers over core::Assessor
/// (assessor.hpp) — the mutation is expressed as a core::Mutation sequence
/// and measured on a probe copy of a temporary Scenario (the "before" state
/// costs one full evaluation, the mutation itself an O(affected-disk)
/// incremental delta). Long-lived churn loops should hold a Scenario
/// directly and apply()/assess per event instead.

namespace rim::core {

/// How a freshly arrived node is wired into the existing topology.
enum class AttachPolicy : std::uint8_t {
  kNearestNeighbor,  ///< symmetric edge to the nearest existing node
  kIsolated,         ///< no edge (pure disk-count bookkeeping)
};

struct NodeAdditionImpact {
  /// Receiver-centric I(G') before/after the addition.
  std::uint32_t receiver_before = 0;
  std::uint32_t receiver_after = 0;
  /// Max increase of I(v) over pre-existing nodes v.
  std::uint32_t receiver_max_node_increase = 0;
  /// Interference experienced by the new node itself.
  std::uint32_t newcomer_interference = 0;
  /// Sender-centric (MobiHoc'04) max edge coverage before/after.
  std::uint32_t sender_before = 0;
  std::uint32_t sender_after = 0;
};

/// Evaluate the impact of adding a node at \p new_point to the network
/// (\p points, \p topology) under the given attachment policy.
/// \deprecated Use core::Assessor::assess_addition (assessor.hpp) — the one
/// assessment front door. Scheduled for removal next PR (DESIGN.md §10).
[[deprecated("use core::Assessor::assess_addition")]] [[nodiscard]]
NodeAdditionImpact assess_node_addition(
    std::span<const geom::Vec2> points, const graph::Graph& topology,
    geom::Vec2 new_point, AttachPolicy policy = AttachPolicy::kNearestNeighbor);

struct NodeRemovalImpact {
  std::uint32_t receiver_before = 0;
  std::uint32_t receiver_after = 0;
  /// Max increase of I(v) over surviving nodes (0 in the receiver model
  /// when no repair edges are added — a property the tests assert).
  std::uint32_t receiver_max_node_increase = 0;
};

/// Evaluate removing node \p victim (and its incident edges) without repair.
/// \deprecated Use core::Assessor::assess_removal (assessor.hpp). Scheduled
/// for removal next PR (DESIGN.md §10).
[[deprecated("use core::Assessor::assess_removal")]] [[nodiscard]]
NodeRemovalImpact assess_node_removal(
    std::span<const geom::Vec2> points, const graph::Graph& topology,
    NodeId victim);

}  // namespace rim::core
