#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "rim/common/arena.hpp"
#include "rim/common/types.hpp"
#include "rim/geom/vec2.hpp"

/// \file speculative.hpp
/// Optimistic (speculative) execution of coalesced batch disk tasks.
///
/// The wave scheduler (scenario_batch.cpp) is conservative: it proves tasks
/// independent up front (pairwise AABB-disjoint regions) and pays one pool
/// barrier per wave. SpeculativeExecutor inverts the bet, borrowing the
/// Time-Warp optimistic-PDES discipline: every worker grabs the next task,
/// *claims* the grid cells of the task's disk footprint in an epoch-stamped
/// footprint index, and executes immediately. A task that runs into a cell
/// owned by a live peer aborts before writing anything and is requeued; a
/// task whose post-hoc validation fails rolls its own effect back through
/// an arena-backed common::UndoLog while still owning its cells. Losers
/// replay in later rounds; a bounded number of rounds (or a zero-progress
/// round) falls back to executing the stragglers serially — the adversarial
/// worst case degenerates to the serial baseline, never worse.
///
/// Why this is bit-identical to serial execution (DESIGN.md §11): the final
/// interference vector is a pure function of the final configuration —
/// every disk task is a commuting integer ±1 over its own region (the
/// paper's robustness property), and the footprint claims guarantee no two
/// concurrent tasks ever write the same interference slot (a node's slot
/// can only be written by tasks whose walk rectangles cover its cell).
/// Each task commits exactly once, so any interleaving sums to the same
/// vector; only the obs conflict counters are timing-dependent.

namespace rim::parallel {
class ThreadPool;
}

namespace rim::core {

class Scenario;
class BatchHooks;

/// One coalesced region delta of the batch pipeline: remove the disk
/// (center, old_r2) and apply (center, new_r2), skipping slot `exclude`.
/// Trivially destructible (arena-resident).
struct DiskTask {
  NodeId exclude = kInvalidNode;
  geom::Vec2 center{};
  double old_r2 = 0.0;
  double new_r2 = 0.0;

  [[nodiscard]] double query_radius() const {
    return std::sqrt(std::max({old_r2, new_r2, 0.0}));
  }
  /// The squared radius the delta kernel actually walks.
  [[nodiscard]] double query_radius2() const {
    return std::max({old_r2, new_r2, 0.0});
  }
};

/// What one speculative run did (folded into BatchResult/ScenarioStats).
struct SpecOutcome {
  std::size_t committed = 0;      ///< tasks whose effect survived
  std::size_t rolled_back = 0;    ///< conflict aborts + validation rollbacks
  std::size_t replay_rounds = 0;  ///< parallel rounds after the first
  std::size_t serial_tasks = 0;   ///< tasks that fell to the serial tail
};

/// Executes one batch's disk-task list speculatively. Owned by a Scenario
/// (lazily, like the batch arena — never copied with it) and reused across
/// batches: the footprint index and the per-worker arenas reach a
/// steady state with zero allocations, and conflicts of earlier batches are
/// retired by bumping the epoch instead of clearing stamps.
class SpeculativeExecutor {
 public:
  SpeculativeExecutor() = default;
  SpeculativeExecutor(const SpeculativeExecutor&) = delete;
  SpeculativeExecutor& operator=(const SpeculativeExecutor&) = delete;

  /// Apply tasks[0..count) to \p scenario's interference vector. Requires
  /// the scenario's grid and store to be frozen for the duration (the batch
  /// pipeline guarantees it: the structural pass is over, recounts run
  /// after). \p hooks, when non-null, is consulted per task
  /// (BatchHooks::before/after_speculative_task).
  SpecOutcome run(Scenario& scenario, const DiskTask* tasks, std::size_t count,
                  parallel::ThreadPool* pool, BatchHooks* hooks);

 private:
  /// Parallel replay rounds before giving up and finishing serially. Each
  /// round is guaranteed aggregate progress (claims are acquired in
  /// ascending slot order, so the task holding the highest claimed slot
  /// always commits), so the cap only bounds tail latency.
  static constexpr std::size_t kMaxRounds = 4;
  /// Re-execution attempts after validation failure on the serial tail
  /// before the task is treated as vetoed (hook-poisoned).
  static constexpr std::size_t kMaxValidationRetries = 3;

  enum class Attempt : std::uint8_t { kCommitted, kConflict, kSkipped };

  struct Footprint {
    std::uint32_t* slots = nullptr;  ///< ascending footprint-index slots
    std::uint32_t count = 0;
    std::uint32_t attempts = 0;  ///< conflict-chain length when committed
  };

  /// Serial prep: walk every task's disk over the grid, intern each visited
  /// cell into the footprint index, and record the per-task slot sets.
  Footprint* collect_footprints(Scenario& scenario, const DiskTask* tasks,
                                std::size_t count);
  void ensure_stamps(std::size_t slot_count);

  Attempt attempt(Scenario& scenario, const DiskTask* tasks, Footprint* feet,
                  std::uint32_t task, BatchHooks* hooks,
                  common::Arena& worker_arena);
  void release(const Footprint& foot, std::size_t claimed);

  /// Serial-phase scratch: footprints, the cell→slot table, round queues.
  common::Arena prep_arena_;
  /// One arena per pool worker (undo logs); index 0 doubles as the serial
  /// tail's arena.
  std::vector<common::Arena> worker_arenas_;

  /// Footprint index: one atomic stamp per interned grid cell, value
  /// (epoch << 32) | (task + 1). A stamp from any earlier epoch reads as
  /// free, so runs never clear the array.
  std::unique_ptr<std::atomic<std::uint64_t>[]> stamps_;
  std::size_t stamp_capacity_ = 0;
  std::uint32_t epoch_ = 0;
};

}  // namespace rim::core
