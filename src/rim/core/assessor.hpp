#pragma once

#include <cstdint>
#include <span>

#include "rim/core/interference.hpp"
#include "rim/core/node_soa.hpp"
#include "rim/core/scenario.hpp"

/// \file assessor.hpp
/// The one assessment front door of the engine.
///
/// Interference assessment used to be reachable through several overlapping
/// entry points that grew independently; core::Assessor is the single
/// surviving interface (the legacy free functions and engine methods were
/// retired per the DESIGN.md §10.6 removal table):
///
///  - assess(NodeSoA, Strategy, EvalOptions): stateless summary of a
///    standalone SoA store. The kBrute resolution runs the simd.hpp
///    coverage kernel directly over the store's contiguous columns; grid
///    strategies reuse the stateless evaluators.
///  - assess(Graph, points): one-shot summary of a topology — radii derived
///    from farthest neighbors, evaluated through a throwaway Scenario so
///    static and incremental evaluation share one engine.
///  - assess(Scenario&, Mutation...): impact of a mutation sequence,
///    measured on a probe copy without disturbing the scenario.
///  - assess_addition / assess_removal: the structured churn reports for
///    experiments E1/E11, including the sender-centric comparison.
///
/// Model selection (DESIGN.md §12): EvalOptions.model picks which
/// interference model the assessment runs — kReceiverCentric (the paper's
/// count, the default), kSenderCentric (MobiHoc'04 edge coverage projected
/// onto nodes; topology overload only), or kSinr (accumulated path-loss
/// power, core/sinr.hpp; the integer per_node is the significant-interferer
/// count). All three return InterferenceSummary, so comparators (E23)
/// evaluate one deployment under three models through one call shape:
///
///   Assessor{}.assess(topology, points,
///                     EvalOptions{}.with_model(Model::kSinr))
///
/// New code constructs an Assessor — typically `Assessor{}` or
/// `Assessor(options)` — and calls one method.

namespace rim::core {

/// How a freshly arrived node is wired into the existing topology
/// (assess_addition).
enum class AttachPolicy : std::uint8_t {
  kNearestNeighbor,  ///< symmetric edge to the nearest existing node
  kIsolated,         ///< no edge (pure disk-count bookkeeping)
};

/// The paper's second headline property (Section 1): in the receiver-centric
/// model an additional node is just one more packet source, so the
/// interference experienced by any pre-existing node grows by at most one
/// from the newcomer's own disk — plus at most one more when its attachment
/// partner enlarges its range to reach it. The sender-centric model has no
/// such bound: a single added node can force an edge whose coverage is n
/// (Figure 1). This report quantifies both effects for experiments E1/E11.
struct NodeAdditionImpact {
  /// Receiver-centric I(G') before/after the addition.
  std::uint32_t receiver_before = 0;
  std::uint32_t receiver_after = 0;
  /// Max increase of I(v) over pre-existing nodes v.
  std::uint32_t receiver_max_node_increase = 0;
  /// Interference experienced by the new node itself.
  std::uint32_t newcomer_interference = 0;
  /// Sender-centric (MobiHoc'04) max edge coverage before/after.
  std::uint32_t sender_before = 0;
  std::uint32_t sender_after = 0;
};

struct NodeRemovalImpact {
  std::uint32_t receiver_before = 0;
  std::uint32_t receiver_after = 0;
  /// Max increase of I(v) over surviving nodes (0 in the receiver model
  /// when no repair edges are added — a property the tests assert).
  std::uint32_t receiver_max_node_increase = 0;
};

class Assessor {
 public:
  /// \p options seeds strategy resolution for the NodeSoA overloads and the
  /// temporary Scenarios built by assess_addition / assess_removal.
  explicit Assessor(EvalOptions options = {}) : options_(options) {}

  // --- stateless: summary of a standalone store ---------------------------

  /// Per-node and aggregate interference of \p nodes (Definition 3.1/3.2),
  /// with \p strategy resolved against \p options. The store must satisfy
  /// the engine's dense-id invariant (nodes.dense()); per_node is indexed
  /// by node id.
  [[nodiscard]] InterferenceSummary assess(const NodeSoA& nodes,
                                           Strategy strategy,
                                           const EvalOptions& options) const;
  [[nodiscard]] InterferenceSummary assess(
      const NodeSoA& nodes, Strategy strategy = Strategy::kAuto) const {
    return assess(nodes, strategy, options_);
  }

  // --- one-shot: summary of a topology ------------------------------------

  /// Full summary for a topology: computes radii from the topology (r_u =
  /// distance to farthest neighbor) and evaluates Definition 3.1/3.2 through
  /// a throwaway Scenario, so every evaluation — static or incremental —
  /// flows through the same engine. Hold a Scenario instead when the network
  /// evolves.
  [[nodiscard]] InterferenceSummary assess(const graph::Graph& topology,
                                           std::span<const geom::Vec2> points,
                                           const EvalOptions& options) const;
  [[nodiscard]] InterferenceSummary assess(const graph::Graph& topology,
                                           std::span<const geom::Vec2> points,
                                           Strategy strategy) const {
    EvalOptions local = options_;
    return assess(topology, points, local.with_strategy(strategy));
  }
  [[nodiscard]] InterferenceSummary assess(
      const graph::Graph& topology, std::span<const geom::Vec2> points) const {
    return assess(topology, points, options_);
  }

  // --- impact of a mutation sequence on a live scenario -------------------

  /// Measure what applying \p mutations (in order) would do to
  /// \p scenario, without applying it: the sequence runs on a probe copy
  /// and per-node deltas, affected ids, and before/after maxima are
  /// reported in the pre-mutation id space. \p scenario itself only
  /// refreshes its evaluation cache.
  [[nodiscard]] Assessment assess(Scenario& scenario,
                                  std::span<const Mutation> mutations) const;
  [[nodiscard]] Assessment assess(Scenario& scenario,
                                  const Mutation& mutation) const {
    return assess(scenario, std::span<const Mutation>(&mutation, 1));
  }

  // --- structured churn reports (experiments E1/E11) ----------------------

  /// Impact of adding a node at \p new_point to the network
  /// (\p points, \p topology) under \p policy, including the
  /// sender-centric (MobiHoc'04) before/after comparison.
  [[nodiscard]] NodeAdditionImpact assess_addition(
      std::span<const geom::Vec2> points, const graph::Graph& topology,
      geom::Vec2 new_point,
      AttachPolicy policy = AttachPolicy::kNearestNeighbor) const;

  /// Impact of removing node \p victim (and its incident edges) without
  /// repair.
  [[nodiscard]] NodeRemovalImpact assess_removal(
      std::span<const geom::Vec2> points, const graph::Graph& topology,
      NodeId victim) const;

  [[nodiscard]] const EvalOptions& options() const { return options_; }

 private:
  EvalOptions options_;
};

}  // namespace rim::core
