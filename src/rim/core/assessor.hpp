#pragma once

#include <span>

#include "rim/core/incremental.hpp"
#include "rim/core/interference.hpp"
#include "rim/core/node_soa.hpp"
#include "rim/core/scenario.hpp"

/// \file assessor.hpp
/// The one assessment front door of the engine.
///
/// Interference assessment used to be reachable through three overlapping
/// entry points that grew independently: the free-function assessors of
/// incremental.hpp, Scenario::assess(Mutation), and the per-command handlers
/// of rim::svc. core::Assessor collapses them into a single interface:
///
///  - assess(NodeSoA, Strategy, EvalOptions): stateless summary of a
///    standalone SoA store. The kBrute resolution runs the simd.hpp
///    coverage kernel directly over the store's contiguous columns; grid
///    strategies reuse the stateless evaluators.
///  - assess(Scenario&, Mutation...): impact of a mutation sequence,
///    measured on a probe copy without disturbing the scenario (the former
///    Scenario::assess).
///  - assess_addition / assess_removal: the structured churn reports of
///    incremental.hpp (experiments E1/E11), including the sender-centric
///    comparison.
///
/// The old entry points survive as deprecated thin wrappers for one PR
/// (removal note in DESIGN.md §10); new code constructs an Assessor —
/// typically `Assessor{}` or `Assessor(options)` — and calls one method.

namespace rim::core {

class Assessor {
 public:
  /// \p options seeds strategy resolution for the NodeSoA overloads and the
  /// temporary Scenarios built by assess_addition / assess_removal.
  explicit Assessor(EvalOptions options = {}) : options_(options) {}

  // --- stateless: summary of a standalone store ---------------------------

  /// Per-node and aggregate interference of \p nodes (Definition 3.1/3.2),
  /// with \p strategy resolved against \p options. The store must satisfy
  /// the engine's dense-id invariant (nodes.dense()); per_node is indexed
  /// by node id.
  [[nodiscard]] InterferenceSummary assess(const NodeSoA& nodes,
                                           Strategy strategy,
                                           const EvalOptions& options) const;
  [[nodiscard]] InterferenceSummary assess(
      const NodeSoA& nodes, Strategy strategy = Strategy::kAuto) const {
    return assess(nodes, strategy, options_);
  }

  // --- impact of a mutation sequence on a live scenario -------------------

  /// Measure what applying \p mutations (in order) would do to
  /// \p scenario, without applying it: the sequence runs on a probe copy
  /// and per-node deltas, affected ids, and before/after maxima are
  /// reported in the pre-mutation id space. \p scenario itself only
  /// refreshes its evaluation cache.
  [[nodiscard]] Assessment assess(Scenario& scenario,
                                  std::span<const Mutation> mutations) const;
  [[nodiscard]] Assessment assess(Scenario& scenario,
                                  const Mutation& mutation) const {
    return assess(scenario, std::span<const Mutation>(&mutation, 1));
  }

  // --- structured churn reports (experiments E1/E11) ----------------------

  /// Impact of adding a node at \p new_point to the network
  /// (\p points, \p topology) under \p policy, including the
  /// sender-centric (MobiHoc'04) before/after comparison.
  [[nodiscard]] NodeAdditionImpact assess_addition(
      std::span<const geom::Vec2> points, const graph::Graph& topology,
      geom::Vec2 new_point,
      AttachPolicy policy = AttachPolicy::kNearestNeighbor) const;

  /// Impact of removing node \p victim (and its incident edges) without
  /// repair.
  [[nodiscard]] NodeRemovalImpact assess_removal(
      std::span<const geom::Vec2> points, const graph::Graph& topology,
      NodeId victim) const;

  [[nodiscard]] const EvalOptions& options() const { return options_; }

 private:
  EvalOptions options_;
};

}  // namespace rim::core
