#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file interference.hpp
/// The receiver-centric interference model (Definitions 3.1 and 3.2).
///
/// Given a topology G' on positioned nodes, the interference of node v is
///   I(v) = |{ u != v : v in D(u, r_u) }|,
/// i.e. the number of *other* nodes whose induced transmission disks cover
/// v — the nodes that can disturb reception at v. The interference of the
/// whole topology is I(G') = max_v I(v).
///
/// Three evaluation strategies are provided and cross-checked by tests:
///  - Brute:    O(n^2) pairwise oracle.
///  - Grid:     per-node disk queries on a uniform grid keyed by the median
///              radius; expected near-linear for bounded-density instances.
///  - Parallel: Grid partitioned over the shared thread pool.

namespace rim::core {

/// Per-node and aggregate interference of a topology.
struct InterferenceSummary {
  std::vector<std::uint32_t> per_node;  ///< I(v) for every node v.
  std::uint32_t max = 0;                ///< I(G'), Definition 3.2.
  double mean = 0.0;                    ///< average node interference.
  std::uint64_t total = 0;              ///< sum of I(v); equals total coverage.

  /// Histogram: bucket k counts nodes with I(v) == k (size max+1).
  [[nodiscard]] std::vector<std::uint32_t> histogram() const;
};

enum class EvalStrategy : std::uint8_t {
  kBrute,     ///< O(n^2) oracle.
  kGrid,      ///< uniform-grid accelerated.
  kParallel,  ///< grid + thread pool.
  kAuto,      ///< pick by instance size.
};

/// Interference of node \p v under the given radii (Definition 3.1).
/// A node exactly on a disk boundary counts as covered; self-interference
/// is excluded.
[[nodiscard]] std::uint32_t node_interference(std::span<const geom::Vec2> points,
                                              std::span<const double> radii,
                                              NodeId v);

/// Per-node interference for all nodes under the given radii.
[[nodiscard]] std::vector<std::uint32_t> interference_vector(
    std::span<const geom::Vec2> points, std::span<const double> radii,
    EvalStrategy strategy = EvalStrategy::kAuto);

/// Full summary for a topology: computes radii from the topology (r_u =
/// distance to farthest neighbor) and evaluates Definition 3.1/3.2.
[[nodiscard]] InterferenceSummary evaluate_interference(
    const graph::Graph& topology, std::span<const geom::Vec2> points,
    EvalStrategy strategy = EvalStrategy::kAuto);

/// Convenience: I(G') only.
[[nodiscard]] std::uint32_t graph_interference(
    const graph::Graph& topology, std::span<const geom::Vec2> points,
    EvalStrategy strategy = EvalStrategy::kAuto);

/// The witnesses behind Definition 3.1: for every node v, the ascending
/// list of nodes u whose disks D(u, r_u) cover v. Row sizes equal the
/// per-node interference; useful for diagnostics and visualisation.
[[nodiscard]] std::vector<std::vector<NodeId>> covering_sets(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

}  // namespace rim::core
