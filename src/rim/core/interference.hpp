#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file interference.hpp
/// The receiver-centric interference model (Definitions 3.1 and 3.2).
///
/// Given a topology G' on positioned nodes, the interference of node v is
///   I(v) = |{ u != v : v in D(u, r_u) }|,
/// i.e. the number of *other* nodes whose induced transmission disks cover
/// v — the nodes that can disturb reception at v. The interference of the
/// whole topology is I(G') = max_v I(v).
///
/// Three evaluation strategies are provided and cross-checked by tests:
///  - Brute:    O(n^2) pairwise oracle.
///  - Grid:     per-node disk queries on a uniform grid keyed by the median
///              radius; expected near-linear for bounded-density instances.
///  - Parallel: Grid partitioned over the shared thread pool.
///
/// All of them recompute from scratch. For evolving networks (churn, local
/// search, simulation ticks) prefer core::Scenario (scenario.hpp), the
/// stateful engine that maintains the interference vector under
/// add/remove/move mutations with O(affected-disk) work per event; the free
/// functions below are one-shot conveniences layered on the same kernels.

namespace rim::core {

/// Per-node and aggregate interference of a topology.
struct InterferenceSummary {
  std::vector<std::uint32_t> per_node;  ///< I(v) for every node v.
  std::uint32_t max = 0;                ///< I(G'), Definition 3.2.
  double mean = 0.0;                    ///< average node interference.
  std::uint64_t total = 0;              ///< sum of I(v); equals total coverage.

  /// Aggregate a per-node vector into a summary (max/mean/total). The single
  /// aggregation point shared by every evaluation strategy and by Scenario.
  [[nodiscard]] static InterferenceSummary from_per_node(
      std::vector<std::uint32_t> per_node);

  /// Histogram: bucket k counts nodes with I(v) == k (size max+1).
  [[nodiscard]] std::vector<std::uint32_t> histogram() const;
};

enum class Strategy : std::uint8_t {
  kBrute,     ///< O(n^2) oracle.
  kGrid,      ///< uniform-grid accelerated.
  kParallel,  ///< grid + thread pool.
  kAuto,      ///< pick by instance size.
};

/// How Scenario::apply_batch executes its coalesced disk tasks after the
/// serial structural pass (DESIGN.md §11).
enum class Execution : std::uint8_t {
  kSerial,       ///< inline, in task order — the reference baseline
  kWave,         ///< AABB-disjoint waves, one pool barrier per wave
  kSpeculative,  ///< optimistic: claim footprints, roll losers back, replay
};

/// Which interference model Assessor::assess evaluates (DESIGN.md §12).
enum class Model : std::uint8_t {
  kReceiverCentric,  ///< the paper's I(v) = covering-disk count (default)
  kSenderCentric,    ///< MobiHoc'04 per-edge disk coverage, max over edges
  kSinr,             ///< physical model: accumulated path-loss power at v
};

/// Parameters of the SINR (physical) model comparator (core/sinr.hpp).
///
/// The path-loss exponent is constrained to an even integer (alpha = 2h)
/// so a contribution P_u / d(u,v)^alpha = (kappa * r2_u^h) / d2^h is
/// computed from *squared* distances with only multiplies and one divide —
/// all per-lane IEEE-exact — which is what makes the SIMD and scalar SINR
/// kernels bit-identical (see simd::sinr_gather_scalar).
struct SinrOptions {
  int half_alpha = 2;      ///< h; path-loss exponent alpha = 2h (default 4)
  double beta = 2.0;       ///< SINR acceptance threshold
  double noise = 1e-4;     ///< ambient noise floor N
  double margin = 2.0;     ///< transmit-power headroom over beta*N

  /// Contributions below far_field_rel * noise truncate to zero; together
  /// with the power rule this induces the per-transmitter squared cutoff
  /// d2 <= r2 * cutoff_factor() outside which a disk is irrelevant.
  double far_field_rel = 1e-3;

  /// A contribution >= significant_rel * noise counts as one *significant
  /// interferer* — the integer per-node count that makes SINR results
  /// comparable with the disk models' covering-disk counts.
  double significant_rel = 1.0;

  /// Emitted power of a node with squared radius r2: P = kappa() * r2^h,
  /// the squared-radius form of P_u = beta * N * margin * r_u^alpha — the
  /// weakest power that still closes an r_u-length link alone (phy/sinr.hpp
  /// uses the same rule).
  [[nodiscard]] double kappa() const { return beta * noise * margin; }

  /// Far-field truncation factor: contribution < far_field_rel * N exactly
  /// when d2 > r2 * (beta * margin / far_field_rel)^(1/h). Evaluated once
  /// per assessment, outside the kernels.
  [[nodiscard]] double cutoff_factor() const;

  /// Absolute significant-interferer threshold passed to the kernels.
  [[nodiscard]] double significant_threshold() const {
    return significant_rel * noise;
  }

  // --- builder-style setters (match EvalOptions) ---------------------------
  SinrOptions& with_half_alpha(int h) {
    half_alpha = h;
    return *this;
  }
  SinrOptions& with_beta(double b) {
    beta = b;
    return *this;
  }
  SinrOptions& with_noise(double n) {
    noise = n;
    return *this;
  }
  SinrOptions& with_margin(double m) {
    margin = m;
    return *this;
  }
  SinrOptions& with_far_field_rel(double rel) {
    far_field_rel = rel;
    return *this;
  }
  SinrOptions& with_significant_rel(double rel) {
    significant_rel = rel;
    return *this;
  }
};

/// The one evaluation-configuration surface shared by the free evaluators,
/// core::Scenario, highway::local_search, and ext2d — every threshold that
/// used to be a scattered constant lives here, overridable per call site.
struct EvalOptions {
  Strategy strategy = Strategy::kAuto;

  /// Which interference model Assessor::assess runs (default: the paper's
  /// receiver-centric count). Scenario and the free evaluators are
  /// receiver-centric only; they ignore this field.
  Model model = Model::kReceiverCentric;

  /// SINR-model parameters, consulted only when model == Model::kSinr.
  SinrOptions sinr;

  /// Scenario::apply_batch disk-task execution mode. All three modes are
  /// bit-identical (the property tests pin it); they differ only in how the
  /// commuting ±1 region deltas are scheduled across the thread pool.
  Execution execution = Execution::kWave;

  /// Strategy::kAuto resolution (see resolve()): instances up to
  /// auto_brute_max_nodes use the O(n^2) oracle (cheaper than building a
  /// grid), up to auto_grid_max_nodes the serial grid, and anything larger
  /// the parallel grid.
  std::size_t auto_brute_max_nodes = 64;
  std::size_t auto_grid_max_nodes = 4096;

  /// Scenario's incremental-vs-full fallback: a single delta estimated to
  /// touch more than max(touched_floor, max_touched_fraction * n) nodes
  /// invalidates the cache instead of patching it.
  double max_touched_fraction = 0.25;
  std::size_t touched_floor = 64;

  /// Scenario::apply_batch: waves with fewer independent region tasks than
  /// this run inline rather than on the thread pool (submit overhead would
  /// exceed the work).
  std::size_t batch_min_parallel_tasks = 4;

  // --- builder-style setters -----------------------------------------------
  // Chainable named setters so call sites read as intent instead of
  // designated-initializer field soup:
  //
  //   EvalOptions{}.with_strategy(Strategy::kGrid).with_touched_floor(128)
  //
  // Each returns *this by reference; the defaults above apply to anything
  // left unset.

  EvalOptions& with_strategy(Strategy s) {
    strategy = s;
    return *this;
  }
  /// Batch disk-task execution mode (default Execution::kWave).
  EvalOptions& with_execution(Execution e) {
    execution = e;
    return *this;
  }
  /// Interference model for Assessor::assess (default kReceiverCentric).
  EvalOptions& with_model(Model m) {
    model = m;
    return *this;
  }
  /// SINR-model parameters (only consulted under Model::kSinr).
  EvalOptions& with_sinr(const SinrOptions& s) {
    sinr = s;
    return *this;
  }
  /// kAuto cutover to the O(n^2) oracle (default 64 nodes).
  EvalOptions& with_auto_brute_max_nodes(std::size_t n) {
    auto_brute_max_nodes = n;
    return *this;
  }
  /// kAuto cutover to the serial grid (default 4096 nodes).
  EvalOptions& with_auto_grid_max_nodes(std::size_t n) {
    auto_grid_max_nodes = n;
    return *this;
  }
  /// Incremental fallback fraction (default 0.25 of the node count).
  EvalOptions& with_max_touched_fraction(double fraction) {
    max_touched_fraction = fraction;
    return *this;
  }
  /// Incremental fallback floor (default 64 touched nodes).
  EvalOptions& with_touched_floor(std::size_t floor) {
    touched_floor = floor;
    return *this;
  }
  /// Minimum independent tasks per batch wave to use the pool (default 4).
  EvalOptions& with_batch_min_parallel_tasks(std::size_t tasks) {
    batch_min_parallel_tasks = tasks;
    return *this;
  }

  /// The concrete strategy `strategy` resolves to for an instance of
  /// \p node_count nodes; non-kAuto strategies pass through unchanged.
  [[nodiscard]] Strategy resolve(std::size_t node_count) const {
    if (strategy != Strategy::kAuto) return strategy;
    if (node_count <= auto_brute_max_nodes) return Strategy::kBrute;
    if (node_count <= auto_grid_max_nodes) return Strategy::kGrid;
    return Strategy::kParallel;
  }

  /// The incremental fallback threshold for an instance of \p node_count
  /// nodes (see max_touched_fraction).
  [[nodiscard]] std::size_t touched_threshold(std::size_t node_count) const {
    const auto scaled = static_cast<std::size_t>(
        max_touched_fraction * static_cast<double>(node_count));
    return touched_floor > scaled ? touched_floor : scaled;
  }
};

/// Interference of node \p v under the given radii (Definition 3.1).
/// A node exactly on a disk boundary counts as covered; self-interference
/// is excluded.
[[nodiscard]] std::uint32_t node_interference(std::span<const geom::Vec2> points,
                                              std::span<const double> radii,
                                              NodeId v);

/// Per-node interference for all nodes under the given radii.
///
/// \deprecated For repeated evaluation of an evolving network, direct use
/// of interference_vector (recomputing every node per call) is deprecated
/// in favour of core::Scenario, which keeps the vector current under
/// mutations at O(affected-disk) cost. One-shot callers are unaffected.
[[nodiscard]] std::vector<std::uint32_t> interference_vector(
    std::span<const geom::Vec2> points, std::span<const double> radii,
    Strategy strategy = Strategy::kAuto);

/// Like interference_vector but over *squared* radii — the exact form every
/// evaluator uses internally (containment is dist2 <= radii2[u], no
/// sqrt/square roundtrip). This is the batched full-evaluation kernel that
/// Scenario falls back to when a delta touches too much of the instance.
[[nodiscard]] std::vector<std::uint32_t> interference_vector_squared(
    std::span<const geom::Vec2> points, std::span<const double> radii2,
    Strategy strategy = Strategy::kAuto);
[[nodiscard]] std::vector<std::uint32_t> interference_vector_squared(
    std::span<const geom::Vec2> points, std::span<const double> radii2,
    const EvalOptions& options);

/// Convenience: I(G') only. For the full InterferenceSummary of a topology
/// use core::Assessor::assess(topology, points); hold a Scenario instead
/// when the network evolves.
[[nodiscard]] std::uint32_t graph_interference(
    const graph::Graph& topology, std::span<const geom::Vec2> points,
    Strategy strategy = Strategy::kAuto);
[[nodiscard]] std::uint32_t graph_interference(
    const graph::Graph& topology, std::span<const geom::Vec2> points,
    const EvalOptions& options);

/// The witnesses behind Definition 3.1: for every node v, the ascending
/// list of nodes u whose disks D(u, r_u) cover v. Row sizes equal the
/// per-node interference; useful for diagnostics and visualisation.
[[nodiscard]] std::vector<std::vector<NodeId>> covering_sets(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

}  // namespace rim::core
