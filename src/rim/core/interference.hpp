#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file interference.hpp
/// The receiver-centric interference model (Definitions 3.1 and 3.2).
///
/// Given a topology G' on positioned nodes, the interference of node v is
///   I(v) = |{ u != v : v in D(u, r_u) }|,
/// i.e. the number of *other* nodes whose induced transmission disks cover
/// v — the nodes that can disturb reception at v. The interference of the
/// whole topology is I(G') = max_v I(v).
///
/// Three evaluation strategies are provided and cross-checked by tests:
///  - Brute:    O(n^2) pairwise oracle.
///  - Grid:     per-node disk queries on a uniform grid keyed by the median
///              radius; expected near-linear for bounded-density instances.
///  - Parallel: Grid partitioned over the shared thread pool.
///
/// All of them recompute from scratch. For evolving networks (churn, local
/// search, simulation ticks) prefer core::Scenario (scenario.hpp), the
/// stateful engine that maintains the interference vector under
/// add/remove/move mutations with O(affected-disk) work per event; the free
/// functions below are one-shot conveniences layered on the same kernels.

namespace rim::core {

/// Per-node and aggregate interference of a topology.
struct InterferenceSummary {
  std::vector<std::uint32_t> per_node;  ///< I(v) for every node v.
  std::uint32_t max = 0;                ///< I(G'), Definition 3.2.
  double mean = 0.0;                    ///< average node interference.
  std::uint64_t total = 0;              ///< sum of I(v); equals total coverage.

  /// Aggregate a per-node vector into a summary (max/mean/total). The single
  /// aggregation point shared by every evaluation strategy and by Scenario.
  [[nodiscard]] static InterferenceSummary from_per_node(
      std::vector<std::uint32_t> per_node);

  /// Histogram: bucket k counts nodes with I(v) == k (size max+1).
  [[nodiscard]] std::vector<std::uint32_t> histogram() const;
};

enum class EvalStrategy : std::uint8_t {
  kBrute,     ///< O(n^2) oracle.
  kGrid,      ///< uniform-grid accelerated.
  kParallel,  ///< grid + thread pool.
  kAuto,      ///< pick by instance size.
};

/// EvalStrategy::kAuto thresholds, in one place (see resolve_strategy):
/// instances up to kAutoBruteMaxNodes use the O(n^2) oracle (cheaper than
/// building a grid), up to kAutoGridMaxNodes the serial grid, and anything
/// larger the parallel grid.
inline constexpr std::size_t kAutoBruteMaxNodes = 64;
inline constexpr std::size_t kAutoGridMaxNodes = 4096;

/// The concrete strategy kAuto resolves to for an instance of
/// \p node_count nodes; non-kAuto strategies pass through unchanged.
[[nodiscard]] EvalStrategy resolve_strategy(EvalStrategy strategy,
                                            std::size_t node_count);

/// Interference of node \p v under the given radii (Definition 3.1).
/// A node exactly on a disk boundary counts as covered; self-interference
/// is excluded.
[[nodiscard]] std::uint32_t node_interference(std::span<const geom::Vec2> points,
                                              std::span<const double> radii,
                                              NodeId v);

/// Per-node interference for all nodes under the given radii.
///
/// \deprecated For repeated evaluation of an evolving network, direct use
/// of interference_vector (recomputing every node per call) is deprecated
/// in favour of core::Scenario, which keeps the vector current under
/// mutations at O(affected-disk) cost. One-shot callers are unaffected.
[[nodiscard]] std::vector<std::uint32_t> interference_vector(
    std::span<const geom::Vec2> points, std::span<const double> radii,
    EvalStrategy strategy = EvalStrategy::kAuto);

/// Like interference_vector but over *squared* radii — the exact form every
/// evaluator uses internally (containment is dist2 <= radii2[u], no
/// sqrt/square roundtrip). This is the batched full-evaluation kernel that
/// Scenario falls back to when a delta touches too much of the instance.
[[nodiscard]] std::vector<std::uint32_t> interference_vector_squared(
    std::span<const geom::Vec2> points, std::span<const double> radii2,
    EvalStrategy strategy = EvalStrategy::kAuto);

/// Full summary for a topology: computes radii from the topology (r_u =
/// distance to farthest neighbor) and evaluates Definition 3.1/3.2.
/// Equivalent to constructing a one-shot Scenario and asking for summary();
/// hold a Scenario instead when the network evolves.
[[nodiscard]] InterferenceSummary evaluate_interference(
    const graph::Graph& topology, std::span<const geom::Vec2> points,
    EvalStrategy strategy = EvalStrategy::kAuto);

/// Convenience: I(G') only.
[[nodiscard]] std::uint32_t graph_interference(
    const graph::Graph& topology, std::span<const geom::Vec2> points,
    EvalStrategy strategy = EvalStrategy::kAuto);

/// The witnesses behind Definition 3.1: for every node v, the ascending
/// list of nodes u whose disks D(u, r_u) cover v. Row sizes equal the
/// per-node interference; useful for diagnostics and visualisation.
[[nodiscard]] std::vector<std::vector<NodeId>> covering_sets(
    const graph::Graph& topology, std::span<const geom::Vec2> points);

}  // namespace rim::core
