#include "rim/core/radii.hpp"

#include <algorithm>
#include <cmath>

namespace rim::core {

std::vector<double> transmission_radii(const graph::Graph& topology,
                                       std::span<const geom::Vec2> points) {
  std::vector<double> radii(topology.node_count(), 0.0);
  for (NodeId u = 0; u < topology.node_count(); ++u) {
    double best = 0.0;
    for (NodeId v : topology.neighbors(u)) {
      best = std::max(best, geom::dist2(points[u], points[v]));
    }
    radii[u] = std::sqrt(best);
  }
  return radii;
}

std::vector<double> transmission_radii_squared(const graph::Graph& topology,
                                               std::span<const geom::Vec2> points) {
  std::vector<double> radii2(topology.node_count(), 0.0);
  for (NodeId u = 0; u < topology.node_count(); ++u) {
    double best = 0.0;
    for (NodeId v : topology.neighbors(u)) {
      best = std::max(best, geom::dist2(points[u], points[v]));
    }
    radii2[u] = best;
  }
  return radii2;
}

double total_power(std::span<const double> radii, double alpha) {
  double sum = 0.0;
  for (double r : radii) sum += std::pow(r, alpha);
  return sum;
}

}  // namespace rim::core
