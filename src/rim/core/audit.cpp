#include "rim/core/audit.hpp"

#include <algorithm>
#include <array>

#include "rim/core/assessor.hpp"

namespace rim::core {

io::Json AuditReport::to_json() const {
  io::JsonObject o;
  o["checks"] = io::Json(checks);
  o["ok"] = io::Json(ok());
  io::JsonArray rows;
  rows.reserve(violations.size());
  for (const std::string& v : violations) rows.emplace_back(v);
  o["violations"] = io::Json(std::move(rows));
  return io::Json(std::move(o));
}

void InvariantAuditor::record(AuditReport& report, std::string message) const {
  ++violations_;
  if (report.violations.size() < options_.max_violations) {
    report.violations.push_back(std::move(message));
  }
}

AuditReport InvariantAuditor::audit(Scenario& scenario) const {
  ++audits_;
  AuditReport report;
  const std::size_t n = scenario.node_count();
  const geom::PointSet points = scenario.points();

  if (options_.check_structure) {
    std::size_t degree_sum = 0;
    for (NodeId u = 0; u < n; ++u) {
      const std::span<const NodeId> neighbors = scenario.neighbors(u);
      degree_sum += neighbors.size();
      double farthest = 0.0;
      for (const NodeId v : neighbors) {
        ++report.checks;
        if (v >= n) {
          record(report, "node " + std::to_string(u) +
                             " has out-of-range neighbor " +
                             std::to_string(v));
          continue;
        }
        if (v == u) {
          record(report, "node " + std::to_string(u) + " has a self-loop");
          continue;
        }
        if (std::count(neighbors.begin(), neighbors.end(), v) != 1) {
          record(report, "node " + std::to_string(u) +
                             " lists neighbor " + std::to_string(v) +
                             " more than once");
        }
        const std::span<const NodeId> back = scenario.neighbors(v);
        if (std::find(back.begin(), back.end(), u) == back.end()) {
          record(report, "edge {" + std::to_string(u) + "," +
                             std::to_string(v) + "} is asymmetric");
        }
        farthest = std::max(farthest, geom::dist2(points[u], points[v]));
      }
      ++report.checks;
      // Exact comparison on purpose: the engine derives every cached
      // radius from the same geom::dist2 expression, so any difference is
      // a lost update, not floating-point noise.
      if (scenario.radius_squared(u) != farthest) {
        record(report, "node " + std::to_string(u) +
                           " cached r^2 differs from farthest-neighbor "
                           "distance (lost radius update)");
      }
    }
    ++report.checks;
    if (degree_sum != 2 * scenario.edge_count()) {
      record(report, "edge count " + std::to_string(scenario.edge_count()) +
                         " disagrees with adjacency degree sum " +
                         std::to_string(degree_sum));
    }
  }

  if (options_.check_interference) {
    std::vector<double> radii2(n);
    for (NodeId v = 0; v < n; ++v) radii2[v] = scenario.radius_squared(v);
    const std::vector<std::uint32_t> oracle =
        interference_vector_squared(points, radii2, Strategy::kBrute);
    const std::span<const std::uint32_t> cached = scenario.interference();
    for (NodeId v = 0; v < n; ++v) {
      ++report.checks;
      if (cached[v] != oracle[v]) {
        record(report, "node " + std::to_string(v) + " cached I(v)=" +
                           std::to_string(cached[v]) +
                           " but kBrute oracle says " +
                           std::to_string(oracle[v]));
      }
    }
  }

  checks_ += report.checks;
  return report;
}

AuditReport InvariantAuditor::audit_robustness(
    Scenario& scenario, std::span<const geom::Vec2> probes) const {
  ++audits_;
  AuditReport report;
  const std::size_t n = scenario.node_count();
  for (const geom::Vec2 p : probes) {
    const NodeId partner = scenario.nearest_node(p);
    if (partner == kInvalidNode) continue;
    // When the partner's disk already covers the probe, attaching the
    // newcomer leaves the partner's radius unchanged: only the newcomer's
    // own disk is added, and Definition 3.2 bounds every delta by 1. When
    // the partner's disk must grow to reach the newcomer, its enlargement
    // contributes at most one more unit: bound 2.
    const bool partner_covers =
        geom::dist2(p, scenario.position(partner)) <=
        scenario.radius_squared(partner);
    const std::int64_t bound = partner_covers ? 1 : 2;
    const std::array<Mutation, 2> arrival = {
        Mutation::add_node(p),
        Mutation::add_edge(static_cast<NodeId>(n), partner)};
    const Assessment assessment = Assessor{}.assess(scenario, arrival);
    for (const NodeId v : assessment.affected_ids) {
      ++report.checks;
      const std::int64_t delta = assessment.delta_per_node[v];
      if (delta > bound || delta < 0) {
        record(report,
               "single addition perturbed node " + std::to_string(v) +
                   " by " + std::to_string(delta) + " (bound " +
                   std::to_string(bound) + ", Definition 3.2)");
      }
    }
    ++report.checks;
    // Disks are only added or enlarged by an arrival, so I(G') cannot drop.
    if (assessment.max_after < assessment.max_before) {
      record(report, "adding a node lowered I(G') from " +
                         std::to_string(assessment.max_before) + " to " +
                         std::to_string(assessment.max_after));
    }
  }
  checks_ += report.checks;
  return report;
}

io::Json InvariantAuditor::stats_json() const {
  io::JsonObject o;
  o["audits"] = audits_.to_json();
  o["checks"] = checks_.to_json();
  o["violations"] = violations_.to_json();
  return io::Json(std::move(o));
}

}  // namespace rim::core
