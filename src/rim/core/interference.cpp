#include "rim/core/interference.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "rim/core/radii.hpp"
#include "rim/core/scenario.hpp"
#include "rim/geom/grid_index.hpp"
#include "rim/parallel/parallel_for.hpp"

namespace rim::core {

namespace {

/// All evaluators work on *squared* radii: containment is the exact test
/// dist2(u, v) <= radii2[u], so a node's farthest topology neighbor (whose
/// squared distance defines radii2[u]) is always covered — a sqrt/square
/// roundtrip can miss it by one ulp.

double pick_cell_size(std::span<const double> radii2) {
  std::vector<double> positive;
  positive.reserve(radii2.size());
  for (double r2 : radii2) {
    if (r2 > 0.0) positive.push_back(r2);
  }
  if (positive.empty()) return 1.0;
  const auto mid = positive.begin() + static_cast<std::ptrdiff_t>(positive.size() / 2);
  std::nth_element(positive.begin(), mid, positive.end());
  return std::max(std::sqrt(*mid), 1e-12);
}

/// Counting-side trick: instead of asking for every v "which disks cover
/// me?", iterate over transmitters u and increment a counter at every node
/// inside D(u, r_u).
std::vector<std::uint32_t> eval_grid(std::span<const geom::Vec2> points,
                                     std::span<const double> radii2) {
  std::vector<std::uint32_t> covered(points.size(), 0);
  if (points.empty()) return covered;
  const geom::GridIndex index(points, pick_cell_size(radii2));
  for (NodeId u = 0; u < points.size(); ++u) {
    if (radii2[u] <= 0.0) continue;
    index.for_each_in_disk_squared(points[u], radii2[u], [&](NodeId v) {
      if (v != u) ++covered[v];
    });
  }
  return covered;
}

std::vector<std::uint32_t> eval_parallel(std::span<const geom::Vec2> points,
                                         std::span<const double> radii2) {
  if (points.empty()) return {};
  std::vector<std::atomic<std::uint32_t>> covered(points.size());
  const geom::GridIndex index(points, pick_cell_size(radii2));
  parallel::parallel_for(0, points.size(), [&](std::size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    if (radii2[u] <= 0.0) return;
    index.for_each_in_disk_squared(points[u], radii2[u], [&](NodeId v) {
      if (v != u) covered[v].fetch_add(1, std::memory_order_relaxed);
    });
  });
  std::vector<std::uint32_t> out(points.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = covered[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint32_t> eval_brute(std::span<const geom::Vec2> points,
                                      std::span<const double> radii2) {
  std::vector<std::uint32_t> covered(points.size(), 0);
  for (NodeId u = 0; u < points.size(); ++u) {
    if (radii2[u] <= 0.0) continue;
    for (NodeId v = 0; v < points.size(); ++v) {
      if (v != u && geom::dist2(points[u], points[v]) <= radii2[u]) ++covered[v];
    }
  }
  return covered;
}

}  // namespace

InterferenceSummary InterferenceSummary::from_per_node(
    std::vector<std::uint32_t> per_node) {
  InterferenceSummary summary;
  summary.per_node = std::move(per_node);
  for (std::uint32_t i : summary.per_node) {
    summary.max = std::max(summary.max, i);
    summary.total += i;
  }
  summary.mean = summary.per_node.empty()
                     ? 0.0
                     : static_cast<double>(summary.total) /
                           static_cast<double>(summary.per_node.size());
  return summary;
}

std::vector<std::uint32_t> InterferenceSummary::histogram() const {
  std::vector<std::uint32_t> bins(static_cast<std::size_t>(max) + 1, 0);
  for (std::uint32_t i : per_node) ++bins[i];
  return bins;
}

std::uint32_t node_interference(std::span<const geom::Vec2> points,
                                std::span<const double> radii, NodeId v) {
  assert(v < points.size());
  std::uint32_t count = 0;
  for (NodeId u = 0; u < points.size(); ++u) {
    if (u == v || radii[u] <= 0.0) continue;
    if (geom::dist2(points[u], points[v]) <= radii[u] * radii[u]) ++count;
  }
  return count;
}

std::vector<std::uint32_t> interference_vector(std::span<const geom::Vec2> points,
                                               std::span<const double> radii,
                                               Strategy strategy) {
  assert(points.size() == radii.size());
  std::vector<double> radii2(radii.size());
  for (std::size_t i = 0; i < radii.size(); ++i) radii2[i] = radii[i] * radii[i];
  return interference_vector_squared(points, radii2, strategy);
}

std::vector<std::uint32_t> interference_vector_squared(
    std::span<const geom::Vec2> points, std::span<const double> radii2,
    Strategy strategy) {
  return interference_vector_squared(points, radii2,
                                     EvalOptions{}.with_strategy(strategy));
}

std::vector<std::uint32_t> interference_vector_squared(
    std::span<const geom::Vec2> points, std::span<const double> radii2,
    const EvalOptions& options) {
  assert(points.size() == radii2.size());
  switch (options.resolve(points.size())) {
    case Strategy::kGrid:
      return eval_grid(points, radii2);
    case Strategy::kParallel:
      return eval_parallel(points, radii2);
    case Strategy::kBrute:
    case Strategy::kAuto:
      break;
  }
  return eval_brute(points, radii2);
}

std::uint32_t graph_interference(const graph::Graph& topology,
                                 std::span<const geom::Vec2> points,
                                 Strategy strategy) {
  return graph_interference(topology, points,
                            EvalOptions{}.with_strategy(strategy));
}

std::uint32_t graph_interference(const graph::Graph& topology,
                                 std::span<const geom::Vec2> points,
                                 const EvalOptions& options) {
  assert(topology.node_count() == points.size());
  // Thin wrapper over a one-shot Scenario so every evaluation, static or
  // incremental, flows through the same engine.
  Scenario scenario(points, topology, options);
  return scenario.max_interference();
}

std::vector<std::vector<NodeId>> covering_sets(const graph::Graph& topology,
                                               std::span<const geom::Vec2> points) {
  const std::vector<double> radii2 = transmission_radii_squared(topology, points);
  std::vector<std::vector<NodeId>> covered_by(points.size());
  if (points.empty()) return covered_by;
  const geom::GridIndex index(points, pick_cell_size(radii2));
  for (NodeId u = 0; u < points.size(); ++u) {
    if (radii2[u] <= 0.0) continue;
    index.for_each_in_disk_squared(points[u], radii2[u], [&](NodeId v) {
      if (v != u) covered_by[v].push_back(u);
    });
  }
  for (auto& list : covered_by) std::sort(list.begin(), list.end());
  return covered_by;
}

}  // namespace rim::core
