#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/parallel/thread_pool.hpp"

/// \file scenario_batch.cpp
/// Scenario::apply_batch — the parallel batch pipeline.
///
/// Semantics: identical, bit for bit, to applying the batch's mutations one
/// at a time with Scenario::apply(). The pipeline exploits that the final
/// interference vector is a pure function of the final configuration
/// (containment tests are exact and contributions are commuting integer
/// +-1s — the robustness property of the model), so intermediate states
/// never need to materialise:
///
///  1. One serial *structural pass* applies all topology/position changes
///     (adjacency, points, radii, grid, swap-with-last renames, cached
///     interference slots) while coalescing, per surviving physical node,
///     its pre-batch disk vs. its final disk, and collecting the pre-batch
///     disks of removed nodes.
///  2. The surviving *disk tasks* (one or two region deltas per changed
///     transmitter) are scheduled into waves of pairwise AABB-disjoint
///     regions — greedy first-fit in batch order, so the schedule is a
///     deterministic function of the batch. Each wave runs concurrently on
///     the thread pool: disjoint regions mean disjoint interference_ writes,
///     no atomics needed, and any within-wave ordering yields the same sums.
///  3. A final wave of *recount tasks* rebuilds I(v) from scratch for every
///     added or moved node (each owns its slot; everything else is frozen
///     reads), overwriting any stale deltas phase 2 wrote there.
///
/// When the grid-occupancy estimate says the batch's regions cover more of
/// the instance than a full evaluation would (per-task over the
/// EvalOptions::touched_threshold, or in total over n), the pipeline marks
/// the cache dirty instead and the next query performs one sharded full
/// evaluation — the same fallback the serial path uses, batched.

namespace rim::core {

namespace {

/// Per-physical-node coalesced state, keyed by *current* id and re-keyed
/// across swap-with-last renames.
struct PendingNode {
  geom::Vec2 orig_pos{};
  double orig_r2 = 0.0;
  bool existed = false;  ///< present before the batch (has a disk to retire)
  bool recount = false;  ///< added or moved: final I(v) needs a recount
};

/// One coalesced region delta: remove the disk (center, old_r2) and apply
/// (center, new_r2), skipping slot `exclude`.
struct DiskTask {
  NodeId exclude = kInvalidNode;
  geom::Vec2 center{};
  double old_r2 = 0.0;
  double new_r2 = 0.0;

  [[nodiscard]] double query_radius() const {
    return std::sqrt(std::max({old_r2, new_r2, 0.0}));
  }
};

/// Conservative conflict test: the tasks' axis-aligned bounding squares
/// intersect (superset of disk intersection, cheap and exact-arithmetic
/// free of false negatives).
bool tasks_conflict(const DiskTask& a, const DiskTask& b) {
  const double reach = a.query_radius() + b.query_radius();
  return std::abs(a.center.x - b.center.x) <= reach &&
         std::abs(a.center.y - b.center.y) <= reach;
}

}  // namespace

BatchResult Scenario::apply_batch(std::span<const Mutation> batch) {
  return apply_batch(batch, &parallel::ThreadPool::shared());
}

BatchResult Scenario::apply_batch(std::span<const Mutation> batch,
                                  parallel::ThreadPool* pool,
                                  BatchHooks* hooks) {
  BatchResult result;
  result.abort_index = batch.size();
  if (batch.empty()) return result;
  ensure_grid();
  const obs::ScopedTimer timer(stats_.batch_ns);
  ++stats_.batches;
  const bool was_dirty = dirty_;

  // ---- 1. Serial structural pass --------------------------------------
  std::unordered_map<NodeId, PendingNode> pending;
  pending.reserve(batch.size() * 2);
  std::vector<DiskTask> retired;  // pre-batch disks of removed nodes
  bool rescan_max = false;

  // First touch of a node this batch captures its pre-batch disk.
  const auto note = [&](NodeId id) -> PendingNode& {
    return pending
        .try_emplace(id, PendingNode{points_[id], radii2_[id], true, false})
        .first->second;
  };
  const auto change_radius = [&](NodeId id, double new_r2) {
    if (radii2_[id] == new_r2) return;
    note(id);
    if (new_r2 > max_radius2_) {
      max_radius2_ = new_r2;
    } else if (radii2_[id] == max_radius2_ && new_r2 < radii2_[id]) {
      rescan_max = true;
    }
    radii2_[id] = new_r2;
  };

  for (std::size_t bi = 0; bi < batch.size(); ++bi) {
    if (hooks != nullptr && !hooks->before_mutation(bi)) {
      // Simulated crash: stop dead mid-batch. The applied prefix is
      // consistent structural state, but its region deltas never ran.
      result.aborted = true;
      result.abort_index = bi;
      break;
    }
    const Mutation& m = batch[bi];
    const std::size_t n = points_.size();
    switch (m.kind) {
      case Mutation::Kind::kAddNode: {
        const auto id = static_cast<NodeId>(n);
        points_.push_back(m.position);
        adjacency_.emplace_back();
        radii2_.push_back(0.0);
        grid_.insert(id, m.position);
        if (!was_dirty) interference_.push_back(0u);
        pending[id] = PendingNode{m.position, 0.0, false, true};
        ++result.applied;
        break;
      }
      case Mutation::Kind::kRemoveNode: {
        if (m.v >= n) break;
        const NodeId v = m.v;
        for (const NodeId w : adjacency_[v]) {
          auto& aw = adjacency_[w];
          aw.erase(std::find(aw.begin(), aw.end(), v));
          --edge_count_;
        }
        const std::vector<NodeId> former = std::move(adjacency_[v]);
        adjacency_[v].clear();
        change_radius(v, 0.0);
        for (const NodeId w : former) {
          change_radius(w, farthest_neighbor_squared(w));
        }
        // Retire the node's *pre-batch* disk (its only applied
        // contribution); a node added this batch never contributed.
        if (const auto it = pending.find(v); it != pending.end()) {
          if (it->second.existed && it->second.orig_r2 > 0.0) {
            retired.push_back({kInvalidNode, it->second.orig_pos,
                               it->second.orig_r2, 0.0});
          }
          pending.erase(it);
        }
        const auto last = static_cast<NodeId>(n - 1);
        grid_.erase(v);
        if (v != last) {
          points_[v] = points_[last];
          radii2_[v] = radii2_[last];
          adjacency_[v] = std::move(adjacency_[last]);
          for (NodeId w : adjacency_[v]) {
            std::replace(adjacency_[w].begin(), adjacency_[w].end(), last, v);
          }
          grid_.relabel(last, v);
          if (const auto it = pending.find(last); it != pending.end()) {
            const PendingNode moved = it->second;
            pending.erase(it);
            pending.emplace(v, moved);
          }
        }
        if (!was_dirty && interference_.size() == n) {
          if (v != last) interference_[v] = interference_[last];
          interference_.pop_back();
        }
        points_.pop_back();
        adjacency_.pop_back();
        radii2_.pop_back();
        ++result.applied;
        break;
      }
      case Mutation::Kind::kAddEdge: {
        if (m.u >= n || m.v >= n || m.u == m.v || has_edge(m.u, m.v)) break;
        adjacency_[m.u].push_back(m.v);
        adjacency_[m.v].push_back(m.u);
        ++edge_count_;
        const double d2 = geom::dist2(points_[m.u], points_[m.v]);
        if (d2 > radii2_[m.u]) change_radius(m.u, d2);
        if (d2 > radii2_[m.v]) change_radius(m.v, d2);
        ++result.applied;
        break;
      }
      case Mutation::Kind::kRemoveEdge: {
        if (m.u >= n || m.v >= n) break;
        auto& au = adjacency_[m.u];
        const auto it = std::find(au.begin(), au.end(), m.v);
        if (it == au.end()) break;
        au.erase(it);
        auto& av = adjacency_[m.v];
        av.erase(std::find(av.begin(), av.end(), m.u));
        --edge_count_;
        change_radius(m.u, farthest_neighbor_squared(m.u));
        change_radius(m.v, farthest_neighbor_squared(m.v));
        ++result.applied;
        break;
      }
      case Mutation::Kind::kMoveNode: {
        if (m.v >= n) break;
        if (points_[m.v] == m.position) break;  // strict no-op
        PendingNode& p = note(m.v);
        p.recount = true;
        points_[m.v] = m.position;
        grid_.move(m.v, m.position);
        change_radius(m.v, farthest_neighbor_squared(m.v));
        for (NodeId w : adjacency_[m.v]) {
          change_radius(w, farthest_neighbor_squared(w));
        }
        ++result.applied;
        break;
      }
    }
  }
  if (rescan_max) {
    max_radius2_ = 0.0;
    for (double r2 : radii2_) max_radius2_ = std::max(max_radius2_, r2);
  }
  stats_.batch_mutations += result.applied;

  if (result.aborted) {
    // Invalidate the cache so queries on the surviving prefix state stay
    // correct; recovery (Scenario::restore + replay) is the caller's job.
    dirty_ = true;
    ++stats_.batch_aborts;
    return result;
  }

  if (was_dirty) {
    // Cache was already invalid: the structural pass is all there is to do.
    result.deferred = true;
    ++stats_.batch_deferred;
    return result;
  }

  // ---- 2. Coalesce the surviving region deltas ------------------------
  std::vector<DiskTask> tasks = std::move(retired);
  std::vector<NodeId> recounts;
  {
    // Deterministic task order: ascending final id (the map iterates in
    // hash order; the schedule below must not depend on it).
    std::vector<NodeId> ids;
    ids.reserve(pending.size());
    for (const auto& [id, p] : pending) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const NodeId id : ids) {
      const PendingNode& p = pending[id];
      const geom::Vec2 new_pos = points_[id];
      const double new_r2 = radii2_[id];
      if (p.existed && p.orig_pos == new_pos) {
        // Radius-only change: one symmetric-difference delta.
        if (p.orig_r2 != new_r2) {
          tasks.push_back({id, new_pos, p.orig_r2, new_r2});
        }
      } else {
        // Moved (or newly added): retire the old disk, apply the new one.
        if (p.existed && p.orig_r2 > 0.0) {
          tasks.push_back({id, p.orig_pos, p.orig_r2, 0.0});
        }
        if (new_r2 > 0.0) {
          tasks.push_back({id, new_pos, 0.0, new_r2});
        }
      }
      if (p.recount) recounts.push_back(id);
    }
  }
  result.disk_tasks = tasks.size();
  result.recounts = recounts.size();
  stats_.batch_disk_tasks += tasks.size();
  stats_.batch_recounts += recounts.size();

  // ---- 3. Defer when the regions rival a full evaluation --------------
  const std::size_t threshold = options_.touched_threshold(points_.size());
  const double max_radius = std::sqrt(std::max(max_radius2_, 0.0));
  std::size_t estimated = 0;
  bool defer = false;
  for (const DiskTask& t : tasks) {
    const std::size_t est = grid_.estimate_in_disk(t.center, t.query_radius());
    if (est > threshold) defer = true;
    estimated += est;
  }
  for (const NodeId id : recounts) {
    const std::size_t est = grid_.estimate_in_disk(points_[id], max_radius);
    if (est > threshold) defer = true;
    estimated += est;
  }
  if (defer || estimated > points_.size()) {
    dirty_ = true;
    result.deferred = true;
    ++stats_.batch_deferred;
    ++stats_.deferred_mutations;
    return result;
  }

  // ---- 4. Wave-schedule and run the disk tasks ------------------------
  // Greedy first-fit in task order: each task lands in the earliest wave
  // whose members it conflicts with none of. Purely a function of the
  // batch, so the schedule (and hence the execution) is deterministic.
  std::vector<std::vector<std::size_t>> waves;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    bool placed = false;
    for (auto& wave : waves) {
      const bool conflicts =
          std::any_of(wave.begin(), wave.end(), [&](std::size_t j) {
            return tasks_conflict(tasks[i], tasks[j]);
          });
      if (!conflicts) {
        wave.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) waves.push_back({i});
  }
  result.waves = waves.size();
  stats_.batch_waves += waves.size();

  const std::size_t workers = pool != nullptr ? pool->thread_count() : 0;
  // Hooks veto individual tasks (poisoned-wave faults). The veto is decided
  // from immutable state, so calling it from pool workers is safe.
  const auto run_task = [&](std::size_t wave_idx, std::size_t task_idx) {
    if (hooks != nullptr && !hooks->before_disk_task(wave_idx, task_idx)) {
      ++stats_.hook_skipped_tasks;
      return;
    }
    const DiskTask& t = tasks[task_idx];
    run_disk_delta(t.exclude, t.center, t.old_r2, t.new_r2);
  };
  const auto run_wave = [&](std::size_t wave_idx,
                            const std::vector<std::size_t>& wave) {
    stats_.batch_wave_tasks.record(wave.size());
    if (workers <= 1 || wave.size() < options_.batch_min_parallel_tasks) {
      for (const std::size_t i : wave) run_task(wave_idx, i);
      return;
    }
    // Chunk the wave so submit overhead stays O(workers), not O(tasks).
    const std::size_t chunks = std::min(wave.size(), workers * 2);
    const std::size_t per = (wave.size() + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(begin + per, wave.size());
      if (begin >= end) break;
      pool->submit([&run_task, &wave, wave_idx, begin, end] {
        for (std::size_t k = begin; k < end; ++k) {
          run_task(wave_idx, wave[k]);
        }
      });
    }
    pool->wait_idle();
  };
  for (std::size_t w = 0; w < waves.size(); ++w) run_wave(w, waves[w]);

  // ---- 5. Recount wave ------------------------------------------------
  // Every recount owns its own interference_ slot and only reads the now
  // frozen points_/radii2_/grid_, so the whole set is one parallel wave.
  const auto run_recount_task = [&](std::size_t k) {
    if (hooks != nullptr && !hooks->before_recount(k)) {
      ++stats_.hook_skipped_tasks;
      return;
    }
    const NodeId id = recounts[k];
    interference_[id] = run_recount(id);
  };
  if (workers > 1 && recounts.size() >= options_.batch_min_parallel_tasks) {
    const std::size_t chunks = std::min(recounts.size(), workers * 2);
    const std::size_t per = (recounts.size() + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(begin + per, recounts.size());
      if (begin >= end) break;
      pool->submit([&run_recount_task, begin, end] {
        for (std::size_t k = begin; k < end; ++k) run_recount_task(k);
      });
    }
    pool->wait_idle();
  } else {
    for (std::size_t k = 0; k < recounts.size(); ++k) run_recount_task(k);
  }
  stats_.incremental_updates += result.applied;
  return result;
}

}  // namespace rim::core
