#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "rim/core/scenario.hpp"
#include "rim/core/speculative.hpp"
#include "rim/parallel/thread_pool.hpp"

/// \file scenario_batch.cpp
/// Scenario::apply_batch — the parallel batch pipeline.
///
/// Semantics: identical, bit for bit, to applying the batch's mutations one
/// at a time with Scenario::apply(). The pipeline exploits that the final
/// interference vector is a pure function of the final configuration
/// (containment tests are exact and contributions are commuting integer
/// +-1s — the robustness property of the model), so intermediate states
/// never need to materialise:
///
///  1. One serial *structural pass* applies all topology/position changes
///     (adjacency, store columns, radii, grid, swap-with-last renames,
///     cached interference slots) while coalescing, per surviving physical
///     node, its pre-batch disk vs. its final disk, and collecting the
///     pre-batch disks of removed nodes.
///  2. The surviving *disk tasks* (one or two region deltas per changed
///     transmitter) run under one of three EvalOptions::execution modes:
///     kSerial applies them in batch order on the calling thread; kWave
///     schedules them into waves of pairwise AABB-disjoint regions —
///     greedy first-fit in batch order, so the schedule is a deterministic
///     function of the batch — each wave running concurrently on the
///     thread pool (disjoint regions mean disjoint interference_ writes,
///     no atomics needed); kSpeculative skips the up-front proof and the
///     per-wave barriers, executing tasks optimistically under the
///     footprint-claim/rollback protocol of core::SpeculativeExecutor
///     (speculative.hpp, DESIGN.md §11). All three yield the same sums.
///  3. A final wave of *recount tasks* rebuilds I(v) from scratch for every
///     added or moved node (each owns its slot; everything else is frozen
///     reads), overwriting any stale deltas phase 2 wrote there.
///
/// All pipeline scratch — the pending-node table, task and recount lists,
/// the wave schedule and its materialised execution orders — lives in the
/// scenario's batch arena (common::Arena): bump-allocated per batch, reset
/// wholesale at the next one, allocation-free in steady state. Wave task
/// lambdas capture only raw pointers into the arena (see the
/// wave-vector-scratch lint rule); bounds are exact: pending entries are
/// keyed by node id (< n0 + batch size), removed disks number at most the
/// batch size, and tasks at most removed + 2 * pending.
///
/// When the grid-occupancy estimate says the batch's regions cover more of
/// the instance than a full evaluation would (per-task over the
/// EvalOptions::touched_threshold, or in total over n), the pipeline marks
/// the cache dirty instead and the next query performs one sharded full
/// evaluation — the same fallback the serial path uses, batched.

namespace rim::core {

namespace {

/// Per-physical-node coalesced state, keyed by *current* id and re-keyed
/// across swap-with-last renames. Trivially destructible (arena-resident).
struct PendingNode {
  geom::Vec2 orig_pos{};
  double orig_r2 = 0.0;
  bool existed = false;  ///< present before the batch (has a disk to retire)
  bool recount = false;  ///< added or moved: final I(v) needs a recount
};

// DiskTask itself lives in speculative.hpp — the one definition shared by
// this pipeline and the speculative executor.

/// Arena-resident singly linked list node of one wave's task indices.
struct WaveNode {
  std::uint32_t task = 0;
  WaveNode* next = nullptr;
};

/// One wave under construction: linked member list plus its size.
struct WaveList {
  WaveNode* head = nullptr;
  WaveNode* tail = nullptr;
  std::uint32_t size = 0;
};

/// Conservative conflict test: the tasks' axis-aligned bounding squares
/// intersect (superset of disk intersection, cheap and exact-arithmetic
/// free of false negatives).
bool tasks_conflict(const DiskTask& a, const DiskTask& b) {
  const double reach = a.query_radius() + b.query_radius();
  return std::abs(a.center.x - b.center.x) <= reach &&
         std::abs(a.center.y - b.center.y) <= reach;
}

}  // namespace

BatchResult Scenario::apply_batch(std::span<const Mutation> batch) {
  return apply_batch(batch, &parallel::ThreadPool::shared());
}

BatchResult Scenario::apply_batch(std::span<const Mutation> batch,
                                  parallel::ThreadPool* pool,
                                  BatchHooks* hooks) {
  BatchResult result;
  result.abort_index = batch.size();
  if (batch.empty()) return result;
  ensure_grid();
  const obs::ScopedTimer timer(stats_.batch_ns);
  ++stats_.batches;
  const bool was_dirty = dirty_;

  // All scratch below lives until the next apply_batch (or copy/assign).
  batch_arena_.reset();

  // ---- 1. Serial structural pass --------------------------------------
  // Pending state is keyed directly by node id: ids stay below
  // n0 + batch size (every add raises the ceiling by one), so a flat
  // arena table replaces the former hash map.
  const std::size_t id_cap = nodes_.size() + batch.size();
  PendingNode* pending = batch_arena_.alloc_array<PendingNode>(id_cap);
  std::uint8_t* has_pending = batch_arena_.alloc_array<std::uint8_t>(id_cap);
  if (id_cap > 0) std::memset(has_pending, 0, id_cap);
  // Pre-batch disks of removed nodes: at most one per removal.
  DiskTask* removed_disks = batch_arena_.alloc_array<DiskTask>(batch.size());
  std::size_t removed_count = 0;
  bool rescan_max = false;

  // First touch of a node this batch captures its pre-batch disk.
  const auto note = [&](NodeId id) -> PendingNode& {
    if (has_pending[id] == 0) {
      pending[id] =
          PendingNode{nodes_.position(id), nodes_.radius2(id), true, false};
      has_pending[id] = 1;
    }
    return pending[id];
  };
  const auto change_radius = [&](NodeId id, double new_r2) {
    const double cur_r2 = nodes_.radius2(id);
    if (cur_r2 == new_r2) return;
    note(id);
    if (new_r2 > max_radius2_) {
      max_radius2_ = new_r2;
    } else if (cur_r2 == max_radius2_ && new_r2 < cur_r2) {
      rescan_max = true;
    }
    set_node_radius2(id, new_r2);
  };

  for (std::size_t bi = 0; bi < batch.size(); ++bi) {
    if (hooks != nullptr && !hooks->before_mutation(bi)) {
      // Simulated crash: stop dead mid-batch. The applied prefix is
      // consistent structural state, but its region deltas never ran.
      result.aborted = true;
      result.abort_index = bi;
      break;
    }
    const Mutation& m = batch[bi];
    const std::size_t n = nodes_.size();
    switch (m.kind) {
      case Mutation::Kind::kAddNode: {
        const auto id = static_cast<NodeId>(n);
        nodes_.insert(id, m.position, 0.0);
        adjacency_.emplace_back();
        grid_.insert(id, m.position, 0.0);
        if (!was_dirty) interference_.push_back(0u);
        pending[id] = PendingNode{m.position, 0.0, false, true};
        has_pending[id] = 1;
        ++result.applied;
        break;
      }
      case Mutation::Kind::kRemoveNode: {
        if (m.v >= n) break;
        const NodeId v = m.v;
        for (const NodeId w : adjacency_[v]) {
          auto& aw = adjacency_[w];
          aw.erase(std::find(aw.begin(), aw.end(), v));
          --edge_count_;
        }
        const std::vector<NodeId> former = std::move(adjacency_[v]);
        adjacency_[v].clear();
        change_radius(v, 0.0);
        for (const NodeId w : former) {
          change_radius(w, farthest_neighbor_squared(w));
        }
        // Retire the node's *pre-batch* disk (its only applied
        // contribution); a node added this batch never contributed.
        if (has_pending[v] != 0) {
          if (pending[v].existed && pending[v].orig_r2 > 0.0) {
            removed_disks[removed_count++] = {kInvalidNode, pending[v].orig_pos,
                                              pending[v].orig_r2, 0.0};
          }
          has_pending[v] = 0;
        }
        const auto last = static_cast<NodeId>(n - 1);
        grid_.erase(v);
        nodes_.remove(v);
        if (v != last) {
          nodes_.relabel(last, v);
          adjacency_[v] = std::move(adjacency_[last]);
          for (NodeId w : adjacency_[v]) {
            std::replace(adjacency_[w].begin(), adjacency_[w].end(), last, v);
          }
          grid_.relabel(last, v);
          if (has_pending[last] != 0) {
            pending[v] = pending[last];
            has_pending[v] = 1;
            has_pending[last] = 0;
          }
        }
        if (!was_dirty && interference_.size() == n) {
          if (v != last) interference_[v] = interference_[last];
          interference_.pop_back();
        }
        adjacency_.pop_back();
        ++result.applied;
        break;
      }
      case Mutation::Kind::kAddEdge: {
        if (m.u >= n || m.v >= n || m.u == m.v || has_edge(m.u, m.v)) break;
        adjacency_[m.u].push_back(m.v);
        adjacency_[m.v].push_back(m.u);
        ++edge_count_;
        const double d2 =
            geom::dist2(nodes_.position(m.u), nodes_.position(m.v));
        if (d2 > nodes_.radius2(m.u)) change_radius(m.u, d2);
        if (d2 > nodes_.radius2(m.v)) change_radius(m.v, d2);
        ++result.applied;
        break;
      }
      case Mutation::Kind::kRemoveEdge: {
        if (m.u >= n || m.v >= n) break;
        auto& au = adjacency_[m.u];
        const auto it = std::find(au.begin(), au.end(), m.v);
        if (it == au.end()) break;
        au.erase(it);
        auto& av = adjacency_[m.v];
        av.erase(std::find(av.begin(), av.end(), m.u));
        --edge_count_;
        change_radius(m.u, farthest_neighbor_squared(m.u));
        change_radius(m.v, farthest_neighbor_squared(m.v));
        ++result.applied;
        break;
      }
      case Mutation::Kind::kMoveNode: {
        if (m.v >= n) break;
        if (nodes_.position(m.v) == m.position) break;  // strict no-op
        PendingNode& p = note(m.v);
        p.recount = true;
        nodes_.set_position(m.v, m.position);
        grid_.move(m.v, m.position);
        change_radius(m.v, farthest_neighbor_squared(m.v));
        for (NodeId w : adjacency_[m.v]) {
          change_radius(w, farthest_neighbor_squared(w));
        }
        ++result.applied;
        break;
      }
    }
  }
  if (rescan_max) {
    max_radius2_ = 0.0;
    for (double r2 : nodes_.radii2()) max_radius2_ = std::max(max_radius2_, r2);
  }
  stats_.batch_mutations += result.applied;

  if (result.aborted) {
    // Invalidate the cache so queries on the surviving prefix state stay
    // correct; recovery (Scenario::restore + replay) is the caller's job.
    dirty_ = true;
    ++stats_.batch_aborts;
    return result;
  }

  if (was_dirty) {
    // Cache was already invalid: the structural pass is all there is to do.
    result.deferred = true;
    ++stats_.batch_deferred;
    return result;
  }

  // ---- 2. Coalesce the surviving region deltas ------------------------
  // Deterministic task order: removed disks first (batch order), then
  // ascending final id — pending lives in an id-indexed table, so the scan
  // is already sorted. Exact bound: <= removed + 2 per pending node.
  std::size_t pending_count = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (has_pending[id] != 0) ++pending_count;
  }
  DiskTask* tasks = batch_arena_.alloc_array<DiskTask>(
      removed_count + 2 * pending_count);
  std::size_t task_count = 0;
  for (std::size_t i = 0; i < removed_count; ++i) {
    tasks[task_count++] = removed_disks[i];
  }
  NodeId* recounts = batch_arena_.alloc_array<NodeId>(pending_count);
  std::size_t recount_count = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (has_pending[id] == 0) continue;
    const PendingNode& p = pending[id];
    const geom::Vec2 new_pos = nodes_.position(id);
    const double new_r2 = nodes_.radius2(id);
    if (p.existed && p.orig_pos == new_pos) {
      // Radius-only change: one symmetric-difference delta.
      if (p.orig_r2 != new_r2) {
        tasks[task_count++] = {id, new_pos, p.orig_r2, new_r2};
      }
    } else {
      // Moved (or newly added): retire the old disk, apply the new one.
      if (p.existed && p.orig_r2 > 0.0) {
        tasks[task_count++] = {id, p.orig_pos, p.orig_r2, 0.0};
      }
      if (new_r2 > 0.0) {
        tasks[task_count++] = {id, new_pos, 0.0, new_r2};
      }
    }
    if (p.recount) recounts[recount_count++] = id;
  }
  result.disk_tasks = task_count;
  result.recounts = recount_count;
  stats_.batch_disk_tasks += task_count;
  stats_.batch_recounts += recount_count;

  // ---- 3. Defer when the regions rival a full evaluation --------------
  const std::size_t threshold = options_.touched_threshold(nodes_.size());
  const double max_radius = std::sqrt(std::max(max_radius2_, 0.0));
  std::size_t estimated = 0;
  bool defer = false;
  for (std::size_t i = 0; i < task_count; ++i) {
    const std::size_t est =
        grid_.estimate_in_disk(tasks[i].center, tasks[i].query_radius());
    if (est > threshold) defer = true;
    estimated += est;
  }
  for (std::size_t i = 0; i < recount_count; ++i) {
    const std::size_t est =
        grid_.estimate_in_disk(nodes_.position(recounts[i]), max_radius);
    if (est > threshold) defer = true;
    estimated += est;
  }
  if (defer || estimated > nodes_.size()) {
    dirty_ = true;
    result.deferred = true;
    ++stats_.batch_deferred;
    ++stats_.deferred_mutations;
    return result;
  }

  // ---- 4. Run the disk tasks (EvalOptions::execution) ------------------
  // Three schedulers over the same task list, all bit-identical: the
  // commuting ±1 deltas make the final vector independent of the order and
  // interleaving, as long as no two concurrent tasks write the same slot.
  const std::size_t workers = pool != nullptr ? pool->thread_count() : 0;
  // Hooks veto individual tasks (poisoned-wave faults). The veto is decided
  // from immutable state, so calling it from pool workers is safe.
  const auto run_task = [&](std::size_t wave_idx, std::size_t task_idx) {
    if (hooks != nullptr && !hooks->before_disk_task(wave_idx, task_idx)) {
      ++stats_.hook_skipped_tasks;
      return;
    }
    const DiskTask& t = tasks[task_idx];
    run_disk_delta(t.exclude, t.center, t.old_r2, t.new_r2);
  };
  switch (options_.execution) {
    case Execution::kSerial: {
      // Reference baseline: every task inline, in task order — one "wave".
      if (task_count > 0) {
        result.waves = 1;
        ++stats_.batch_waves;
        stats_.batch_wave_tasks.record(task_count);
        for (std::size_t i = 0; i < task_count; ++i) run_task(0, i);
      }
      break;
    }
    case Execution::kSpeculative: {
      // Optimistic execution with footprint claims, rollback, and replay
      // (speculative.hpp). The executor is engine scratch, like the arena:
      // built lazily, reused across batches, never copied.
      if (speculative_ == nullptr) {
        speculative_ = std::make_unique<SpeculativeExecutor>();
      }
      ++stats_.spec_batches;
      const SpecOutcome spec =
          speculative_->run(*this, tasks, task_count, pool, hooks);
      result.spec_committed = spec.committed;
      result.spec_rolled_back = spec.rolled_back;
      result.spec_replay_rounds = spec.replay_rounds;
      result.spec_serial_tasks = spec.serial_tasks;
      stats_.spec_committed += spec.committed;
      stats_.spec_rolled_back += spec.rolled_back;
      stats_.spec_replay_rounds += spec.replay_rounds;
      stats_.spec_serial_tasks += spec.serial_tasks;
      break;
    }
    case Execution::kWave: {
      // Greedy first-fit in task order: each task lands in the earliest
      // wave whose members it conflicts with none of. Purely a function of
      // the batch, so the schedule (and hence the execution) is
      // deterministic. Waves are arena linked lists while under
      // construction, then materialised into one contiguous execution-order
      // array so wave task lambdas capture nothing but raw pointers.
      WaveList* waves = batch_arena_.alloc_array<WaveList>(task_count);
      std::size_t wave_count = 0;
      for (std::size_t i = 0; i < task_count; ++i) {
        std::size_t target = wave_count;
        for (std::size_t w = 0; w < wave_count; ++w) {
          bool conflicts = false;
          for (const WaveNode* node = waves[w].head; node != nullptr;
               node = node->next) {
            if (tasks_conflict(tasks[i], tasks[node->task])) {
              conflicts = true;
              break;
            }
          }
          if (!conflicts) {
            target = w;
            break;
          }
        }
        if (target == wave_count) waves[wave_count++] = WaveList{};
        WaveNode* node = batch_arena_.create<WaveNode>(
            static_cast<std::uint32_t>(i), nullptr);
        WaveList& wave = waves[target];
        if (wave.tail != nullptr) {
          wave.tail->next = node;
        } else {
          wave.head = node;
        }
        wave.tail = node;
        ++wave.size;
      }
      std::uint32_t* order =
          batch_arena_.alloc_array<std::uint32_t>(task_count);
      {
        std::size_t cursor = 0;
        for (std::size_t w = 0; w < wave_count; ++w) {
          for (const WaveNode* node = waves[w].head; node != nullptr;
               node = node->next) {
            order[cursor++] = node->task;
          }
        }
        assert(cursor == task_count);
      }
      result.waves = wave_count;
      stats_.batch_waves += wave_count;

      const auto run_wave = [&](std::size_t wave_idx,
                                const std::uint32_t* wave_order,
                                std::size_t wave_size) {
        stats_.batch_wave_tasks.record(wave_size);
        if (workers <= 1 || wave_size < options_.batch_min_parallel_tasks) {
          for (std::size_t k = 0; k < wave_size; ++k) {
            run_task(wave_idx, wave_order[k]);
          }
          return;
        }
        // Chunk the wave so submit overhead stays O(workers), not O(tasks).
        const std::size_t chunks = std::min(wave_size, workers * 2);
        const std::size_t per = (wave_size + chunks - 1) / chunks;
        for (std::size_t c = 0; c < chunks; ++c) {
          const std::size_t begin = c * per;
          const std::size_t end = std::min(begin + per, wave_size);
          if (begin >= end) break;
          pool->submit([&run_task, wave_order, wave_idx, begin, end] {
            for (std::size_t k = begin; k < end; ++k) {
              run_task(wave_idx, wave_order[k]);
            }
          });
        }
        pool->wait_idle();
      };
      const std::uint32_t* cursor = order;
      for (std::size_t w = 0; w < wave_count; ++w) {
        run_wave(w, cursor, waves[w].size);
        cursor += waves[w].size;
      }
      break;
    }
  }

  // ---- 5. Recount wave ------------------------------------------------
  // Every recount owns its own interference_ slot and only reads the now
  // frozen store/grid, so the whole set is one parallel wave.
  const auto run_recount_task = [&](std::size_t k) {
    if (hooks != nullptr && !hooks->before_recount(k)) {
      ++stats_.hook_skipped_tasks;
      return;
    }
    const NodeId id = recounts[k];
    interference_[id] = run_recount(id);
  };
  if (workers > 1 && recount_count >= options_.batch_min_parallel_tasks) {
    const std::size_t chunks = std::min(recount_count, workers * 2);
    const std::size_t per = (recount_count + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(begin + per, recount_count);
      if (begin >= end) break;
      pool->submit([&run_recount_task, begin, end] {
        for (std::size_t k = begin; k < end; ++k) run_recount_task(k);
      });
    }
    pool->wait_idle();
  } else {
    for (std::size_t k = 0; k < recount_count; ++k) run_recount_task(k);
  }
  stats_.incremental_updates += result.applied;
  return result;
}

}  // namespace rim::core
