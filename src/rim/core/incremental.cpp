#include "rim/core/incremental.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "rim/core/interference.hpp"
#include "rim/core/scenario.hpp"
#include "rim/core/sender_centric.hpp"

namespace rim::core {

NodeAdditionImpact assess_node_addition(std::span<const geom::Vec2> points,
                                        const graph::Graph& topology,
                                        geom::Vec2 new_point, AttachPolicy policy) {
  assert(points.size() == topology.node_count());
  NodeAdditionImpact impact;

  Scenario scenario(points, topology);
  impact.sender_before = evaluate_sender_centric(topology, points).max;

  // The arrival as a mutation sequence: the node itself, plus (policy
  // permitting) the attachment edge to its nearest pre-existing neighbor.
  // Scenario::assess measures the sequence on a probe copy.
  const auto newcomer = static_cast<NodeId>(points.size());
  std::array<Mutation, 2> sequence{Mutation::add_node(new_point), {}};
  std::size_t length = 1;
  if (policy == AttachPolicy::kNearestNeighbor && !points.empty()) {
    sequence[length++] =
        Mutation::add_edge(newcomer, scenario.nearest_node(new_point));
  }
  const Assessment assessment =
      scenario.assess(std::span<const Mutation>(sequence.data(), length));

  impact.receiver_before = assessment.max_before;
  impact.receiver_after = assessment.max_after;
  impact.newcomer_interference = assessment.newcomer_interference;
  for (const std::int64_t delta : assessment.delta_per_node) {
    if (delta > 0) {
      impact.receiver_max_node_increase =
          std::max(impact.receiver_max_node_increase,
                   static_cast<std::uint32_t>(delta));
    }
  }

  // The sender-centric comparison needs the mutated topology for real.
  for (std::size_t i = 0; i < length; ++i) scenario.apply(sequence[i]);
  impact.sender_after =
      evaluate_sender_centric(scenario.topology(), scenario.points()).max;
  return impact;
}

NodeRemovalImpact assess_node_removal(std::span<const geom::Vec2> points,
                                      const graph::Graph& topology, NodeId victim) {
  assert(victim < topology.node_count());
  NodeRemovalImpact impact;

  Scenario scenario(points, topology);
  const Assessment assessment = scenario.assess(Mutation::remove_node(victim));

  impact.receiver_before = assessment.max_before;
  impact.receiver_after = assessment.max_after;
  // The victim's own delta is -I(victim); only survivors can increase.
  for (const std::int64_t delta : assessment.delta_per_node) {
    if (delta > 0) {
      impact.receiver_max_node_increase =
          std::max(impact.receiver_max_node_increase,
                   static_cast<std::uint32_t>(delta));
    }
  }
  return impact;
}

}  // namespace rim::core
