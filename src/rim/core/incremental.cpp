#include "rim/core/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "rim/core/interference.hpp"
#include "rim/core/sender_centric.hpp"

namespace rim::core {

namespace {

NodeId nearest_node(std::span<const geom::Vec2> points, geom::Vec2 q) {
  NodeId best = kInvalidNode;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < points.size(); ++v) {
    const double d2 = geom::dist2(points[v], q);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = v;
    }
  }
  return best;
}

}  // namespace

NodeAdditionImpact assess_node_addition(std::span<const geom::Vec2> points,
                                        const graph::Graph& topology,
                                        geom::Vec2 new_point, AttachPolicy policy) {
  assert(points.size() == topology.node_count());
  NodeAdditionImpact impact;

  const InterferenceSummary before = evaluate_interference(topology, points);
  impact.receiver_before = before.max;
  impact.sender_before = evaluate_sender_centric(topology, points).max;

  geom::PointSet extended(points.begin(), points.end());
  extended.push_back(new_point);
  graph::Graph after(topology.node_count(), topology.edges());
  const NodeId newcomer = after.add_node();
  if (policy == AttachPolicy::kNearestNeighbor && !points.empty()) {
    after.add_edge(newcomer, nearest_node(points, new_point));
  }

  const InterferenceSummary summary_after = evaluate_interference(after, extended);
  impact.receiver_after = summary_after.max;
  impact.newcomer_interference = summary_after.per_node[newcomer];
  for (NodeId v = 0; v < points.size(); ++v) {
    const std::uint32_t inc = summary_after.per_node[v] > before.per_node[v]
                                  ? summary_after.per_node[v] - before.per_node[v]
                                  : 0;
    impact.receiver_max_node_increase = std::max(impact.receiver_max_node_increase, inc);
  }
  impact.sender_after = evaluate_sender_centric(after, extended).max;
  return impact;
}

NodeRemovalImpact assess_node_removal(std::span<const geom::Vec2> points,
                                      const graph::Graph& topology, NodeId victim) {
  assert(victim < topology.node_count());
  NodeRemovalImpact impact;
  const InterferenceSummary before = evaluate_interference(topology, points);
  impact.receiver_before = before.max;

  // Rebuild without the victim; surviving nodes keep their ids via remap.
  geom::PointSet kept;
  std::vector<NodeId> remap(points.size(), kInvalidNode);
  for (NodeId v = 0; v < points.size(); ++v) {
    if (v == victim) continue;
    remap[v] = static_cast<NodeId>(kept.size());
    kept.push_back(points[v]);
  }
  graph::Graph after(kept.size());
  for (graph::Edge e : topology.edges()) {
    if (e.u == victim || e.v == victim) continue;
    after.add_edge(remap[e.u], remap[e.v]);
  }

  const InterferenceSummary summary_after = evaluate_interference(after, kept);
  impact.receiver_after = summary_after.max;
  for (NodeId v = 0; v < points.size(); ++v) {
    if (v == victim) continue;
    const std::uint32_t old_i = before.per_node[v];
    const std::uint32_t new_i = summary_after.per_node[remap[v]];
    if (new_i > old_i) {
      impact.receiver_max_node_increase =
          std::max(impact.receiver_max_node_increase, new_i - old_i);
    }
  }
  return impact;
}

}  // namespace rim::core
