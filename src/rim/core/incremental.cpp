#include "rim/core/incremental.hpp"

#include "rim/core/assessor.hpp"

namespace rim::core {

// Deprecated wrappers (kept for one PR, see assessor.hpp): the logic moved
// verbatim into core::Assessor, the one assessment front door.

NodeAdditionImpact assess_node_addition(std::span<const geom::Vec2> points,
                                        const graph::Graph& topology,
                                        geom::Vec2 new_point,
                                        AttachPolicy policy) {
  return Assessor{}.assess_addition(points, topology, new_point, policy);
}

NodeRemovalImpact assess_node_removal(std::span<const geom::Vec2> points,
                                      const graph::Graph& topology,
                                      NodeId victim) {
  return Assessor{}.assess_removal(points, topology, victim);
}

}  // namespace rim::core
