#include "rim/core/incremental.hpp"

#include <algorithm>
#include <cassert>

#include "rim/core/interference.hpp"
#include "rim/core/scenario.hpp"
#include "rim/core/sender_centric.hpp"

namespace rim::core {

NodeAdditionImpact assess_node_addition(std::span<const geom::Vec2> points,
                                        const graph::Graph& topology,
                                        geom::Vec2 new_point, AttachPolicy policy) {
  assert(points.size() == topology.node_count());
  NodeAdditionImpact impact;

  // One full evaluation for the "before" state; the addition itself is an
  // O(affected-disk) Scenario delta, not a second full recompute.
  Scenario scenario(points, topology);
  const InterferenceSummary before = scenario.summary();
  impact.receiver_before = before.max;
  impact.sender_before = evaluate_sender_centric(topology, points).max;

  const NodeId newcomer = scenario.add_node(new_point);
  if (policy == AttachPolicy::kNearestNeighbor && !points.empty()) {
    scenario.add_edge(newcomer, scenario.nearest_node(new_point, newcomer));
  }

  const std::span<const std::uint32_t> after = scenario.interference();
  impact.receiver_after = scenario.max_interference();
  impact.newcomer_interference = after[newcomer];
  for (NodeId v = 0; v < points.size(); ++v) {
    const std::uint32_t inc =
        after[v] > before.per_node[v] ? after[v] - before.per_node[v] : 0;
    impact.receiver_max_node_increase =
        std::max(impact.receiver_max_node_increase, inc);
  }
  impact.sender_after =
      evaluate_sender_centric(scenario.topology(), scenario.points()).max;
  return impact;
}

NodeRemovalImpact assess_node_removal(std::span<const geom::Vec2> points,
                                      const graph::Graph& topology, NodeId victim) {
  assert(victim < topology.node_count());
  NodeRemovalImpact impact;

  Scenario scenario(points, topology);
  const InterferenceSummary before = scenario.summary();
  impact.receiver_before = before.max;

  // Scenario keeps ids dense by renaming the last node into the vacated
  // slot; `renamed` records that survivor's former id.
  const NodeId renamed = scenario.remove_node(victim);

  const std::span<const std::uint32_t> after = scenario.interference();
  impact.receiver_after = scenario.max_interference();
  for (NodeId v = 0; v < points.size(); ++v) {
    if (v == victim) continue;
    const std::uint32_t old_i = before.per_node[v];
    const std::uint32_t new_i = after[v == renamed ? victim : v];
    if (new_i > old_i) {
      impact.receiver_max_node_increase =
          std::max(impact.receiver_max_node_increase, new_i - old_i);
    }
  }
  return impact;
}

}  // namespace rim::core
